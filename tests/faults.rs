//! Fault-injection tests: negotiations must fail *gracefully* — no
//! panics, clean failure outcomes — when the transport refuses links
//! (partitions, broker-only topologies, hop budgets).

use peertrust::core::PeerId;
use peertrust::crypto::KeyRegistry;
use peertrust::negotiation::{negotiate, NegotiationPeer, PeerMap, SessionConfig, Strategy};
use peertrust::net::{LatencyModel, NegotiationId, SimNetwork, Topology};
use peertrust::parser::parse_literal;

fn peers() -> PeerMap {
    let registry = KeyRegistry::new();
    registry.register_derived(PeerId::new("UIUC"), 1);
    let mut peers = PeerMap::new();
    let mut server = NegotiationPeer::new("Server", registry.clone());
    server
        .load_program(r#"resource(X) $ true <- student(X) @ "UIUC" @ X."#)
        .unwrap();
    peers.insert(server);
    let mut alice = NegotiationPeer::new("Alice", registry);
    alice
        .load_program(
            r#"
            student("Alice") @ "UIUC" signedBy ["UIUC"].
            student(X) @ Y $ true <-_true student(X) @ Y.
            "#,
        )
        .unwrap();
    peers.insert(alice);
    peers
}

#[test]
fn partitioned_topology_fails_cleanly() {
    // A star around an uninvolved hub: Alice cannot reach the server at
    // all. The negotiation returns failure with zero messages.
    let mut ps = peers();
    let mut net = SimNetwork::with(
        Topology::Star {
            hub: PeerId::new("Hub"),
        },
        LatencyModel::Constant(1),
        0,
    );
    let out = negotiate(
        &mut ps,
        &mut net,
        SessionConfig::default(),
        NegotiationId(1),
        PeerId::new("Alice"),
        PeerId::new("Server"),
        parse_literal(r#"resource("Alice")"#).unwrap(),
    );
    assert!(!out.success);
    assert_eq!(out.messages, 0);
}

#[test]
fn half_connected_topology_blocks_the_counterquery() {
    // Alice -> Server link exists, but the Server cannot reach Alice back:
    // the delegated student query cannot be sent, so the negotiation fails
    // without hanging.
    let mut ps = peers();
    // Links are undirected in our topology, so model the break by allowing
    // only Server<->Hub and Alice<->Hub (no Alice<->Server).
    let mut net = SimNetwork::with(
        Topology::links([(PeerId::new("Alice"), PeerId::new("Hub"))]),
        LatencyModel::Constant(1),
        0,
    );
    let out = negotiate(
        &mut ps,
        &mut net,
        SessionConfig::default(),
        NegotiationId(1),
        PeerId::new("Alice"),
        PeerId::new("Server"),
        parse_literal(r#"resource("Alice")"#).unwrap(),
    );
    assert!(!out.success);
    assert_eq!(out.messages, 0, "the very first query is unroutable");
}

#[test]
fn exhausted_hop_budget_fails_cleanly() {
    let mut ps = peers();
    let mut net = SimNetwork::new(0).with_max_hops(0);
    let out = negotiate(
        &mut ps,
        &mut net,
        SessionConfig::default(),
        NegotiationId(1),
        PeerId::new("Alice"),
        PeerId::new("Server"),
        parse_literal(r#"resource("Alice")"#).unwrap(),
    );
    // The top-level query goes out at hop 0; the delegated counter-query
    // at hop 1 is rejected by the transport, so the negotiation fails.
    assert!(!out.success);
    assert!(out.messages >= 1);
}

#[test]
fn eager_strategy_survives_partition() {
    // Eager pushes are simply dropped by the transport; the round loop
    // reaches its fixpoint and reports failure.
    let mut ps = peers();
    let mut net = SimNetwork::with(Topology::links([]), LatencyModel::Constant(1), 0);
    let out = Strategy::Eager.run(
        &mut ps,
        &mut net,
        NegotiationId(1),
        PeerId::new("Alice"),
        PeerId::new("Server"),
        parse_literal(r#"resource("Alice")"#).unwrap(),
    );
    assert!(!out.success);
}

#[test]
fn high_latency_changes_ticks_not_outcome() {
    let mut fast = peers();
    let mut net_fast = SimNetwork::with(Topology::FullMesh, LatencyModel::Constant(1), 0);
    let a = negotiate(
        &mut fast,
        &mut net_fast,
        SessionConfig::default(),
        NegotiationId(1),
        PeerId::new("Alice"),
        PeerId::new("Server"),
        parse_literal(r#"resource("Alice")"#).unwrap(),
    );

    let mut slow = peers();
    let mut net_slow = SimNetwork::with(Topology::FullMesh, LatencyModel::Constant(50), 0);
    let b = negotiate(
        &mut slow,
        &mut net_slow,
        SessionConfig::default(),
        NegotiationId(1),
        PeerId::new("Alice"),
        PeerId::new("Server"),
        parse_literal(r#"resource("Alice")"#).unwrap(),
    );

    assert!(a.success && b.success);
    assert_eq!(a.messages, b.messages);
    assert_eq!(b.elapsed_ticks, a.elapsed_ticks * 50);
}
