//! Cross-crate integration tests exercising the public facade: full paper
//! scenarios, warm-cache re-negotiation, tampering, threaded transport,
//! and multi-negotiation accounting on a shared network.

use peertrust::core::{PeerId, Term};
use peertrust::crypto::KeyRegistry;
use peertrust::negotiation::{
    negotiate, negotiate_threaded, verify_safe_sequence, NegotiationPeer, PeerMap, SessionConfig,
    Strategy,
};
use peertrust::net::{NegotiationId, SimNetwork};
use peertrust::parser::parse_literal;
use peertrust::scenarios::{chain, Ablation1, Scenario1, Scenario2, Variant2};

#[test]
fn scenario1_succeeds_under_both_strategies_via_facade() {
    for strategy in Strategy::ALL {
        let mut s = Scenario1::build();
        let out = s.run(strategy);
        assert!(out.success, "{strategy}: {:#?}", out.refusals);
        verify_safe_sequence(&out).unwrap();
    }
}

#[test]
fn scenario2_full_matrix() {
    for variant in [
        Variant2::Base,
        Variant2::RevocationCheck,
        Variant2::AuthorityDb,
        Variant2::Broker,
    ] {
        let mut s = Scenario2::build(variant);
        let out = s.run(Strategy::Parsimonious, Scenario2::paid_goal(1000));
        assert!(out.success, "{variant:?}: {:#?}", out.refusals);
        verify_safe_sequence(&out).unwrap();
    }
}

#[test]
fn ablations_fail_iff_ingredient_missing() {
    // The headline claim of §4.1 is an *iff*: present => success,
    // any ingredient absent => failure.
    let mut full = Scenario1::build();
    assert!(full.run(Strategy::Parsimonious).success);
    for ablation in Ablation1::ALL.into_iter().skip(1) {
        let mut s = Scenario1::build_ablated(ablation);
        assert!(!s.run(Strategy::Parsimonious).success, "{ablation:?}");
    }
}

#[test]
fn warm_cache_reduces_negotiation_cost() {
    // After a successful negotiation, the responder has cached the
    // requester's credentials; re-running the same request takes fewer
    // messages (E-Learn no longer queries Alice).
    let mut s = Scenario1::build();
    let cold = s.run(Strategy::Parsimonious);
    assert!(cold.success);
    let warm = s.run(Strategy::Parsimonious);
    assert!(warm.success);
    assert!(
        warm.messages < cold.messages,
        "warm {} !< cold {}",
        warm.messages,
        cold.messages
    );
    // Fewer disclosures too: E-Learn answers the BBB counter-query from
    // cache, so that leg of the negotiation disappears entirely.
    assert!(warm.credential_count() < cold.credential_count());
}

#[test]
fn forged_credential_is_rejected_end_to_end() {
    // Mallory presents a forged student credential: the signature does not
    // verify, the push is dropped, verification fails, access denied.
    let registry = KeyRegistry::new();
    registry.register_derived(PeerId::new("UIUC"), 1);
    // Mallory's "own CA" — distinct key even if she claims UIUC signed it.
    let mallory_reg = KeyRegistry::new();
    mallory_reg.register_derived(PeerId::new("UIUC"), 666);

    let mut peers = PeerMap::new();
    let mut server = NegotiationPeer::new("Server", registry.clone());
    server
        .load_program(r#"resource(X) $ true <- student(X) @ "UIUC" @ X."#)
        .unwrap();
    peers.insert(server);

    // Mallory mints with her wrong key but will be verified against the
    // real registry.
    let mut mallory = NegotiationPeer::new("Mallory", mallory_reg);
    mallory
        .load_program(
            r#"
            student("Mallory") @ "UIUC" signedBy ["UIUC"].
            student(X) @ Y $ true <-_true student(X) @ Y.
            "#,
        )
        .unwrap();
    mallory.registry = registry; // she talks to honest verifiers now
    peers.insert(mallory);

    let mut net = SimNetwork::new(13);
    let out = negotiate(
        &mut peers,
        &mut net,
        SessionConfig::default(),
        NegotiationId(1),
        PeerId::new("Mallory"),
        PeerId::new("Server"),
        parse_literal(r#"resource("Mallory")"#).unwrap(),
    );
    assert!(!out.success, "forged credential must not grant access");
}

#[test]
fn threaded_transport_agrees_with_simulated() {
    let registry = KeyRegistry::new();
    registry.register_derived(PeerId::new("UIUC"), 1);
    registry.register_derived(PeerId::new("BBB"), 2);

    let build = |suffix: &str| {
        let mut server = NegotiationPeer::new(format!("Srv{suffix}").as_str(), registry.clone());
        server
            .load_program(&format!(
                r#"
                resource(X) $ true <- student(X) @ "UIUC" @ X.
                member("Srv{suffix}") @ "BBB" $ true signedBy ["BBB"].
                "#
            ))
            .unwrap();
        let mut alice = NegotiationPeer::new(format!("Ali{suffix}").as_str(), registry.clone());
        alice
            .load_program(&format!(
                r#"
                student("Ali{suffix}") @ "UIUC" signedBy ["UIUC"].
                student(X) @ Y $ member(Requester) @ "BBB" @ Requester <-_true student(X) @ Y.
                "#
            ))
            .unwrap();
        (alice, server)
    };

    // Simulated run.
    let (alice, server) = build("S");
    let mut peers = PeerMap::new();
    let alice_id = alice.id;
    let server_id = server.id;
    peers.insert(alice);
    peers.insert(server);
    let mut net = SimNetwork::new(3);
    let sim = Strategy::Eager.run(
        &mut peers,
        &mut net,
        NegotiationId(1),
        alice_id,
        server_id,
        parse_literal(r#"resource("AliS")"#).unwrap(),
    );
    assert!(sim.success);

    // Threaded run of the identical setup.
    let (alice_t, server_t) = build("T");
    let threaded = negotiate_threaded(
        alice_t,
        server_t,
        parse_literal(r#"resource("AliT")"#).unwrap(),
    );
    assert!(threaded.success);
    // Same disclosure count either way.
    assert_eq!(sim.credential_count(), threaded.disclosures.len());
}

#[test]
fn many_negotiations_share_one_network() {
    let (mut peers, _reg, goals) = peertrust::scenarios::fleet(8);
    let mut net = SimNetwork::new(5);
    let mut total_messages = 0;
    for (i, (client, goal)) in goals.iter().enumerate() {
        let out = negotiate(
            &mut peers,
            &mut net,
            SessionConfig::default(),
            NegotiationId(i as u64),
            *client,
            PeerId::new("Server"),
            goal.clone(),
        );
        assert!(out.success, "client {i}");
        total_messages += out.messages;
    }
    assert_eq!(net.stats().messages_sent, total_messages);
    assert!(net.idle());
}

#[test]
fn deep_chain_negotiation_on_big_stack() {
    // E3's deepest configuration runs on a dedicated big-stack thread
    // (the DFS driver's recursion depth is proportional to chain depth).
    let handle = std::thread::Builder::new()
        .stack_size(64 << 20)
        .spawn(|| {
            let mut w = chain(48);
            let mut net = SimNetwork::new(1);
            let out = negotiate(
                &mut w.peers,
                &mut net,
                SessionConfig::default(),
                NegotiationId(1),
                w.requester,
                w.responder,
                w.goal.clone(),
            );
            (out.success, out.credential_count(), out.messages)
        })
        .unwrap();
    let (success, creds, messages) = handle.join().unwrap();
    assert!(success);
    assert_eq!(creds, 48);
    assert!(messages >= 48 * 3);
}

#[test]
fn goal_with_variables_returns_bindings() {
    let registry = KeyRegistry::new();
    let mut peers = PeerMap::new();
    let mut server = NegotiationPeer::new("Catalog", registry.clone());
    server
        .load_program(
            r#"
            course(C, P) $ true <- price(C, P).
            price(cs101, 0). price(cs411, 1000). price(ml500, 1500).
            "#,
        )
        .unwrap();
    peers.insert(server);
    peers.insert(NegotiationPeer::new("Shopper", registry));

    let mut net = SimNetwork::new(9);
    let out = negotiate(
        &mut peers,
        &mut net,
        SessionConfig::default(),
        NegotiationId(2),
        PeerId::new("Shopper"),
        PeerId::new("Catalog"),
        parse_literal("course(C, P)").unwrap(),
    );
    assert!(out.success);
    assert_eq!(out.granted.len(), 3);
    assert!(out
        .granted
        .iter()
        .any(|g| { g.args == vec![Term::atom("cs411"), Term::int(1000)] }));
}
