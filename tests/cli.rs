//! End-to-end tests for the `peertrust` CLI binary.

use std::process::Command;

fn peertrust(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_peertrust"))
        .args(args)
        .output()
        .expect("run peertrust binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const ELEARN: &str = "examples/policies/elearn.pt";

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = peertrust(&["--help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("negotiate"));
}

#[test]
fn unknown_command_fails() {
    let (ok, _, stderr) = peertrust(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn check_reports_peers_and_rules() {
    let (ok, stdout, _) = peertrust(&["check", ELEARN]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("E-Learn:"));
    assert!(stdout.contains("Alice:"));
    assert!(stdout.contains("signed"));
}

#[test]
fn check_rejects_bad_files() {
    let dir = std::env::temp_dir().join("peertrust-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.pt");
    std::fs::write(&bad, "Alice:\n p(.").unwrap();
    let (ok, _, stderr) = peertrust(&["check", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("parse error"), "{stderr}");

    let (ok2, _, stderr2) = peertrust(&["check", "/nonexistent/x.pt"]);
    assert!(!ok2);
    assert!(stderr2.contains("reading"), "{stderr2}");
}

#[test]
fn query_prints_proof() {
    let (ok, stdout, _) = peertrust(&["query", ELEARN, "Alice", r#"student(X) @ "UIUC""#]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("yes (1 answer(s))"));
    assert!(stdout.contains("by rule:"));
    assert!(stdout.contains(r#"student("Alice") @ "UIUC Registrar""#));
}

#[test]
fn query_no_answers() {
    let (ok, stdout, _) = peertrust(&["query", ELEARN, "Alice", "nonexistent(1)"]);
    assert!(ok);
    assert!(stdout.contains("no (0 answers)"));
}

#[test]
fn negotiate_succeeds_with_trace() {
    let (ok, stdout, _) = peertrust(&[
        "negotiate",
        ELEARN,
        "Alice",
        "E-Learn",
        r#"discountEnroll(spanish101, "Alice")"#,
        "--trace",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("SUCCESS"));
    assert!(stdout.contains("disclosure sequence:"));
    assert!(stdout.contains("message trace:"));
    assert!(stdout.contains("query discountEnroll"));
}

#[test]
fn negotiate_eager_strategy() {
    let (ok, stdout, _) = peertrust(&[
        "negotiate",
        ELEARN,
        "Alice",
        "E-Learn",
        r#"discountEnroll(spanish101, "Alice")"#,
        "--strategy",
        "eager",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("SUCCESS"));
    assert!(stdout.contains("strategy=eager"));
    assert!(stdout.contains("queries=0"));
}

#[test]
fn negotiate_failure_with_analysis() {
    // A file where Alice's release policy can never be satisfied.
    let dir = std::env::temp_dir().join("peertrust-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let f = dir.join("locked.pt");
    std::fs::write(
        &f,
        r#"
        "Server":
          resource(X) $ true <- cred(X) @ "CA" @ X.
        Alice:
          cred("Alice") @ "CA" signedBy ["CA"].
          cred(X) @ Y $ impossible(Requester) <-_true cred(X) @ Y.
        "#,
    )
    .unwrap();
    let (ok, stdout, _) = peertrust(&[
        "negotiate",
        f.to_str().unwrap(),
        "Alice",
        "Server",
        r#"resource("Alice")"#,
        "--explain-failure",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("FAILURE"));
    assert!(stdout.contains("refusals:"));
    assert!(stdout.contains("counterfactual failure analysis:"));
    assert!(stdout.contains("CRITICAL"), "{stdout}");
}

#[test]
fn negotiate_unknown_peer_is_an_error() {
    let (ok, _, stderr) = peertrust(&["negotiate", ELEARN, "Ghost", "E-Learn", "x(1)"]);
    assert!(!ok);
    assert!(stderr.contains("no peer named `Ghost`"));
}

#[test]
fn negotiate_json_audit_record() {
    let (ok, stdout, _) = peertrust(&[
        "negotiate",
        ELEARN,
        "Alice",
        "E-Learn",
        r#"discountEnroll(spanish101, "Alice")"#,
        "--json",
    ]);
    assert!(ok, "{stdout}");
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    assert_eq!(v["success"], serde_json::Value::Bool(true));
    assert!(v["disclosures"].as_array().unwrap().len() >= 4);
    assert_eq!(v["requester"], "Alice");
}

#[test]
fn lint_clean_file() {
    let (ok, stdout, _) = peertrust(&["lint", ELEARN]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn lint_reports_deadlock_as_error() {
    let dir = std::env::temp_dir().join("peertrust-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let f = dir.join("deadlock.pt");
    std::fs::write(
        &f,
        r#"
        A:
          credA("A") @ "CA" signedBy ["CA"].
          credA(X) @ Y $ credB(Requester) @ "CA" @ Requester <-_true credA(X) @ Y.
        B:
          credB("B") @ "CA" signedBy ["CA"].
          credB(X) @ Y $ credA(Requester) @ "CA" @ Requester <-_true credB(X) @ Y.
        "#,
    )
    .unwrap();
    let (ok, stdout, stderr) = peertrust(&["lint", f.to_str().unwrap()]);
    assert!(!ok, "deadlock must be an error exit");
    assert!(stdout.contains("deadlock cycle"), "{stdout}");
    assert!(stderr.contains("error(s) found"), "{stderr}");
}

#[test]
fn marketplace_policy_file_negotiates_free_and_paid() {
    const MARKET: &str = "examples/policies/marketplace.pt";
    let (ok, stdout, _) = peertrust(&["lint", MARKET]);
    assert!(ok, "{stdout}");

    let (ok, stdout, _) = peertrust(&[
        "negotiate",
        MARKET,
        "Bob",
        "E-Learn",
        r#"enroll(cs101, "Bob", "IBM", E, 0)"#,
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("SUCCESS"), "{stdout}");

    let (ok, stdout, _) = peertrust(&[
        "negotiate",
        MARKET,
        "Bob",
        "E-Learn",
        r#"enroll(cs411, "Bob", "IBM", E, 1000)"#,
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("SUCCESS"), "{stdout}");

    // Over Bob's $2000 authority: fails.
    let (ok, stdout, _) = peertrust(&[
        "negotiate",
        MARKET,
        "Bob",
        "E-Learn",
        r#"enroll(cs411, "Bob", "IBM", E, 2500)"#,
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("FAILURE"), "{stdout}");
}
