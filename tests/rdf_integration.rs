//! RDF metadata driving live trust negotiations: the Edutella workflow of
//! paper §1 — course resources described by RDF, policies referencing the
//! imported attributes, negotiation deciding access.

use peertrust::core::{PeerId, Term};
use peertrust::crypto::KeyRegistry;
use peertrust::negotiation::{negotiate, NegotiationPeer, PeerMap, SessionConfig};
use peertrust::net::{NegotiationId, SimNetwork};
use peertrust::parser::parse_literal;
use peertrust::rdf::{import_metadata, parse_ntriples, TripleStore};

const CATALOG: &str = r#"
# The E-Learn course catalog, Edutella-style.
<http://elearn.example/courses/cs101> <http://elearn.example/terms#freeCourse> "yes" .
<http://elearn.example/courses/cs101> <http://purl.org/dc/terms/title> "Intro to CS" .
<http://elearn.example/courses/cs411> <http://elearn.example/terms#price> "1000"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://elearn.example/courses/cs411> <http://purl.org/dc/terms/title> "Databases" .
<http://elearn.example/courses/ml500> <http://elearn.example/terms#price> "2500" .
<http://elearn.example/catalog> <http://elearn.example/terms#peertrustPolicy> "withinBudget(C) <- price(C, P), P < 2000." .
"#;

fn build() -> (PeerMap, KeyRegistry) {
    let registry = KeyRegistry::new();
    registry.register_derived(PeerId::new("IBM"), 1);

    let mut peers = PeerMap::new();
    let mut elearn = NegotiationPeer::new("E-Learn", registry.clone());

    // Import the RDF catalog: facts + the embedded budget policy.
    let store: TripleStore = parse_ntriples(CATALOG).unwrap().into_iter().collect();
    import_metadata(&store, &mut elearn.kb).unwrap();

    // Access policies over the *imported metadata*.
    elearn
        .load_program(
            r#"
            enrollFree(Course, X) $ true <-
                freeCourse(Course, "yes").
            enrollPaid(Course, X) $ true <-
                withinBudget(Course),
                authorized(X) @ "IBM" @ X.
            "#,
        )
        .unwrap();
    peers.insert(elearn);

    let mut bob = NegotiationPeer::new("Bob", registry.clone());
    bob.load_program(
        r#"
        authorized("Bob") @ "IBM" signedBy ["IBM"].
        authorized(X) @ Y $ true <-_true authorized(X) @ Y.
        "#,
    )
    .unwrap();
    peers.insert(bob);

    (peers, registry)
}

fn run(peers: &mut PeerMap, goal: &str) -> peertrust::negotiation::NegotiationOutcome {
    let mut net = SimNetwork::new(3);
    negotiate(
        peers,
        &mut net,
        SessionConfig::default(),
        NegotiationId(1),
        PeerId::new("Bob"),
        PeerId::new("E-Learn"),
        parse_literal(goal).unwrap(),
    )
}

#[test]
fn free_course_from_rdf_attribute() {
    let (mut peers, _) = build();
    let out = run(&mut peers, r#"enrollFree(cs101, "Bob")"#);
    assert!(out.success, "{:#?}", out.refusals);
    assert_eq!(out.credential_count(), 0);
}

#[test]
fn paid_course_within_embedded_budget_policy() {
    // cs411 at 1000 passes the RDF-embedded `withinBudget` rule; Bob's
    // authorization is negotiated.
    let (mut peers, _) = build();
    let out = run(&mut peers, r#"enrollPaid(cs411, "Bob")"#);
    assert!(out.success, "{:#?}", out.refusals);
    assert!(out.credential_count() >= 1);
}

#[test]
fn course_over_budget_is_rejected_by_metadata() {
    // ml500 costs 2500: the embedded policy filters it before any
    // credential is requested.
    let (mut peers, _) = build();
    let out = run(&mut peers, r#"enrollPaid(ml500, "Bob")"#);
    assert!(!out.success);
    assert_eq!(
        out.credential_count(),
        0,
        "no negotiation for a filtered course"
    );
}

#[test]
fn metadata_enumerates_the_accessible_catalog() {
    let (mut peers, _) = build();
    let out = run(&mut peers, r#"enrollPaid(C, "Bob")"#);
    assert!(out.success);
    let courses: Vec<String> = out.granted.iter().map(|g| g.args[0].to_string()).collect();
    assert_eq!(courses, vec!["cs411"]);
}

#[test]
fn raw_triples_are_queryable_alongside() {
    let (peers, _) = build();
    let elearn = peers.get(PeerId::new("E-Learn")).unwrap();
    let mut solver = peertrust::engine::Solver::new(&elearn.kb, PeerId::new("E-Learn"));
    let sols = solver.solve(&peertrust::parser::parse_goals("triple(cs411, title, T)").unwrap());
    assert_eq!(sols.len(), 1);
    assert_eq!(sols[0].subst.apply(&Term::var("T")), Term::str("Databases"));
}
