//! Discovery-then-negotiate: the full Edutella workflow of paper §1.
//! Alice does not know which peer offers Spanish courses; the super-peer
//! routing layer finds providers, and she then negotiates with each until
//! one grants access.

use peertrust::core::{PeerId, Sym};
use peertrust::crypto::KeyRegistry;
use peertrust::negotiation::{negotiate, NegotiationPeer, PeerMap, SessionConfig};
use peertrust::net::{NegotiationId, SimNetwork, SuperPeerNetwork};
use peertrust::parser::parse_literal;

fn build() -> (PeerMap, SuperPeerNetwork) {
    let registry = KeyRegistry::new();
    registry.register_derived(PeerId::new("UIUC"), 1);
    registry.register_derived(PeerId::new("BBB"), 2);

    let mut peers = PeerMap::new();

    // Two course providers with different requirements.
    let mut strict = NegotiationPeer::new("StrictCourses", registry.clone());
    strict
        .load_program(
            r#"
            spanishCourse(X) $ true <- veteran(X) @ "Army" @ X.
            "#,
        )
        .unwrap();
    peers.insert(strict);

    let mut elearn = NegotiationPeer::new("E-Learn", registry.clone());
    elearn
        .load_program(
            r#"
            spanishCourse(X) $ true <- student(X) @ "UIUC" @ X.
            member("E-Learn") @ "BBB" $ true signedBy ["BBB"].
            "#,
        )
        .unwrap();
    peers.insert(elearn);

    let mut alice = NegotiationPeer::new("Alice", registry);
    alice
        .load_program(
            r#"
            student("Alice") @ "UIUC" signedBy ["UIUC"].
            student(X) @ Y $ member(Requester) @ "BBB" @ Requester <-_true student(X) @ Y.
            "#,
        )
        .unwrap();
    peers.insert(alice);

    // The super-peer backbone with provider advertisements.
    let mut spn = SuperPeerNetwork::new([PeerId::new("SP1"), PeerId::new("SP2")]);
    spn.attach(PeerId::new("StrictCourses"), PeerId::new("SP1"));
    spn.attach(PeerId::new("E-Learn"), PeerId::new("SP2"));
    spn.attach(PeerId::new("Alice"), PeerId::new("SP1"));
    spn.advertise(PeerId::new("StrictCourses"), Sym::new("spanishCourse"));
    spn.advertise(PeerId::new("E-Learn"), Sym::new("spanishCourse"));

    (peers, spn)
}

#[test]
fn discovery_finds_providers_then_negotiation_selects_one() {
    let (mut peers, spn) = build();

    // 1. Discover providers of spanishCourse across the backbone.
    let lookup = spn.lookup(PeerId::new("Alice"), Sym::new("spanishCourse"), true);
    assert_eq!(lookup.providers.len(), 2, "{lookup:?}");

    // 2. Negotiate with each provider until one grants.
    let mut net = SimNetwork::new(11);
    let goal = parse_literal(r#"spanishCourse("Alice")"#).unwrap();
    let mut granted_by = None;
    let mut attempts = 0;
    for provider in &lookup.providers {
        attempts += 1;
        let out = negotiate(
            &mut peers,
            &mut net,
            SessionConfig::default(),
            NegotiationId(attempts),
            PeerId::new("Alice"),
            *provider,
            goal.clone(),
        );
        if out.success {
            granted_by = Some(*provider);
            break;
        }
    }

    // StrictCourses demands a veteran credential Alice lacks; E-Learn's
    // student policy succeeds.
    assert_eq!(granted_by, Some(PeerId::new("E-Learn")));
    assert_eq!(attempts, 2, "the strict provider was tried and refused");
}

#[test]
fn discovery_miss_means_no_negotiation() {
    let (_peers, spn) = build();
    let lookup = spn.lookup(PeerId::new("Alice"), Sym::new("quantumCourse"), true);
    assert!(lookup.providers.is_empty());
}

#[test]
fn first_hit_routing_prefers_nearby_providers() {
    let (_peers, spn) = build();
    // Alice sits on SP1, where StrictCourses advertises: a non-exhaustive
    // lookup stops there.
    let lookup = spn.lookup(PeerId::new("Alice"), Sym::new("spanishCourse"), false);
    assert_eq!(lookup.providers, vec![PeerId::new("StrictCourses")]);
    assert_eq!(lookup.hops, 0);
}
