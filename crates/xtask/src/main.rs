//! Workspace automation (the cargo-xtask pattern: a plain binary crate,
//! no build dependencies).
//!
//! `cargo xtask verify` runs the exact step sequence of
//! `.github/workflows/ci.yml` — format, clippy, release build, tests,
//! docs, the experiments binary, and the `e13_caching`/`e14_throughput`
//! bench smokes — so the local verification recipe and CI cannot drift:
//! editing one means editing [`STEPS`], which is what both consume.
//! `cargo xtask verify --threads` appends [`THREAD_STEPS`], the
//! concurrent-path smoke pass (shared-table stress, batch-scheduler
//! determinism, shared-cache concurrency). `cargo xtask verify --faults`
//! appends [`FAULT_STEPS`], the fault-injection/resilience pass
//! (conservation and byte-identity proptests, resilience differential
//! and convergence proptests, faulty-batch determinism).
//! `cargo xtask verify --compiled` appends [`COMPILED_STEPS`], the
//! compiled-KB differential lane (four-lane differential proptests —
//! body-compiled, heads-only, interpreter, reference — the
//! compile-module unit suite, and the gated two-lane quickbench).
//! `cargo xtask verify --gem` appends [`GEM_STEPS`], the distributed
//! tabling lane (GEM unit + session tests, the acyclic bit-identity and
//! cyclic-mesh differential proptests, and the GEM batch determinism
//! test). `cargo xtask verify --serve` appends [`SERVE_STEPS`], the
//! open-loop serving lane (serve unit suite with the cross-worker
//! determinism and admission-control tests, the sketch-merge algebra
//! proptests, and the gated `e18_serving` quickbench).
//!
//! `cargo xtask bench --quick` runs the quickbench harness's e8/e13
//! smoke scenarios in both the interpreted and compiled lanes, writes
//! `target/BENCH_PR8.json`, and fails on any of: a compiled cold
//! scenario slower than its same-run interpreted counterpart (the PR 8
//! parity gate), interpreted e8 deep-chain >25% over
//! `BENCH_BASELINE_PR5.json`, any cold scenario >25% over
//! `BENCH_BASELINE_PR8.json`/`BENCH_BASELINE_PR9.json`/
//! `BENCH_BASELINE_PR10.json`, or any deterministic work counter
//! (resolution steps, heap cells, body instructions, serving admission
//! decisions) differing from its baseline at all.

use std::process::Command;

/// One CI step: display name, cargo arguments, extra environment.
struct Step {
    name: &'static str,
    cargo_args: &'static [&'static str],
    env: &'static [(&'static str, &'static str)],
}

const fn step(
    name: &'static str,
    cargo_args: &'static [&'static str],
    env: &'static [(&'static str, &'static str)],
) -> Step {
    Step {
        name,
        cargo_args,
        env,
    }
}

/// The CI pipeline, in `.github/workflows/ci.yml` order.
const STEPS: &[Step] = &[
    step("format", &["fmt", "--check"], &[]),
    step(
        "clippy",
        &[
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ],
        &[],
    ),
    step("build (release)", &["build", "--release"], &[]),
    step("test", &["test", "-q"], &[]),
    step(
        "docs",
        &["doc", "--workspace", "--no-deps"],
        &[("RUSTDOCFLAGS", "-D warnings")],
    ),
    step(
        "experiments (writes target/metrics.json + target/timeline.jsonl + target/trace.json)",
        &[
            "run",
            "--release",
            "-p",
            "peertrust-bench",
            "--bin",
            "experiments",
        ],
        &[],
    ),
    step(
        "trace smoke (well-formed, deterministic causal traces)",
        &[
            "test",
            "-q",
            "-p",
            "peertrust-negotiation",
            "--test",
            "prop_trace",
        ],
        &[],
    ),
    step(
        "quick bench (e8/e13 smoke, both lanes + baseline gates)",
        &[
            "run",
            "--release",
            "-p",
            "peertrust-bench",
            "--bin",
            "quickbench",
            "--",
            "--quick",
            "--out",
            "target/BENCH_PR8.json",
            "--baseline",
            "BENCH_BASELINE_PR5.json",
            "--baseline-pr8",
            "BENCH_BASELINE_PR8.json",
            "--baseline-pr9",
            "BENCH_BASELINE_PR9.json",
            "--baseline-pr10",
            "BENCH_BASELINE_PR10.json",
        ],
        &[],
    ),
    step(
        "bench smoke (e13_caching)",
        &[
            "bench",
            "-p",
            "peertrust-bench",
            "--bench",
            "e13_caching",
            "--",
            "--measurement-time",
            "1",
        ],
        &[],
    ),
    step(
        "bench smoke (e14_throughput)",
        &[
            "bench",
            "-p",
            "peertrust-bench",
            "--bench",
            "e14_throughput",
            "--",
            "--measurement-time",
            "1",
        ],
        &[],
    ),
    step(
        "bench smoke (e15_resilience)",
        &[
            "bench",
            "-p",
            "peertrust-bench",
            "--bench",
            "e15_resilience",
            "--",
            "--measurement-time",
            "1",
        ],
        &[],
    ),
    step(
        "bench smoke (e17_gem)",
        &[
            "bench",
            "-p",
            "peertrust-bench",
            "--bench",
            "e17_gem",
            "--",
            "--measurement-time",
            "1",
        ],
        &[],
    ),
];

/// Extra steps behind `cargo xtask verify --threads`: the concurrent-path
/// smoke pass — the 8-thread shared-table stress test, the batch
/// scheduler's determinism suite, and the shared-cache concurrency tests.
const THREAD_STEPS: &[Step] = &[
    step(
        "engine concurrent-table stress",
        &[
            "test",
            "-q",
            "-p",
            "peertrust-engine",
            "--test",
            "concurrent_table",
        ],
        &[],
    ),
    step(
        "batch scheduler determinism",
        &[
            "test",
            "-q",
            "-p",
            "peertrust-negotiation",
            "--lib",
            "scheduler::",
        ],
        &[],
    ),
    step(
        "shared remote-answer cache",
        &[
            "test",
            "-q",
            "-p",
            "peertrust-negotiation",
            "--lib",
            "answer_cache::tests::shared_cache",
        ],
        &[],
    ),
];

/// Extra steps behind `cargo xtask verify --faults`: the
/// fault-injection/resilience pass — the net-layer conservation and
/// byte-identity proptests, the resilience differential/convergence
/// proptests, and the faulty-batch determinism tests.
const FAULT_STEPS: &[Step] = &[
    step(
        "net fault-lane proptests (conservation, byte-identity)",
        &["test", "-q", "-p", "peertrust-net", "--test", "prop_faults"],
        &[],
    ),
    step(
        "net fault-lane unit tests",
        &["test", "-q", "-p", "peertrust-net", "--lib", "faults::"],
        &[],
    ),
    step(
        "resilience proptests (differential, convergence, crash-resume)",
        &[
            "test",
            "-q",
            "-p",
            "peertrust-negotiation",
            "--test",
            "prop_resilience",
        ],
        &[],
    ),
    step(
        "resilient session + faulty-batch tests",
        &[
            "test",
            "-q",
            "-p",
            "peertrust-negotiation",
            "--lib",
            "resilience::",
        ],
        &[],
    ),
    step(
        "faulty-batch determinism",
        &[
            "test",
            "-q",
            "-p",
            "peertrust-negotiation",
            "--lib",
            "scheduler::tests::faulty",
        ],
        &[],
    ),
];

/// Extra steps behind `cargo xtask verify --compiled`: the compiled-KB
/// differential lane — compiled-vs-reference/interpreter proptests
/// (solutions, proofs, tables, prefix fits), the compile module's unit
/// suite (indexing, staleness, head-match parity, body lowering,
/// authority dispatch), and the two-lane quickbench with the compiled
/// parity gate and exact work-counter checks. Mirrors the CI
/// `compiled-differential` job.
const COMPILED_STEPS: &[Step] = &[
    step(
        "compiled differential proptests (vs interpreter + reference)",
        &[
            "test",
            "-q",
            "-p",
            "peertrust-engine",
            "--test",
            "prop_compiled",
        ],
        &[],
    ),
    step(
        "compile module unit tests",
        &["test", "-q", "-p", "peertrust-engine", "--lib", "compile::"],
        &[],
    ),
    step(
        "two-lane quickbench (compiled parity gate)",
        &[
            "run",
            "--release",
            "-p",
            "peertrust-bench",
            "--bin",
            "quickbench",
            "--",
            "--quick",
            "--lane",
            "both",
            "--out",
            "target/BENCH_PR8.json",
            "--baseline",
            "BENCH_BASELINE_PR5.json",
            "--baseline-pr8",
            "BENCH_BASELINE_PR8.json",
            "--baseline-pr9",
            "BENCH_BASELINE_PR9.json",
            "--baseline-pr10",
            "BENCH_BASELINE_PR10.json",
        ],
        &[],
    ),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("verify") => verify(
            args.iter().any(|a| a == "--threads"),
            args.iter().any(|a| a == "--faults"),
            args.iter().any(|a| a == "--compiled"),
            args.iter().any(|a| a == "--gem"),
            args.iter().any(|a| a == "--serve"),
        ),
        Some("bench") => bench(args.iter().any(|a| a == "--quick")),
        _ => {
            eprintln!(
                "usage: cargo xtask <verify [--threads] [--faults] [--compiled] [--gem] [--serve] | bench [--quick]>"
            );
            std::process::exit(2);
        }
    }
}

/// Extra steps behind `cargo xtask verify --gem`: the distributed
/// tabling lane — the GEM table/SCC unit tests plus the session-level
/// mutual-recursion and cache-suppression tests (anything matching
/// `gem` in the negotiation lib suite), the acyclic bit-identity and
/// cyclic-mesh initiator-independence/fault-convergence proptests, and
/// the GEM batch determinism test across worker counts.
const GEM_STEPS: &[Step] = &[
    step(
        "gem tabling unit + session tests",
        &["test", "-q", "-p", "peertrust-negotiation", "--lib", "gem"],
        &[],
    ),
    step(
        "gem differential + mesh proptests",
        &[
            "test",
            "-q",
            "-p",
            "peertrust-scenarios",
            "--test",
            "prop_gem",
        ],
        &[],
    ),
    step(
        "gem mesh generator tests",
        &[
            "test",
            "-q",
            "-p",
            "peertrust-scenarios",
            "--lib",
            "delegation_mesh",
        ],
        &[],
    ),
];

/// Extra steps behind `cargo xtask verify --serve`: the open-loop
/// serving lane — the serve module's unit suite (overload shedding with
/// typed refusals, bit-identical decisions and metrics across runs and
/// worker counts, clone-free session startup, shared-cache warm-up),
/// the quantile-sketch merge-algebra proptests that the cross-worker
/// metric merge relies on, and the quickbench run whose `e18_serving`
/// scenario is gated at 3x against `BENCH_BASELINE_PR10.json` with
/// exact admission-decision counters. Mirrors the CI `serving` job.
const SERVE_STEPS: &[Step] = &[
    step(
        "open-loop serving unit tests",
        &[
            "test",
            "-q",
            "-p",
            "peertrust-negotiation",
            "--lib",
            "serve::",
        ],
        &[],
    ),
    step(
        "quantile-sketch merge proptests",
        &[
            "test",
            "-q",
            "-p",
            "peertrust-telemetry",
            "--test",
            "prop_sketch",
        ],
        &[],
    ),
    step(
        "serving quickbench (e18 gate + admission counters)",
        &[
            "run",
            "--release",
            "-p",
            "peertrust-bench",
            "--bin",
            "quickbench",
            "--",
            "--quick",
            "--out",
            "target/BENCH_PR10.json",
            "--baseline-pr10",
            "BENCH_BASELINE_PR10.json",
        ],
        &[],
    ),
];

/// Run the quickbench harness: e8 deep-chain + e13 tabling scenarios in
/// both lanes, `target/BENCH_PR8.json` artifact, and hard failures on
/// the same-run compiled parity gate, the PR5 interpreted regression
/// gate, the PR8 per-scenario regression gate, and the exact
/// work-counter check.
fn bench(quick: bool) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut cargo_args: Vec<&str> = vec![
        "run",
        "--release",
        "-p",
        "peertrust-bench",
        "--bin",
        "quickbench",
        "--",
        "--out",
        "target/BENCH_PR8.json",
        "--baseline",
        "BENCH_BASELINE_PR5.json",
        "--baseline-pr8",
        "BENCH_BASELINE_PR8.json",
        "--baseline-pr9",
        "BENCH_BASELINE_PR9.json",
        "--baseline-pr10",
        "BENCH_BASELINE_PR10.json",
    ];
    if quick {
        cargo_args.push("--quick");
    }
    println!("== xtask bench{} ==", if quick { " --quick" } else { "" });
    let status = Command::new(&cargo)
        .args(&cargo_args)
        .status()
        .unwrap_or_else(|e| {
            eprintln!("xtask bench: failed to spawn cargo: {e}");
            std::process::exit(1);
        });
    if !status.success() {
        eprintln!("xtask bench: quickbench failed (regression or error)");
        std::process::exit(status.code().unwrap_or(1));
    }
    println!("xtask bench: wrote target/BENCH_PR8.json");
}

fn verify(threads: bool, faults: bool, compiled: bool, gem: bool, serve: bool) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut steps: Vec<&Step> = STEPS.iter().collect();
    if threads {
        steps.extend(THREAD_STEPS.iter());
    }
    if faults {
        steps.extend(FAULT_STEPS.iter());
    }
    if compiled {
        steps.extend(COMPILED_STEPS.iter());
    }
    if gem {
        steps.extend(GEM_STEPS.iter());
    }
    if serve {
        steps.extend(SERVE_STEPS.iter());
    }
    for s in steps {
        println!("== xtask verify: {} ==", s.name);
        let mut cmd = Command::new(&cargo);
        cmd.args(s.cargo_args);
        for (k, v) in s.env {
            cmd.env(k, v);
        }
        let status = cmd.status().unwrap_or_else(|e| {
            eprintln!("xtask verify: failed to spawn cargo for '{}': {e}", s.name);
            std::process::exit(1);
        });
        if !status.success() {
            eprintln!("xtask verify: step '{}' failed", s.name);
            std::process::exit(status.code().unwrap_or(1));
        }
    }
    println!("xtask verify: all steps passed");
}
