//! Network topologies.
//!
//! The paper's deployments range from direct bilateral negotiations to
//! broker-mediated ones (§4.2: "These lists of authorities can also come
//! from a broker") and super-peer Edutella networks. A [`Topology`]
//! restricts which peer pairs may exchange messages; experiment E10 sweeps
//! peer counts over mesh and star topologies.

use peertrust_core::PeerId;
use std::collections::HashSet;

/// Who may talk to whom.
#[derive(Clone, Debug)]
pub enum Topology {
    /// Every peer may message every other peer (the default).
    FullMesh,
    /// All traffic must involve the hub (broker) — spokes cannot talk to
    /// each other directly.
    Star { hub: PeerId },
    /// Only explicitly listed undirected links exist.
    Links(HashSet<(PeerId, PeerId)>),
}

impl Topology {
    /// Build a `Links` topology from undirected pairs.
    pub fn links(pairs: impl IntoIterator<Item = (PeerId, PeerId)>) -> Topology {
        let mut set = HashSet::new();
        for (a, b) in pairs {
            set.insert(normalize(a, b));
        }
        Topology::Links(set)
    }

    /// A chain `p0 - p1 - ... - pn`.
    pub fn chain(peers: &[PeerId]) -> Topology {
        Topology::links(peers.windows(2).map(|w| (w[0], w[1])))
    }

    /// May `a` send a message to `b`?
    pub fn can_send(&self, a: PeerId, b: PeerId) -> bool {
        if a == b {
            return true; // loopback always allowed
        }
        match self {
            Topology::FullMesh => true,
            Topology::Star { hub } => a == *hub || b == *hub,
            Topology::Links(set) => set.contains(&normalize(a, b)),
        }
    }
}

fn normalize(a: PeerId, b: PeerId) -> (PeerId, PeerId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: &str) -> PeerId {
        PeerId::new(n)
    }

    #[test]
    fn full_mesh_allows_everything() {
        let t = Topology::FullMesh;
        assert!(t.can_send(p("a"), p("b")));
        assert!(t.can_send(p("b"), p("a")));
    }

    #[test]
    fn star_requires_hub() {
        let t = Topology::Star { hub: p("broker") };
        assert!(t.can_send(p("a"), p("broker")));
        assert!(t.can_send(p("broker"), p("a")));
        assert!(!t.can_send(p("a"), p("b")));
    }

    #[test]
    fn links_are_undirected() {
        let t = Topology::links([(p("a"), p("b"))]);
        assert!(t.can_send(p("a"), p("b")));
        assert!(t.can_send(p("b"), p("a")));
        assert!(!t.can_send(p("a"), p("c")));
    }

    #[test]
    fn chain_links_adjacent_only() {
        let peers = [p("a"), p("b"), p("c")];
        let t = Topology::chain(&peers);
        assert!(t.can_send(p("a"), p("b")));
        assert!(t.can_send(p("b"), p("c")));
        assert!(!t.can_send(p("a"), p("c")));
    }

    #[test]
    fn loopback_always_allowed() {
        let t = Topology::links([]);
        assert!(t.can_send(p("a"), p("a")));
    }
}
