//! The message vocabulary of a PeerTrust negotiation.
//!
//! A negotiation (paper §2) is an exchange of *queries* (please establish
//! this literal for me), *answers* (instances of a queried literal, possibly
//! empty = failure/refusal), and *credential pushes* (signed rules whose
//! release policies the sender has verified against the recipient). The
//! 2004 prototype shipped these over TLS sockets between Java peers; here
//! they travel over the simulated or threaded transport in
//! [`crate::sim`] / [`crate::threaded`].

use bytes::Bytes;
use peertrust_core::{Literal, PeerId, Rule, Sym};
use peertrust_crypto::SignedRule;
use std::fmt;

/// Identifies one negotiation (one top-level resource request).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct NegotiationId(pub u64);

/// Identifies one message within the transport.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct MessageId(pub u64);

/// Correlates an answer with the query it answers.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct QueryId(pub u64);

/// Causal trace coordinates carried by a message (see
/// `peertrust_telemetry::trace`): the trace (= negotiation) it belongs
/// to, the span covering its transit, and the sender-side span that
/// caused it. Span ids are allocated per-negotiation by the session, so
/// reconstructed traces are deterministic across scheduler worker
/// counts. The all-zero value means "untraced" and is skipped on the
/// wire, keeping untraced frames byte-identical to the pre-tracing
/// encoding.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, Debug, Default, serde::Serialize, serde::Deserialize,
)]
pub struct TraceContext {
    pub trace_id: u64,
    pub span_id: u64,
    pub parent_span_id: u64,
}

impl TraceContext {
    /// The untraced context (all zeros).
    pub const NONE: TraceContext = TraceContext {
        trace_id: 0,
        span_id: 0,
        parent_span_id: 0,
    };

    pub fn is_none(&self) -> bool {
        *self == TraceContext::NONE
    }
}

/// What a message carries.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Payload {
    /// Ask the recipient to establish (instances of) `goal`.
    Query { id: QueryId, goal: Literal },
    /// Answer instances for the query `id` asked `goal`. Empty `answers`
    /// means the recipient cannot (or will not) establish the goal.
    Answers {
        id: QueryId,
        goal: Literal,
        answers: Vec<Literal>,
    },
    /// Disclose signed rules (credentials / delegations) to the recipient.
    /// The sender must have checked each rule's release policy first.
    CredentialPush { rules: Vec<SignedRule> },
    /// Explicit refusal/failure notice for query `id` (used by strategies
    /// that distinguish "no" from "won't say").
    Failure {
        id: QueryId,
        goal: Literal,
        reason: String,
    },
    /// UniPro: ask for the definition of the named (opaque) policy.
    PolicyRequest { id: QueryId, policy: Sym },
    /// UniPro: the policy's defining rules (contexts stripped), or empty
    /// if the policy's own policy was not satisfied.
    PolicyDisclosure { id: QueryId, rules: Vec<Rule> },
    /// GEM distributed tabling: a re-request of `goal` that carries the
    /// sender's evaluation context — the `(responder, canonical goal)`
    /// frames currently open on the sender's side — so the recipient can
    /// recognize that the goal closes a cross-peer loop instead of
    /// starting a fresh (infinite) descent.
    GemQuery {
        id: QueryId,
        goal: Literal,
        context: Vec<(PeerId, Literal)>,
    },
    /// GEM distributed tabling: the current tabled (partial) answer set
    /// for a loop-closing goal, produced during fixpoint `round` of the
    /// owning SCC. Unlike [`Payload::Answers`], an empty set here means
    /// "nothing derived *yet*", not failure.
    GemAnswers {
        id: QueryId,
        goal: Literal,
        round: u32,
        answers: Vec<Literal>,
    },
    /// GEM distributed tabling: the SCC leader announces that the
    /// component containing `goal` reached its fixpoint after `rounds`
    /// iterations; tabled entries for its goals are final and reusable.
    GemComplete { goal: Literal, rounds: u32 },
}

impl Payload {
    /// Short tag for traces and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::Query { .. } => "query",
            Payload::Answers { .. } => "answers",
            Payload::CredentialPush { .. } => "push",
            Payload::Failure { .. } => "failure",
            Payload::PolicyRequest { .. } => "policy-request",
            Payload::PolicyDisclosure { .. } => "policy-disclosure",
            Payload::GemQuery { .. } => "gem-query",
            Payload::GemAnswers { .. } => "gem-answers",
            Payload::GemComplete { .. } => "gem-complete",
        }
    }
}

/// A transport-level message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    pub id: MessageId,
    pub negotiation: NegotiationId,
    pub from: PeerId,
    pub to: PeerId,
    pub payload: Payload,
    /// Delegation hop count, bounded by the transport to stop runaway
    /// forwarding loops.
    pub hops: u32,
    /// Causal trace coordinates ([`TraceContext::NONE`] when tracing is
    /// off). Not part of [`Message::encode`]'s byte accounting.
    pub trace: TraceContext,
}

// Hand-written serde impls (the vendored derive has no field
// attributes): `trace` is omitted when [`TraceContext::is_none`] and
// defaults to NONE when absent, so frames from pre-tracing builds decode
// unchanged and untraced frames encode to the exact same bytes as before.
impl serde::Serialize for Message {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let err = <S::Error as serde::ser::Error>::custom;
        let mut map: Vec<(serde::Content, serde::Content)> = Vec::with_capacity(7);
        let mut field = |k: &str, c: serde::Content| {
            map.push((serde::Content::Str(k.to_string()), c));
        };
        field("id", serde::to_content(&self.id).map_err(err)?);
        field(
            "negotiation",
            serde::to_content(&self.negotiation).map_err(err)?,
        );
        field("from", serde::to_content(&self.from).map_err(err)?);
        field("to", serde::to_content(&self.to).map_err(err)?);
        field("payload", serde::to_content(&self.payload).map_err(err)?);
        field("hops", serde::Content::U64(self.hops.into()));
        if !self.trace.is_none() {
            field("trace", serde::to_content(&self.trace).map_err(err)?);
        }
        serializer.serialize_content(serde::Content::Map(map))
    }
}

impl<'de> serde::Deserialize<'de> for Message {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let err = <D::Error as serde::de::Error>::custom;
        let content = deserializer.deserialize_content()?;
        let mut fields = serde::de::expect_map(content).map_err(err)?;
        Ok(Message {
            id: serde::de::take_field(&mut fields, "id").map_err(err)?,
            negotiation: serde::de::take_field(&mut fields, "negotiation").map_err(err)?,
            from: serde::de::take_field(&mut fields, "from").map_err(err)?,
            to: serde::de::take_field(&mut fields, "to").map_err(err)?,
            payload: serde::de::take_field(&mut fields, "payload").map_err(err)?,
            hops: serde::de::take_field(&mut fields, "hops").map_err(err)?,
            trace: serde::de::take_field::<Option<TraceContext>>(&mut fields, "trace")
                .map_err(err)?
                .unwrap_or(TraceContext::NONE),
        })
    }
}

impl Message {
    /// Wire encoding used for byte-level metrics (experiments report
    /// message *and* byte counts). Signatures count 32 bytes each; logical
    /// content is encoded as its canonical text.
    pub fn encode(&self) -> Bytes {
        let mut buf = String::new();
        buf.push_str(self.from.name());
        buf.push('>');
        buf.push_str(self.to.name());
        buf.push('|');
        match &self.payload {
            Payload::Query { goal, .. } => {
                buf.push_str("Q|");
                buf.push_str(&goal.to_string());
            }
            Payload::Answers { goal, answers, .. } => {
                buf.push_str("A|");
                buf.push_str(&goal.to_string());
                for a in answers {
                    buf.push(';');
                    buf.push_str(&a.to_string());
                }
            }
            Payload::CredentialPush { rules } => {
                buf.push_str("C|");
                for r in rules {
                    buf.push_str(&r.rule.to_string());
                    // Account for the signature bytes.
                    for _ in &r.signatures {
                        buf.push_str(&"\0".repeat(32));
                    }
                }
            }
            Payload::Failure { goal, reason, .. } => {
                buf.push_str("F|");
                buf.push_str(&goal.to_string());
                buf.push(';');
                buf.push_str(reason);
            }
            Payload::PolicyRequest { policy, .. } => {
                buf.push_str("PR|");
                buf.push_str(policy.as_str());
            }
            Payload::PolicyDisclosure { rules, .. } => {
                buf.push_str("PD|");
                for r in rules {
                    buf.push_str(&r.to_string());
                    buf.push(';');
                }
            }
            Payload::GemQuery { goal, context, .. } => {
                buf.push_str("GQ|");
                buf.push_str(&goal.to_string());
                for (peer, frame) in context {
                    buf.push(';');
                    buf.push_str(peer.name());
                    buf.push(':');
                    buf.push_str(&frame.to_string());
                }
            }
            Payload::GemAnswers {
                goal,
                round,
                answers,
                ..
            } => {
                buf.push_str("GA|");
                buf.push_str(&round.to_string());
                buf.push('|');
                buf.push_str(&goal.to_string());
                for a in answers {
                    buf.push(';');
                    buf.push_str(&a.to_string());
                }
            }
            Payload::GemComplete { goal, rounds } => {
                buf.push_str("GC|");
                buf.push_str(&rounds.to_string());
                buf.push('|');
                buf.push_str(&goal.to_string());
            }
        }
        Bytes::from(buf)
    }

    /// Encoded size in bytes.
    pub fn encoded_size(&self) -> usize {
        self.encode().len()
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[neg {} msg {}] {} -> {}: {}",
            self.negotiation.0,
            self.id.0,
            self.from,
            self.to,
            self.payload.kind()
        )?;
        match &self.payload {
            Payload::Query { goal, .. } => write!(f, " {goal}"),
            Payload::Answers { goal, answers, .. } => {
                write!(f, " {goal} ({} answers)", answers.len())
            }
            Payload::CredentialPush { rules } => write!(f, " ({} rules)", rules.len()),
            Payload::Failure { goal, reason, .. } => write!(f, " {goal}: {reason}"),
            Payload::PolicyRequest { policy, .. } => write!(f, " {policy}"),
            Payload::PolicyDisclosure { rules, .. } => write!(f, " ({} rules)", rules.len()),
            Payload::GemQuery { goal, context, .. } => {
                write!(f, " {goal} ({} context frames)", context.len())
            }
            Payload::GemAnswers {
                goal,
                round,
                answers,
                ..
            } => write!(f, " {goal} round {round} ({} answers)", answers.len()),
            Payload::GemComplete { goal, rounds } => {
                write!(f, " {goal} complete after {rounds} rounds")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peertrust_core::Term;

    fn msg(payload: Payload) -> Message {
        Message {
            id: MessageId(1),
            negotiation: NegotiationId(7),
            from: PeerId::new("Alice"),
            to: PeerId::new("E-Learn"),
            payload,
            hops: 0,
            trace: TraceContext::NONE,
        }
    }

    #[test]
    fn trace_context_none_is_default_and_skipped() {
        assert!(TraceContext::default().is_none());
        let untraced = msg(Payload::Query {
            id: QueryId(1),
            goal: Literal::truth(),
        });
        let json = serde_json::to_string(&untraced).unwrap();
        assert!(!json.contains("trace"), "NONE context must be omitted");

        let mut traced = untraced.clone();
        traced.trace = TraceContext {
            trace_id: 7,
            span_id: 3,
            parent_span_id: 1,
        };
        let json = serde_json::to_string(&traced).unwrap();
        assert!(json.contains("\"trace\""));
        let back: Message = serde_json::from_str(&json).unwrap();
        assert_eq!(back, traced);
    }

    #[test]
    fn kinds_are_stable() {
        let q = msg(Payload::Query {
            id: QueryId(1),
            goal: Literal::truth(),
        });
        assert_eq!(q.payload.kind(), "query");
    }

    #[test]
    fn encoded_size_counts_signatures() {
        let rule = peertrust_core::Rule::fact(
            Literal::new("student", vec![Term::str("Alice")]).at(Term::str("UIUC")),
        )
        .signed_by("UIUC");
        let unsigned_len = msg(Payload::CredentialPush {
            rules: vec![SignedRule {
                rule: rule.clone(),
                signatures: vec![],
            }],
        })
        .encoded_size();
        let signed_len = msg(Payload::CredentialPush {
            rules: vec![SignedRule {
                rule,
                signatures: vec![[0u8; 32]],
            }],
        })
        .encoded_size();
        assert_eq!(signed_len, unsigned_len + 32);
    }

    #[test]
    fn answers_encoding_grows_with_answers() {
        let goal = Literal::new("student", vec![Term::var("X")]);
        let a0 = msg(Payload::Answers {
            id: QueryId(1),
            goal: goal.clone(),
            answers: vec![],
        })
        .encoded_size();
        let a2 = msg(Payload::Answers {
            id: QueryId(1),
            goal: goal.clone(),
            answers: vec![
                Literal::new("student", vec![Term::str("Alice")]),
                Literal::new("student", vec![Term::str("Bob")]),
            ],
        })
        .encoded_size();
        assert!(a2 > a0);
    }

    #[test]
    fn gem_payloads_roundtrip_and_encode() {
        let goal = Literal::new("reach", vec![Term::var("X")]).at(Term::str("A"));
        let q = msg(Payload::GemQuery {
            id: QueryId(4),
            goal: goal.clone(),
            context: vec![
                (PeerId::new("A"), goal.clone()),
                (
                    PeerId::new("B"),
                    Literal::new("reach", vec![Term::var("X")]),
                ),
            ],
        });
        assert_eq!(q.payload.kind(), "gem-query");
        let back: Message = serde_json::from_str(&serde_json::to_string(&q).unwrap()).unwrap();
        assert_eq!(back, q);
        // Byte accounting grows with the carried evaluation context.
        let bare = msg(Payload::GemQuery {
            id: QueryId(4),
            goal: goal.clone(),
            context: vec![],
        });
        assert!(q.encoded_size() > bare.encoded_size());

        let a = msg(Payload::GemAnswers {
            id: QueryId(4),
            goal: goal.clone(),
            round: 3,
            answers: vec![Literal::new("reach", vec![Term::int(0)])],
        });
        assert_eq!(a.payload.kind(), "gem-answers");
        let back: Message = serde_json::from_str(&serde_json::to_string(&a).unwrap()).unwrap();
        assert_eq!(back, a);
        assert!(a.to_string().contains("round 3"));

        let c = msg(Payload::GemComplete { goal, rounds: 2 });
        assert_eq!(c.payload.kind(), "gem-complete");
        let back: Message = serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
        assert_eq!(back, c);
        assert!(c.encoded_size() > 0);
    }

    #[test]
    fn display_is_informative() {
        let m = msg(Payload::Query {
            id: QueryId(3),
            goal: Literal::new("student", vec![Term::var("X")]).at(Term::str("UIUC")),
        });
        let s = m.to_string();
        assert!(s.contains("Alice -> E-Learn"));
        assert!(s.contains("student(X) @ \"UIUC\""));
    }
}
