//! # peertrust-net
//!
//! The peer-to-peer message substrate PeerTrust negotiations run on — the
//! stand-in for the 2004 prototype's Java socket layer and the Edutella
//! P2P infrastructure (see DESIGN.md, "Substitutions").
//!
//! * [`message`] — the negotiation message vocabulary: queries, answers,
//!   credential pushes, failure notices;
//! * [`faults`] — deterministic fault injection: seeded per-link
//!   drop/delay/duplicate/reorder/corruption plans plus peer crash
//!   windows, applied as a wrapper lane over both transports;
//! * [`sim`] — a deterministic discrete-event network with configurable
//!   topology and latency, producing the message/byte/round metrics every
//!   experiment reports;
//! * [`threaded`] — a crossbeam-channel transport running each peer on a
//!   real thread, proving the protocol does not depend on deterministic
//!   scheduling;
//! * [`topology`] — full-mesh, star (broker) and explicit-link topologies.

pub mod codec;
pub mod faults;
pub mod message;
pub mod routing;
pub mod sim;
pub mod threaded;
pub mod topology;

pub use codec::{decode_frame, encode_frame, CodecError, DecodeError, MAX_FRAME};
pub use faults::{
    CrashWindow, FaultKind, FaultLane, FaultPlan, FaultStats, LinkFaults, MessageFate,
};
pub use message::{Message, MessageId, NegotiationId, Payload, QueryId, TraceContext};
pub use routing::{RoutedLookup, RoutingIndex, SuperPeerNetwork};
pub use sim::{LatencyModel, NetError, NetStats, SimNetwork, Tick, TraceEvent};
pub use threaded::{
    channel_network, channel_network_faulty, channel_network_with_telemetry,
    framed_channel_network, Endpoint, FramedEndpoint, Router,
};
pub use topology::Topology;
