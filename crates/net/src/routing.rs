//! Super-peer query routing (the Edutella substrate of paper §1).
//!
//! Edutella organizes peers under *super-peers* that hold routing indices
//! ("super-peer-based routing and clustering strategies", paper ref \[16\]):
//! a peer registers which predicates (metadata attributes, services,
//! credential types) it can answer, and queries are routed by the
//! super-peer backbone instead of being flooded.
//!
//! This module provides that discovery layer for negotiations where the
//! requester does not know the responder in advance — "who offers Spanish
//! courses?" — as the run-time counterpart of §4.2's authority database
//! ("E-Learn might have a list of authorities it can ask about specific
//! predicates. These lists of authorities can also come from a broker").
//!
//! * [`RoutingIndex`] — one super-peer's predicate → providers index, with
//!   registration, unregistration and lookup;
//! * [`SuperPeerNetwork`] — a backbone of super-peers; each leaf peer
//!   attaches to one super-peer; lookups route hop-by-hop along the
//!   backbone (HyperCuP-style broadcast tree collapsed to a ring walk for
//!   determinism), counting hops for the experiments.

use peertrust_core::{PeerId, Sym};
use std::collections::{HashMap, HashSet};

/// One super-peer's routing index.
#[derive(Default, Debug, Clone)]
pub struct RoutingIndex {
    /// predicate -> providers that registered it.
    providers: HashMap<Sym, Vec<PeerId>>,
}

impl RoutingIndex {
    pub fn new() -> RoutingIndex {
        RoutingIndex::default()
    }

    /// Register `peer` as a provider of `predicate`. Idempotent.
    pub fn register(&mut self, predicate: Sym, peer: PeerId) {
        let entry = self.providers.entry(predicate).or_default();
        if !entry.contains(&peer) {
            entry.push(peer);
        }
    }

    /// Remove a provider registration.
    pub fn unregister(&mut self, predicate: Sym, peer: PeerId) {
        if let Some(entry) = self.providers.get_mut(&predicate) {
            entry.retain(|p| *p != peer);
        }
    }

    /// Providers of `predicate` known locally.
    pub fn lookup(&self, predicate: Sym) -> &[PeerId] {
        self.providers
            .get(&predicate)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of distinct predicates indexed.
    pub fn len(&self) -> usize {
        self.providers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.providers.is_empty()
    }
}

/// The result of a routed lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedLookup {
    /// Providers found, in registration order, deduplicated.
    pub providers: Vec<PeerId>,
    /// Backbone hops taken before the answer was complete.
    pub hops: u32,
    /// Which super-peer answered first (None if nobody had it).
    pub answered_by: Option<PeerId>,
}

/// A backbone of super-peers, each serving a set of attached leaf peers.
#[derive(Default, Debug)]
pub struct SuperPeerNetwork {
    /// Backbone order (the deterministic walk).
    backbone: Vec<PeerId>,
    indices: HashMap<PeerId, RoutingIndex>,
    /// leaf -> its super-peer.
    attachment: HashMap<PeerId, PeerId>,
}

impl SuperPeerNetwork {
    /// Create a backbone with the given super-peers.
    pub fn new(super_peers: impl IntoIterator<Item = PeerId>) -> SuperPeerNetwork {
        let backbone: Vec<PeerId> = super_peers.into_iter().collect();
        let indices = backbone
            .iter()
            .map(|sp| (*sp, RoutingIndex::new()))
            .collect();
        SuperPeerNetwork {
            backbone,
            indices,
            attachment: HashMap::new(),
        }
    }

    pub fn super_peers(&self) -> &[PeerId] {
        &self.backbone
    }

    /// Attach a leaf peer to a super-peer. Returns false if the super-peer
    /// does not exist.
    pub fn attach(&mut self, leaf: PeerId, super_peer: PeerId) -> bool {
        if !self.indices.contains_key(&super_peer) {
            return false;
        }
        self.attachment.insert(leaf, super_peer);
        true
    }

    /// The super-peer a leaf is attached to.
    pub fn super_peer_of(&self, leaf: PeerId) -> Option<PeerId> {
        self.attachment.get(&leaf).copied()
    }

    /// Register `leaf` as a provider of `predicate` (at its super-peer).
    /// Returns false if the leaf is not attached.
    pub fn advertise(&mut self, leaf: PeerId, predicate: Sym) -> bool {
        let Some(sp) = self.attachment.get(&leaf).copied() else {
            return false;
        };
        self.indices
            .get_mut(&sp)
            .expect("attached super-peer exists")
            .register(predicate, leaf);
        true
    }

    /// Routed lookup: start at the requester's super-peer, walk the
    /// backbone until providers are found (or the walk completes),
    /// counting hops. All providers across the backbone are gathered when
    /// `exhaustive` is set; otherwise the walk stops at the first index
    /// with a hit.
    pub fn lookup(&self, from_leaf: PeerId, predicate: Sym, exhaustive: bool) -> RoutedLookup {
        let Some(start) = self.attachment.get(&from_leaf).copied() else {
            return RoutedLookup {
                providers: Vec::new(),
                hops: 0,
                answered_by: None,
            };
        };
        let start_idx = self
            .backbone
            .iter()
            .position(|sp| *sp == start)
            .expect("attached super-peer on backbone");

        let mut providers: Vec<PeerId> = Vec::new();
        let mut seen: HashSet<PeerId> = HashSet::new();
        let mut hops = 0;
        let mut answered_by = None;
        for step in 0..self.backbone.len() {
            let sp = self.backbone[(start_idx + step) % self.backbone.len()];
            if step > 0 {
                hops += 1;
            }
            let found = self.indices[&sp].lookup(predicate);
            if !found.is_empty() && answered_by.is_none() {
                answered_by = Some(sp);
            }
            for p in found {
                if seen.insert(*p) {
                    providers.push(*p);
                }
            }
            if !providers.is_empty() && !exhaustive {
                break;
            }
        }
        RoutedLookup {
            providers,
            hops,
            answered_by,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: &str) -> PeerId {
        PeerId::new(n)
    }

    fn sym(n: &str) -> Sym {
        Sym::new(n)
    }

    fn network() -> SuperPeerNetwork {
        let mut net = SuperPeerNetwork::new([p("SP1"), p("SP2"), p("SP3")]);
        assert!(net.attach(p("E-Learn"), p("SP1")));
        assert!(net.attach(p("CourseCo"), p("SP2")));
        assert!(net.attach(p("Alice"), p("SP3")));
        assert!(net.advertise(p("E-Learn"), sym("spanishCourse")));
        assert!(net.advertise(p("CourseCo"), sym("spanishCourse")));
        assert!(net.advertise(p("E-Learn"), sym("discountEnroll")));
        net
    }

    #[test]
    fn index_registration_is_idempotent() {
        let mut idx = RoutingIndex::new();
        idx.register(sym("course"), p("A"));
        idx.register(sym("course"), p("A"));
        assert_eq!(idx.lookup(sym("course")), &[p("A")]);
        idx.unregister(sym("course"), p("A"));
        assert!(idx.lookup(sym("course")).is_empty());
    }

    #[test]
    fn local_hit_takes_zero_hops() {
        let net = network();
        // E-Learn is attached to SP1, which indexes discountEnroll.
        let r = net.lookup(p("E-Learn"), sym("discountEnroll"), false);
        assert_eq!(r.hops, 0);
        assert_eq!(r.answered_by, Some(p("SP1")));
        assert_eq!(r.providers, vec![p("E-Learn")]);
    }

    #[test]
    fn remote_hit_counts_backbone_hops() {
        let net = network();
        // Alice is on SP3; spanishCourse providers live on SP1 and SP2.
        let r = net.lookup(p("Alice"), sym("spanishCourse"), false);
        assert!(r.hops >= 1);
        assert!(!r.providers.is_empty());
    }

    #[test]
    fn exhaustive_lookup_gathers_all_providers() {
        let net = network();
        let r = net.lookup(p("Alice"), sym("spanishCourse"), true);
        assert_eq!(r.providers.len(), 2);
        assert_eq!(r.hops as usize, net.super_peers().len() - 1);
    }

    #[test]
    fn missing_predicate_walks_whole_backbone() {
        let net = network();
        let r = net.lookup(p("Alice"), sym("noSuchThing"), false);
        assert!(r.providers.is_empty());
        assert_eq!(r.answered_by, None);
        assert_eq!(r.hops as usize, net.super_peers().len() - 1);
    }

    #[test]
    fn unattached_leaf_gets_nothing() {
        let net = network();
        let r = net.lookup(p("Stranger"), sym("spanishCourse"), false);
        assert!(r.providers.is_empty());
        assert_eq!(r.hops, 0);
    }

    #[test]
    fn attach_to_unknown_super_peer_fails() {
        let mut net = network();
        assert!(!net.attach(p("X"), p("NoSuchSP")));
        assert!(!net.advertise(p("X"), sym("anything")));
    }
}
