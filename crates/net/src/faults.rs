//! Deterministic fault injection for the transport lanes.
//!
//! The paper's negotiations assume peers and links that never fail; its §6
//! outlook asks for guarantees that negotiations "always terminate and
//! succeed when possible", which a real peer network can only honor if
//! message loss, delay, duplication, corruption, and peer crashes are
//! first-class. This module provides the *fault model*: a seeded,
//! splitmix64-driven [`FaultPlan`] describing per-link drop / duplicate /
//! delay / reorder / corruption probabilities plus scheduled peer crash
//! windows, and a [`FaultLane`] that applies the plan to messages as they
//! cross [`crate::sim::SimNetwork`] or the threaded
//! [`crate::threaded::Router`].
//!
//! Determinism contract: every decision is a pure function of
//! `(plan, seed, decision index)` — the lane draws from its own
//! [`SplitMix64`] stream, never from the network's latency RNG, so
//! attaching a lane with [`FaultPlan::none`] leaves the wrapped transport
//! byte-identical to the unwrapped path (tested here and in
//! `tests/prop_faults.rs`). Probabilities are expressed in parts per
//! million (integers), so there is no float nondeterminism anywhere.
//!
//! Corruption is modeled honestly: the message is encoded with the wire
//! codec, one byte is flipped, and the mutated frame is re-decoded. The
//! typed [`crate::codec::DecodeError`] this produces is exactly what a
//! socket deployment's integrity check would see; the message is then
//! dropped and counted, never silently altered.

use crate::codec::{decode_frame, encode_frame};
use crate::message::Message;
use crate::sim::Tick;
use bytes::BytesMut;
use peertrust_core::PeerId;

/// The splitmix64 generator (Steele et al.): a tiny, seedable,
/// full-period stream used for every fault decision. One `u64` per draw.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// True with probability `ppm / 1_000_000`.
    pub fn chance(&mut self, ppm: u32) -> bool {
        self.next_u64() % 1_000_000 < u64::from(ppm)
    }

    /// Uniform draw in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_u64() % (hi - lo + 1)
    }
}

/// Convert a probability in `[0, 1]` to parts per million.
pub fn ppm(rate: f64) -> u32 {
    (rate.clamp(0.0, 1.0) * 1_000_000.0).round() as u32
}

/// Per-link fault probabilities (parts per million) and magnitudes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkFaults {
    /// Probability the message is silently lost.
    pub drop_ppm: u32,
    /// Probability an extra copy (same message id) is delivered later.
    pub dup_ppm: u32,
    /// Probability of an extra delivery delay.
    pub delay_ppm: u32,
    /// Maximum extra delay in ticks when a delay fires (at least 1).
    pub max_extra_delay: Tick,
    /// Probability of a small jitter that can invert delivery order
    /// relative to messages sent just after this one.
    pub reorder_ppm: u32,
    /// Probability the payload is corrupted in flight (codec round-trip
    /// with one byte flipped; the frame fails to decode and is dropped).
    pub corrupt_ppm: u32,
}

impl LinkFaults {
    pub const NONE: LinkFaults = LinkFaults {
        drop_ppm: 0,
        dup_ppm: 0,
        delay_ppm: 0,
        max_extra_delay: 0,
        reorder_ppm: 0,
        corrupt_ppm: 0,
    };

    pub fn is_none(&self) -> bool {
        self.drop_ppm == 0
            && self.dup_ppm == 0
            && self.delay_ppm == 0
            && self.reorder_ppm == 0
            && self.corrupt_ppm == 0
    }

    /// A drop-only profile at the given rate.
    pub fn drops(rate: f64) -> LinkFaults {
        LinkFaults {
            drop_ppm: ppm(rate),
            ..LinkFaults::NONE
        }
    }

    /// A lossy-WAN-style profile: drops plus duplicates, delays and
    /// occasional corruption, all scaled from the drop rate.
    pub fn lossy(drop_rate: f64) -> LinkFaults {
        LinkFaults {
            drop_ppm: ppm(drop_rate),
            dup_ppm: ppm(drop_rate / 4.0),
            delay_ppm: ppm(drop_rate / 2.0),
            max_extra_delay: 8,
            reorder_ppm: ppm(drop_rate / 4.0),
            corrupt_ppm: ppm(drop_rate / 8.0),
        }
    }
}

/// A scheduled peer outage: the peer is down for ticks in
/// `[from, until)` — messages due for delivery to it in that window are
/// lost, and on restart it has lost all session state (the resilience
/// layer rebuilds it from the disclosure log; see
/// `peertrust-negotiation::resilience`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashWindow {
    pub peer: PeerId,
    pub from: Tick,
    pub until: Tick,
}

/// A complete, seeded fault schedule for one run.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed of the lane's splitmix64 decision stream.
    pub seed: u64,
    /// Faults applied to links without an explicit override.
    pub default_link: LinkFaults,
    /// Per-link overrides, first match wins (a `Vec`, not a map, so the
    /// plan itself is deterministic to iterate and cheap to clone).
    pub links: Vec<((PeerId, PeerId), LinkFaults)>,
    /// Scheduled peer outages.
    pub crashes: Vec<CrashWindow>,
}

impl FaultPlan {
    /// The identity plan: a lane driven by it is byte-identical to the
    /// unwrapped transport (no RNG draws, no counters, no telemetry).
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            default_link: LinkFaults::NONE,
            links: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// The same faults on every link.
    pub fn uniform(seed: u64, link: LinkFaults) -> FaultPlan {
        FaultPlan {
            seed,
            default_link: link,
            links: Vec::new(),
            crashes: Vec::new(),
        }
    }

    pub fn with_link(mut self, from: PeerId, to: PeerId, faults: LinkFaults) -> FaultPlan {
        self.links.push(((from, to), faults));
        self
    }

    pub fn with_crash(mut self, peer: PeerId, from: Tick, until: Tick) -> FaultPlan {
        assert!(from < until, "empty crash window");
        self.crashes.push(CrashWindow { peer, from, until });
        self
    }

    /// Does this plan inject nothing at all?
    pub fn is_none(&self) -> bool {
        self.default_link.is_none()
            && self.links.iter().all(|(_, f)| f.is_none())
            && self.crashes.is_empty()
    }

    /// Faults for the `from -> to` link.
    pub fn link(&self, from: PeerId, to: PeerId) -> &LinkFaults {
        self.links
            .iter()
            .find(|((f, t), _)| *f == from && *t == to)
            .map(|(_, l)| l)
            .unwrap_or(&self.default_link)
    }

    /// Is `peer` down at `tick`?
    pub fn crashed_at(&self, peer: PeerId, tick: Tick) -> bool {
        self.crashes
            .iter()
            .any(|w| w.peer == peer && w.from <= tick && tick < w.until)
    }

    /// The same schedule with a per-job decision stream, derived from
    /// `(self.seed, job_index)` with the same splitmix64-style mix the
    /// batch scheduler uses for network seeds — identical across runs and
    /// worker assignments.
    pub fn for_job(&self, job_index: usize) -> FaultPlan {
        let mut mix = SplitMix64::new(
            self.seed
                .wrapping_add((job_index as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)),
        );
        FaultPlan {
            seed: mix.next_u64(),
            ..self.clone()
        }
    }
}

/// What the lane did to one message, by kind. All counters also surface
/// as `net.fault.*` telemetry and in `NetStats`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub injected_drops: u64,
    pub duplicates: u64,
    pub delays: u64,
    pub reorders: u64,
    pub corruptions: u64,
    pub crash_drops: u64,
}

impl FaultStats {
    pub fn total(&self) -> u64 {
        self.injected_drops
            + self.duplicates
            + self.delays
            + self.reorders
            + self.corruptions
            + self.crash_drops
    }

    pub fn absorb(&mut self, other: &FaultStats) {
        self.injected_drops += other.injected_drops;
        self.duplicates += other.duplicates;
        self.delays += other.delays;
        self.reorders += other.reorders;
        self.corruptions += other.corruptions;
        self.crash_drops += other.crash_drops;
    }
}

/// Why a message was lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Plain injected loss.
    Drop,
    /// Payload corrupted in flight; the frame failed integrity/decode.
    Corrupt,
    /// Recipient was crashed at the delivery instant.
    Crash,
}

impl FaultKind {
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Crash => "crash",
        }
    }
}

/// Where a sent message ended up. Tracked by the simulated network when a
/// fault lane is attached (the resilience layer polls this to decide
/// whether to retry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessageFate {
    InFlight,
    Delivered,
    Dropped(FaultKind),
}

/// The lane's verdict for one message.
#[derive(Clone, Debug)]
pub struct LaneVerdict {
    /// Possibly shifted delivery tick (delay / reorder jitter applied).
    pub deliver_at: Tick,
    /// `Some` if the message must be discarded instead of enqueued.
    pub dropped: Option<FaultKind>,
    /// `Some(t)`: enqueue an extra copy (same id) for delivery at `t`.
    pub duplicate_at: Option<Tick>,
    pub delayed: bool,
    pub reordered: bool,
}

/// A seeded fault-decision engine: the wrapper lane both transports share.
#[derive(Clone, Debug)]
pub struct FaultLane {
    plan: FaultPlan,
    rng: SplitMix64,
    stats: FaultStats,
}

impl FaultLane {
    pub fn new(plan: FaultPlan) -> FaultLane {
        let rng = SplitMix64::new(plan.seed);
        FaultLane {
            plan,
            rng,
            stats: FaultStats::default(),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Decide the fate of `msg`, scheduled for delivery at
    /// `base_deliver_at`. Decisions draw from the lane's own stream in a
    /// fixed order (corrupt, drop, delay, reorder, dup), so a plan and
    /// seed fully determine the whole run. With [`FaultPlan::none`] this
    /// is never called at all (the caller checks `plan.is_none()`), which
    /// is what makes the wrapped path byte-identical to the unwrapped one.
    pub fn apply(&mut self, msg: &Message, base_deliver_at: Tick) -> LaneVerdict {
        let link = self.plan.link(msg.from, msg.to).clone();
        let mut verdict = LaneVerdict {
            deliver_at: base_deliver_at,
            dropped: None,
            duplicate_at: None,
            delayed: false,
            reordered: false,
        };

        if link.corrupt_ppm > 0 && self.rng.chance(link.corrupt_ppm) {
            // Honest corruption: encode, flip one byte, try to decode.
            // The typed DecodeError is the integrity failure a socket
            // deployment would observe; the message is lost either way.
            let decoded_ok = self.corrupt_roundtrip(msg);
            debug_assert!(
                !decoded_ok,
                "a flipped byte must not decode back to the same message"
            );
            self.stats.corruptions += 1;
            verdict.dropped = Some(FaultKind::Corrupt);
            return verdict;
        }
        if link.drop_ppm > 0 && self.rng.chance(link.drop_ppm) {
            self.stats.injected_drops += 1;
            verdict.dropped = Some(FaultKind::Drop);
            return verdict;
        }
        if link.delay_ppm > 0 && self.rng.chance(link.delay_ppm) {
            let extra = self.rng.range(1, link.max_extra_delay.max(1));
            verdict.deliver_at += extra;
            verdict.delayed = true;
            self.stats.delays += 1;
        }
        if link.reorder_ppm > 0 && self.rng.chance(link.reorder_ppm) {
            // A jitter of 1..=3 ticks is enough to land behind messages
            // sent after this one (the sim delivers strictly by tick).
            verdict.deliver_at += self.rng.range(1, 3);
            verdict.reordered = true;
            self.stats.reorders += 1;
        }
        if self.plan.crashed_at(msg.to, verdict.deliver_at) {
            self.stats.crash_drops += 1;
            verdict.dropped = Some(FaultKind::Crash);
            return verdict;
        }
        if link.dup_ppm > 0 && self.rng.chance(link.dup_ppm) {
            let at = verdict.deliver_at + self.rng.range(1, 3);
            // A copy due while the recipient is down is lost, not dup'd.
            if !self.plan.crashed_at(msg.to, at) {
                verdict.duplicate_at = Some(at);
                self.stats.duplicates += 1;
            }
        }
        verdict
    }

    /// Encode `msg`, flip one byte, and attempt to decode the mutated
    /// frame. Returns whether the mutated frame decoded back to a message
    /// equal to the original (it must not — decode either fails with a
    /// typed error or yields a different message, which an integrity
    /// check rejects).
    fn corrupt_roundtrip(&mut self, msg: &Message) -> bool {
        let Ok(frame) = encode_frame(msg) else {
            return false;
        };
        let mut raw = frame.to_vec();
        let pos = (self.rng.next_u64() % raw.len() as u64) as usize;
        let flip = 1 + (self.rng.next_u64() % 255) as u8;
        raw[pos] ^= flip;
        let mut bytes = BytesMut::from(&raw[..]);
        match decode_frame(&mut bytes) {
            Ok(decoded) => decoded == *msg,
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MessageId, NegotiationId, Payload, QueryId, TraceContext};
    use peertrust_core::Literal;

    fn p(n: &str) -> PeerId {
        PeerId::new(n)
    }

    fn msg(n: u64) -> Message {
        Message {
            id: MessageId(n),
            negotiation: NegotiationId(1),
            from: p("a"),
            to: p("b"),
            payload: Payload::Query {
                id: QueryId(n),
                goal: Literal::truth(),
            },
            hops: 0,
            trace: TraceContext::NONE,
        }
    }

    #[test]
    fn splitmix_is_deterministic_and_seed_sensitive() {
        let stream = |seed| {
            let mut r = SplitMix64::new(seed);
            (0..16).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(stream(7), stream(7));
        assert_ne!(stream(7), stream(8));
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(1);
        assert!((0..64).all(|_| !r.chance(0)));
        assert!((0..64).all(|_| r.chance(1_000_000)));
    }

    #[test]
    fn none_plan_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan::uniform(1, LinkFaults::drops(0.1)).is_none());
        assert!(!FaultPlan::none().with_crash(p("a"), 0, 5).is_none());
    }

    #[test]
    fn lane_decisions_are_deterministic() {
        let run = |seed| {
            let mut lane = FaultLane::new(FaultPlan::uniform(seed, LinkFaults::lossy(0.3)));
            let verdicts: Vec<String> = (0..64)
                .map(|i| format!("{:?}", lane.apply(&msg(i), 5)))
                .collect();
            (verdicts, lane.stats().clone())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0);
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let mut lane = FaultLane::new(FaultPlan::uniform(9, LinkFaults::drops(0.25)));
        let mut drops = 0;
        for i in 0..2000 {
            if lane.apply(&msg(i), 1).dropped.is_some() {
                drops += 1;
            }
        }
        assert_eq!(drops as u64, lane.stats().injected_drops);
        assert!((300..700).contains(&drops), "got {drops} drops at 25%");
    }

    #[test]
    fn crash_window_drops_deliveries_inside_it() {
        let plan = FaultPlan::none().with_crash(p("b"), 3, 7);
        assert!(plan.crashed_at(p("b"), 3));
        assert!(plan.crashed_at(p("b"), 6));
        assert!(!plan.crashed_at(p("b"), 7));
        assert!(!plan.crashed_at(p("a"), 5));
        let mut lane = FaultLane::new(plan);
        assert_eq!(lane.apply(&msg(1), 5).dropped, Some(FaultKind::Crash));
        assert_eq!(lane.apply(&msg(2), 9).dropped, None);
        assert_eq!(lane.stats().crash_drops, 1);
    }

    #[test]
    fn per_link_overrides_beat_default() {
        let plan = FaultPlan::uniform(1, LinkFaults::NONE).with_link(
            p("a"),
            p("b"),
            LinkFaults::drops(1.0),
        );
        let mut lane = FaultLane::new(plan);
        assert_eq!(lane.apply(&msg(1), 1).dropped, Some(FaultKind::Drop));
        let mut reverse = msg(2);
        reverse.from = p("b");
        reverse.to = p("a");
        assert_eq!(lane.apply(&reverse, 1).dropped, None);
    }

    #[test]
    fn corruption_never_decodes_to_the_same_message() {
        let mut lane = FaultLane::new(FaultPlan::uniform(
            5,
            LinkFaults {
                corrupt_ppm: 1_000_000,
                ..LinkFaults::NONE
            },
        ));
        for i in 0..200 {
            let v = lane.apply(&msg(i), 1);
            assert_eq!(v.dropped, Some(FaultKind::Corrupt));
        }
        assert_eq!(lane.stats().corruptions, 200);
    }

    #[test]
    fn duplicates_are_scheduled_after_the_original() {
        let mut lane = FaultLane::new(FaultPlan::uniform(
            3,
            LinkFaults {
                dup_ppm: 1_000_000,
                ..LinkFaults::NONE
            },
        ));
        let v = lane.apply(&msg(1), 10);
        let dup_at = v.duplicate_at.expect("dup fires at 100%");
        assert!(dup_at > v.deliver_at);
        assert_eq!(lane.stats().duplicates, 1);
    }

    #[test]
    fn for_job_reseeds_deterministically() {
        let plan = FaultPlan::uniform(11, LinkFaults::lossy(0.2));
        assert_eq!(plan.for_job(3).seed, plan.for_job(3).seed);
        assert_ne!(plan.for_job(0).seed, plan.for_job(1).seed);
        assert_eq!(plan.for_job(2).default_link, plan.default_link);
    }

    #[test]
    fn ppm_conversion() {
        assert_eq!(ppm(0.0), 0);
        assert_eq!(ppm(0.2), 200_000);
        assert_eq!(ppm(1.5), 1_000_000);
    }
}
