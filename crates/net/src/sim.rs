//! Deterministic simulated network.
//!
//! The 2004 prototype ran peers as Java applications talking over secure
//! sockets. For reproducible experiments we substitute an in-process
//! discrete-event transport: messages are enqueued with a delivery tick
//! computed from a [`LatencyModel`], and the negotiation driver pumps the
//! network by polling each peer's inbox. Determinism (a seeded RNG drives
//! any latency jitter) makes negotiation traces byte-for-byte reproducible,
//! which the interop and safety property tests rely on.

use crate::faults::{FaultKind, FaultLane, FaultPlan, FaultStats, MessageFate};
use crate::message::{Message, MessageId, Payload, TraceContext};
use crate::topology::Topology;
use peertrust_core::PeerId;
use peertrust_telemetry::{Field, Telemetry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

/// Append `trace`/`span`/`parent` fields to a telemetry event when the
/// context is live; untraced events keep their exact pre-tracing shape.
pub(crate) fn push_trace_fields(fields: &mut Vec<Field>, trace: TraceContext) {
    if !trace.is_none() {
        fields.push(Field::u64("trace", trace.trace_id));
        fields.push(Field::u64("span", trace.span_id));
        fields.push(Field::u64("parent", trace.parent_span_id));
    }
}

/// Abstract network time (one tick ≈ one latency unit).
pub type Tick = u64;

/// Per-link latency in ticks.
#[derive(Clone, Debug)]
pub enum LatencyModel {
    /// Same latency on every link.
    Constant(Tick),
    /// Uniformly random in `[min, max]`, drawn from the seeded RNG.
    Uniform { min: Tick, max: Tick },
    /// Explicit per-link latencies; missing links use `default`.
    PerLink {
        links: HashMap<(PeerId, PeerId), Tick>,
        default: Tick,
    },
}

impl LatencyModel {
    fn sample(&self, from: PeerId, to: PeerId, rng: &mut StdRng) -> Tick {
        match self {
            LatencyModel::Constant(t) => *t,
            LatencyModel::Uniform { min, max } => rng.gen_range(*min..=*max),
            LatencyModel::PerLink { links, default } => *links.get(&(from, to)).unwrap_or(default),
        }
    }
}

/// Transport errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NetError {
    /// Topology forbids this link.
    NotConnected { from: PeerId, to: PeerId },
    /// Hop budget exceeded (forwarding loop guard).
    TooManyHops { limit: u32 },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NotConnected { from, to } => {
                write!(f, "no link from {from} to {to} in topology")
            }
            NetError::TooManyHops { limit } => write!(f, "hop limit {limit} exceeded"),
        }
    }
}

impl std::error::Error for NetError {}

/// Aggregate transport metrics (inputs to every experiment's
/// messages/bytes columns).
#[derive(Clone, Default, Debug)]
pub struct NetStats {
    pub messages_sent: u64,
    pub bytes_sent: u64,
    pub queries: u64,
    pub answers: u64,
    pub pushes: u64,
    pub failures: u64,
    pub per_peer_sent: HashMap<PeerId, u64>,
    /// Messages moved into an inbox (each duplicate delivery counts).
    pub delivered: u64,
    /// Messages lost for any reason (injected drop + corruption + crash).
    pub dropped: u64,
    /// Extra copies enqueued by the fault lane.
    pub duplicated: u64,
    /// Deliveries shifted later by an injected delay.
    pub delayed: u64,
    /// Deliveries jittered by an injected reorder.
    pub reordered: u64,
    /// Messages lost to in-flight payload corruption.
    pub corrupted: u64,
    /// Messages lost because the recipient was crashed at delivery time.
    pub crash_dropped: u64,
    /// Messages addressed to a peer the transport does not know
    /// (populated by the threaded router; the sim's topology check
    /// rejects these at send time instead).
    pub undeliverable: u64,
}

/// One entry in the network trace.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    pub at: Tick,
    pub delivered_at: Tick,
    pub message: Message,
}

/// The deterministic simulated network.
pub struct SimNetwork {
    topology: Topology,
    latency: LatencyModel,
    rng: StdRng,
    now: Tick,
    next_msg_id: u64,
    max_hops: u32,
    /// Messages keyed by delivery tick (BTreeMap gives deterministic
    /// time-ordered iteration), each bucket FIFO.
    in_flight: BTreeMap<Tick, VecDeque<Message>>,
    inboxes: HashMap<PeerId, VecDeque<Message>>,
    stats: NetStats,
    trace: Vec<TraceEvent>,
    record_trace: bool,
    telemetry: Telemetry,
    /// Optional fault-injection lane. With [`FaultPlan::none`] the lane
    /// draws no randomness and injects nothing — the wrapped path is
    /// byte-identical to the unwrapped one (tested).
    lane: Option<FaultLane>,
    /// Per-message fates, tracked only while a lane is attached (the
    /// resilience layer polls these to decide whether to retry).
    fates: HashMap<MessageId, MessageFate>,
}

impl SimNetwork {
    /// A full-mesh, constant-latency-1 network with the given seed.
    pub fn new(seed: u64) -> SimNetwork {
        SimNetwork::with(Topology::FullMesh, LatencyModel::Constant(1), seed)
    }

    /// A network for job `job_index` of a batch: the seed is derived
    /// deterministically from `(base_seed, job_index)` with a
    /// splitmix64-style mix, so every job sees its own independent but
    /// reproducible latency/ordering stream — identical across runs and
    /// regardless of which worker thread executes the job.
    pub fn for_job(base_seed: u64, job_index: usize) -> SimNetwork {
        let mut z = base_seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((job_index as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        SimNetwork::new(z ^ (z >> 31))
    }

    pub fn with(topology: Topology, latency: LatencyModel, seed: u64) -> SimNetwork {
        SimNetwork {
            topology,
            latency,
            rng: StdRng::seed_from_u64(seed),
            now: 0,
            next_msg_id: 0,
            max_hops: 256,
            in_flight: BTreeMap::new(),
            inboxes: HashMap::new(),
            stats: NetStats::default(),
            trace: Vec::new(),
            record_trace: false,
            telemetry: Telemetry::disabled(),
            lane: None,
            fates: HashMap::new(),
        }
    }

    /// Record every delivery in [`SimNetwork::trace`].
    pub fn with_trace(mut self) -> SimNetwork {
        self.record_trace = true;
        self
    }

    /// Maximum forwarding hops before a message is rejected.
    pub fn with_max_hops(mut self, max_hops: u32) -> SimNetwork {
        self.max_hops = max_hops;
        self
    }

    /// Attach a telemetry pipeline: every send/delivery becomes a trace
    /// event, and per-peer / per-kind transport counters accumulate in
    /// the metrics registry.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> SimNetwork {
        self.telemetry = telemetry;
        self
    }

    /// Attach a fault-injection lane driven by `plan`. A
    /// [`FaultPlan::none`] plan leaves behavior byte-identical to the
    /// unwrapped network while still tracking per-message fates.
    pub fn with_faults(mut self, plan: FaultPlan) -> SimNetwork {
        self.lane = Some(FaultLane::new(plan));
        self
    }

    pub fn now(&self) -> Tick {
        self.now
    }

    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.lane.as_ref().map(FaultLane::plan)
    }

    /// Injection counters from the attached lane, if any.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.lane.as_ref().map(FaultLane::stats)
    }

    /// The fate of a sent message. `None` when no lane is attached (no
    /// tracking) or the id is unknown.
    pub fn fate(&self, id: MessageId) -> Option<MessageFate> {
        self.fates.get(&id).copied()
    }

    /// The earliest pending delivery instant, if anything is in flight.
    pub fn next_tick(&self) -> Option<Tick> {
        self.in_flight.keys().next().copied()
    }

    /// Total messages currently in flight (including duplicate copies).
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.values().map(VecDeque::len).sum()
    }

    /// Deliver everything due at or before `t`, then advance the clock to
    /// at least `t` (the resilience layer uses this to sit out a backoff
    /// window deterministically).
    pub fn advance_to(&mut self, t: Tick) {
        while self.next_tick().is_some_and(|next| next <= t) {
            self.step();
        }
        if self.now < t {
            self.now = t;
        }
    }

    /// Enqueue a message. Assigns the message id; returns it.
    pub fn send(
        &mut self,
        negotiation: crate::message::NegotiationId,
        from: PeerId,
        to: PeerId,
        payload: Payload,
        hops: u32,
    ) -> Result<MessageId, NetError> {
        self.send_traced(negotiation, from, to, payload, hops, TraceContext::NONE)
    }

    /// [`SimNetwork::send`] with causal trace coordinates stamped on the
    /// message: telemetry events for its send, delivery, and any
    /// fault-lane verdict carry `trace`/`span`/`parent` fields, so the
    /// trace reconstruction can attribute them to the owning span.
    pub fn send_traced(
        &mut self,
        negotiation: crate::message::NegotiationId,
        from: PeerId,
        to: PeerId,
        payload: Payload,
        hops: u32,
        trace: TraceContext,
    ) -> Result<MessageId, NetError> {
        if !self.topology.can_send(from, to) {
            return Err(NetError::NotConnected { from, to });
        }
        if hops > self.max_hops {
            return Err(NetError::TooManyHops {
                limit: self.max_hops,
            });
        }
        let id = MessageId(self.next_msg_id);
        self.next_msg_id += 1;
        let msg = Message {
            id,
            negotiation,
            from,
            to,
            payload,
            hops,
            trace,
        };

        self.stats.messages_sent += 1;
        self.stats.bytes_sent += msg.encoded_size() as u64;
        *self.stats.per_peer_sent.entry(from).or_default() += 1;
        match &msg.payload {
            Payload::Query { .. } => self.stats.queries += 1,
            Payload::Answers { .. } => self.stats.answers += 1,
            Payload::CredentialPush { .. } => self.stats.pushes += 1,
            Payload::Failure { .. } => self.stats.failures += 1,
            Payload::PolicyRequest { .. } => self.stats.queries += 1,
            Payload::PolicyDisclosure { .. } => self.stats.answers += 1,
            Payload::GemQuery { .. } => self.stats.queries += 1,
            Payload::GemAnswers { .. } => self.stats.answers += 1,
            // Completion notices are control traffic: counted in
            // messages/bytes above, not as queries or answers.
            Payload::GemComplete { .. } => {}
        }

        let latency = self.latency.sample(from, to, &mut self.rng).max(1);
        let mut deliver_at = self.now + latency;

        // Fault lane: decide this message's fate deterministically. With a
        // none-plan the branch is never taken — no RNG draws, no counters,
        // no telemetry — keeping the wrapped path byte-identical.
        let mut dropped: Option<FaultKind> = None;
        let mut duplicate_at: Option<Tick> = None;
        if let Some(lane) = &mut self.lane {
            if !lane.plan().is_none() {
                let verdict = lane.apply(&msg, deliver_at);
                deliver_at = verdict.deliver_at;
                dropped = verdict.dropped;
                duplicate_at = verdict.duplicate_at;
                // Non-drop fates are annotated onto the owning trace span
                // (traced sends only, so untraced streams are unchanged).
                let annotate = |telemetry: &Telemetry, fault: &str, now: Tick| {
                    if telemetry.enabled() && !trace.is_none() {
                        let mut fields = vec![
                            Field::str("kind", fault.to_string()),
                            Field::str("from", from.to_string()),
                            Field::str("to", to.to_string()),
                        ];
                        push_trace_fields(&mut fields, trace);
                        telemetry.event(
                            now,
                            peertrust_telemetry::SpanId::NONE,
                            negotiation.0,
                            "net.fault",
                            fields,
                        );
                    }
                };
                if verdict.delayed {
                    self.stats.delayed += 1;
                    self.telemetry.incr("net.fault.delayed", 1);
                    annotate(&self.telemetry, "delay", self.now);
                }
                if verdict.reordered {
                    self.stats.reordered += 1;
                    self.telemetry.incr("net.fault.reordered", 1);
                    annotate(&self.telemetry, "reorder", self.now);
                }
                if duplicate_at.is_some() {
                    self.stats.duplicated += 1;
                    self.telemetry.incr("net.fault.duplicated", 1);
                    annotate(&self.telemetry, "duplicate", self.now);
                }
                if let Some(kind) = dropped {
                    self.stats.dropped += 1;
                    match kind {
                        FaultKind::Drop => {}
                        FaultKind::Corrupt => self.stats.corrupted += 1,
                        FaultKind::Crash => self.stats.crash_dropped += 1,
                    }
                    self.telemetry
                        .incr(&format!("net.fault.{}", kind.name()), 1);
                    if self.telemetry.enabled() {
                        let mut fields = vec![
                            Field::str("kind", kind.name()),
                            Field::str("from", from.to_string()),
                            Field::str("to", to.to_string()),
                            Field::u64("at", deliver_at),
                        ];
                        push_trace_fields(&mut fields, trace);
                        self.telemetry.event(
                            self.now,
                            peertrust_telemetry::SpanId::NONE,
                            negotiation.0,
                            "net.fault",
                            fields,
                        );
                    }
                }
            }
            self.fates.insert(
                id,
                match dropped {
                    Some(kind) => MessageFate::Dropped(kind),
                    None => MessageFate::InFlight,
                },
            );
        }

        if self.telemetry.enabled() {
            let bytes = msg.encoded_size() as u64;
            self.telemetry.incr("net.messages", 1);
            self.telemetry.incr("net.bytes", bytes);
            self.telemetry.incr(&format!("net.sent.{from}"), 1);
            self.telemetry.incr(&format!("net.recv.{to}"), 1);
            self.telemetry
                .incr(&format!("net.payload.{}", msg.payload.kind()), 1);
            let mut fields = vec![
                Field::str("from", from.to_string()),
                Field::str("to", to.to_string()),
                Field::str("kind", msg.payload.kind()),
                Field::u64("bytes", bytes),
                Field::u64("deliver_at", deliver_at),
                Field::u64("hops", u64::from(hops)),
            ];
            push_trace_fields(&mut fields, trace);
            self.telemetry.event(
                self.now,
                peertrust_telemetry::SpanId::NONE,
                negotiation.0,
                "net.send",
                fields,
            );
        }

        if dropped.is_some() {
            // The sender cannot tell: send still succeeds, the message is
            // just never delivered. Detection is the resilience layer's
            // job (deadline + retry).
            return Ok(id);
        }
        if self.record_trace {
            self.trace.push(TraceEvent {
                at: self.now,
                delivered_at: deliver_at,
                message: msg.clone(),
            });
        }
        if let Some(dup_at) = duplicate_at {
            self.in_flight
                .entry(dup_at)
                .or_default()
                .push_back(msg.clone());
        }
        self.in_flight.entry(deliver_at).or_default().push_back(msg);
        Ok(id)
    }

    /// Are any messages still in flight or queued in inboxes?
    pub fn idle(&self) -> bool {
        self.in_flight.is_empty() && self.inboxes.values().all(VecDeque::is_empty)
    }

    /// Advance time to the next delivery instant, moving due messages into
    /// inboxes. Returns `false` if nothing was in flight.
    pub fn step(&mut self) -> bool {
        let Some((&t, _)) = self.in_flight.iter().next() else {
            return false;
        };
        self.now = t;
        let batch = self.in_flight.remove(&t).expect("bucket exists");
        for msg in batch {
            self.stats.delivered += 1;
            if self.lane.is_some() {
                self.fates.insert(msg.id, MessageFate::Delivered);
            }
            if self.telemetry.enabled() {
                let mut fields = vec![
                    Field::str("to", msg.to.to_string()),
                    Field::str("kind", msg.payload.kind()),
                ];
                push_trace_fields(&mut fields, msg.trace);
                self.telemetry.event(
                    self.now,
                    peertrust_telemetry::SpanId::NONE,
                    msg.negotiation.0,
                    "net.deliver",
                    fields,
                );
            }
            self.inboxes.entry(msg.to).or_default().push_back(msg);
        }
        true
    }

    /// Drain all messages currently deliverable to `peer`.
    pub fn poll(&mut self, peer: PeerId) -> Vec<Message> {
        let msgs: Vec<Message> = self
            .inboxes
            .get_mut(&peer)
            .map(|q| q.drain(..).collect())
            .unwrap_or_default();
        if self.telemetry.enabled() && !msgs.is_empty() {
            self.telemetry.observe("net.inbox_depth", msgs.len() as u64);
        }
        msgs
    }

    /// Peek at inbox depth without draining (diagnostics).
    pub fn inbox_len(&self, peer: PeerId) -> usize {
        self.inboxes.get(&peer).map_or(0, VecDeque::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{NegotiationId, QueryId};
    use peertrust_core::Literal;

    fn p(n: &str) -> PeerId {
        PeerId::new(n)
    }

    fn query_payload() -> Payload {
        Payload::Query {
            id: QueryId(1),
            goal: Literal::truth(),
        }
    }

    #[test]
    fn for_job_seeds_are_deterministic_and_distinct() {
        // Same (base, index) twice must behave identically; different
        // indices must not share a stream (checked via the RNG-driven
        // jittered latency model).
        let deliveries = |base: u64, idx: usize| {
            let mut net = SimNetwork::for_job(base, idx);
            net.latency = LatencyModel::Uniform { min: 1, max: 9 };
            let mut ticks = Vec::new();
            for i in 0..8 {
                net.send(NegotiationId(1), p("a"), p("b"), query_payload(), i)
                    .unwrap();
                while net.poll(p("b")).is_empty() {
                    net.step();
                }
                ticks.push(net.now());
            }
            ticks
        };
        assert_eq!(deliveries(7, 0), deliveries(7, 0));
        assert_eq!(deliveries(7, 3), deliveries(7, 3));
        assert_ne!(deliveries(7, 0), deliveries(7, 1));
    }

    #[test]
    fn send_step_poll_roundtrip() {
        let mut net = SimNetwork::new(0);
        net.send(NegotiationId(1), p("a"), p("b"), query_payload(), 0)
            .unwrap();
        assert_eq!(net.poll(p("b")).len(), 0, "not delivered before step");
        assert!(net.step());
        let msgs = net.poll(p("b"));
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].from, p("a"));
        assert!(net.idle());
    }

    #[test]
    fn constant_latency_orders_deliveries() {
        let mut net = SimNetwork::with(Topology::FullMesh, LatencyModel::Constant(5), 0);
        net.send(NegotiationId(1), p("a"), p("b"), query_payload(), 0)
            .unwrap();
        net.step();
        assert_eq!(net.now(), 5);
        net.send(NegotiationId(1), p("b"), p("a"), query_payload(), 0)
            .unwrap();
        net.step();
        assert_eq!(net.now(), 10);
    }

    #[test]
    fn fifo_within_same_tick() {
        let mut net = SimNetwork::new(0);
        for i in 0..3 {
            net.send(NegotiationId(i), p("a"), p("b"), query_payload(), 0)
                .unwrap();
        }
        net.step();
        let msgs = net.poll(p("b"));
        let ids: Vec<u64> = msgs.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, [0, 1, 2]);
    }

    #[test]
    fn topology_enforced() {
        let mut net = SimNetwork::with(
            Topology::Star { hub: p("broker") },
            LatencyModel::Constant(1),
            0,
        );
        assert!(net
            .send(NegotiationId(1), p("a"), p("b"), query_payload(), 0)
            .is_err());
        assert!(net
            .send(NegotiationId(1), p("a"), p("broker"), query_payload(), 0)
            .is_ok());
    }

    #[test]
    fn hop_limit_enforced() {
        let mut net = SimNetwork::new(0).with_max_hops(3);
        assert!(net
            .send(NegotiationId(1), p("a"), p("b"), query_payload(), 4)
            .is_err());
        assert!(net
            .send(NegotiationId(1), p("a"), p("b"), query_payload(), 3)
            .is_ok());
    }

    #[test]
    fn stats_accumulate_by_kind() {
        let mut net = SimNetwork::new(0);
        net.send(NegotiationId(1), p("a"), p("b"), query_payload(), 0)
            .unwrap();
        net.send(
            NegotiationId(1),
            p("b"),
            p("a"),
            Payload::Answers {
                id: QueryId(1),
                goal: Literal::truth(),
                answers: vec![],
            },
            0,
        )
        .unwrap();
        let s = net.stats();
        assert_eq!(s.messages_sent, 2);
        assert_eq!(s.queries, 1);
        assert_eq!(s.answers, 1);
        assert!(s.bytes_sent > 0);
        assert_eq!(s.per_peer_sent[&p("a")], 1);
    }

    #[test]
    fn uniform_latency_is_deterministic_per_seed() {
        let run = |seed| {
            let mut net = SimNetwork::with(
                Topology::FullMesh,
                LatencyModel::Uniform { min: 1, max: 10 },
                seed,
            );
            let mut ticks = Vec::new();
            for i in 0..5 {
                net.send(NegotiationId(i), p("a"), p("b"), query_payload(), 0)
                    .unwrap();
                net.step();
                ticks.push(net.now());
            }
            ticks
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn trace_records_deliveries() {
        let mut net = SimNetwork::new(0).with_trace();
        net.send(NegotiationId(1), p("a"), p("b"), query_payload(), 0)
            .unwrap();
        assert_eq!(net.trace().len(), 1);
        assert_eq!(net.trace()[0].delivered_at, 1);
    }

    #[test]
    fn none_plan_lane_is_byte_identical_to_unwrapped() {
        // Identical seeds, jittered latency; one network wrapped with the
        // identity plan. Traces, stats, clocks and delivered payloads must
        // match byte for byte.
        let run = |wrap: bool| {
            let mut net = SimNetwork::with(
                Topology::FullMesh,
                LatencyModel::Uniform { min: 1, max: 6 },
                99,
            )
            .with_trace();
            if wrap {
                net = net.with_faults(crate::faults::FaultPlan::none());
            }
            let mut log = Vec::new();
            for i in 0..24 {
                let (a, b) = if i % 2 == 0 { ("a", "b") } else { ("b", "a") };
                net.send(NegotiationId(i), p(a), p(b), query_payload(), 0)
                    .unwrap();
                net.step();
                for m in net.poll(p(b)).into_iter().chain(net.poll(p(a))) {
                    log.push(format!("{}:{}:{}", net.now(), m.id.0, m.to));
                }
            }
            let s = net.stats().clone();
            let mut per_peer: Vec<(String, u64)> = s
                .per_peer_sent
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect();
            per_peer.sort();
            (
                log,
                format!(
                    "{} {} {} {} {} {} {} {} {:?}",
                    s.messages_sent,
                    s.bytes_sent,
                    s.queries,
                    s.delivered,
                    s.dropped,
                    s.duplicated,
                    s.delayed,
                    s.reordered,
                    per_peer
                ),
                net.trace().len(),
                net.now(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn lane_drops_count_and_track_fates() {
        let plan = crate::faults::FaultPlan::uniform(5, crate::faults::LinkFaults::drops(1.0));
        let mut net = SimNetwork::new(0).with_faults(plan);
        let id = net
            .send(NegotiationId(1), p("a"), p("b"), query_payload(), 0)
            .unwrap();
        assert_eq!(
            net.fate(id),
            Some(crate::faults::MessageFate::Dropped(
                crate::faults::FaultKind::Drop
            ))
        );
        assert_eq!(net.stats().dropped, 1);
        assert!(!net.step(), "nothing in flight after a drop");
        assert!(net.poll(p("b")).is_empty());
    }

    #[test]
    fn lane_duplicates_deliver_twice_with_same_id() {
        let plan = crate::faults::FaultPlan::uniform(
            3,
            crate::faults::LinkFaults {
                dup_ppm: 1_000_000,
                ..crate::faults::LinkFaults::NONE
            },
        );
        let mut net = SimNetwork::new(0).with_faults(plan);
        let id = net
            .send(NegotiationId(1), p("a"), p("b"), query_payload(), 0)
            .unwrap();
        net.advance_to(64);
        let msgs = net.poll(p("b"));
        assert_eq!(msgs.len(), 2);
        assert!(msgs.iter().all(|m| m.id == id));
        assert_eq!(net.stats().duplicated, 1);
        assert_eq!(net.stats().delivered, 2);
        assert_eq!(net.fate(id), Some(crate::faults::MessageFate::Delivered));
    }

    #[test]
    fn crash_window_loses_deliveries_and_advance_to_skips_it() {
        let plan = crate::faults::FaultPlan::none().with_crash(p("b"), 0, 10);
        let mut net = SimNetwork::new(0).with_faults(plan);
        let lost = net
            .send(NegotiationId(1), p("a"), p("b"), query_payload(), 0)
            .unwrap();
        assert_eq!(
            net.fate(lost),
            Some(crate::faults::MessageFate::Dropped(
                crate::faults::FaultKind::Crash
            ))
        );
        assert_eq!(net.stats().crash_dropped, 1);
        // After the window the link works again.
        net.advance_to(10);
        let ok = net
            .send(NegotiationId(1), p("a"), p("b"), query_payload(), 0)
            .unwrap();
        net.step();
        assert_eq!(net.poll(p("b")).len(), 1);
        assert_eq!(net.fate(ok), Some(crate::faults::MessageFate::Delivered));
    }

    #[test]
    fn conservation_holds_under_heavy_faults() {
        // sent + duplicated == delivered + dropped + in_flight, checked
        // after every send and every step.
        let plan = crate::faults::FaultPlan::uniform(17, crate::faults::LinkFaults::lossy(0.35));
        let mut net = SimNetwork::new(4).with_faults(plan);
        let check = |net: &SimNetwork| {
            let s = net.stats();
            assert_eq!(
                s.messages_sent + s.duplicated,
                s.delivered + s.dropped + net.in_flight_len() as u64,
                "conservation violated"
            );
        };
        for i in 0..200 {
            net.send(NegotiationId(i), p("a"), p("b"), query_payload(), 0)
                .unwrap();
            check(&net);
            if i % 3 == 0 {
                net.step();
                check(&net);
            }
        }
        while net.step() {
            check(&net);
        }
        assert!(net.stats().dropped > 0, "plan was supposed to be lossy");
    }

    #[test]
    fn per_link_latency() {
        let mut links = HashMap::new();
        links.insert((p("a"), p("b")), 7);
        let mut net = SimNetwork::with(
            Topology::FullMesh,
            LatencyModel::PerLink { links, default: 2 },
            0,
        );
        net.send(NegotiationId(1), p("a"), p("b"), query_payload(), 0)
            .unwrap();
        net.step();
        assert_eq!(net.now(), 7);
        net.send(NegotiationId(1), p("b"), p("a"), query_payload(), 0)
            .unwrap();
        net.step();
        assert_eq!(net.now(), 9);
    }
}
