//! Wire codec: length-prefixed JSON frames for [`Message`].
//!
//! The in-process transports pass `Message` structs directly; this codec
//! is the serialization boundary a real socket deployment would use (the
//! 2004 prototype shipped XML-ish payloads over TLS). Frames are
//! `u32`-length-prefixed JSON — simple, debuggable, and symbol-portable
//! (interned symbols serialize as text).

use crate::message::Message;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Codec errors.
#[derive(Debug)]
pub enum CodecError {
    /// JSON (de)serialization failed.
    Json(serde_json::Error),
    /// The frame's declared length exceeds [`MAX_FRAME`].
    FrameTooLarge(usize),
    /// Not enough bytes for a complete frame (streaming callers retry
    /// after reading more).
    Incomplete,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Json(e) => write!(f, "codec json error: {e}"),
            CodecError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            CodecError::Incomplete => write!(f, "incomplete frame"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<serde_json::Error> for CodecError {
    fn from(e: serde_json::Error) -> CodecError {
        CodecError::Json(e)
    }
}

/// Upper bound on a single frame (a negotiation message is a handful of
/// rules; anything bigger indicates a bug or an attack).
pub const MAX_FRAME: usize = 4 << 20;

/// Encode one message as a length-prefixed frame.
pub fn encode_frame(msg: &Message) -> Result<Bytes, CodecError> {
    let body = serde_json::to_vec(msg)?;
    if body.len() > MAX_FRAME {
        return Err(CodecError::FrameTooLarge(body.len()));
    }
    let mut buf = BytesMut::with_capacity(4 + body.len());
    buf.put_u32(u32::try_from(body.len()).expect("bounded above"));
    buf.put_slice(&body);
    Ok(buf.freeze())
}

/// Decode one frame from the front of `buf`, consuming it. Returns
/// `Err(Incomplete)` without consuming anything when more bytes are
/// needed.
pub fn decode_frame(buf: &mut BytesMut) -> Result<Message, CodecError> {
    if buf.len() < 4 {
        return Err(CodecError::Incomplete);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(CodecError::FrameTooLarge(len));
    }
    if buf.len() < 4 + len {
        return Err(CodecError::Incomplete);
    }
    buf.advance(4);
    let body = buf.split_to(len);
    Ok(serde_json::from_slice(&body)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MessageId, NegotiationId, Payload, QueryId};
    use peertrust_core::{Literal, PeerId, Rule, Term};
    use peertrust_crypto::SignedRule;

    fn sample(n: u64) -> Message {
        Message {
            id: MessageId(n),
            negotiation: NegotiationId(1),
            from: PeerId::new("Alice"),
            to: PeerId::new("E-Learn"),
            payload: Payload::Query {
                id: QueryId(n),
                goal: Literal::new("student", vec![Term::var("X")]).at(Term::str("UIUC")),
            },
            hops: 2,
        }
    }

    #[test]
    fn roundtrip_query() {
        let msg = sample(7);
        let frame = encode_frame(&msg).unwrap();
        let mut buf = BytesMut::from(&frame[..]);
        let back = decode_frame(&mut buf).unwrap();
        assert_eq!(back, msg);
        assert!(buf.is_empty());
    }

    #[test]
    fn roundtrip_credential_push_with_signatures() {
        let rule =
            Rule::fact(Literal::new("student", vec![Term::str("Alice")]).at(Term::str("UIUC")))
                .signed_by("UIUC");
        let msg = Message {
            payload: Payload::CredentialPush {
                rules: vec![SignedRule {
                    rule,
                    signatures: vec![[42u8; 32]],
                }],
            },
            ..sample(1)
        };
        let frame = encode_frame(&msg).unwrap();
        let mut buf = BytesMut::from(&frame[..]);
        let back = decode_frame(&mut buf).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn streaming_decode_of_concatenated_frames() {
        let mut buf = BytesMut::new();
        for n in 0..3 {
            buf.extend_from_slice(&encode_frame(&sample(n)).unwrap());
        }
        for n in 0..3 {
            let m = decode_frame(&mut buf).unwrap();
            assert_eq!(m.id, MessageId(n));
        }
        assert!(matches!(
            decode_frame(&mut buf),
            Err(CodecError::Incomplete)
        ));
    }

    #[test]
    fn incomplete_frames_do_not_consume() {
        let frame = encode_frame(&sample(9)).unwrap();
        let mut buf = BytesMut::from(&frame[..frame.len() - 1]);
        let before = buf.len();
        assert!(matches!(
            decode_frame(&mut buf),
            Err(CodecError::Incomplete)
        ));
        assert_eq!(buf.len(), before, "nothing consumed");
        // Completing the frame makes it decodable.
        buf.extend_from_slice(&frame[frame.len() - 1..]);
        assert!(decode_frame(&mut buf).is_ok());
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(u32::MAX);
        buf.put_slice(&[0u8; 16]);
        assert!(matches!(
            decode_frame(&mut buf),
            Err(CodecError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn garbage_body_is_a_json_error() {
        let mut buf = BytesMut::new();
        buf.put_u32(3);
        buf.put_slice(b"x{]");
        assert!(matches!(decode_frame(&mut buf), Err(CodecError::Json(_))));
    }

    #[test]
    fn signature_bytes_survive_roundtrip_and_verify() {
        // The real thing: sign, encode, decode, verify.
        let reg = peertrust_crypto::KeyRegistry::new();
        reg.register_derived(PeerId::new("UIUC"), 5);
        let rule =
            Rule::fact(Literal::new("student", vec![Term::str("Alice")]).at(Term::str("UIUC")))
                .signed_by("UIUC");
        let signed = peertrust_crypto::sign_rule(&reg, &rule).unwrap();
        let msg = Message {
            payload: Payload::CredentialPush {
                rules: vec![signed],
            },
            ..sample(1)
        };
        let mut buf = BytesMut::from(&encode_frame(&msg).unwrap()[..]);
        let back = decode_frame(&mut buf).unwrap();
        let Payload::CredentialPush { rules } = back.payload else {
            panic!("wrong payload");
        };
        assert!(peertrust_crypto::verify_signed_rule(&reg, &rules[0]).is_ok());
    }
}
