//! Wire codec: length-prefixed JSON frames for [`Message`].
//!
//! The in-process transports pass `Message` structs directly; this codec
//! is the serialization boundary a real socket deployment would use (the
//! 2004 prototype shipped XML-ish payloads over TLS). Frames are
//! `u32`-length-prefixed JSON — simple, debuggable, and symbol-portable
//! (interned symbols serialize as text).

use crate::message::Message;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Encode-side codec errors.
#[derive(Debug)]
pub enum CodecError {
    /// JSON serialization failed.
    Json(serde_json::Error),
    /// The frame's declared length exceeds [`MAX_FRAME`].
    FrameTooLarge(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Json(e) => write!(f, "codec json error: {e}"),
            CodecError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<serde_json::Error> for CodecError {
    fn from(e: serde_json::Error) -> CodecError {
        CodecError::Json(e)
    }
}

/// Typed decode-side errors. Every malformed input maps to one of these —
/// [`decode_frame`] never panics, whatever bytes arrive (the fault lane's
/// corruption injection and the fuzz tests below depend on that).
#[derive(Debug)]
pub enum DecodeError {
    /// The buffer holds fewer bytes (`have`) than a complete frame needs
    /// (`need`). Streaming callers read more and retry; nothing was
    /// consumed.
    Truncated { have: usize, need: usize },
    /// The length prefix declares `len` bytes, above the `max` bound —
    /// either corruption or an attack; the connection should be dropped.
    Oversized { len: usize, max: usize },
    /// The frame body is not a valid JSON [`Message`].
    Malformed(serde_json::Error),
}

impl DecodeError {
    /// True when the input is merely incomplete (read more and retry),
    /// as opposed to irrecoverably bad.
    pub fn is_incomplete(&self) -> bool {
        matches!(self, DecodeError::Truncated { .. })
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} bytes, need {need}")
            }
            DecodeError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes exceeds limit {max}")
            }
            DecodeError::Malformed(e) => write!(f, "malformed frame body: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<serde_json::Error> for DecodeError {
    fn from(e: serde_json::Error) -> DecodeError {
        DecodeError::Malformed(e)
    }
}

/// Upper bound on a single frame (a negotiation message is a handful of
/// rules; anything bigger indicates a bug or an attack).
pub const MAX_FRAME: usize = 4 << 20;

/// Encode one message as a length-prefixed frame.
pub fn encode_frame(msg: &Message) -> Result<Bytes, CodecError> {
    let body = serde_json::to_vec(msg)?;
    if body.len() > MAX_FRAME {
        return Err(CodecError::FrameTooLarge(body.len()));
    }
    let mut buf = BytesMut::with_capacity(4 + body.len());
    buf.put_u32(u32::try_from(body.len()).expect("bounded above"));
    buf.put_slice(&body);
    Ok(buf.freeze())
}

/// Decode one frame from the front of `buf`, consuming it. Returns
/// `Err(Truncated { .. })` without consuming anything when more bytes
/// are needed.
pub fn decode_frame(buf: &mut BytesMut) -> Result<Message, DecodeError> {
    if buf.len() < 4 {
        return Err(DecodeError::Truncated {
            have: buf.len(),
            need: 4,
        });
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(DecodeError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    if buf.len() < 4 + len {
        return Err(DecodeError::Truncated {
            have: buf.len(),
            need: 4 + len,
        });
    }
    buf.advance(4);
    let body = buf.split_to(len);
    Ok(serde_json::from_slice(&body)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MessageId, NegotiationId, Payload, QueryId, TraceContext};
    use peertrust_core::{Literal, PeerId, Rule, Term};
    use peertrust_crypto::SignedRule;

    fn sample(n: u64) -> Message {
        Message {
            id: MessageId(n),
            negotiation: NegotiationId(1),
            from: PeerId::new("Alice"),
            to: PeerId::new("E-Learn"),
            payload: Payload::Query {
                id: QueryId(n),
                goal: Literal::new("student", vec![Term::var("X")]).at(Term::str("UIUC")),
            },
            hops: 2,
            trace: TraceContext::NONE,
        }
    }

    #[test]
    fn roundtrip_query() {
        let msg = sample(7);
        let frame = encode_frame(&msg).unwrap();
        let mut buf = BytesMut::from(&frame[..]);
        let back = decode_frame(&mut buf).unwrap();
        assert_eq!(back, msg);
        assert!(buf.is_empty());
    }

    #[test]
    fn trace_context_is_backward_compatible_on_the_wire() {
        // An untraced frame carries no `trace` key at all, so its bytes
        // match the pre-tracing encoding; a frame from a pre-tracing
        // build (no `trace` key) decodes to `TraceContext::NONE`.
        let untraced = sample(7);
        let frame = encode_frame(&untraced).unwrap();
        assert!(!frame.windows(7).any(|w| w == b"\"trace\""));
        let mut buf = BytesMut::from(&frame[..]);
        assert_eq!(decode_frame(&mut buf).unwrap().trace, TraceContext::NONE);

        let traced = Message {
            trace: TraceContext {
                trace_id: 1,
                span_id: 5,
                parent_span_id: 2,
            },
            ..sample(7)
        };
        let frame = encode_frame(&traced).unwrap();
        let mut buf = BytesMut::from(&frame[..]);
        let back = decode_frame(&mut buf).unwrap();
        assert_eq!(back, traced);
        assert_eq!(back.trace.span_id, 5);
    }

    #[test]
    fn roundtrip_credential_push_with_signatures() {
        let rule =
            Rule::fact(Literal::new("student", vec![Term::str("Alice")]).at(Term::str("UIUC")))
                .signed_by("UIUC");
        let msg = Message {
            payload: Payload::CredentialPush {
                rules: vec![SignedRule {
                    rule,
                    signatures: vec![[42u8; 32]],
                }],
            },
            ..sample(1)
        };
        let frame = encode_frame(&msg).unwrap();
        let mut buf = BytesMut::from(&frame[..]);
        let back = decode_frame(&mut buf).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn streaming_decode_of_concatenated_frames() {
        let mut buf = BytesMut::new();
        for n in 0..3 {
            buf.extend_from_slice(&encode_frame(&sample(n)).unwrap());
        }
        for n in 0..3 {
            let m = decode_frame(&mut buf).unwrap();
            assert_eq!(m.id, MessageId(n));
        }
        assert!(matches!(
            decode_frame(&mut buf),
            Err(DecodeError::Truncated { have: 0, need: 4 })
        ));
    }

    #[test]
    fn incomplete_frames_do_not_consume() {
        let frame = encode_frame(&sample(9)).unwrap();
        let mut buf = BytesMut::from(&frame[..frame.len() - 1]);
        let before = buf.len();
        match decode_frame(&mut buf) {
            Err(DecodeError::Truncated { have, need }) => {
                assert_eq!(have, frame.len() - 1);
                assert_eq!(need, frame.len());
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        assert_eq!(buf.len(), before, "nothing consumed");
        // Completing the frame makes it decodable.
        buf.extend_from_slice(&frame[frame.len() - 1..]);
        assert!(decode_frame(&mut buf).is_ok());
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(u32::MAX);
        buf.put_slice(&[0u8; 16]);
        assert!(matches!(
            decode_frame(&mut buf),
            Err(DecodeError::Oversized { max: MAX_FRAME, .. })
        ));
    }

    #[test]
    fn garbage_body_is_malformed() {
        let mut buf = BytesMut::new();
        buf.put_u32(3);
        buf.put_slice(b"x{]");
        assert!(matches!(
            decode_frame(&mut buf),
            Err(DecodeError::Malformed(_))
        ));
    }

    #[test]
    fn truncation_at_every_prefix_length_never_consumes_or_panics() {
        // Fuzz-style sweep: every possible truncation of a valid frame
        // must yield Truncated (with a correct `need`) and leave the
        // buffer byte-identical for the retry.
        let frame = encode_frame(&sample(3)).unwrap();
        for cut in 0..frame.len() {
            let mut buf = BytesMut::from(&frame[..cut]);
            match decode_frame(&mut buf) {
                Err(DecodeError::Truncated { have, need }) => {
                    assert_eq!(have, cut);
                    assert!(need > cut);
                    assert_eq!(&buf[..], &frame[..cut], "consumed on Truncated");
                }
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn single_byte_mutations_never_panic_and_never_roundtrip() {
        // Fuzz-style sweep: flip each byte of a valid frame through a few
        // xor patterns. decode_frame must always return (no panic), and a
        // successful decode must differ from the original message — a
        // one-byte flip cannot produce an equal frame.
        let msg = sample(5);
        let frame = encode_frame(&msg).unwrap();
        for pos in 0..frame.len() {
            for flip in [0x01u8, 0x20, 0x80, 0xff] {
                let mut bytes = frame.to_vec();
                bytes[pos] ^= flip;
                let mut buf = BytesMut::from(&bytes[..]);
                match decode_frame(&mut buf) {
                    Ok(decoded) => assert_ne!(decoded, msg, "pos {pos} flip {flip:#x}"),
                    Err(e) => {
                        // Errors must classify, not panic; exercise Display.
                        let _ = e.to_string();
                    }
                }
            }
        }
    }

    #[test]
    fn random_garbage_never_panics() {
        // A deterministic pseudo-random byte soup, fed in as-is.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in [0usize, 1, 3, 4, 5, 16, 64, 512] {
            let bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let mut buf = BytesMut::from(&bytes[..]);
            // Drain until the decoder stops making progress.
            for _ in 0..len + 1 {
                let before = buf.len();
                match decode_frame(&mut buf) {
                    Ok(_) => {}
                    Err(e) if e.is_incomplete() => break,
                    Err(_) => {
                        if buf.len() == before {
                            break;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn signature_bytes_survive_roundtrip_and_verify() {
        // The real thing: sign, encode, decode, verify.
        let reg = peertrust_crypto::KeyRegistry::new();
        reg.register_derived(PeerId::new("UIUC"), 5);
        let rule =
            Rule::fact(Literal::new("student", vec![Term::str("Alice")]).at(Term::str("UIUC")))
                .signed_by("UIUC");
        let signed = peertrust_crypto::sign_rule(&reg, &rule).unwrap();
        let msg = Message {
            payload: Payload::CredentialPush {
                rules: vec![signed],
            },
            ..sample(1)
        };
        let mut buf = BytesMut::from(&encode_frame(&msg).unwrap()[..]);
        let back = decode_frame(&mut buf).unwrap();
        let Payload::CredentialPush { rules } = back.payload else {
            panic!("wrong payload");
        };
        assert!(peertrust_crypto::verify_signed_rule(&reg, &rules[0]).is_ok());
    }
}
