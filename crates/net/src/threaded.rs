//! Threaded transport: each peer on its own thread, crossbeam channels in
//! between.
//!
//! The simulated network in [`crate::sim`] is deterministic and is what the
//! experiments measure. This module demonstrates the same protocol under
//! real concurrency: a router thread dispatches messages between per-peer
//! channels, mirroring the prototype's socket layer. Integration tests run
//! complete negotiations over it to show the protocol is not an artifact of
//! deterministic scheduling.

use crate::faults::{FaultLane, FaultPlan, FaultStats};
use crate::message::Message;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use peertrust_core::PeerId;
use peertrust_telemetry::{Field, SpanId, Telemetry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A peer's connection to the router.
pub struct Endpoint {
    pub peer: PeerId,
    to_router: Sender<Message>,
    from_router: Receiver<Message>,
    telemetry: Telemetry,
}

impl Endpoint {
    /// Send a message (routing is by `msg.to`).
    pub fn send(&self, msg: Message) -> Result<(), String> {
        if self.telemetry.enabled() {
            self.telemetry
                .incr(&format!("net.thread.sent.{}", self.peer), 1);
            let mut fields = vec![
                Field::str("from", self.peer.to_string()),
                Field::str("to", msg.to.to_string()),
                Field::str("kind", msg.payload.kind()),
            ];
            crate::sim::push_trace_fields(&mut fields, msg.trace);
            self.telemetry.event(
                0,
                SpanId::NONE,
                msg.negotiation.0,
                "net.thread.send",
                fields,
            );
        }
        self.to_router
            .send(msg)
            .map_err(|e| format!("router gone: {e}"))
    }

    /// Blocking receive with timeout; `None` on timeout or router shutdown.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Message> {
        match self.from_router.recv_timeout(timeout) {
            Ok(m) => {
                if self.telemetry.enabled() {
                    self.telemetry
                        .incr(&format!("net.thread.recv.{}", self.peer), 1);
                    let mut fields = vec![
                        Field::str("to", self.peer.to_string()),
                        Field::str("kind", m.payload.kind()),
                    ];
                    crate::sim::push_trace_fields(&mut fields, m.trace);
                    self.telemetry.event(
                        0,
                        SpanId::NONE,
                        m.negotiation.0,
                        "net.thread.recv",
                        fields,
                    );
                }
                Some(m)
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Non-blocking drain of everything currently queued.
    pub fn drain(&self) -> Vec<Message> {
        let mut out = Vec::new();
        while let Ok(m) = self.from_router.try_recv() {
            out.push(m);
        }
        if self.telemetry.enabled() && !out.is_empty() {
            self.telemetry
                .observe("net.thread.queue_depth", out.len() as u64);
        }
        out
    }
}

/// Handle to the router thread; dropping it (after endpoints are dropped)
/// shuts the router down.
pub struct Router {
    handle: Option<JoinHandle<u64>>,
    undeliverable: Arc<AtomicU64>,
    faults: Arc<Mutex<FaultStats>>,
}

impl Router {
    /// Wait for the router to finish (all endpoints dropped). Returns the
    /// number of messages routed.
    pub fn join(mut self) -> u64 {
        self.handle
            .take()
            .expect("join called once")
            .join()
            .expect("router thread panicked")
    }

    /// Messages addressed to peers the router does not know. Compatible
    /// with `NetStats::undeliverable` — a dropped-message count, never a
    /// silent discard.
    pub fn undeliverable(&self) -> u64 {
        self.undeliverable.load(Ordering::SeqCst)
    }

    /// Injection counters from the router's fault lane (all zero when the
    /// network was built without one). Final once the router has exited;
    /// a live router publishes after each routed message.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.lock().expect("fault stats poisoned").clone()
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Create endpoints for `peers` plus the router thread connecting them.
/// Messages to unknown peers are dropped (counted but not delivered).
pub fn channel_network(peers: &[PeerId]) -> (HashMap<PeerId, Endpoint>, Router) {
    channel_network_with_telemetry(peers, Telemetry::disabled())
}

/// [`channel_network`] with a telemetry pipeline shared by every endpoint:
/// sends, receives and drain depths are recorded per peer. The handle is
/// cloned into each endpoint, so events from all peer threads interleave
/// into one stream.
pub fn channel_network_with_telemetry(
    peers: &[PeerId],
    telemetry: Telemetry,
) -> (HashMap<PeerId, Endpoint>, Router) {
    channel_network_faulty(peers, FaultPlan::none(), telemetry)
}

/// [`channel_network_with_telemetry`] with a fault lane in the router —
/// the same [`FaultPlan`] vocabulary the simulated network uses, applied
/// under real concurrency. Drop, duplicate and corruption probabilities
/// behave as in the sim; injected delays/reorders only count (channel
/// scheduling is already nondeterministic, there is no global clock to
/// shift against), and crash windows are interpreted on the router's
/// routed-message index rather than ticks. [`FaultPlan::none`] makes this
/// behave exactly like the plain router.
///
/// Messages to unknown peers are never silently discarded: they count in
/// [`Router::undeliverable`] and emit a `net.undeliverable` event.
pub fn channel_network_faulty(
    peers: &[PeerId],
    plan: FaultPlan,
    telemetry: Telemetry,
) -> (HashMap<PeerId, Endpoint>, Router) {
    let (to_router, router_rx) = unbounded::<Message>();
    let mut endpoints = HashMap::new();
    let mut peer_txs: HashMap<PeerId, Sender<Message>> = HashMap::new();
    for &peer in peers {
        let (tx, rx) = unbounded::<Message>();
        peer_txs.insert(peer, tx);
        endpoints.insert(
            peer,
            Endpoint {
                peer,
                to_router: to_router.clone(),
                from_router: rx,
                telemetry: telemetry.clone(),
            },
        );
    }
    drop(to_router); // router exits when every endpoint sender is dropped

    let undeliverable = Arc::new(AtomicU64::new(0));
    let faults = Arc::new(Mutex::new(FaultStats::default()));
    let undeliverable_in = Arc::clone(&undeliverable);
    let faults_in = Arc::clone(&faults);
    let router_telemetry = telemetry.clone();
    let handle = std::thread::Builder::new()
        .name("peertrust-router".into())
        .spawn(move || {
            let mut routed = 0u64;
            let mut lane = (!plan.is_none()).then(|| FaultLane::new(plan));
            let mut clock = 0u64;
            while let Ok(msg) = router_rx.recv() {
                clock += 1;
                let Some(tx) = peer_txs.get(&msg.to) else {
                    undeliverable_in.fetch_add(1, Ordering::SeqCst);
                    router_telemetry.incr("net.undeliverable", 1);
                    if router_telemetry.enabled() {
                        router_telemetry.event(
                            clock,
                            SpanId::NONE,
                            msg.negotiation.0,
                            "net.undeliverable",
                            vec![
                                Field::str("from", msg.from.to_string()),
                                Field::str("to", msg.to.to_string()),
                                Field::str("kind", msg.payload.kind()),
                            ],
                        );
                    }
                    continue;
                };
                let mut duplicate = false;
                if let Some(lane) = &mut lane {
                    let verdict = lane.apply(&msg, clock);
                    duplicate = verdict.duplicate_at.is_some();
                    *faults_in.lock().expect("fault stats poisoned") = lane.stats().clone();
                    if let Some(kind) = verdict.dropped {
                        router_telemetry.incr(&format!("net.fault.{}", kind.name()), 1);
                        if router_telemetry.enabled() && !msg.trace.is_none() {
                            let mut fields = vec![
                                Field::str("kind", kind.name()),
                                Field::str("from", msg.from.to_string()),
                                Field::str("to", msg.to.to_string()),
                            ];
                            crate::sim::push_trace_fields(&mut fields, msg.trace);
                            router_telemetry.event(
                                clock,
                                SpanId::NONE,
                                msg.negotiation.0,
                                "net.fault",
                                fields,
                            );
                        }
                        continue;
                    }
                }
                if duplicate {
                    // Same message id delivered twice, as on the sim lane.
                    let _ = tx.send(msg.clone());
                }
                // A send error just means the recipient hung up.
                if tx.send(msg).is_ok() {
                    routed += 1;
                }
            }
            routed
        })
        .expect("spawn router");

    (
        endpoints,
        Router {
            handle: Some(handle),
            undeliverable,
            faults,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MessageId, NegotiationId, Payload, QueryId, TraceContext};
    use peertrust_core::Literal;

    fn p(n: &str) -> PeerId {
        PeerId::new(n)
    }

    fn mk(from: PeerId, to: PeerId, n: u64) -> Message {
        Message {
            id: MessageId(n),
            negotiation: NegotiationId(1),
            from,
            to,
            payload: Payload::Query {
                id: QueryId(n),
                goal: Literal::truth(),
            },
            hops: 0,
            trace: TraceContext::NONE,
        }
    }

    #[test]
    fn routes_between_endpoints() {
        let peers = [p("t-a"), p("t-b")];
        let (mut eps, router) = channel_network(&peers);
        let a = eps.remove(&p("t-a")).unwrap();
        let b = eps.remove(&p("t-b")).unwrap();

        a.send(mk(p("t-a"), p("t-b"), 1)).unwrap();
        let got = b.recv_timeout(Duration::from_secs(2)).expect("delivered");
        assert_eq!(got.from, p("t-a"));

        drop(a);
        drop(b);
        assert_eq!(router.join(), 1);
    }

    #[test]
    fn unknown_recipient_counted_not_silently_dropped() {
        let peers = [p("u-a")];
        let (mut eps, router) = channel_network(&peers);
        let a = eps.remove(&p("u-a")).unwrap();
        a.send(mk(p("u-a"), p("u-ghost"), 1)).unwrap();
        a.send(mk(p("u-a"), p("u-a"), 2)).unwrap();
        // The router handles messages in order, so once the self-message
        // arrives the ghost one has already been counted.
        let got = a
            .recv_timeout(Duration::from_secs(2))
            .expect("self message");
        assert_eq!(got.id, MessageId(2));
        assert_eq!(router.undeliverable(), 1);
        drop(a);
        assert_eq!(router.join(), 1);
    }

    #[test]
    fn unknown_recipient_emits_telemetry_event() {
        let (telemetry, ring) = Telemetry::ring(64);
        let peers = [p("ut-a")];
        let (mut eps, router) = channel_network_with_telemetry(&peers, telemetry.clone());
        let a = eps.remove(&p("ut-a")).unwrap();
        a.send(mk(p("ut-a"), p("ut-ghost"), 1)).unwrap();
        a.send(mk(p("ut-a"), p("ut-a"), 2)).unwrap();
        a.recv_timeout(Duration::from_secs(2))
            .expect("self message");
        assert_eq!(router.undeliverable(), 1);
        assert!(ring.events().iter().any(|e| e.kind == "net.undeliverable"));
        assert_eq!(telemetry.metrics().unwrap().counter("net.undeliverable"), 1);
        drop(a);
        router.join();
    }

    #[test]
    fn faulty_router_drops_and_duplicates_deterministically_by_plan() {
        use crate::faults::{FaultPlan, LinkFaults};
        // Drop everything on one link, duplicate everything on another.
        let plan = FaultPlan::uniform(1, LinkFaults::NONE)
            .with_link(p("f-a"), p("f-b"), LinkFaults::drops(1.0))
            .with_link(
                p("f-b"),
                p("f-a"),
                LinkFaults {
                    dup_ppm: 1_000_000,
                    ..LinkFaults::NONE
                },
            );
        let peers = [p("f-a"), p("f-b")];
        let (mut eps, router) = channel_network_faulty(&peers, plan, Telemetry::disabled());
        let a = eps.remove(&p("f-a")).unwrap();
        let b = eps.remove(&p("f-b")).unwrap();

        a.send(mk(p("f-a"), p("f-b"), 1)).unwrap();
        assert!(b.recv_timeout(Duration::from_millis(200)).is_none());

        b.send(mk(p("f-b"), p("f-a"), 2)).unwrap();
        let first = a.recv_timeout(Duration::from_secs(2)).expect("original");
        let second = a.recv_timeout(Duration::from_secs(2)).expect("duplicate");
        assert_eq!(first.id, second.id);

        let stats = router.fault_stats();
        assert_eq!(stats.injected_drops, 1);
        assert_eq!(stats.duplicates, 1);
        drop(a);
        drop(b);
        router.join();
    }

    #[test]
    fn concurrent_senders() {
        let names: Vec<PeerId> = (0..4).map(|i| PeerId::new(&format!("c-{i}"))).collect();
        let (mut eps, router) = channel_network(&names);
        let sink = eps.remove(&names[0]).unwrap();
        let senders: Vec<Endpoint> = names[1..]
            .iter()
            .map(|pid| eps.remove(pid).unwrap())
            .collect();

        let handles: Vec<_> = senders
            .into_iter()
            .map(|ep| {
                let to = names[0];
                std::thread::spawn(move || {
                    for i in 0..10 {
                        ep.send(mk(ep.peer, to, i)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let mut received = 0;
        while received < 30 {
            if sink.recv_timeout(Duration::from_secs(2)).is_some() {
                received += 1;
            } else {
                break;
            }
        }
        assert_eq!(received, 30);
        drop(sink);
        assert_eq!(router.join(), 30);
    }

    #[test]
    fn drain_collects_queued() {
        let peers = [p("d-a"), p("d-b")];
        let (mut eps, _router) = channel_network(&peers);
        let a = eps.remove(&p("d-a")).unwrap();
        let b = eps.remove(&p("d-b")).unwrap();
        for i in 0..5 {
            a.send(mk(p("d-a"), p("d-b"), i)).unwrap();
        }
        // Wait until all five arrive, then drain.
        let first = b.recv_timeout(Duration::from_secs(2)).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let rest = b.drain();
        assert_eq!(1 + rest.len(), 5);
        assert_eq!(first.id, MessageId(0));
    }
}

/// A framed endpoint: like [`Endpoint`] but every message crosses the
/// router as a length-prefixed JSON frame (see [`crate::codec`]), exactly
/// as a socket deployment would ship it. Useful to prove the negotiation
/// protocol survives real serialization, not just in-process moves.
pub struct FramedEndpoint {
    inner: Endpoint,
}

impl FramedEndpoint {
    pub fn peer(&self) -> peertrust_core::PeerId {
        self.inner.peer
    }

    /// Encode and send; fails on serialization or routing errors.
    pub fn send(&self, msg: &Message) -> Result<(), String> {
        let frame = crate::codec::encode_frame(msg).map_err(|e| e.to_string())?;
        // The frame is decoded immediately to validate it, then the decoded
        // message is routed (the router only understands `Message`).
        let mut buf = bytes::BytesMut::from(&frame[..]);
        let decoded = crate::codec::decode_frame(&mut buf).map_err(|e| e.to_string())?;
        self.inner.send(decoded)
    }

    /// Blocking receive with timeout.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<Message> {
        self.inner.recv_timeout(timeout)
    }
}

/// [`channel_network`] with framed endpoints: every send round-trips
/// through the wire codec.
pub fn framed_channel_network(
    peers: &[peertrust_core::PeerId],
) -> (
    std::collections::HashMap<peertrust_core::PeerId, FramedEndpoint>,
    Router,
) {
    let (endpoints, router) = channel_network(peers);
    let framed = endpoints
        .into_iter()
        .map(|(id, inner)| (id, FramedEndpoint { inner }))
        .collect();
    (framed, router)
}

#[cfg(test)]
mod framed_tests {
    use super::*;
    use crate::message::{MessageId, NegotiationId, Payload, QueryId, TraceContext};
    use peertrust_core::{Literal, PeerId, Term};
    use std::time::Duration;

    #[test]
    fn framed_endpoints_roundtrip_messages() {
        let peers = [PeerId::new("fr-a"), PeerId::new("fr-b")];
        let (mut eps, _router) = framed_channel_network(&peers);
        let a = eps.remove(&peers[0]).unwrap();
        let b = eps.remove(&peers[1]).unwrap();
        let msg = Message {
            id: MessageId(1),
            negotiation: NegotiationId(1),
            from: peers[0],
            to: peers[1],
            payload: Payload::Query {
                id: QueryId(1),
                goal: Literal::new("student", vec![Term::var("X")]).at(Term::str("UIUC")),
            },
            hops: 0,
            trace: TraceContext::NONE,
        };
        a.send(&msg).unwrap();
        let got = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got, msg);
        assert_eq!(b.peer(), peers[1]);
    }
}
