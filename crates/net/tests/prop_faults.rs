//! Property-based tests for the fault-injection lane.
//!
//! The load-bearing invariant is *conservation*: the lane may lose,
//! duplicate, delay or corrupt messages, but it must account for every
//! one of them. At every instant,
//!
//! ```text
//! messages_sent + duplicated == delivered + dropped + in_flight
//! ```
//!
//! where `dropped` aggregates injected drops, corruption losses and
//! crash-window losses, and `duplicated` counts the extra copies the lane
//! enqueued. The second property is the byte-identity guarantee:
//! attaching a lane with [`FaultPlan::none`] must leave the simulated
//! network's observable behavior — delivered messages, clock, stats,
//! trace — exactly as if no lane existed.

use peertrust_core::{Literal, PeerId};
use peertrust_net::{
    FaultPlan, LatencyModel, LinkFaults, NegotiationId, Payload, QueryId, SimNetwork, Topology,
};
use proptest::prelude::*;

fn peer(i: usize) -> PeerId {
    PeerId::new(&format!("p{i}"))
}

fn payload(n: u64) -> Payload {
    Payload::Query {
        id: QueryId(n),
        goal: Literal::truth(),
    }
}

fn arb_link() -> impl Strategy<Value = LinkFaults> {
    (
        0u32..400_000,
        0u32..400_000,
        0u32..400_000,
        1u64..8,
        0u32..400_000,
        0u32..400_000,
    )
        .prop_map(
            |(drop_ppm, dup_ppm, delay_ppm, max_extra_delay, reorder_ppm, corrupt_ppm)| {
                LinkFaults {
                    drop_ppm,
                    dup_ppm,
                    delay_ppm,
                    max_extra_delay,
                    reorder_ppm,
                    corrupt_ppm,
                }
            },
        )
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        arb_link(),
        prop::collection::vec((0usize..4, 0u64..30, 1u64..20), 0..3),
    )
        .prop_map(|(seed, link, crashes)| {
            let mut plan = FaultPlan::uniform(seed, link);
            for (p, from, len) in crashes {
                plan = plan.with_crash(peer(p), from, from + len);
            }
            plan
        })
}

/// One random workload step: send `from -> to`, or pump the clock.
fn arb_ops() -> impl Strategy<Value = Vec<(usize, usize, bool)>> {
    prop::collection::vec((0usize..4, 0usize..4, any::<bool>()), 1..80)
}

fn assert_conserved(net: &SimNetwork) {
    let s = net.stats();
    assert_eq!(
        s.messages_sent + s.duplicated,
        s.delivered + s.dropped + net.in_flight_len() as u64,
        "conservation violated: {s:?}, in_flight={}",
        net.in_flight_len()
    );
    // The drop aggregate decomposes exactly into the lane's per-kind
    // counters.
    let lane = net.fault_stats().expect("lane attached");
    assert_eq!(
        s.dropped,
        lane.injected_drops + lane.corruptions + lane.crash_drops
    );
    assert_eq!(s.duplicated, lane.duplicates);
    assert_eq!(s.corrupted, lane.corruptions);
    assert_eq!(s.crash_dropped, lane.crash_drops);
}

proptest! {
    /// Conservation holds after every send and every step, for random
    /// plans, seeds and workloads.
    #[test]
    fn conservation_at_every_tick(
        plan in arb_plan(),
        net_seed in any::<u64>(),
        ops in arb_ops(),
    ) {
        let mut net = SimNetwork::with(
            Topology::FullMesh,
            LatencyModel::Uniform { min: 1, max: 4 },
            net_seed,
        )
        .with_faults(plan);
        let mut n = 0u64;
        for (from, to, pump) in ops {
            if from != to {
                n += 1;
                net.send(NegotiationId(1), peer(from), peer(to), payload(n), 0)
                    .unwrap();
                assert_conserved(&net);
            }
            if pump {
                net.step();
                assert_conserved(&net);
            }
        }
        // Drain everything; at quiescence nothing is in flight.
        while net.step() {
            assert_conserved(&net);
        }
        for p in 0..4 {
            let _ = net.poll(peer(p));
        }
        assert_conserved(&net);
        prop_assert_eq!(net.in_flight_len(), 0);
    }

    /// A none-plan lane is byte-identical to the unwrapped network under
    /// arbitrary seeds and workloads.
    #[test]
    fn none_plan_is_byte_identical(net_seed in any::<u64>(), ops in arb_ops()) {
        let run = |wrap: bool| {
            let mut net = SimNetwork::with(
                Topology::FullMesh,
                LatencyModel::Uniform { min: 1, max: 9 },
                net_seed,
            )
            .with_trace();
            if wrap {
                net = net.with_faults(FaultPlan::none());
            }
            let mut n = 0u64;
            let mut observed = Vec::new();
            for &(from, to, pump) in &ops {
                if from != to {
                    n += 1;
                    net.send(NegotiationId(1), peer(from), peer(to), payload(n), 0)
                        .unwrap();
                }
                if pump {
                    net.step();
                    for p in 0..4 {
                        for m in net.poll(peer(p)) {
                            observed.push(format!("{}@{}:{}->{}", m.id.0, net.now(), m.from, m.to));
                        }
                    }
                }
            }
            while net.step() {}
            let trace: Vec<String> = net
                .trace()
                .iter()
                .map(|t| format!("{}→{}#{}", t.at, t.delivered_at, t.message.id.0))
                .collect();
            let s = net.stats().clone();
            let mut per_peer: Vec<(String, u64)> = s
                .per_peer_sent
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect();
            per_peer.sort();
            let stats = format!(
                "{} {} {} {} {} {} {} {} {} {:?}",
                s.messages_sent,
                s.bytes_sent,
                s.queries,
                s.delivered,
                s.dropped,
                s.duplicated,
                s.delayed,
                s.reordered,
                s.corrupted,
                per_peer
            );
            (observed, trace, stats, net.now())
        };
        prop_assert_eq!(run(false), run(true));
    }
}
