//! Property tests for the negotiation protocol's core guarantees, driven
//! by the random policy-graph generator in `peertrust-scenarios`-style
//! construction (re-built here to keep the dependency graph acyclic).
//!
//! Invariants checked on every sampled instance:
//!
//! 1. **Safety** — every run's disclosure sequence satisfies the paper's
//!    safe-sequence definition ([`verify_safe_sequence`]).
//! 2. **Eager completeness** — the eager strategy succeeds iff the unlock
//!    fixpoint says a safe sequence exists.
//! 3. **Parsimonious soundness** — parsimonious success implies
//!    satisfiability (it never grants on an unsatisfiable instance).
//! 4. **Acyclic agreement** — on acyclic instances both strategies agree
//!    (both succeed).
//! 5. **Termination** — all runs finish within the session guards.

use peertrust_core::{Literal, PeerId, Term};
use peertrust_crypto::KeyRegistry;
use peertrust_negotiation::{
    verify_safe_sequence, NegotiationPeer, PeerMap, Strategy as NegStrategy,
};
use peertrust_net::{NegotiationId, SimNetwork};
use proptest::prelude::*;

const CA: &str = "PropCA";

#[derive(Clone, Debug)]
struct Instance {
    /// deps[side][i] = other-side credential indices required to release
    /// credential i of `side` (side 0 = client).
    deps: [Vec<Vec<usize>>; 2],
}

impl Instance {
    fn n(&self) -> usize {
        self.deps[0].len()
    }

    /// Ground truth satisfiability by unlock fixpoint.
    fn satisfiable(&self) -> bool {
        let n = self.n();
        let mut unlocked = [vec![false; n], vec![false; n]];
        loop {
            let mut changed = false;
            for side in 0..2 {
                for i in 0..n {
                    if !unlocked[side][i]
                        && self.deps[side][i].iter().all(|&j| unlocked[1 - side][j])
                    {
                        unlocked[side][i] = true;
                        changed = true;
                    }
                }
            }
            if !changed {
                return unlocked[0][0];
            }
        }
    }

    fn acyclic(&self) -> bool {
        // Dependencies only on strictly larger indices => acyclic.
        self.deps.iter().all(|side| {
            side.iter()
                .enumerate()
                .all(|(i, d)| d.iter().all(|&j| j > i))
        })
    }

    fn build(&self) -> (PeerMap, Literal) {
        let registry = KeyRegistry::new();
        registry.register_derived(PeerId::new(CA), 7);
        let mut client = NegotiationPeer::new("Client", registry.clone());
        let mut server = NegotiationPeer::new("Server", registry.clone());
        let n = self.n();
        for side in 0..2 {
            let (peer, owner) = if side == 0 {
                (&mut client, "Client")
            } else {
                (&mut server, "Server")
            };
            for i in 0..n {
                let pred = format!("c{side}_{i}");
                peer.load_program(&format!(r#"{pred}("{owner}") @ "{CA}" signedBy ["{CA}"]."#))
                    .unwrap();
                let ctx = if self.deps[side][i].is_empty() {
                    "true".to_string()
                } else {
                    self.deps[side][i]
                        .iter()
                        .map(|j| format!(r#"c{}_{j}(Requester) @ "{CA}" @ Requester"#, 1 - side))
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                peer.load_program(&format!(r#"{pred}(X) @ Y $ {ctx} <-_true {pred}(X) @ Y."#))
                    .unwrap();
            }
        }
        server
            .load_program(&format!(r#"resource(X) $ true <- c0_0(X) @ "{CA}" @ X."#))
            .unwrap();
        let mut peers = PeerMap::new();
        peers.insert(client);
        peers.insert(server);
        (peers, Literal::new("resource", vec![Term::str("Client")]))
    }
}

fn arb_instance(allow_cycles: bool) -> impl Strategy<Value = Instance> {
    (2usize..6).prop_flat_map(move |n| {
        let side = prop::collection::vec(prop::collection::vec(0usize..n, 0..3), n);
        (side.clone(), side).prop_map(move |(mut s0, mut s1)| {
            for side in [&mut s0, &mut s1] {
                for (i, d) in side.iter_mut().enumerate() {
                    d.sort_unstable();
                    d.dedup();
                    if !allow_cycles {
                        d.retain(|&j| j > i);
                    }
                }
            }
            Instance { deps: [s0, s1] }
        })
    })
}

fn run(
    peers: &mut PeerMap,
    goal: &Literal,
    strategy: NegStrategy,
    seed: u64,
) -> peertrust_negotiation::NegotiationOutcome {
    let mut net = SimNetwork::new(seed);
    strategy.run(
        peers,
        &mut net,
        NegotiationId(1),
        PeerId::new("Client"),
        PeerId::new("Server"),
        goal.clone(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn eager_matches_ground_truth_and_is_safe(inst in arb_instance(true)) {
        let sat = inst.satisfiable();
        let (mut peers, goal) = inst.build();
        let out = run(&mut peers, &goal, NegStrategy::Eager, 1);
        prop_assert_eq!(out.success, sat, "instance: {:?}", inst);
        if let Err(v) = verify_safe_sequence(&out) {
            prop_assert!(false, "safety violations: {v:?}");
        }
    }

    #[test]
    fn parsimonious_is_sound_and_safe(inst in arb_instance(true)) {
        let sat = inst.satisfiable();
        let (mut peers, goal) = inst.build();
        let out = run(&mut peers, &goal, NegStrategy::Parsimonious, 2);
        // Soundness: no success on unsatisfiable instances.
        if out.success {
            prop_assert!(sat, "parsimonious granted an unsatisfiable instance: {:?}", inst);
        }
        if let Err(v) = verify_safe_sequence(&out) {
            prop_assert!(false, "safety violations: {v:?}");
        }
    }

    #[test]
    fn strategies_agree_on_acyclic(inst in arb_instance(false)) {
        prop_assert!(inst.acyclic());
        prop_assert!(inst.satisfiable(), "acyclic instances are always satisfiable");
        let (mut p1, goal) = inst.build();
        let eager = run(&mut p1, &goal, NegStrategy::Eager, 3);
        let (mut p2, _) = inst.build();
        let pars = run(&mut p2, &goal, NegStrategy::Parsimonious, 4);
        prop_assert!(eager.success, "eager failed on {:?}", inst);
        prop_assert!(pars.success, "parsimonious failed on {:?}", inst);
        // Parsimonious never disclosed more credentials than eager.
        prop_assert!(pars.credential_count() <= eager.credential_count());
    }

    /// Runs never blow the guards: message counts are finite and bounded
    /// by a generous polynomial in the instance size (termination proxy).
    #[test]
    fn negotiations_terminate_quickly(inst in arb_instance(true)) {
        let (mut peers, goal) = inst.build();
        let out = run(&mut peers, &goal, NegStrategy::Parsimonious, 5);
        let n = inst.n() as u64;
        prop_assert!(out.messages <= 2000 * (n + 1) * (n + 1), "messages: {}", out.messages);
    }
}
