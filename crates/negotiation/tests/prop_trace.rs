//! Property tests for cross-peer causal tracing (DESIGN.md, "Causal
//! tracing & critical path").
//!
//! 1. **Well-formedness** — every trace reconstructed from a real
//!    negotiation validates: exactly one root span, unique span ids,
//!    every deliver matched by a send, every span's interval nested
//!    inside its parent's. This holds fault-free and under bounded
//!    random faults with retries.
//! 2. **Critical-path accounting** — the per-phase breakdown (solve /
//!    net wait / backoff) sums exactly to the end-to-end duration, and
//!    that duration never exceeds the outcome's `elapsed_ticks`.
//! 3. **Determinism** — the Chrome trace-event export is byte-identical
//!    across repeated runs, and across scheduler worker counts for a
//!    batch workload.

use peertrust_core::PeerId;
use peertrust_crypto::KeyRegistry;
use peertrust_negotiation::{
    negotiate_batch, negotiate_resilient, negotiate_traced, BatchConfig, BatchFaults, BatchJob,
    NegotiationOutcome, NegotiationPeer, PeerMap, ResilienceConfig, SessionConfig,
};
use peertrust_net::{FaultPlan, LatencyModel, LinkFaults, NegotiationId, SimNetwork, Topology};
use peertrust_parser::parse_literal;
use peertrust_telemetry::{to_chrome_json, Telemetry, Trace, TraceEvent};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// The bilateral paper scenario: E-Learn guards `resource` behind a UIUC
/// student credential that Alice releases only to BBB members.
fn bilateral_peers() -> PeerMap {
    let reg = KeyRegistry::new();
    for (i, name) in ["UIUC", "BBB"].iter().enumerate() {
        reg.register_derived(PeerId::new(name), i as u64 + 1);
    }
    let mut peers = PeerMap::new();
    let mut elearn = NegotiationPeer::new("E-Learn", reg.clone());
    elearn
        .load_program(
            r#"
            resource(X) $ true <- student(X) @ "UIUC" @ X.
            member("E-Learn") @ "BBB" $ true signedBy ["BBB"].
            "#,
        )
        .unwrap();
    peers.insert(elearn);
    let mut alice = NegotiationPeer::new("Alice", reg);
    alice
        .load_program(
            r#"
            student("Alice") @ "UIUC" signedBy ["UIUC"].
            student(X) @ Y $ member(Requester) @ "BBB" @ Requester <-_true student(X) @ Y.
            "#,
        )
        .unwrap();
    peers.insert(alice);
    peers
}

fn network(seed: u64) -> SimNetwork {
    SimNetwork::with(
        Topology::FullMesh,
        LatencyModel::Uniform { min: 1, max: 4 },
        seed,
    )
}

/// One instrumented run; returns the recorded event stream and outcome.
fn observe(seed: u64, plan: Option<FaultPlan>) -> (Vec<TraceEvent>, NegotiationOutcome) {
    let mut peers = bilateral_peers();
    let mut net = network(seed);
    let resilient = plan.is_some();
    if let Some(plan) = plan {
        net = net.with_faults(plan);
    }
    let (tele, ring) = Telemetry::ring(65536);
    let goal = parse_literal(r#"resource("Alice")"#).unwrap();
    let outcome = if resilient {
        negotiate_resilient(
            &mut peers,
            &mut net,
            SessionConfig::default(),
            ResilienceConfig {
                max_retries: 8,
                query_deadline_ticks: 256,
                ..ResilienceConfig::default()
            },
            NegotiationId(1),
            PeerId::new("Alice"),
            PeerId::new("E-Learn"),
            goal,
            &tele,
        )
        .0
    } else {
        negotiate_traced(
            &mut peers,
            &mut net,
            SessionConfig::default(),
            NegotiationId(1),
            PeerId::new("Alice"),
            PeerId::new("E-Learn"),
            goal,
            &tele,
        )
    };
    (ring.events(), outcome)
}

/// Faults bounded by the E15 convergence bar: drop ≤ 20%, plus
/// proportionate duplication/delay/reorder/corruption.
fn arb_bounded_faults() -> impl Strategy<Value = LinkFaults> {
    (
        0u32..200_000,
        0u32..200_000,
        0u32..200_000,
        1u64..6,
        0u32..200_000,
        0u32..100_000,
    )
        .prop_map(
            |(drop_ppm, dup_ppm, delay_ppm, max_extra_delay, reorder_ppm, corrupt_ppm)| {
                LinkFaults {
                    drop_ppm,
                    dup_ppm,
                    delay_ppm,
                    max_extra_delay,
                    reorder_ppm,
                    corrupt_ppm,
                }
            },
        )
}

/// Validate every trace in `events` and check critical-path accounting
/// against the outcome's end-to-end duration.
fn check_traces(events: &[TraceEvent], outcome: &NegotiationOutcome) -> Result<(), TestCaseError> {
    let traces = Trace::from_events(events);
    prop_assert_eq!(traces.len(), 1, "one negotiation, one trace");
    for trace in &traces {
        if let Err(e) = trace.validate() {
            return Err(TestCaseError::fail(format!("malformed trace: {e}")));
        }
        let cp = trace.critical_path();
        prop_assert_eq!(
            cp.solve_ticks + cp.net_wait_ticks + cp.backoff_ticks,
            cp.total_ticks,
            "phase breakdown must sum to the end-to-end duration"
        );
        prop_assert!(
            cp.total_ticks <= outcome.elapsed_ticks,
            "critical path ({}) exceeds end-to-end duration ({})",
            cp.total_ticks,
            outcome.elapsed_ticks
        );
    }
    Ok(())
}

proptest! {
    /// Fault-free negotiations yield exactly one well-formed trace whose
    /// critical path accounts for the whole duration.
    #[test]
    fn fault_free_traces_are_well_formed(seed in any::<u64>()) {
        let (events, outcome) = observe(seed, None);
        check_traces(&events, &outcome)?;
    }

    /// Under bounded random faults — retries, duplicates, drops, crash
    /// of nothing in particular — the trace stays well-formed: retried
    /// sends are sibling transit spans, duplicates collapse onto their
    /// send, and backoff spans nest in the owning request.
    #[test]
    fn faulty_traces_are_well_formed(
        fault_seed in any::<u64>(),
        net_seed in any::<u64>(),
        link in arb_bounded_faults(),
    ) {
        let plan = FaultPlan::uniform(fault_seed, link);
        let (events, outcome) = observe(net_seed, Some(plan));
        check_traces(&events, &outcome)?;
    }

    /// The Chrome export is byte-identical across repeated runs.
    #[test]
    fn chrome_export_is_deterministic_across_runs(seed in any::<u64>()) {
        let (a, _) = observe(seed, None);
        let (b, _) = observe(seed, None);
        prop_assert_eq!(
            to_chrome_json(&Trace::from_events(&a)),
            to_chrome_json(&Trace::from_events(&b))
        );
    }
}

/// A batch's merged trace stream — and therefore its Chrome export — is
/// byte-identical across worker counts, fault-free and faulty.
#[test]
fn batch_traces_are_identical_across_worker_counts() {
    let peers = bilateral_peers();
    let goal = parse_literal(r#"resource("Alice")"#).unwrap();
    let jobs: Vec<BatchJob> = (0..8)
        .map(|_| BatchJob::new(PeerId::new("Alice"), PeerId::new("E-Learn"), goal.clone()))
        .collect();
    let chrome = |workers: usize, faults: Option<BatchFaults>| -> String {
        let (tele, ring) = Telemetry::ring(1 << 20);
        let cfg = BatchConfig {
            workers,
            faults,
            ..BatchConfig::default()
        };
        let report = negotiate_batch(&peers, &jobs, &cfg, &tele);
        assert_eq!(report.outcomes.len(), jobs.len());
        to_chrome_json(&Trace::from_events(&ring.events()))
    };
    let faulty = || {
        Some(BatchFaults {
            plan: FaultPlan::uniform(11, LinkFaults::lossy(0.2)),
            resilience: ResilienceConfig {
                max_retries: 8,
                query_deadline_ticks: 256,
                ..ResilienceConfig::default()
            },
        })
    };
    let clean_baseline = chrome(1, None);
    let faulty_baseline = chrome(1, faulty());
    assert_ne!(clean_baseline, faulty_baseline);
    for workers in [2, 4, 8] {
        assert_eq!(
            chrome(workers, None),
            clean_baseline,
            "clean divergence at {workers} workers"
        );
        assert_eq!(
            chrome(workers, faulty()),
            faulty_baseline,
            "faulty divergence at {workers} workers"
        );
    }
}

/// Every trace in a batch validates individually.
#[test]
fn batch_traces_are_well_formed() {
    let peers = bilateral_peers();
    let goal = parse_literal(r#"resource("Alice")"#).unwrap();
    let jobs: Vec<BatchJob> = (0..6)
        .map(|_| BatchJob::new(PeerId::new("Alice"), PeerId::new("E-Learn"), goal.clone()))
        .collect();
    let (tele, ring) = Telemetry::ring(1 << 20);
    let report = negotiate_batch(&peers, &jobs, &BatchConfig::default(), &tele);
    assert_eq!(report.stats.successes, jobs.len());
    let traces = Trace::from_events(&ring.events());
    assert_eq!(traces.len(), jobs.len(), "one trace per job");
    for trace in &traces {
        trace.validate().unwrap_or_else(|e| panic!("{e}"));
    }
}
