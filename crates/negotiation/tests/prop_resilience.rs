//! Property tests for the resilience layer (DESIGN.md §4e).
//!
//! 1. **Differential baseline** — a negotiation run over a network
//!    wrapped in a [`FaultPlan::none`] lane, with or without the
//!    resilience layer attached, is *bit-identical* to the plain
//!    `SimNetwork` path: serialized outcome, metrics registry JSON, and
//!    timeline JSONL all match byte for byte. The fault subsystem is
//!    provably free when unused.
//! 2. **Convergence** — under random loss up to the 20% drop-rate bar
//!    (plus duplicates, delays, reorders, corruption), a session with a
//!    retry budget reaches exactly the fault-free outcome, and its
//!    report says `converged`.
//! 3. **Crash-resume** — a scheduled peer outage early in the session is
//!    survived: the peer is rebuilt from the disclosure log and the
//!    negotiation still converges to the fault-free result.
//!
//! Non-convergence is exercised too: with loss beyond what the budget
//! can absorb the session must *terminate* with explicit
//! [`ResilienceFailure`] reasons, never hang.

use peertrust_core::PeerId;
use peertrust_crypto::KeyRegistry;
use peertrust_negotiation::{
    negotiate_resilient, negotiate_traced, NegotiationOutcome, NegotiationPeer, PeerMap,
    ResilienceConfig, SessionConfig,
};
use peertrust_net::{FaultPlan, LatencyModel, LinkFaults, NegotiationId, SimNetwork, Topology};
use peertrust_parser::parse_literal;
use peertrust_telemetry::{Telemetry, Timeline};
use proptest::prelude::*;

/// The bilateral paper scenario: E-Learn guards `resource` behind a UIUC
/// student credential that Alice releases only to BBB members.
fn bilateral_peers() -> PeerMap {
    let reg = KeyRegistry::new();
    for (i, name) in ["UIUC", "BBB"].iter().enumerate() {
        reg.register_derived(PeerId::new(name), i as u64 + 1);
    }
    let mut peers = PeerMap::new();
    let mut elearn = NegotiationPeer::new("E-Learn", reg.clone());
    elearn
        .load_program(
            r#"
            resource(X) $ true <- student(X) @ "UIUC" @ X.
            member("E-Learn") @ "BBB" $ true signedBy ["BBB"].
            "#,
        )
        .unwrap();
    peers.insert(elearn);
    let mut alice = NegotiationPeer::new("Alice", reg);
    alice
        .load_program(
            r#"
            student("Alice") @ "UIUC" signedBy ["UIUC"].
            student(X) @ Y $ member(Requester) @ "BBB" @ Requester <-_true student(X) @ Y.
            "#,
        )
        .unwrap();
    peers.insert(alice);
    peers
}

fn network(seed: u64) -> SimNetwork {
    SimNetwork::with(
        Topology::FullMesh,
        LatencyModel::Uniform { min: 1, max: 4 },
        seed,
    )
}

/// One full run; returns every observable surface as strings.
/// `lane`: attach a fault lane with this plan. `resilient`: drive through
/// the resilience layer instead of the plain driver.
fn observe(seed: u64, lane: Option<FaultPlan>, resilient: bool) -> (String, String, String, u64) {
    let mut peers = bilateral_peers();
    let mut net = network(seed);
    if let Some(plan) = lane {
        net = net.with_faults(plan);
    }
    let (tele, ring) = Telemetry::ring(8192);
    let goal = parse_literal(r#"resource("Alice")"#).unwrap();
    let outcome = if resilient {
        negotiate_resilient(
            &mut peers,
            &mut net,
            SessionConfig::default(),
            ResilienceConfig::default(),
            NegotiationId(1),
            PeerId::new("Alice"),
            PeerId::new("E-Learn"),
            goal,
            &tele,
        )
        .0
    } else {
        negotiate_traced(
            &mut peers,
            &mut net,
            SessionConfig::default(),
            NegotiationId(1),
            PeerId::new("Alice"),
            PeerId::new("E-Learn"),
            goal,
            &tele,
        )
    };
    let metrics = tele
        .metrics()
        .expect("ring telemetry has metrics")
        .to_json();
    let jsonl: String = Timeline::from_events(&ring.events())
        .iter()
        .map(Timeline::to_jsonl)
        .collect();
    (
        serde_json::to_string(&outcome).unwrap(),
        metrics,
        jsonl,
        net.now(),
    )
}

fn fault_free(seed: u64) -> NegotiationOutcome {
    let mut peers = bilateral_peers();
    let mut net = network(seed);
    negotiate_traced(
        &mut peers,
        &mut net,
        SessionConfig::default(),
        NegotiationId(1),
        PeerId::new("Alice"),
        PeerId::new("E-Learn"),
        parse_literal(r#"resource("Alice")"#).unwrap(),
        &Telemetry::disabled(),
    )
}

/// Faults bounded by the E15 convergence bar: drop ≤ 20%, plus
/// proportionate duplication/delay/reorder/corruption.
fn arb_bounded_faults() -> impl Strategy<Value = LinkFaults> {
    (
        0u32..200_000,
        0u32..200_000,
        0u32..200_000,
        1u64..6,
        0u32..200_000,
        0u32..100_000,
    )
        .prop_map(
            |(drop_ppm, dup_ppm, delay_ppm, max_extra_delay, reorder_ppm, corrupt_ppm)| {
                LinkFaults {
                    drop_ppm,
                    dup_ppm,
                    delay_ppm,
                    max_extra_delay,
                    reorder_ppm,
                    corrupt_ppm,
                }
            },
        )
}

fn generous_budget() -> ResilienceConfig {
    ResilienceConfig {
        max_retries: 8,
        query_deadline_ticks: 256,
        ..ResilienceConfig::default()
    }
}

proptest! {
    /// Satellite: a none-plan lane — resilient or not — is bit-identical
    /// to the plain network path on every observable surface.
    #[test]
    fn none_plan_paths_are_bit_identical(seed in any::<u64>()) {
        let plain = observe(seed, None, false);
        let laned = observe(seed, Some(FaultPlan::none()), false);
        let resilient = observe(seed, Some(FaultPlan::none()), true);
        prop_assert_eq!(&plain, &laned, "lane with none-plan diverged");
        prop_assert_eq!(&plain, &resilient, "resilient none-plan diverged");
    }

    /// Retries recover every bounded-fault run to the fault-free outcome.
    #[test]
    fn bounded_faults_converge_to_fault_free_outcome(
        fault_seed in any::<u64>(),
        net_seed in any::<u64>(),
        link in arb_bounded_faults(),
    ) {
        let clean = fault_free(net_seed);
        let mut peers = bilateral_peers();
        let mut net = network(net_seed).with_faults(FaultPlan::uniform(fault_seed, link));
        let (out, report) = negotiate_resilient(
            &mut peers,
            &mut net,
            SessionConfig::default(),
            generous_budget(),
            NegotiationId(1),
            PeerId::new("Alice"),
            PeerId::new("E-Learn"),
            parse_literal(r#"resource("Alice")"#).unwrap(),
            &Telemetry::disabled(),
        );
        prop_assert!(report.converged, "failures: {:?}", report.failures);
        prop_assert_eq!(out.success, clean.success);
        prop_assert_eq!(out.granted, clean.granted);
        prop_assert_eq!(out.disclosures.len(), clean.disclosures.len());
        prop_assert_eq!(out.refusals.len(), clean.refusals.len());
    }

    /// A crash window that still leaves a connected window before the
    /// deadline is survived via log replay.
    #[test]
    fn crash_windows_are_survived(
        net_seed in any::<u64>(),
        from in 0u64..10,
        len in 1u64..20,
        crash_responder in any::<bool>(),
    ) {
        let clean = fault_free(net_seed);
        let victim = if crash_responder { "E-Learn" } else { "Alice" };
        let plan = FaultPlan::none().with_crash(PeerId::new(victim), from, from + len);
        let mut peers = bilateral_peers();
        let mut net = network(net_seed).with_faults(plan);
        let (out, report) = negotiate_resilient(
            &mut peers,
            &mut net,
            SessionConfig::default(),
            generous_budget(),
            NegotiationId(1),
            PeerId::new("Alice"),
            PeerId::new("E-Learn"),
            parse_literal(r#"resource("Alice")"#).unwrap(),
            &Telemetry::disabled(),
        );
        prop_assert!(report.converged, "failures: {:?}", report.failures);
        prop_assert_eq!(out.success, clean.success);
        prop_assert_eq!(out.granted, clean.granted);
    }

    /// Beyond the budget the session must still terminate, with explicit
    /// failure reasons and an unsuccessful outcome — never a hang.
    #[test]
    fn unrecoverable_loss_terminates_with_reasons(seed in any::<u64>()) {
        let mut peers = bilateral_peers();
        let mut net = network(seed).with_faults(FaultPlan::uniform(seed, LinkFaults::drops(1.0)));
        let (out, report) = negotiate_resilient(
            &mut peers,
            &mut net,
            SessionConfig::default(),
            ResilienceConfig::default(),
            NegotiationId(1),
            PeerId::new("Alice"),
            PeerId::new("E-Learn"),
            parse_literal(r#"resource("Alice")"#).unwrap(),
            &Telemetry::disabled(),
        );
        prop_assert!(!out.success);
        prop_assert!(!report.converged);
        prop_assert!(!report.failures.is_empty());
        prop_assert_eq!(report.stats.gave_up, report.failures.len() as u64);
    }
}
