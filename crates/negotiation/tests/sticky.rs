//! Sticky-policy tests (paper §3.1 extension): with
//! `SessionConfig::sticky_policies`, release contexts travel with pushed
//! rules and relays re-check the originator's context against each new
//! recipient — "a peer can control further dissemination of its released
//! information in a non-adversarial environment".

use peertrust_core::PeerId;
use peertrust_crypto::KeyRegistry;
use peertrust_negotiation::{negotiate, DisclosedItem, NegotiationPeer, PeerMap, SessionConfig};
use peertrust_net::{NegotiationId, SimNetwork};
use peertrust_parser::parse_literal;

fn registry() -> KeyRegistry {
    let r = KeyRegistry::new();
    r.register_derived(PeerId::new("CA"), 1);
    r
}

/// Origin -> Middle -> Verifier relay scenario.
///
/// Origin holds a credential whose release policy is `trusted(Requester)`,
/// and Origin trusts only Middle. The verifier's policy asks Middle
/// (`@ "Middle"`), so Middle must relay Origin's credential.
fn relay_peers(origin_release_ctx: &str) -> PeerMap {
    let reg = registry();
    let mut peers = PeerMap::new();

    let mut verifier = NegotiationPeer::new("Verifier", reg.clone());
    verifier
        .load_program(r#"resource(X) $ true <- attr(X) @ "CA" @ "Middle"."#)
        .unwrap();
    peers.insert(verifier);

    let mut middle = NegotiationPeer::new("Middle", reg.clone());
    middle
        .load_program(
            r#"
            % Middle relays whatever it can learn from Origin.
            attr(X) @ "CA" <-_true attr(X) @ "CA" @ "Origin".
            attr(X) @ Y $ true <-_true attr(X) @ Y.
            "#,
        )
        .unwrap();
    peers.insert(middle);

    let mut origin = NegotiationPeer::new("Origin", reg);
    origin
        .load_program(&format!(
            r#"
            attr("Client") @ "CA" signedBy ["CA"].
            attr(X) @ Y $ {origin_release_ctx} <-_true attr(X) @ Y.
            trusted("Middle").
            "#
        ))
        .unwrap();
    peers.insert(origin);

    peers
}

fn run(peers: &mut PeerMap, sticky: bool) -> peertrust_negotiation::NegotiationOutcome {
    let mut net = SimNetwork::new(9);
    let cfg = SessionConfig {
        sticky_policies: sticky,
        ..SessionConfig::default()
    };
    negotiate(
        peers,
        &mut net,
        cfg,
        NegotiationId(1),
        PeerId::new("Client"),
        PeerId::new("Verifier"),
        parse_literal(r#"resource("Client")"#).unwrap(),
    )
}

#[test]
fn default_mode_relays_freely() {
    // Origin releases to Middle (trusted), contexts are stripped on the
    // wire, and Middle relays onward to the Verifier — the paper's default
    // (no post-release control).
    let mut peers = relay_peers("trusted(Requester)");
    // The requester "Client" is a bystander here; add it so the session
    // has a peer to act for.
    peers.insert(NegotiationPeer::new("Client", registry()));
    let out = run(&mut peers, false);
    assert!(out.success, "refusals: {:#?}", out.refusals);
    // The credential reached the verifier via relay.
    assert!(out.disclosures.iter().any(|d| {
        d.from == PeerId::new("Middle")
            && d.to == PeerId::new("Verifier")
            && matches!(&d.item, DisclosedItem::SignedRule(sr)
                        if sr.rule.head.pred.as_str() == "attr")
    }));
}

#[test]
fn sticky_mode_blocks_relay_beyond_trust() {
    // Same policies, sticky mode: the credential arrives at Middle with
    // `$ trusted(Requester)` attached; Middle cannot derive
    // trusted("Verifier"), so the relay is blocked and the negotiation
    // fails.
    let mut peers = relay_peers("trusted(Requester)");
    peers.insert(NegotiationPeer::new("Client", registry()));
    let out = run(&mut peers, true);
    assert!(!out.success, "sticky context must block the relay");
    // Specifically: no attr credential flowed Middle -> Verifier.
    assert!(out.disclosures.iter().all(|d| {
        !(d.from == PeerId::new("Middle")
            && d.to == PeerId::new("Verifier")
            && matches!(&d.item, DisclosedItem::SignedRule(sr)
                        if sr.rule.head.pred.as_str() == "attr"))
    }));
}

#[test]
fn sticky_mode_allows_relay_within_policy() {
    // If Origin's sticky context also admits the verifier, the relay goes
    // through even in sticky mode.
    let mut peers = relay_peers("trusted(Requester)");
    peers.insert(NegotiationPeer::new("Client", registry()));
    // Middle learns (locally) that the Verifier is trusted too — sticky
    // evaluation happens at the relay against the relayer's knowledge.
    peers
        .get_mut(PeerId::new("Middle"))
        .unwrap()
        .load_program(r#"trusted("Verifier")."#)
        .unwrap();
    let out = run(&mut peers, true);
    assert!(out.success, "refusals: {:#?}", out.refusals);
}

#[test]
fn sticky_public_contexts_still_flow() {
    let mut peers = relay_peers("true");
    peers.insert(NegotiationPeer::new("Client", registry()));
    let out = run(&mut peers, true);
    assert!(out.success, "public sticky context must not block anything");
}
