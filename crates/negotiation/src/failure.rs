//! Failure analysis (paper §6): *"one would like to see an analysis of the
//! autonomy available to each peer (e.g., 'If I refuse to answer this
//! query, could it cause the negotiation to fail?')"*.
//!
//! [`analyze_failure`] answers the converse, actionable question after a
//! failed negotiation: **which refusals were critical** — i.e., for which
//! single refusal would overriding it (releasing the refused item) have
//! let the negotiation succeed? The analysis is counterfactual: each
//! distinct `ReleaseDenied` refusal is overridden in isolation (via
//! [`SessionConfig::release_overrides`]) and the negotiation re-run on a
//! fresh copy of the initial peer state.
//!
//! A refusal can be:
//!
//! * **critical** — overriding it alone flips the outcome to success: the
//!   refusing peer's autonomy on this item is exactly what blocks trust;
//! * **contributory** — overriding it alone does not help (other refusals
//!   or genuinely missing credentials also block the path);
//! * and the analysis also reports when the failure is **unconditional**:
//!   no single release override rescues it (e.g. a credential simply does
//!   not exist).

use crate::outcome::{NegotiationOutcome, Refusal, RefusalReason};
use crate::session::{negotiate, PeerMap, SessionConfig};
use peertrust_core::{Literal, PeerId};
use peertrust_engine::canonicalize;
use peertrust_net::{NegotiationId, SimNetwork};

/// One analyzed refusal.
#[derive(Clone, Debug)]
pub struct AnalyzedRefusal {
    pub refusal: Refusal,
    /// Overriding just this refusal makes the negotiation succeed.
    pub critical: bool,
}

/// The result of a counterfactual failure analysis.
#[derive(Debug)]
pub struct FailureAnalysis {
    /// Distinct release refusals from the failed run, each tagged.
    pub refusals: Vec<AnalyzedRefusal>,
    /// True if no single override rescued the negotiation.
    pub unconditional: bool,
}

impl FailureAnalysis {
    /// The critical refusals only.
    pub fn critical(&self) -> Vec<&Refusal> {
        self.refusals
            .iter()
            .filter(|a| a.critical)
            .map(|a| &a.refusal)
            .collect()
    }
}

/// Counterfactually analyze a failed negotiation.
///
/// `build` must reconstruct the *initial* peer state (negotiations mutate
/// peers by caching pushed credentials, so each counterfactual run needs a
/// fresh copy — the same closure used to set the scenario up).
pub fn analyze_failure(
    build: impl Fn() -> PeerMap,
    cfg: SessionConfig,
    requester: PeerId,
    responder: PeerId,
    goal: &Literal,
    failed: &NegotiationOutcome,
) -> FailureAnalysis {
    assert!(!failed.success, "analyze_failure needs a failed outcome");

    // Distinct release refusals (by refusing peer + canonical goal).
    let mut distinct: Vec<&Refusal> = Vec::new();
    for r in &failed.refusals {
        if r.reason != RefusalReason::ReleaseDenied {
            continue;
        }
        if !distinct
            .iter()
            .any(|d| d.peer == r.peer && canonicalize(&d.goal) == canonicalize(&r.goal))
        {
            distinct.push(r);
        }
    }

    let mut analyzed = Vec::new();
    let mut any_critical = false;
    for refusal in distinct {
        let mut peers = build();
        let mut net = SimNetwork::new(0xFA11);
        let mut cf_cfg = cfg.clone();
        cf_cfg.release_overrides = vec![(refusal.peer, refusal.goal.clone())];
        let outcome = negotiate(
            &mut peers,
            &mut net,
            cf_cfg,
            NegotiationId(0xFA11),
            requester,
            responder,
            goal.clone(),
        );
        let critical = outcome.success;
        any_critical |= critical;
        analyzed.push(AnalyzedRefusal {
            refusal: refusal.clone(),
            critical,
        });
    }

    FailureAnalysis {
        refusals: analyzed,
        unconditional: !any_critical,
    }
}

/// Compute a *rescue set*: a set of release overrides under which the
/// negotiation succeeds, built greedily — run, collect the release
/// refusals that surfaced, override them all, repeat. Returns `None` when
/// the failure is not caused by refusals at all (a credential simply does
/// not exist), i.e. when a pass adds no new overrides and still fails.
///
/// The rescue set is a diagnostic upper bound on "whose autonomy blocks
/// this negotiation": every peer/goal pair in it refused at some point on
/// the path to success.
pub fn find_rescue_set(
    build: impl Fn() -> PeerMap,
    cfg: SessionConfig,
    requester: PeerId,
    responder: PeerId,
    goal: &Literal,
    max_passes: usize,
) -> Option<Vec<(PeerId, Literal)>> {
    let mut overrides: Vec<(PeerId, Literal)> = Vec::new();
    for _ in 0..max_passes {
        let mut peers = build();
        let mut net = SimNetwork::new(0xFA11);
        let mut run_cfg = cfg.clone();
        run_cfg.release_overrides = overrides.clone();
        let outcome = negotiate(
            &mut peers,
            &mut net,
            run_cfg,
            NegotiationId(0xFA11),
            requester,
            responder,
            goal.clone(),
        );
        if outcome.success {
            return Some(overrides);
        }
        let mut grew = false;
        for r in &outcome.refusals {
            if r.reason != RefusalReason::ReleaseDenied {
                continue;
            }
            if !overrides
                .iter()
                .any(|(p, g)| *p == r.peer && canonicalize(g) == canonicalize(&r.goal))
            {
                overrides.push((r.peer, r.goal.clone()));
                grew = true;
            }
        }
        if !grew {
            return None; // failure not attributable to refusals
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::NegotiationPeer;
    use peertrust_crypto::KeyRegistry;
    use peertrust_parser::parse_literal;

    fn registry() -> KeyRegistry {
        let r = KeyRegistry::new();
        r.register_derived(PeerId::new("UIUC"), 1);
        r.register_derived(PeerId::new("BBB"), 2);
        r
    }

    /// Alice's release policy blocks because E-Learn has no BBB
    /// credential. Overriding Alice's (single) refusal rescues the
    /// negotiation — her refusal is critical.
    #[test]
    fn single_blocking_refusal_is_critical() {
        let reg = registry();
        let build = move || {
            let mut peers = PeerMap::new();
            let mut elearn = NegotiationPeer::new("E-Learn", reg.clone());
            elearn
                .load_program(r#"resource(X) $ true <- student(X) @ "UIUC" @ X."#)
                .unwrap();
            peers.insert(elearn);
            let mut alice = NegotiationPeer::new("Alice", reg.clone());
            alice
                .load_program(
                    r#"
                    student("Alice") @ "UIUC" signedBy ["UIUC"].
                    student(X) @ Y $ member(Requester) @ "BBB" @ Requester <-_true student(X) @ Y.
                    "#,
                )
                .unwrap();
            peers.insert(alice);
            peers
        };

        let goal = parse_literal(r#"resource("Alice")"#).unwrap();
        let mut peers = build();
        let mut net = SimNetwork::new(1);
        let failed = negotiate(
            &mut peers,
            &mut net,
            SessionConfig::default(),
            NegotiationId(1),
            PeerId::new("Alice"),
            PeerId::new("E-Learn"),
            goal.clone(),
        );
        assert!(!failed.success);

        let analysis = analyze_failure(
            build,
            SessionConfig::default(),
            PeerId::new("Alice"),
            PeerId::new("E-Learn"),
            &goal,
            &failed,
        );
        assert!(!analysis.unconditional);
        let critical = analysis.critical();
        assert_eq!(critical.len(), 1);
        assert_eq!(critical[0].peer, PeerId::new("Alice"));
    }

    /// The credential genuinely does not exist: no refusal override can
    /// rescue the negotiation — failure is unconditional.
    #[test]
    fn missing_credential_failure_is_unconditional() {
        let reg = registry();
        let build = move || {
            let mut peers = PeerMap::new();
            let mut elearn = NegotiationPeer::new("E-Learn", reg.clone());
            elearn
                .load_program(r#"resource(X) $ true <- student(X) @ "UIUC" @ X."#)
                .unwrap();
            peers.insert(elearn);
            // Alice has no student credential at all.
            let mut alice = NegotiationPeer::new("Alice", reg.clone());
            alice.load_program(r#"unrelated(1)."#).unwrap();
            peers.insert(alice);
            peers
        };

        let goal = parse_literal(r#"resource("Alice")"#).unwrap();
        let mut peers = build();
        let mut net = SimNetwork::new(1);
        let failed = negotiate(
            &mut peers,
            &mut net,
            SessionConfig::default(),
            NegotiationId(1),
            PeerId::new("Alice"),
            PeerId::new("E-Learn"),
            goal.clone(),
        );
        assert!(!failed.success);

        let analysis = analyze_failure(
            build,
            SessionConfig::default(),
            PeerId::new("Alice"),
            PeerId::new("E-Learn"),
            &goal,
            &failed,
        );
        assert!(analysis.unconditional);
    }

    /// Two independent refusals both block: neither alone is critical.
    #[test]
    fn jointly_blocking_refusals_are_contributory() {
        let reg = registry();
        reg.register_derived(PeerId::new("CA"), 3);
        let build = move || {
            let mut peers = PeerMap::new();
            let mut server = NegotiationPeer::new("Server", reg.clone());
            server
                .load_program(r#"resource(X) $ true <- credA(X) @ "CA" @ X, credB(X) @ "CA" @ X."#)
                .unwrap();
            peers.insert(server);
            // Client holds both credentials, each locked behind an
            // unsatisfiable policy.
            let mut client = NegotiationPeer::new("Client", reg.clone());
            client
                .load_program(
                    r#"
                    credA("Client") @ "CA" signedBy ["CA"].
                    credA(X) @ Y $ never(Requester) <-_true credA(X) @ Y.
                    credB("Client") @ "CA" signedBy ["CA"].
                    credB(X) @ Y $ never(Requester) <-_true credB(X) @ Y.
                    "#,
                )
                .unwrap();
            peers.insert(client);
            peers
        };

        let goal = parse_literal(r#"resource("Client")"#).unwrap();
        let mut peers = build();
        let mut net = SimNetwork::new(1);
        let failed = negotiate(
            &mut peers,
            &mut net,
            SessionConfig::default(),
            NegotiationId(1),
            PeerId::new("Client"),
            PeerId::new("Server"),
            goal.clone(),
        );
        assert!(!failed.success);

        let analysis = analyze_failure(
            &build,
            SessionConfig::default(),
            PeerId::new("Client"),
            PeerId::new("Server"),
            &goal,
            &failed,
        );
        // Overriding credA's refusal still leaves credB locked, so no
        // single override flips the outcome. (Only credA's refusal is
        // visible in the failed run — the DFS stops at the first blocked
        // body goal.)
        assert!(analysis.unconditional);
        assert!(!analysis.refusals.is_empty());
        assert!(analysis.refusals.iter().all(|a| !a.critical));

        // The iterative rescue-set computation digs past the first
        // refusal and finds that overriding BOTH releases succeeds.
        let rescue = find_rescue_set(
            build,
            SessionConfig::default(),
            PeerId::new("Client"),
            PeerId::new("Server"),
            &goal,
            8,
        )
        .expect("a rescue set exists");
        assert_eq!(rescue.len(), 2, "rescue set: {rescue:?}");
    }

    /// No rescue set exists when the credential is genuinely absent.
    #[test]
    fn rescue_set_absent_for_missing_credentials() {
        let reg = registry();
        let build = move || {
            let mut peers = PeerMap::new();
            let mut elearn = NegotiationPeer::new("E-Learn", reg.clone());
            elearn
                .load_program(r#"resource(X) $ true <- student(X) @ "UIUC" @ X."#)
                .unwrap();
            peers.insert(elearn);
            peers.insert(NegotiationPeer::new("Alice", reg.clone()));
            peers
        };
        let goal = parse_literal(r#"resource("Alice")"#).unwrap();
        assert!(find_rescue_set(
            build,
            SessionConfig::default(),
            PeerId::new("Alice"),
            PeerId::new("E-Learn"),
            &goal,
            8,
        )
        .is_none());
    }
}
