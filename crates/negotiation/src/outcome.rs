//! Negotiation outcomes, disclosure sequences, and the safety invariant.
//!
//! The goal of a trust negotiation (paper §2) is "a sequence of credentials
//! `(C1, ..., Ck, R)`, where `R` is the resource to which access was
//! originally requested, such that when credential `Ci` is disclosed, its
//! policy has been satisfied by credentials disclosed earlier in the
//! sequence". [`NegotiationOutcome`] records exactly that sequence plus the
//! transport metrics, and [`verify_safe_sequence`] replays it to check the
//! safety invariant — the property the property-based tests assert over
//! random negotiations.

use peertrust_core::{Context, Literal, PeerId, Rule};
use peertrust_crypto::SignedRule;

/// What was disclosed in one step.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub enum DisclosedItem {
    /// A signed rule (credential or delegation) pushed to the recipient.
    SignedRule(SignedRule),
    /// A derived literal sent as a query answer.
    Answer(Literal),
    /// The final resource grant (`R` in the paper's sequence).
    Resource(Literal),
    /// A (protected) policy definition disclosed via UniPro.
    Policy(Vec<Rule>),
}

impl DisclosedItem {
    pub fn kind(&self) -> &'static str {
        match self {
            DisclosedItem::SignedRule(_) => "signed-rule",
            DisclosedItem::Answer(_) => "answer",
            DisclosedItem::Resource(_) => "resource",
            DisclosedItem::Policy(_) => "policy",
        }
    }
}

/// Evidence that justified a disclosure's release policy.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Evidence {
    /// A rule the discloser already held before the negotiation began.
    Initial(Rule),
    /// A signed rule received from `from` during the negotiation.
    ReceivedRule { from: PeerId, rule: Rule },
    /// A query answer received from `from` during the negotiation.
    ReceivedAnswer { from: PeerId, answer: Literal },
}

/// One step of the disclosure sequence.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Disclosure {
    /// Position in the global sequence (0-based).
    pub seq: usize,
    pub from: PeerId,
    pub to: PeerId,
    pub item: DisclosedItem,
    /// The release context that licensed this disclosure, instantiated
    /// with `Requester`/`Self` bound.
    pub context: Context,
    /// The evidence used to satisfy `context`.
    pub evidence: Vec<Evidence>,
}

/// A release refusal (input to the paper's §6 failure analysis: "If I
/// refuse to answer this query, could it cause the negotiation to fail?").
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Refusal {
    pub peer: PeerId,
    pub requester: PeerId,
    pub goal: Literal,
    pub reason: RefusalReason,
}

#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RefusalReason {
    /// Release context could not be satisfied for this requester.
    ReleaseDenied,
    /// The peer's effort policy rejects the query outright.
    EffortPolicy,
    /// Hop-depth budget exceeded.
    DepthExceeded,
    /// The same query was already in flight (cycle).
    CycleDetected,
    /// Per-negotiation query budget exceeded.
    QueryBudget,
    /// A received answer could not be re-derived from signed material and
    /// was dropped by the requester's verification step.
    VerificationFailed,
    /// Transport-level delivery gave up: the resilience layer exhausted
    /// its retry budget or per-message deadline for this peer (see
    /// `crate::resilience`).
    Unreachable,
    /// GEM fixpoint iteration hit its round bound before the SCC's answer
    /// tables stabilized (see `crate::gem`). The answers computed so far
    /// are sound but possibly incomplete.
    GemRoundLimit,
    /// Admission control shed the negotiation before it started: offered
    /// load exceeded serving capacity (bounded queue full, or the job
    /// could not start within its deadline — see `crate::serve`).
    Overload,
}

impl RefusalReason {
    /// Stable snake_case metric suffix: refusals are counted per reason
    /// under `negotiation.refusal.<suffix>` in the metrics registry, so
    /// experiments output (metrics.json) shows which guard fired without
    /// parsing Debug strings.
    pub fn metric_suffix(&self) -> &'static str {
        match self {
            RefusalReason::ReleaseDenied => "release_denied",
            RefusalReason::EffortPolicy => "effort_policy",
            RefusalReason::DepthExceeded => "depth_exceeded",
            RefusalReason::CycleDetected => "cycle_detected",
            RefusalReason::QueryBudget => "query_budget",
            RefusalReason::VerificationFailed => "verification_failed",
            RefusalReason::Unreachable => "unreachable",
            RefusalReason::GemRoundLimit => "gem_round_limit",
            RefusalReason::Overload => "overload",
        }
    }
}

/// The result of one negotiation.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct NegotiationOutcome {
    /// Did the requester gain access to the resource?
    pub success: bool,
    pub requester: PeerId,
    pub responder: PeerId,
    /// The resource goal as requested.
    pub goal: Literal,
    /// Granted instances of the goal (empty on failure).
    pub granted: Vec<Literal>,
    /// The full disclosure sequence `(C1, ..., Ck, R)`.
    pub disclosures: Vec<Disclosure>,
    /// Release refusals encountered.
    pub refusals: Vec<Refusal>,
    /// Transport metrics for this negotiation.
    pub messages: u64,
    pub bytes: u64,
    pub queries: u64,
    /// Negotiation rounds (eager) or peak query nesting depth
    /// (parsimonious).
    pub rounds: u64,
    /// Network ticks elapsed.
    pub elapsed_ticks: u64,
}

impl NegotiationOutcome {
    /// Credentials disclosed by `peer` during the negotiation.
    pub fn disclosed_by(&self, peer: PeerId) -> Vec<&Disclosure> {
        self.disclosures.iter().filter(|d| d.from == peer).collect()
    }

    /// Number of signed rules disclosed in total.
    pub fn credential_count(&self) -> usize {
        self.disclosures
            .iter()
            .filter(|d| matches!(d.item, DisclosedItem::SignedRule(_)))
            .count()
    }
}

/// Violations found by [`verify_safe_sequence`].
#[derive(Clone, Debug)]
pub struct SafetyViolation {
    pub seq: usize,
    pub description: String,
}

/// Replay the disclosure sequence and check the paper's safety invariant:
/// every disclosure's evidence must consist of items available to the
/// discloser *before* that step — initial knowledge, or rules/answers
/// received in strictly earlier steps.
pub fn verify_safe_sequence(outcome: &NegotiationOutcome) -> Result<(), Vec<SafetyViolation>> {
    let mut violations = Vec::new();

    for d in &outcome.disclosures {
        for ev in &d.evidence {
            match ev {
                Evidence::Initial(_) => {
                    // Initial knowledge is always admissible; faithfulness of
                    // the `Initial` tag is the session's responsibility and
                    // is covered by its own tests.
                }
                Evidence::ReceivedRule { from, rule } => {
                    let available = outcome.disclosures[..d.seq].iter().any(|e| {
                        e.to == d.from
                            && e.from == *from
                            && matches!(&e.item, DisclosedItem::SignedRule(sr)
                                        if sr.rule == *rule
                                           || sr.rule == rule.strip_contexts()
                                           // The sender-extended fact `head @ from`
                                           // recorded when a credential is received
                                           // is justified by the credential push.
                                           || crate::peer::sender_extended(&sr.rule, e.from)
                                                  .is_some_and(|ext| ext == *rule))
                    });
                    if !available {
                        violations.push(SafetyViolation {
                            seq: d.seq,
                            description: format!(
                                "disclosure {} by {} uses rule `{}` from {} not received earlier",
                                d.seq, d.from, rule, from
                            ),
                        });
                    }
                }
                Evidence::ReceivedAnswer { from, answer } => {
                    let available = outcome.disclosures[..d.seq].iter().any(|e| {
                        e.to == d.from
                            && e.from == *from
                            && matches!(&e.item, DisclosedItem::Answer(a) if a == answer)
                    });
                    if !available {
                        violations.push(SafetyViolation {
                            seq: d.seq,
                            description: format!(
                                "disclosure {} by {} uses answer `{}` from {} not received earlier",
                                d.seq, d.from, answer, from
                            ),
                        });
                    }
                }
            }
        }
    }

    // Sequence numbering must be consistent.
    for (i, d) in outcome.disclosures.iter().enumerate() {
        if d.seq != i {
            violations.push(SafetyViolation {
                seq: i,
                description: format!("sequence index mismatch: position {i} has seq {}", d.seq),
            });
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peertrust_core::Term;

    fn peer(n: &str) -> PeerId {
        PeerId::new(n)
    }

    fn cred(pred: &str, arg: &str, issuer: &str) -> SignedRule {
        SignedRule {
            rule: Rule::fact(Literal::new(pred, vec![Term::str(arg)])).signed_by(issuer),
            signatures: vec![[0u8; 32]],
        }
    }

    fn outcome_with(disclosures: Vec<Disclosure>) -> NegotiationOutcome {
        NegotiationOutcome {
            success: true,
            requester: peer("Alice"),
            responder: peer("E-Learn"),
            goal: Literal::truth(),
            granted: vec![],
            disclosures,
            refusals: vec![],
            messages: 0,
            bytes: 0,
            queries: 0,
            rounds: 0,
            elapsed_ticks: 0,
        }
    }

    #[test]
    fn empty_sequence_is_safe() {
        assert!(verify_safe_sequence(&outcome_with(vec![])).is_ok());
    }

    #[test]
    fn valid_chained_sequence_passes() {
        // E-Learn discloses its BBB membership (unconditional), then Alice
        // discloses her student ID citing it as evidence.
        let bbb = cred("member", "E-Learn", "BBB");
        let sid = cred("student", "Alice", "UIUC");
        let seq = vec![
            Disclosure {
                seq: 0,
                from: peer("E-Learn"),
                to: peer("Alice"),
                item: DisclosedItem::SignedRule(bbb.clone()),
                context: Context::public(),
                evidence: vec![],
            },
            Disclosure {
                seq: 1,
                from: peer("Alice"),
                to: peer("E-Learn"),
                item: DisclosedItem::SignedRule(sid),
                context: Context::public(),
                evidence: vec![Evidence::ReceivedRule {
                    from: peer("E-Learn"),
                    rule: bbb.rule.clone(),
                }],
            },
        ];
        assert!(verify_safe_sequence(&outcome_with(seq)).is_ok());
    }

    #[test]
    fn out_of_order_evidence_is_flagged() {
        let bbb = cred("member", "E-Learn", "BBB");
        let sid = cred("student", "Alice", "UIUC");
        // Alice's disclosure comes FIRST, citing evidence only delivered
        // later — unsafe.
        let seq = vec![
            Disclosure {
                seq: 0,
                from: peer("Alice"),
                to: peer("E-Learn"),
                item: DisclosedItem::SignedRule(sid),
                context: Context::public(),
                evidence: vec![Evidence::ReceivedRule {
                    from: peer("E-Learn"),
                    rule: bbb.rule.clone(),
                }],
            },
            Disclosure {
                seq: 1,
                from: peer("E-Learn"),
                to: peer("Alice"),
                item: DisclosedItem::SignedRule(bbb),
                context: Context::public(),
                evidence: vec![],
            },
        ];
        let violations = verify_safe_sequence(&outcome_with(seq)).unwrap_err();
        assert_eq!(violations.len(), 1);
        assert!(violations[0].description.contains("not received earlier"));
    }

    #[test]
    fn evidence_from_wrong_peer_is_flagged() {
        let bbb = cred("member", "E-Learn", "BBB");
        let sid = cred("student", "Alice", "UIUC");
        let seq = vec![
            Disclosure {
                seq: 0,
                from: peer("E-Learn"),
                to: peer("Alice"),
                item: DisclosedItem::SignedRule(bbb.clone()),
                context: Context::public(),
                evidence: vec![],
            },
            Disclosure {
                seq: 1,
                from: peer("Alice"),
                to: peer("E-Learn"),
                item: DisclosedItem::SignedRule(sid),
                context: Context::public(),
                // Claims the rule came from Mallory, who never sent it.
                evidence: vec![Evidence::ReceivedRule {
                    from: peer("Mallory"),
                    rule: bbb.rule.clone(),
                }],
            },
        ];
        assert!(verify_safe_sequence(&outcome_with(seq)).is_err());
    }

    #[test]
    fn answers_count_as_evidence() {
        let ans = Literal::new("member", vec![Term::str("E-Learn")]).at(Term::str("BBB"));
        let sid = cred("student", "Alice", "UIUC");
        let seq = vec![
            Disclosure {
                seq: 0,
                from: peer("E-Learn"),
                to: peer("Alice"),
                item: DisclosedItem::Answer(ans.clone()),
                context: Context::public(),
                evidence: vec![],
            },
            Disclosure {
                seq: 1,
                from: peer("Alice"),
                to: peer("E-Learn"),
                item: DisclosedItem::SignedRule(sid),
                context: Context::public(),
                evidence: vec![Evidence::ReceivedAnswer {
                    from: peer("E-Learn"),
                    answer: ans,
                }],
            },
        ];
        assert!(verify_safe_sequence(&outcome_with(seq)).is_ok());
    }

    #[test]
    fn seq_mismatch_detected() {
        let bbb = cred("member", "E-Learn", "BBB");
        let seq = vec![Disclosure {
            seq: 5,
            from: peer("E-Learn"),
            to: peer("Alice"),
            item: DisclosedItem::SignedRule(bbb),
            context: Context::public(),
            evidence: vec![],
        }];
        assert!(verify_safe_sequence(&outcome_with(seq)).is_err());
    }

    #[test]
    fn disclosed_by_and_credential_count() {
        let bbb = cred("member", "E-Learn", "BBB");
        let o = outcome_with(vec![Disclosure {
            seq: 0,
            from: peer("E-Learn"),
            to: peer("Alice"),
            item: DisclosedItem::SignedRule(bbb),
            context: Context::public(),
            evidence: vec![],
        }]);
        assert_eq!(o.disclosed_by(peer("E-Learn")).len(), 1);
        assert_eq!(o.disclosed_by(peer("Alice")).len(), 0);
        assert_eq!(o.credential_count(), 1);
    }
}

#[cfg(test)]
mod audit_tests {
    use super::*;
    use peertrust_core::Term;

    #[test]
    fn outcomes_serialize_as_audit_records() {
        let outcome = NegotiationOutcome {
            success: true,
            requester: PeerId::new("Alice"),
            responder: PeerId::new("E-Learn"),
            goal: Literal::new("resource", vec![Term::str("Alice")]),
            granted: vec![Literal::new("resource", vec![Term::str("Alice")])],
            disclosures: vec![Disclosure {
                seq: 0,
                from: PeerId::new("E-Learn"),
                to: PeerId::new("Alice"),
                item: DisclosedItem::Resource(Literal::new("resource", vec![Term::str("Alice")])),
                context: Context::public(),
                evidence: vec![Evidence::Initial(Rule::fact(Literal::truth()))],
            }],
            refusals: vec![Refusal {
                peer: PeerId::new("Alice"),
                requester: PeerId::new("E-Learn"),
                goal: Literal::truth(),
                reason: RefusalReason::ReleaseDenied,
            }],
            messages: 9,
            bytes: 773,
            queries: 3,
            rounds: 3,
            elapsed_ticks: 9,
        };
        let json = serde_json::to_string_pretty(&outcome).unwrap();
        assert!(json.contains("\"success\": true"));
        assert!(json.contains("ReleaseDenied"));
        let back: NegotiationOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back.messages, 9);
        assert_eq!(back.disclosures.len(), 1);
        assert_eq!(back.refusals[0].reason, RefusalReason::ReleaseDenied);
    }
}
