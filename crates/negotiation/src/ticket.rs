//! Access tokens (paper §3.1): *"For some services, the mechanism may
//! instead give Alice a nontransferable token that she can use to access
//! the service repeatedly without having to negotiate trust again until
//! the token expires."*
//!
//! A [`Ticket`] is a signed fact
//! `accessToken("Holder", resourceInstance, Expiry) signedBy [Issuer]`
//! minted by the responder after a successful negotiation. Redemption
//! checks, without any network traffic:
//!
//! * the signature (via the shared registry);
//! * the holder — tokens are **nontransferable**: only the named holder
//!   may redeem;
//! * the expiry against the current tick;
//! * the issuer's revocation list (tickets are serial-numbered
//!   credentials, so the §4.2 revocation machinery applies unchanged).

use crate::outcome::NegotiationOutcome;
use crate::peer::NegotiationPeer;
use peertrust_core::{Literal, PeerId, Rule, Term};
use peertrust_crypto::{sign_rule, verify_signed_rule, RevocationList, SignedRule, Tick};

/// A redeemable access token.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Ticket {
    /// Serial number (scope: the issuer's revocation list).
    pub serial: u64,
    /// The signed `accessToken(holder, resource, expiry)` fact.
    pub signed: SignedRule,
}

/// Why a redemption failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TicketError {
    /// The underlying signature did not verify.
    BadSignature,
    /// Presented by someone other than the named holder.
    WrongHolder { expected: PeerId, actual: PeerId },
    /// The token does not cover the requested resource.
    WrongResource,
    /// Past its expiry tick.
    Expired { expiry: Tick, now: Tick },
    /// On the issuer's revocation list.
    Revoked,
    /// The token fact is malformed.
    Malformed,
}

impl std::fmt::Display for TicketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TicketError::BadSignature => write!(f, "ticket signature does not verify"),
            TicketError::WrongHolder { expected, actual } => {
                write!(
                    f,
                    "ticket is nontransferable: held by {expected}, presented by {actual}"
                )
            }
            TicketError::WrongResource => write!(f, "ticket does not cover this resource"),
            TicketError::Expired { expiry, now } => {
                write!(f, "ticket expired at tick {expiry} (now {now})")
            }
            TicketError::Revoked => write!(f, "ticket has been revoked"),
            TicketError::Malformed => write!(f, "malformed ticket"),
        }
    }
}

impl std::error::Error for TicketError {}

/// The reserved token predicate.
pub const TOKEN_PREDICATE: &str = "accessToken";

/// Issue a ticket for a successful negotiation: the responder signs
/// `accessToken(requester, resource, expiry)`.
///
/// The issuer must be registered with the key registry (every negotiation
/// peer in the simulation is).
pub fn issue_ticket(
    issuer: &NegotiationPeer,
    outcome: &NegotiationOutcome,
    serial: u64,
    expiry: Tick,
) -> Result<Ticket, peertrust_crypto::SigError> {
    assert!(outcome.success, "tickets are only issued on success");
    let resource = outcome
        .granted
        .first()
        .expect("successful outcomes carry a grant");
    let fact = Rule::fact(Literal::new(
        TOKEN_PREDICATE,
        vec![
            Term::peer(outcome.requester),
            resource_term(resource),
            Term::int(expiry as i64),
        ],
    ))
    .signed_by(issuer.id.0);
    let signed = sign_rule(&issuer.registry, &fact)?;
    Ok(Ticket { serial, signed })
}

/// Redeem a ticket at the issuing peer: `presenter` asks for `resource`
/// at time `now`. No negotiation, no messages — just local checks.
pub fn redeem_ticket(
    issuer: &NegotiationPeer,
    revocations: &RevocationList,
    ticket: &Ticket,
    presenter: PeerId,
    resource: &Literal,
    now: Tick,
) -> Result<(), TicketError> {
    if verify_signed_rule(&issuer.registry, &ticket.signed).is_err() {
        return Err(TicketError::BadSignature);
    }
    let head = &ticket.signed.rule.head;
    if head.pred.as_str() != TOKEN_PREDICATE || head.args.len() != 3 {
        return Err(TicketError::Malformed);
    }
    let holder = head.args[0].as_peer().ok_or(TicketError::Malformed)?;
    if holder != presenter {
        return Err(TicketError::WrongHolder {
            expected: holder,
            actual: presenter,
        });
    }
    if head.args[1] != resource_term(resource) {
        return Err(TicketError::WrongResource);
    }
    let expiry = match head.args[2] {
        Term::Int(e) if e >= 0 => e as Tick,
        _ => return Err(TicketError::Malformed),
    };
    if now >= expiry {
        return Err(TicketError::Expired { expiry, now });
    }
    for ticket_issuer in ticket.signed.rule.issuers() {
        if revocations.is_revoked(ticket_issuer, ticket.serial) {
            return Err(TicketError::Revoked);
        }
    }
    Ok(())
}

/// Encode a granted resource literal as a single term (so it fits in one
/// token argument): `resource(args...)` becomes the compound term
/// `resource(args...)`, a zero-arity grant becomes an atom.
fn resource_term(resource: &Literal) -> Term {
    if resource.args.is_empty() {
        Term::atom(resource.pred.as_str())
    } else {
        Term::compound(resource.pred.as_str(), resource.args.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{negotiate, PeerMap, SessionConfig};
    use peertrust_crypto::KeyRegistry;
    use peertrust_net::{NegotiationId, SimNetwork};
    use peertrust_parser::parse_literal;

    fn setup() -> (PeerMap, NegotiationOutcome) {
        let registry = KeyRegistry::new();
        registry.register_derived(PeerId::new("UIUC"), 1);
        registry.register_derived(PeerId::new("Server"), 2);

        let mut peers = PeerMap::new();
        let mut server = NegotiationPeer::new("Server", registry.clone());
        server
            .load_program(r#"resource(X) $ true <- student(X) @ "UIUC" @ X."#)
            .unwrap();
        peers.insert(server);
        let mut alice = NegotiationPeer::new("Alice", registry);
        alice
            .load_program(
                r#"
                student("Alice") @ "UIUC" signedBy ["UIUC"].
                student(X) @ Y $ true <-_true student(X) @ Y.
                "#,
            )
            .unwrap();
        peers.insert(alice);

        let mut net = SimNetwork::new(21);
        let outcome = negotiate(
            &mut peers,
            &mut net,
            SessionConfig::default(),
            NegotiationId(1),
            PeerId::new("Alice"),
            PeerId::new("Server"),
            parse_literal(r#"resource("Alice")"#).unwrap(),
        );
        assert!(outcome.success);
        (peers, outcome)
    }

    #[test]
    fn issue_and_redeem_roundtrip() {
        let (peers, outcome) = setup();
        let server = peers.get(PeerId::new("Server")).unwrap();
        let ticket = issue_ticket(server, &outcome, 1, 100).unwrap();
        let crl = RevocationList::new();
        let resource = parse_literal(r#"resource("Alice")"#).unwrap();

        // Redemption needs zero messages and works repeatedly.
        for now in [0, 50, 99] {
            redeem_ticket(server, &crl, &ticket, PeerId::new("Alice"), &resource, now)
                .unwrap_or_else(|e| panic!("tick {now}: {e}"));
        }
    }

    #[test]
    fn tokens_are_nontransferable() {
        let (peers, outcome) = setup();
        let server = peers.get(PeerId::new("Server")).unwrap();
        let ticket = issue_ticket(server, &outcome, 1, 100).unwrap();
        let crl = RevocationList::new();
        let resource = parse_literal(r#"resource("Alice")"#).unwrap();
        let err = redeem_ticket(server, &crl, &ticket, PeerId::new("Mallory"), &resource, 10)
            .unwrap_err();
        assert!(matches!(err, TicketError::WrongHolder { .. }));
    }

    #[test]
    fn tokens_expire() {
        let (peers, outcome) = setup();
        let server = peers.get(PeerId::new("Server")).unwrap();
        let ticket = issue_ticket(server, &outcome, 1, 100).unwrap();
        let crl = RevocationList::new();
        let resource = parse_literal(r#"resource("Alice")"#).unwrap();
        assert_eq!(
            redeem_ticket(server, &crl, &ticket, PeerId::new("Alice"), &resource, 100),
            Err(TicketError::Expired {
                expiry: 100,
                now: 100
            })
        );
    }

    #[test]
    fn tokens_are_resource_scoped() {
        let (peers, outcome) = setup();
        let server = peers.get(PeerId::new("Server")).unwrap();
        let ticket = issue_ticket(server, &outcome, 1, 100).unwrap();
        let crl = RevocationList::new();
        let other = parse_literal(r#"resource("Bob")"#).unwrap();
        assert_eq!(
            redeem_ticket(server, &crl, &ticket, PeerId::new("Alice"), &other, 10),
            Err(TicketError::WrongResource)
        );
    }

    #[test]
    fn revoked_tokens_fail() {
        let (peers, outcome) = setup();
        let server = peers.get(PeerId::new("Server")).unwrap();
        let ticket = issue_ticket(server, &outcome, 77, 100).unwrap();
        let crl = RevocationList::new();
        crl.revoke(PeerId::new("Server"), 77);
        let resource = parse_literal(r#"resource("Alice")"#).unwrap();
        assert_eq!(
            redeem_ticket(server, &crl, &ticket, PeerId::new("Alice"), &resource, 10),
            Err(TicketError::Revoked)
        );
    }

    #[test]
    fn tampered_tokens_fail_signature() {
        let (peers, outcome) = setup();
        let server = peers.get(PeerId::new("Server")).unwrap();
        let mut ticket = issue_ticket(server, &outcome, 1, 100).unwrap();
        // Extend the expiry without re-signing.
        ticket.signed.rule.head.args[2] = Term::int(10_000);
        let crl = RevocationList::new();
        let resource = parse_literal(r#"resource("Alice")"#).unwrap();
        assert_eq!(
            redeem_ticket(server, &crl, &ticket, PeerId::new("Alice"), &resource, 10),
            Err(TicketError::BadSignature)
        );
    }

    #[test]
    fn redemption_is_cheaper_than_renegotiation() {
        // The paper's rationale: a token redemption is message-free.
        let (mut peers, outcome) = setup();
        let ticket = {
            let server = peers.get(PeerId::new("Server")).unwrap();
            issue_ticket(server, &outcome, 1, 1000).unwrap()
        };
        // Renegotiation costs messages every time...
        let mut net = SimNetwork::new(22);
        let again = negotiate(
            &mut peers,
            &mut net,
            SessionConfig::default(),
            NegotiationId(2),
            PeerId::new("Alice"),
            PeerId::new("Server"),
            parse_literal(r#"resource("Alice")"#).unwrap(),
        );
        assert!(again.success && again.messages > 0);
        // ...redemption costs none.
        let server = peers.get(PeerId::new("Server")).unwrap();
        let crl = RevocationList::new();
        let resource = parse_literal(r#"resource("Alice")"#).unwrap();
        redeem_ticket(server, &crl, &ticket, PeerId::new("Alice"), &resource, 5).unwrap();
    }
}
