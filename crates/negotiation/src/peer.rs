//! A negotiation peer: knowledge base + crypto identity + answering policy.
//!
//! A [`NegotiationPeer`] owns everything one party brings to a trust
//! negotiation (paper §2): its local rules and policies, cached signed
//! rules from other peers, the signatures backing its own credentials, and
//! the *effort policy* deciding which queries from which requesters it is
//! willing to answer at all (§3.2: "most peers will only be willing to
//! answer a few kinds of queries, and those only for a few kinds of
//! requesters").

use peertrust_core::{KnowledgeBase, Literal, PeerId, Rule, RuleId, Sym};
use peertrust_crypto::{sign_rule, verify_signed_rule, KeyRegistry, SigError, SignedRule};
use peertrust_engine::{CompiledKb, EngineConfig};
use peertrust_parser::{parse_program, ParseError};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Per-peer configuration.
#[derive(Clone, Debug)]
pub struct PeerConfig {
    /// Local inference engine settings.
    pub engine: EngineConfig,
    /// Require third-party answers to be re-derivable from pushed *signed*
    /// rules (the "certified proof" check). An answer from the authority
    /// itself is always accepted on message authentication alone.
    pub verify_answers: bool,
    /// Predicates this peer answers queries about; `None` = any.
    pub answerable: Option<HashSet<Sym>>,
    /// Requesters this peer refuses outright.
    pub deny_peers: HashSet<PeerId>,
    /// Forward signed rules received from third parties when they back an
    /// answer being relayed (credential-chain propagation). The paper's
    /// contexts are stripped on send, so re-dissemination control would
    /// need sticky policies (§3.1), which are out of scope; peers that
    /// must not relay can turn this off.
    pub relay_received: bool,
    /// Hard cap on queries answered within one negotiation (effort limit).
    pub max_queries_per_negotiation: u64,
}

impl Default for PeerConfig {
    fn default() -> Self {
        PeerConfig {
            engine: EngineConfig::default(),
            verify_answers: true,
            answerable: None,
            deny_peers: HashSet::new(),
            relay_received: true,
            max_queries_per_negotiation: 10_000,
        }
    }
}

/// Errors when loading rules or credentials into a peer.
#[derive(Debug)]
pub enum PeerError {
    Parse(ParseError),
    Sig(SigError),
}

impl std::fmt::Display for PeerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeerError::Parse(e) => write!(f, "{e}"),
            PeerError::Sig(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PeerError {}

impl From<ParseError> for PeerError {
    fn from(e: ParseError) -> Self {
        PeerError::Parse(e)
    }
}

impl From<SigError> for PeerError {
    fn from(e: SigError) -> Self {
        PeerError::Sig(e)
    }
}

/// The issuer-extended form of a signed fact — the paper's §3.2 axiom
/// converting `lit signedBy [A]` into `lit @ A`. `None` when the head
/// already carries the issuer as its outermost authority, when the rule
/// has a body, or when there is more than one issuer.
pub fn issuer_extended(rule: &Rule) -> Option<Rule> {
    if !rule.is_fact() || rule.signed_by.len() != 1 || !rule.head.is_ground() {
        return None;
    }
    let issuer = PeerId(rule.signed_by[0]);
    if rule.head.eval_peer() == Some(issuer) {
        return None;
    }
    Some(Rule::fact(
        rule.head.clone().at(peertrust_core::Term::peer(issuer)),
    ))
}

/// The sender-extended fact recorded alongside a received credential:
/// `head @ sender`, the receiver's note that `sender` asserted the
/// credential's content by sending it. `None` for non-credentials.
pub fn sender_extended(rule: &Rule, from: PeerId) -> Option<Rule> {
    rule.is_credential()
        .then(|| Rule::fact(rule.head.clone().at(peertrust_core::Term::peer(from))))
}

/// One party in trust negotiations.
///
/// `Clone` snapshots the peer. After [`NegotiationPeer::freeze`] the
/// snapshot is copy-on-write: the KB's frozen base segment, the frozen
/// signed-rule map, the registry and any compiled KB are all `Arc`-shared,
/// so cloning costs O(overlay) — a handful of pointer bumps for a peer
/// that has not changed since the freeze. The batch scheduler and the
/// open-loop serving driver freeze the peer map once at setup and then
/// clone it per job/session; each negotiation mutates only its own
/// overlay (disclosed credentials, session state).
#[derive(Clone)]
pub struct NegotiationPeer {
    pub id: PeerId,
    pub kb: KnowledgeBase,
    pub config: PeerConfig,
    /// Trusted key registry (shared, simulated CA).
    pub registry: KeyRegistry,
    /// Signatures minted or received before the last [freeze], shared
    /// across clones. Keyed by rule id; only rules present in either
    /// signed map can be *pushed* to other peers.
    ///
    /// [freeze]: NegotiationPeer::freeze
    signed_base: Arc<HashMap<RuleId, SignedRule>>,
    /// Signatures added since the last freeze (disclosures received
    /// mid-session land here). Rule ids are fresh KB ids, so the two maps
    /// are disjoint by construction.
    signed_overlay: HashMap<RuleId, SignedRule>,
    /// Compiled (WAM-lite bytecode) view of `kb`, built once by
    /// [`NegotiationPeer::compile_policies`] and `Arc`-shared into every
    /// solver this peer runs. Credentials received mid-negotiation only
    /// *append* to the KB, so the artifact stays prefix-valid; the
    /// engine's fingerprint check makes a stale artifact harmless
    /// regardless.
    compiled: Option<Arc<CompiledKb>>,
}

impl NegotiationPeer {
    pub fn new(id: impl Into<PeerId>, registry: KeyRegistry) -> NegotiationPeer {
        NegotiationPeer {
            id: id.into(),
            kb: KnowledgeBase::new(),
            config: PeerConfig::default(),
            registry,
            signed_base: Arc::new(HashMap::new()),
            signed_overlay: HashMap::new(),
            compiled: None,
        }
    }

    pub fn with_config(mut self, config: PeerConfig) -> NegotiationPeer {
        self.config = config;
        self
    }

    /// Freeze this peer's mutable state into `Arc`-shared form: the KB's
    /// overlay folds into its frozen base ([`KnowledgeBase::freeze`]) and
    /// the signed-rule overlay folds into the shared signed map. After
    /// freezing, `clone` is O(1) and concurrent sessions share one copy
    /// of the rule store. Idempotent; call again after bulk setup growth.
    pub fn freeze(&mut self) {
        self.kb.freeze();
        if !self.signed_overlay.is_empty() {
            let mut base = Arc::try_unwrap(std::mem::take(&mut self.signed_base))
                .unwrap_or_else(|arc| (*arc).clone());
            base.extend(self.signed_overlay.drain());
            self.signed_base = Arc::new(base);
        }
    }

    /// Is all of this peer's rule/signature state already in the shared
    /// frozen base (both overlays empty)? Cloning a frozen peer is O(1),
    /// so batch drivers skip their setup copy when handed a pre-frozen
    /// map.
    pub fn is_frozen(&self) -> bool {
        self.kb.frozen_len() == self.kb.len() && self.signed_overlay.is_empty()
    }

    /// Compile this peer's current KB to the engine's WAM-lite bytecode
    /// form (see `peertrust_engine::compile`). Call after policy loading;
    /// every subsequent local solve dispatches over the compiled clauses,
    /// with rules appended later (pushed credentials) resolved
    /// interpretively behind them. Recompile after bulk KB growth to
    /// fold the new rules into the dispatch tables.
    pub fn compile_policies(&mut self) {
        self.compiled = Some(Arc::new(CompiledKb::compile(&self.kb)));
    }

    /// The compiled KB handle, if [`NegotiationPeer::compile_policies`]
    /// ran. Cheap to clone (`Arc`).
    pub fn compiled(&self) -> Option<Arc<CompiledKb>> {
        self.compiled.clone()
    }

    /// Add one local (unsigned) rule.
    pub fn add_rule(&mut self, rule: Rule) -> RuleId {
        debug_assert!(
            rule.signed_by.is_empty(),
            "use add_signed_rule/mint for signed rules"
        );
        self.kb.add_local(rule)
    }

    /// Parse and load a whole program of local rules. Rules carrying
    /// `signedBy` are minted (signed via the registry) so they can later be
    /// pushed; the issuers must be registered.
    pub fn load_program(&mut self, src: &str) -> Result<Vec<RuleId>, PeerError> {
        let rules = parse_program(src)?;
        let mut ids = Vec::new();
        for rule in rules {
            if rule.signed_by.is_empty() {
                ids.push(self.kb.add_local(rule));
            } else {
                ids.push(self.mint(rule)?);
            }
        }
        Ok(ids)
    }

    /// Sign `rule` with its declared issuers and store it with its
    /// signature. This is scenario setup's stand-in for "the issuer handed
    /// the holder this credential".
    pub fn mint(&mut self, rule: Rule) -> Result<RuleId, PeerError> {
        let signed = sign_rule(&self.registry, &rule)?;
        let id = self.kb.add_local(rule.clone());
        self.signed_overlay.insert(id, signed.clone());
        // §3.2 axiom: a signed fact also derives its `@ issuer` form. The
        // extension maps back to the same signature bundle, so pushing or
        // verifying either form ships the real credential.
        if let Some(ext) = issuer_extended(&rule) {
            if !self.kb.contains(&ext) {
                let eid = self.kb.add_local(ext);
                self.signed_overlay.insert(eid, signed);
            }
        }
        Ok(id)
    }

    /// Verify and accept a signed rule pushed by `from`. Duplicates are
    /// ignored. Returns `Ok(true)` if the rule was new.
    ///
    /// For credentials (ground signed facts) an additional *sender-extended*
    /// fact `head @ from` is recorded: by sending the credential, `from`
    /// itself asserted its content, which is exactly what authority chains
    /// ending in `@ Requester` (e.g. `member(Requester) @ "ELENA" @
    /// Requester`) ask for. The extended fact is unsigned and private; it
    /// only feeds local derivations.
    pub fn receive_signed(&mut self, signed: SignedRule, from: PeerId) -> Result<bool, PeerError> {
        self.receive_signed_mode(signed, from, false)
    }

    /// [`NegotiationPeer::receive_signed`] with sticky-policy support:
    /// when `sticky` is set, a head context attached to the received rule
    /// is *retained* — the paper's §3.1 sticky-policy sketch ("leaving
    /// contexts attached to literals and rules in messages ... so that a
    /// peer can control further dissemination of its released information
    /// in a non-adversarial environment"). The retained context then
    /// gates this peer's re-disclosure of the rule.
    pub fn receive_signed_mode(
        &mut self,
        signed: SignedRule,
        from: PeerId,
        sticky: bool,
    ) -> Result<bool, PeerError> {
        verify_signed_rule(&self.registry, &signed)?;
        // Contexts are the *sender's* release policies; by default the
        // paper strips them on the wire (§3.1) and so do we — whatever
        // arrives is normalized to its context-free form, which then falls
        // under the receiving peer's own (default-private) policies. In
        // sticky mode the head context survives and travels with the rule.
        let signed = if sticky {
            signed
        } else {
            SignedRule {
                rule: signed.rule.strip_contexts(),
                signatures: signed.signatures,
            }
        };
        if self.kb.contains(&signed.rule) {
            return Ok(false);
        }
        let id = self.kb.add_received(signed.rule.clone(), from);
        if let Some(extended) = sender_extended(&signed.rule, from) {
            self.kb.add_received_dedup(extended, from);
        }
        if let Some(ext) = issuer_extended(&signed.rule) {
            if !self.kb.contains(&ext) {
                let eid = self.kb.add_received(ext, from);
                self.signed_overlay.insert(eid, signed.clone());
            }
        }
        self.signed_overlay.insert(id, signed);
        Ok(true)
    }

    /// The stored signature bundle for a rule, if it is a pushable signed
    /// rule.
    pub fn signed_rule(&self, id: RuleId) -> Option<&SignedRule> {
        self.signed_overlay
            .get(&id)
            .or_else(|| self.signed_base.get(&id))
    }

    /// Look up the signature bundle by rule content (used when relaying
    /// rules recorded in a session ledger).
    pub fn signed_rule_for(&self, rule: &Rule) -> Option<&SignedRule> {
        self.signed_base
            .values()
            .chain(self.signed_overlay.values())
            .find(|sr| sr.rule == *rule)
    }

    /// All signed rules this peer could potentially disclose.
    pub fn disclosable_signed_rules(&self) -> impl Iterator<Item = (RuleId, &SignedRule)> {
        self.signed_base
            .iter()
            .chain(self.signed_overlay.iter())
            .map(|(id, s)| (*id, s))
    }

    /// Effort policy: will this peer even *consider* `goal` from
    /// `requester`? (Release policies are checked separately, per rule.)
    pub fn accepts_query(&self, requester: PeerId, goal: &Literal) -> bool {
        if self.config.deny_peers.contains(&requester) {
            return false;
        }
        match &self.config.answerable {
            None => true,
            Some(preds) => preds.contains(&goal.pred),
        }
    }

    /// A knowledge base containing only signature-backed rules (local
    /// minted + received, including their issuer-extended `lit @ A` forms)
    /// — the material admissible in a *certified* proof.
    pub fn signed_only_kb(&self) -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        for sr in self.kb.iter() {
            if self.signed_overlay.contains_key(&sr.id) || self.signed_base.contains_key(&sr.id) {
                kb.add_received(sr.rule.as_ref().clone(), self.id);
            }
        }
        kb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peertrust_core::Term;

    fn registry() -> KeyRegistry {
        let r = KeyRegistry::new();
        r.register_derived(PeerId::new("UIUC"), 1);
        r.register_derived(PeerId::new("BBB"), 2);
        r
    }

    #[test]
    fn load_program_mints_signed_rules() {
        let mut alice = NegotiationPeer::new("Alice", registry());
        let ids = alice
            .load_program(
                r#"
                student("Alice") @ "UIUC" signedBy ["UIUC"].
                email("Alice", "alice@uiuc.edu").
                "#,
            )
            .unwrap();
        assert_eq!(ids.len(), 2);
        assert!(alice.signed_rule(ids[0]).is_some());
        assert!(alice.signed_rule(ids[1]).is_none());
        assert_eq!(alice.disclosable_signed_rules().count(), 1);
    }

    #[test]
    fn minting_requires_registered_issuer() {
        let mut p = NegotiationPeer::new("P", registry());
        let err = p.load_program(r#"cred("x") signedBy ["Unknown CA"]."#);
        assert!(err.is_err());
    }

    #[test]
    fn receive_signed_verifies_and_dedups() {
        let reg = registry();
        let mut alice = NegotiationPeer::new("Alice", reg.clone());
        let id = alice
            .load_program(r#"student("Alice") @ "UIUC" signedBy ["UIUC"]."#)
            .unwrap()[0];
        let signed = alice.signed_rule(id).unwrap().clone();

        let mut elearn = NegotiationPeer::new("E-Learn", reg);
        assert!(elearn
            .receive_signed(signed.clone(), PeerId::new("Alice"))
            .unwrap());
        assert!(!elearn
            .receive_signed(signed.clone(), PeerId::new("Alice"))
            .unwrap());
        // Credential + its sender-extended fact.
        assert_eq!(elearn.kb.len(), 2);
        let extended =
            peertrust_parser::parse_literal(r#"student("Alice") @ "UIUC" @ "Alice""#).unwrap();
        assert!(elearn
            .kb
            .candidates(&extended)
            .any(|sr| sr.rule.head == extended));

        // Tampered rule is rejected.
        let mut bad = signed;
        bad.rule.head.args[0] = Term::str("Mallory");
        assert!(elearn.receive_signed(bad, PeerId::new("Alice")).is_err());
    }

    #[test]
    fn effort_policy_filters_queries() {
        let mut cfg = PeerConfig {
            answerable: Some([Sym::new("student")].into_iter().collect()),
            ..Default::default()
        };
        cfg.deny_peers.insert(PeerId::new("Mallory"));
        let p = NegotiationPeer::new("UIUC", registry()).with_config(cfg);

        let student_goal = Literal::new("student", vec![Term::var("X")]);
        let salary_goal = Literal::new("salary", vec![Term::var("X")]);
        assert!(p.accepts_query(PeerId::new("E-Learn"), &student_goal));
        assert!(!p.accepts_query(PeerId::new("E-Learn"), &salary_goal));
        assert!(!p.accepts_query(PeerId::new("Mallory"), &student_goal));
    }

    #[test]
    fn freeze_shares_kb_and_signed_map_across_clones() {
        let reg = registry();
        let mut alice = NegotiationPeer::new("Alice", reg.clone());
        let id = alice
            .load_program(r#"student("Alice") @ "UIUC" signedBy ["UIUC"]."#)
            .unwrap()[0];
        let disclosable = alice.disclosable_signed_rules().count();
        alice.freeze();
        alice.freeze(); // idempotent
        let clone = alice.clone();
        assert!(clone.kb.shares_base_with(&alice.kb));
        assert!(clone.signed_rule(id).is_some());
        assert_eq!(clone.disclosable_signed_rules().count(), disclosable);
        assert_eq!(clone.signed_only_kb().len(), alice.signed_only_kb().len());

        // Post-freeze receipts land in the clone's private overlay.
        let mut bob = NegotiationPeer::new("Bob", reg);
        let bid = bob
            .load_program(r#"member("Bob") @ "BBB" signedBy ["BBB"]."#)
            .unwrap()[0];
        let pushed = bob.signed_rule(bid).unwrap().clone();
        let mut grown = alice.clone();
        assert!(grown.receive_signed(pushed, PeerId::new("Bob")).unwrap());
        assert!(grown.disclosable_signed_rules().count() > disclosable);
        assert_eq!(
            alice.disclosable_signed_rules().count(),
            disclosable,
            "original unchanged"
        );
        assert!(grown.kb.shares_base_with(&alice.kb), "base still shared");
    }

    #[test]
    fn signed_only_kb_excludes_unsigned() {
        let mut alice = NegotiationPeer::new("Alice", registry());
        alice
            .load_program(
                r#"
                student("Alice") @ "UIUC" signedBy ["UIUC"].
                plain(1).
                "#,
            )
            .unwrap();
        let signed_kb = alice.signed_only_kb();
        assert_eq!(signed_kb.len(), 1);
    }
}
