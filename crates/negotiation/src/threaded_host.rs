//! Running an eager negotiation over the *threaded* transport.
//!
//! The deterministic simulated network is what the experiments measure;
//! this module demonstrates that the protocol itself is not an artifact of
//! deterministic scheduling: each principal runs on its own OS thread and
//! all traffic flows through `peertrust-net`'s crossbeam router, exactly
//! like the 2004 prototype's socket peers.
//!
//! The wire protocol is turn-based eager disclosure:
//!
//! 1. the requester sends `Query{goal}`;
//! 2. the parties alternate `CredentialPush` messages (possibly with zero
//!    rules — an explicit "my turn, nothing new" marker);
//! 3. after each inbound push the responder checks whether it can derive
//!    *and license* the goal locally; if so it replies `Answers{granted}`;
//! 4. two consecutive empty pushes mean the disclosure fixpoint was
//!    reached without success: the responder replies `Answers{[]}`.

use crate::eager::grantable_locally_for_host;
use crate::outcome::{DisclosedItem, Disclosure};
use crate::peer::NegotiationPeer;
use peertrust_core::{Context, Literal, PeerId};
use peertrust_crypto::SignedRule;
use peertrust_net::{
    channel_network, Endpoint, Message, MessageId, NegotiationId, Payload, QueryId, TraceContext,
};
use std::time::Duration;

/// Causal coordinates for threaded-host message `n`: every frame belongs
/// to trace 1 (the single negotiation), gets a span id derived from its
/// message number (requester numbers from 0, responder from 1000, so ids
/// never collide across the two threads), and parents on the notional
/// root span 1. Deterministic by construction — no shared counter.
fn wire_trace(n: u64) -> TraceContext {
    TraceContext {
        trace_id: 1,
        span_id: n + 2,
        parent_span_id: 1,
    }
}

/// Why a threaded negotiation did not grant the resource.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadedFailure {
    /// The disclosure fixpoint was reached without deriving the goal —
    /// the protocol's negative answer (`Answers{[]}`).
    Fixpoint,
    /// The requester's receive timer expired before any answer arrived
    /// (peer hung, died, or the derivation outlived
    /// [`ThreadedConfig::timeout`]).
    Timeout,
}

/// Result of a threaded negotiation.
#[derive(Debug)]
pub struct ThreadedOutcome {
    pub success: bool,
    pub granted: Vec<Literal>,
    /// Messages routed by the router thread.
    pub messages_routed: u64,
    /// Credentials each side disclosed.
    pub disclosures: Vec<Disclosure>,
    /// `None` on success; on failure, which way it failed.
    pub failure: Option<ThreadedFailure>,
}

/// Tuning for the threaded transport.
#[derive(Clone, Copy, Debug)]
pub struct ThreadedConfig {
    /// How long either loop waits on its inbox before giving up. The
    /// requester reports expiry as [`ThreadedFailure::Timeout`].
    pub timeout: Duration,
}

impl Default for ThreadedConfig {
    fn default() -> ThreadedConfig {
        ThreadedConfig {
            timeout: Duration::from_secs(10),
        }
    }
}

/// Run one eager negotiation with each peer on its own thread.
///
/// Consumes the two peers (they move into their threads) and returns the
/// outcome observed by the requester plus router statistics.
pub fn negotiate_threaded(
    requester: NegotiationPeer,
    responder: NegotiationPeer,
    goal: Literal,
) -> ThreadedOutcome {
    negotiate_threaded_with(requester, responder, goal, ThreadedConfig::default())
}

/// [`negotiate_threaded`] with an explicit [`ThreadedConfig`] (notably a
/// non-default timeout).
pub fn negotiate_threaded_with(
    requester: NegotiationPeer,
    responder: NegotiationPeer,
    goal: Literal,
    cfg: ThreadedConfig,
) -> ThreadedOutcome {
    let req_id = requester.id;
    let resp_id = responder.id;
    let (mut endpoints, router) = channel_network(&[req_id, resp_id]);
    let req_ep = endpoints.remove(&req_id).expect("requester endpoint");
    let resp_ep = endpoints.remove(&resp_id).expect("responder endpoint");

    let goal_clone = goal.clone();
    let responder_thread = std::thread::Builder::new()
        .name(format!("peer-{resp_id}"))
        .stack_size(8 << 20)
        .spawn(move || responder_loop(responder, resp_ep, req_id, cfg))
        .expect("spawn responder");

    let requester_thread = std::thread::Builder::new()
        .name(format!("peer-{req_id}"))
        .stack_size(8 << 20)
        .spawn(move || requester_loop(requester, req_ep, resp_id, goal_clone, cfg))
        .expect("spawn requester");

    let (granted, req_disclosures, timed_out) = requester_thread.join().expect("requester thread");
    let resp_disclosures = responder_thread.join().expect("responder thread");

    let mut disclosures = req_disclosures;
    disclosures.extend(resp_disclosures);
    for (i, d) in disclosures.iter_mut().enumerate() {
        d.seq = i;
    }

    let messages_routed = router.join();
    let success = !granted.is_empty();
    let failure = match (success, timed_out) {
        (true, _) => None,
        (false, true) => Some(ThreadedFailure::Timeout),
        (false, false) => Some(ThreadedFailure::Fixpoint),
    };
    ThreadedOutcome {
        success,
        granted,
        messages_routed,
        disclosures,
        failure,
    }
}

fn push_message(from: PeerId, to: PeerId, n: u64, rules: Vec<SignedRule>) -> Message {
    Message {
        id: MessageId(n),
        negotiation: NegotiationId(1),
        from,
        to,
        payload: Payload::CredentialPush { rules },
        hops: 0,
        trace: wire_trace(n),
    }
}

/// Compute the releasable-and-unsent credentials of `peer` for `other`.
fn new_disclosures(
    peer: &NegotiationPeer,
    other: PeerId,
    sent: &mut Vec<peertrust_core::Rule>,
) -> Vec<SignedRule> {
    let mut out = Vec::new();
    let mut rename = 0u32;
    for (_, sr) in peer.disclosable_signed_rules() {
        if sent.contains(&sr.rule) {
            continue;
        }
        if crate::eager::license_locally_for_host(peer, other, &sr.rule.head, &mut rename).is_some()
        {
            sent.push(sr.rule.clone());
            out.push(sr.clone());
        }
    }
    out
}

fn requester_loop(
    mut peer: NegotiationPeer,
    ep: Endpoint,
    responder: PeerId,
    goal: Literal,
    cfg: ThreadedConfig,
) -> (Vec<Literal>, Vec<Disclosure>, bool) {
    let me = peer.id;
    let mut sent: Vec<peertrust_core::Rule> = Vec::new();
    let mut disclosures = Vec::new();
    let mut msg_n = 0u64;

    // Kick off with the resource query plus the first disclosure turn.
    let _ = ep.send(Message {
        id: MessageId(msg_n),
        negotiation: NegotiationId(1),
        from: me,
        to: responder,
        payload: Payload::Query {
            id: QueryId(0),
            goal: goal.clone(),
        },
        hops: 0,
        trace: wire_trace(msg_n),
    });
    msg_n += 1;
    let pushes = new_disclosures(&peer, responder, &mut sent);
    record_pushes(&mut disclosures, me, responder, &pushes);
    let _ = ep.send(push_message(me, responder, msg_n, pushes));
    msg_n += 1;

    // Then alternate until the responder answers.
    loop {
        let Some(msg) = ep.recv_timeout(cfg.timeout) else {
            // Responder gone or still grinding: distinct from a protocol
            // fixpoint, which always arrives as an explicit `Answers{[]}`.
            return (Vec::new(), disclosures, true);
        };
        match msg.payload {
            Payload::Answers { answers, .. } => {
                return (answers, disclosures, false);
            }
            Payload::CredentialPush { rules } => {
                for sr in rules {
                    let _ = peer.receive_signed(sr, responder);
                }
                let pushes = new_disclosures(&peer, responder, &mut sent);
                record_pushes(&mut disclosures, me, responder, &pushes);
                let _ = ep.send(push_message(me, responder, msg_n, pushes));
                msg_n += 1;
            }
            _ => {}
        }
    }
}

fn responder_loop(
    mut peer: NegotiationPeer,
    ep: Endpoint,
    requester: PeerId,
    cfg: ThreadedConfig,
) -> Vec<Disclosure> {
    let me = peer.id;
    let mut sent: Vec<peertrust_core::Rule> = Vec::new();
    let mut disclosures = Vec::new();
    let mut msg_n = 1000u64;
    let mut goal: Option<Literal> = None;
    let mut quiet_turns = 0u32;

    loop {
        let Some(msg) = ep.recv_timeout(cfg.timeout) else {
            return disclosures;
        };
        match msg.payload {
            Payload::Query { goal: g, .. } => {
                goal = Some(g);
            }
            Payload::CredentialPush { rules } => {
                let inbound = rules.len();
                for sr in rules {
                    let _ = peer.receive_signed(sr, requester);
                }
                // Success check after absorbing the requester's turn.
                if let Some(g) = &goal {
                    if let Some(granted) = grantable_locally_for_host(&peer, requester, g) {
                        let _ = ep.send(Message {
                            id: MessageId(msg_n),
                            negotiation: NegotiationId(1),
                            from: me,
                            to: requester,
                            payload: Payload::Answers {
                                id: QueryId(0),
                                goal: g.clone(),
                                answers: granted,
                            },
                            hops: 0,
                            trace: wire_trace(msg_n),
                        });
                        return disclosures;
                    }
                }
                // Our disclosure turn.
                let pushes = new_disclosures(&peer, requester, &mut sent);
                if inbound == 0 && pushes.is_empty() {
                    quiet_turns += 1;
                } else {
                    quiet_turns = 0;
                }
                if quiet_turns >= 1 {
                    // Fixpoint without success: negotiation fails.
                    if let Some(g) = &goal {
                        let _ = ep.send(Message {
                            id: MessageId(msg_n),
                            negotiation: NegotiationId(1),
                            from: me,
                            to: requester,
                            payload: Payload::Answers {
                                id: QueryId(0),
                                goal: g.clone(),
                                answers: Vec::new(),
                            },
                            hops: 0,
                            trace: wire_trace(msg_n),
                        });
                    }
                    return disclosures;
                }
                record_pushes(&mut disclosures, me, requester, &pushes);
                let _ = ep.send(push_message(me, requester, msg_n, pushes));
                msg_n += 1;
            }
            _ => {}
        }
    }
}

fn record_pushes(
    disclosures: &mut Vec<Disclosure>,
    from: PeerId,
    to: PeerId,
    pushes: &[SignedRule],
) {
    for sr in pushes {
        disclosures.push(Disclosure {
            seq: 0, // renumbered after the join
            from,
            to,
            item: DisclosedItem::SignedRule(sr.clone()),
            context: Context::public(),
            evidence: Vec::new(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peertrust_crypto::KeyRegistry;
    use peertrust_parser::parse_literal;

    fn registry() -> KeyRegistry {
        let r = KeyRegistry::new();
        r.register_derived(PeerId::new("UIUC"), 1);
        r.register_derived(PeerId::new("BBB"), 2);
        r
    }

    #[test]
    fn threaded_bilateral_negotiation_succeeds() {
        let reg = registry();
        let mut server = NegotiationPeer::new("T-Server", reg.clone());
        server
            .load_program(
                r#"
                resource(X) $ true <- student(X) @ "UIUC" @ X.
                member("T-Server") @ "BBB" $ true signedBy ["BBB"].
                "#,
            )
            .unwrap();
        let mut alice = NegotiationPeer::new("T-Alice", reg);
        alice
            .load_program(
                r#"
                student("T-Alice") @ "UIUC" signedBy ["UIUC"].
                student(X) @ Y $ member(Requester) @ "BBB" @ Requester <-_true student(X) @ Y.
                "#,
            )
            .unwrap();

        let out = negotiate_threaded(
            alice,
            server,
            parse_literal(r#"resource("T-Alice")"#).unwrap(),
        );
        assert!(out.success, "disclosures: {:#?}", out.disclosures);
        assert!(out.messages_routed >= 4);
        assert_eq!(
            out.disclosures.len(),
            2,
            "disclosures: {:#?}",
            out.disclosures
                .iter()
                .map(|d| format!("{} -> {}: {:?}", d.from, d.to, d.item.kind()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn threaded_negotiation_fails_finitely() {
        let reg = registry();
        let mut server = NegotiationPeer::new("F-Server", reg.clone());
        server
            .load_program(r#"resource(X) $ true <- impossible(X)."#)
            .unwrap();
        let client = NegotiationPeer::new("F-Client", reg);

        let out = negotiate_threaded(
            client,
            server,
            parse_literal(r#"resource("F-Client")"#).unwrap(),
        );
        assert!(!out.success);
        assert_eq!(
            out.failure,
            Some(ThreadedFailure::Fixpoint),
            "an explicit empty answer is a fixpoint, not a timeout"
        );
    }

    #[test]
    fn expiry_is_reported_as_timeout() {
        // The responder's derivation is combinatorial (20^4 bindings all
        // failing on `never(A)`), taking far longer than the 5ms timeout,
        // so the requester's timer deterministically expires first —
        // distinguishable from the fixpoint failure above.
        let reg = registry();
        let mut server = NegotiationPeer::new("S-Server", reg.clone());
        let mut program = String::from("resource(X) $ true <- n(A), n(B), n(C), n(D), never(A).\n");
        for i in 0..20 {
            program.push_str(&format!("n(\"v{i}\").\n"));
        }
        server.load_program(&program).unwrap();
        let client = NegotiationPeer::new("S-Client", reg);

        let out = negotiate_threaded_with(
            client,
            server,
            parse_literal(r#"resource("S-Client")"#).unwrap(),
            ThreadedConfig {
                timeout: Duration::from_millis(5),
            },
        );
        assert!(!out.success);
        assert_eq!(out.failure, Some(ThreadedFailure::Timeout));
    }
}
