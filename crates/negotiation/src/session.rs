//! The backward-chaining (parsimonious) negotiation driver.
//!
//! This is the run-time system of paper §4: a negotiation starts when one
//! peer requests a resource of another; the responder evaluates its policy
//! with the SLD engine, and every body literal routed to another peer
//! (`lit @ OtherPeer`, outermost authority first) becomes a network *query*
//! — possibly back to the requester, which is how bilateral, iterative
//! disclosure arises. Answers are accompanied by pushes of the signed
//! rules that certify them, each gated by its release policy.
//!
//! Release enforcement: a solution for a queried goal is sent to requester
//! `R` only if the *root* rule of its proof has a head context (`$ ctx`)
//! that is either public or derivable with `Requester = R` — context goals
//! are themselves evaluated with the same distributed machinery, so
//! proving a release policy can trigger counter-queries (E-Learn proving
//! its BBB membership to Alice before Alice's student ID is released).
//! The paper's default applies: no context means `Requester = Self`,
//! i.e. never released.
//!
//! The driver records the full disclosure sequence with evidence, so
//! [`crate::outcome::verify_safe_sequence`] can replay and check the
//! safety invariant, and it enforces the termination guards of experiment
//! E11: hop-depth budget, per-peer query budgets, and cycle detection on
//! in-flight query variants.

use crate::answer_cache::{CacheKey, RemoteAnswerCache, SharedRemoteAnswerCache};
use crate::gem::{GemEdge, GemState};
use crate::outcome::{
    DisclosedItem, Disclosure, Evidence, NegotiationOutcome, Refusal, RefusalReason,
};
use crate::peer::NegotiationPeer;
use crate::resilience::{ResilienceConfig, ResilienceFailure, ResilienceReport, ResilienceState};
use peertrust_core::{Context, KnowledgeBase, Literal, PeerId, Subst};
use peertrust_crypto::SignedRule;
use peertrust_engine::{canonicalize, Proof, ProofStep, RemoteHook, Solver};
use peertrust_net::{
    MessageFate, MessageId, NegotiationId, Payload, QueryId, SimNetwork, TraceContext,
};
use peertrust_telemetry::{Field, SpanId, Telemetry};
use std::collections::HashMap;

/// The collection of peers participating in negotiations.
#[derive(Clone, Default)]
pub struct PeerMap {
    map: HashMap<PeerId, NegotiationPeer>,
}

impl PeerMap {
    pub fn new() -> PeerMap {
        PeerMap::default()
    }

    pub fn insert(&mut self, peer: NegotiationPeer) {
        self.map.insert(peer.id, peer);
    }

    pub fn get(&self, id: PeerId) -> Option<&NegotiationPeer> {
        self.map.get(&id)
    }

    pub fn get_mut(&mut self, id: PeerId) -> Option<&mut NegotiationPeer> {
        self.map.get_mut(&id)
    }

    pub fn contains(&self, id: PeerId) -> bool {
        self.map.contains_key(&id)
    }

    pub fn ids(&self) -> Vec<PeerId> {
        let mut v: Vec<PeerId> = self.map.keys().copied().collect();
        v.sort();
        v
    }

    /// Freeze every peer's mutable state into `Arc`-shared form (see
    /// [`NegotiationPeer::freeze`]). Afterwards `clone` is O(#peers)
    /// pointer bumps instead of O(total KB) — the batch scheduler and the
    /// serving driver call this once at setup so per-job pristine
    /// snapshots stop deep-copying the rule stores. Idempotent.
    pub fn freeze(&mut self) {
        for peer in self.map.values_mut() {
            peer.freeze();
        }
    }

    /// Is every peer fully frozen (see [`NegotiationPeer::is_frozen`])?
    pub fn is_frozen(&self) -> bool {
        self.map.values().all(NegotiationPeer::is_frozen)
    }

    /// Do every one of `self`'s peers share their frozen KB base with the
    /// corresponding peer in `other`? A deterministic structural check
    /// that a clone of a frozen map was copy-on-write (no deep KB copy);
    /// the serving driver counts violations into
    /// `negotiation.serve.base_clones`.
    pub fn shares_frozen_bases_with(&self, other: &PeerMap) -> bool {
        self.map.iter().all(|(id, peer)| {
            other
                .get(*id)
                .is_some_and(|o| peer.kb.shares_base_with(&o.kb))
        })
    }
}

/// Session-level guard configuration.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Maximum nesting of inter-peer queries within one negotiation.
    pub max_hop_depth: u32,
    /// If set, only push signed rules whose *own* head context is
    /// explicitly satisfied for the recipient, instead of licensing the
    /// whole certified proof by the released answer's context.
    pub strict_push_release: bool,
    /// Counterfactual overrides used by the failure analysis (paper §6):
    /// `(peer, literal)` pairs for which the peer's release check is
    /// forced to grant. Empty in normal operation.
    pub release_overrides: Vec<(PeerId, Literal)>,
    /// Sticky policies (paper §3.1 sketch): keep release contexts attached
    /// to pushed rules, and make relays re-check the originator's context
    /// against each new recipient. Off by default (contexts stripped on
    /// the wire, per the paper's main line).
    pub sticky_policies: bool,
    /// Answer repeated `(requester, responder, canonical goal)` queries
    /// from a per-session memo instead of re-sending them over the
    /// network. Only non-empty answer sets are memoized (disclosure sets
    /// grow monotonically, so a failed query may succeed later).
    pub cache_remote_answers: bool,
    /// GEM-style distributed tabling (see [`crate::gem`]): cross-peer
    /// delegation loops are resolved by iterated answer propagation over
    /// per-peer goal tables instead of refused with
    /// [`RefusalReason::CycleDetected`]. Off by default — the classical
    /// refusal semantics (experiment E11) are preserved, and the enabled
    /// path is bit-identical on acyclic workloads (the GEM branch only
    /// fires when a query variant is already in flight).
    pub gem: bool,
    /// Bound on GEM fixpoint rounds per strongly connected component.
    /// Hitting it records a [`RefusalReason::GemRoundLimit`] refusal and
    /// proceeds with the (sound but possibly incomplete) tables. Each
    /// round can only add finitely many released instances, so meshes of
    /// chain length `k` converge within `k + 1` rounds.
    pub gem_max_rounds: u32,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            // A chain of k interlocked release policies nests ~2k queries
            // (each link: one delegated goal + one counter-query for its
            // release context); 128 accommodates the deepest experiment
            // sweeps (E3 goes to depth 48).
            max_hop_depth: 128,
            strict_push_release: false,
            release_overrides: Vec::new(),
            sticky_policies: false,
            cache_remote_answers: true,
            gem: false,
            gem_max_rounds: 16,
        }
    }
}

/// Run one parsimonious negotiation: `requester` asks `responder` to
/// establish `goal` (the resource request).
pub fn negotiate(
    peers: &mut PeerMap,
    net: &mut SimNetwork,
    cfg: SessionConfig,
    nid: NegotiationId,
    requester: PeerId,
    responder: PeerId,
    goal: Literal,
) -> NegotiationOutcome {
    negotiate_traced(
        peers,
        net,
        cfg,
        nid,
        requester,
        responder,
        goal,
        &Telemetry::disabled(),
    )
}

/// [`negotiate`] with a telemetry pipeline: the negotiation becomes a
/// `negotiation` span, every query/disclosure/refusal an event linked to
/// it by negotiation id, and per-peer counters accumulate in the metrics
/// registry. With `Telemetry::disabled()` this is exactly [`negotiate`].
#[allow(clippy::too_many_arguments)]
pub fn negotiate_traced(
    peers: &mut PeerMap,
    net: &mut SimNetwork,
    cfg: SessionConfig,
    nid: NegotiationId,
    requester: PeerId,
    responder: PeerId,
    goal: Literal,
    telemetry: &Telemetry,
) -> NegotiationOutcome {
    negotiate_with_cache(
        peers,
        net,
        cfg,
        nid,
        requester,
        responder,
        goal,
        CacheRef::None,
        None,
        telemetry,
    )
    .0
}

/// [`negotiate_traced`] backed by a shared cross-negotiation
/// [`RemoteAnswerCache`]: delegated queries whose (public, verified)
/// answers were cached by an earlier negotiation are answered locally
/// instead of crossing the network. See `crate::answer_cache` for the
/// freshness and soundness rules.
#[allow(clippy::too_many_arguments)]
pub fn negotiate_cached(
    peers: &mut PeerMap,
    net: &mut SimNetwork,
    cfg: SessionConfig,
    nid: NegotiationId,
    requester: PeerId,
    responder: PeerId,
    goal: Literal,
    cache: &mut RemoteAnswerCache,
    telemetry: &Telemetry,
) -> NegotiationOutcome {
    negotiate_with_cache(
        peers,
        net,
        cfg,
        nid,
        requester,
        responder,
        goal,
        CacheRef::Exclusive(cache),
        None,
        telemetry,
    )
    .0
}

/// [`negotiate_cached`] against a thread-safe
/// [`SharedRemoteAnswerCache`]: the same semantics, but the cache can be
/// shared with sessions running concurrently on other threads (the batch
/// scheduler's warm-cache mode).
#[allow(clippy::too_many_arguments)]
pub fn negotiate_shared_cached(
    peers: &mut PeerMap,
    net: &mut SimNetwork,
    cfg: SessionConfig,
    nid: NegotiationId,
    requester: PeerId,
    responder: PeerId,
    goal: Literal,
    cache: &SharedRemoteAnswerCache,
    telemetry: &Telemetry,
) -> NegotiationOutcome {
    negotiate_with_cache(
        peers,
        net,
        cfg,
        nid,
        requester,
        responder,
        goal,
        CacheRef::Shared(cache),
        None,
        telemetry,
    )
    .0
}

/// How a session reaches the cross-negotiation answer cache: not at all,
/// through an exclusive borrow (single-threaded `negotiate_cached`), or
/// through a thread-safe shared handle (`negotiate_shared_cached`). The
/// enum keeps one `Session` implementation serving both regimes.
pub(crate) enum CacheRef<'a> {
    None,
    Exclusive(&'a mut RemoteAnswerCache),
    Shared(&'a SharedRemoteAnswerCache),
}

impl CacheRef<'_> {
    fn is_attached(&self) -> bool {
        !matches!(self, CacheRef::None)
    }

    fn lookup(
        &mut self,
        requester: PeerId,
        responder: PeerId,
        canonical: &Literal,
        now: u64,
        responder_kb_len: usize,
    ) -> Option<Vec<Literal>> {
        match self {
            CacheRef::None => None,
            CacheRef::Exclusive(c) => {
                c.lookup(requester, responder, canonical, now, responder_kb_len)
            }
            CacheRef::Shared(c) => c.lookup(requester, responder, canonical, now, responder_kb_len),
        }
    }

    /// Insert, returning whether a cache was attached (for accounting).
    #[allow(clippy::too_many_arguments)]
    fn insert(
        &mut self,
        requester: PeerId,
        responder: PeerId,
        canonical: Literal,
        answers: Vec<Literal>,
        now: u64,
        responder_kb_len: usize,
    ) -> bool {
        match self {
            CacheRef::None => false,
            CacheRef::Exclusive(c) => {
                c.insert(
                    requester,
                    responder,
                    canonical,
                    answers,
                    now,
                    responder_kb_len,
                );
                true
            }
            CacheRef::Shared(c) => {
                c.insert(
                    requester,
                    responder,
                    canonical,
                    answers,
                    now,
                    responder_kb_len,
                );
                true
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn negotiate_with_cache(
    peers: &mut PeerMap,
    net: &mut SimNetwork,
    cfg: SessionConfig,
    nid: NegotiationId,
    requester: PeerId,
    responder: PeerId,
    goal: Literal,
    answer_cache: CacheRef<'_>,
    resilience: Option<ResilienceConfig>,
    telemetry: &Telemetry,
) -> (NegotiationOutcome, Option<ResilienceReport>) {
    // The pristine snapshot crash-resume restores from must predate any
    // disclosure of this session.
    let resilience = resilience.map(|rc| ResilienceState::new(rc, peers.clone()));
    let msgs0 = net.stats().messages_sent;
    let bytes0 = net.stats().bytes_sent;
    let queries0 = net.stats().queries;
    let tick0 = net.now();

    let span = telemetry.span_start(
        tick0,
        nid.0,
        "negotiation",
        vec![
            Field::str("requester", requester.to_string()),
            Field::str("responder", responder.to_string()),
            Field::str("goal", goal.to_string()),
        ],
    );

    let mut session = Session {
        peers,
        net,
        cfg,
        nid,
        next_query: 0,
        in_flight: Vec::new(),
        disclosures: Vec::new(),
        refusals: Vec::new(),
        answered: HashMap::new(),
        max_depth_seen: 0,
        rename_seq: 0,
        received_rules: HashMap::new(),
        received_answers: HashMap::new(),
        session_answers: HashMap::new(),
        answer_cache,
        resilience,
        telemetry: telemetry.clone(),
        span,
        trace_next: 1,
        trace_stack: Vec::new(),
        net_wait_ticks: 0,
        backoff_ticks: 0,
        gem: GemState::default(),
    };

    let root_span = session.trace_push("negotiation", requester, "root");
    let granted = session.request(requester, responder, goal.clone(), 0);
    let success = !granted.is_empty();
    if success {
        let seq = session.disclosures.len();
        session.record_disclosure(Disclosure {
            seq,
            from: responder,
            to: requester,
            item: DisclosedItem::Resource(granted[0].clone()),
            context: Context::public(),
            evidence: Vec::new(),
        });
    }
    session.trace_pop(root_span);

    let Session {
        disclosures,
        refusals,
        max_depth_seen,
        resilience,
        net_wait_ticks,
        backoff_ticks,
        ..
    } = session;
    let outcome = NegotiationOutcome {
        success,
        requester,
        responder,
        goal,
        granted,
        disclosures,
        refusals,
        messages: net.stats().messages_sent - msgs0,
        bytes: net.stats().bytes_sent - bytes0,
        queries: net.stats().queries - queries0,
        rounds: u64::from(max_depth_seen),
        elapsed_ticks: net.now() - tick0,
    };

    if telemetry.enabled() {
        record_outcome(telemetry, &outcome);
        // Per-phase latency breakdown: where the wall-clock ticks went.
        // Solve time is whatever is left once network waiting and retry
        // backoff are subtracted — the three observations sum to the
        // end-to-end duration.
        let solve = outcome
            .elapsed_ticks
            .saturating_sub(net_wait_ticks)
            .saturating_sub(backoff_ticks);
        telemetry.observe("negotiation.phase.net_wait_ticks", net_wait_ticks);
        telemetry.observe("negotiation.phase.backoff_ticks", backoff_ticks);
        telemetry.observe("negotiation.phase.solve_ticks", solve);
        telemetry.span_end(
            net.now(),
            span,
            nid.0,
            vec![
                Field::bool("success", outcome.success),
                Field::u64("disclosures", outcome.disclosures.len() as u64),
                Field::u64("refusals", outcome.refusals.len() as u64),
            ],
        );
    }
    (outcome, resilience.map(ResilienceState::into_report))
}

/// Flush outcome-level counters and histograms shared by both strategy
/// drivers.
pub(crate) fn record_outcome(telemetry: &Telemetry, outcome: &NegotiationOutcome) {
    telemetry.incr("negotiation.completed", 1);
    telemetry.incr(
        if outcome.success {
            "negotiation.success"
        } else {
            "negotiation.failure"
        },
        1,
    );
    telemetry.observe("negotiation.rounds", outcome.rounds);
    telemetry.observe("negotiation.wall_ticks", outcome.elapsed_ticks);
    telemetry.observe("negotiation.messages", outcome.messages);
}

/// The outcome of a release check.
enum Release {
    Granted {
        /// Licensing context instantiated for this requester (recorded in
        /// the disclosure sequence).
        context: Context,
        /// The licensing context with `Requester`/`Self` still symbolic —
        /// what travels with the rule under sticky policies.
        raw_context: Context,
        evidence: Vec<Evidence>,
    },
    Denied,
}

pub(crate) struct Session<'a> {
    pub(crate) peers: &'a mut PeerMap,
    pub(crate) net: &'a mut SimNetwork,
    cfg: SessionConfig,
    nid: NegotiationId,
    next_query: u64,
    /// (responder, canonical goal) pairs currently being requested.
    in_flight: Vec<(PeerId, Literal)>,
    pub(crate) disclosures: Vec<Disclosure>,
    pub(crate) refusals: Vec<Refusal>,
    answered: HashMap<PeerId, u64>,
    max_depth_seen: u32,
    /// Fresh-variable counter for standardize-apart in licensing scans.
    rename_seq: u32,
    /// Rules each peer received during this session (rule, sender).
    received_rules: HashMap<PeerId, Vec<(peertrust_core::Rule, PeerId)>>,
    /// Answers each peer received during this session (answer, sender).
    received_answers: HashMap<PeerId, Vec<(Literal, PeerId)>>,
    /// Per-session remote-answer memo: accepted answers keyed by
    /// (requester, responder, canonical goal). See `crate::answer_cache`.
    session_answers: HashMap<CacheKey, Vec<Literal>>,
    /// Optional shared cross-negotiation cache (public answers only).
    answer_cache: CacheRef<'a>,
    /// When attached, deliveries are supervised: deadlines, retries with
    /// backoff, duplicate suppression, crash-resume (see
    /// [`crate::resilience`]). `None` leaves the driver byte-identical to
    /// the historical synchronous behavior.
    resilience: Option<ResilienceState>,
    telemetry: Telemetry,
    /// The enclosing `negotiation` span (NONE when telemetry is off).
    span: SpanId,
    /// Next causal span id, local to this negotiation (the trace id is
    /// the negotiation id, so ids are deterministic across runs and
    /// worker counts). The root span is always 1.
    trace_next: u64,
    /// Open causal spans, innermost last; message sends parent on the top.
    trace_stack: Vec<u64>,
    /// Ticks spent waiting on the network (delivery pumping minus any
    /// backoff sleeps inside it), for the per-phase latency histograms.
    net_wait_ticks: u64,
    /// Ticks spent in deliberate retry backoff sleeps.
    backoff_ticks: u64,
    /// GEM distributed-tabling state: partial-answer tables and active
    /// cross-peer SCCs. Untouched unless [`SessionConfig::gem`] is on and
    /// a delegation loop actually closes.
    gem: GemState,
}

struct SessionHook<'s, 'a> {
    session: &'s mut Session<'a>,
    peer: PeerId,
    depth: u32,
}

impl RemoteHook for SessionHook<'_, '_> {
    fn resolve_remote(&mut self, peer: PeerId, inner: &Literal) -> Vec<Literal> {
        self.session
            .request(self.peer, peer, inner.clone(), self.depth + 1)
    }
}

impl<'a> Session<'a> {
    /// Append to the disclosure sequence, mirroring the entry into the
    /// telemetry pipeline (counter per item kind + a timeline event).
    fn record_disclosure(&mut self, d: Disclosure) {
        if self.telemetry.enabled() {
            let kind = match &d.item {
                DisclosedItem::Resource(_) => "resource",
                DisclosedItem::SignedRule(_) => "rule",
                DisclosedItem::Answer(_) => "answer",
                DisclosedItem::Policy(_) => "policy",
            };
            self.telemetry.incr("negotiation.disclosures", 1);
            self.telemetry
                .incr(&format!("negotiation.disclosures.{kind}"), 1);
            self.telemetry.event(
                self.net.now(),
                self.span,
                self.nid.0,
                "negotiation.disclosure",
                vec![
                    Field::u64("seq", d.seq as u64),
                    Field::str("from", d.from.to_string()),
                    Field::str("to", d.to.to_string()),
                    Field::str("kind", kind),
                ],
            );
        }
        self.disclosures.push(d);
    }

    /// Append to the refusal list, mirroring the entry into the telemetry
    /// pipeline (counter per [`RefusalReason`] + a timeline event).
    fn record_refusal(&mut self, r: Refusal) {
        if self.telemetry.enabled() {
            self.telemetry.incr("negotiation.refusals", 1);
            // Stable snake_case per-reason counter for dashboards and the
            // experiment gates. (The legacy Debug-named
            // `negotiation.refusals.{Reason}` series was retired in PR 10;
            // only the total above and the per-reason counters below are
            // emitted.)
            self.telemetry.incr(
                &format!("negotiation.refusal.{}", r.reason.metric_suffix()),
                1,
            );
            self.telemetry.event(
                self.net.now(),
                self.span,
                self.nid.0,
                "negotiation.refusal",
                vec![
                    Field::str("peer", r.peer.to_string()),
                    Field::str("requester", r.requester.to_string()),
                    Field::str("goal", r.goal.to_string()),
                    Field::str("reason", format!("{:?}", r.reason)),
                ],
            );
        }
        self.refusals.push(r);
    }

    /// Allocate the next causal span id (0 with telemetry off — no trace
    /// coordinates are emitted then, keeping the disabled path free).
    fn trace_alloc(&mut self) -> u64 {
        if !self.telemetry.enabled() {
            return 0;
        }
        let id = self.trace_next;
        self.trace_next += 1;
        id
    }

    /// The span new work should parent on: the innermost open span.
    fn trace_parent(&self) -> u64 {
        self.trace_stack.last().copied().unwrap_or(0)
    }

    /// Open a causal span: emit `trace.start` and make it the parent for
    /// nested spans and message sends until the matching [`Session::trace_pop`].
    fn trace_push(&mut self, name: &str, peer: PeerId, kind: &str) -> u64 {
        if !self.telemetry.enabled() {
            return 0;
        }
        let id = self.trace_alloc();
        let parent = self.trace_parent();
        self.telemetry.event(
            self.net.now(),
            SpanId::NONE,
            self.nid.0,
            "trace.start",
            vec![
                Field::u64("trace", self.nid.0),
                Field::u64("span", id),
                Field::u64("parent", parent),
                Field::str("name", name),
                Field::str("peer", peer.to_string()),
                Field::str("kind", kind),
            ],
        );
        self.trace_stack.push(id);
        id
    }

    /// Close a causal span opened by [`Session::trace_push`].
    fn trace_pop(&mut self, id: u64) {
        if !self.telemetry.enabled() {
            return;
        }
        self.telemetry.event(
            self.net.now(),
            SpanId::NONE,
            self.nid.0,
            "trace.end",
            vec![Field::u64("trace", self.nid.0), Field::u64("span", id)],
        );
        self.trace_stack.pop();
    }

    /// Trace coordinates for a message about to ship: a fresh span id
    /// parented on the innermost open span. Each physical send gets its
    /// own id (retries re-stamp via [`Session::trace_retry`]), so
    /// fault-lane duplicates and re-sends stay causally attributable.
    fn trace_msg(&mut self) -> TraceContext {
        if !self.telemetry.enabled() {
            return TraceContext::NONE;
        }
        TraceContext {
            trace_id: self.nid.0,
            span_id: self.trace_alloc(),
            parent_span_id: self.trace_parent(),
        }
    }

    /// Fresh coordinates for a retry of `original`: new span id, same
    /// parent — the retransmission is a sibling attempt, not a child of
    /// the lost one.
    fn trace_retry(&mut self, original: TraceContext) -> TraceContext {
        if original.is_none() {
            return TraceContext::NONE;
        }
        TraceContext {
            trace_id: original.trace_id,
            span_id: self.trace_alloc(),
            parent_span_id: original.parent_span_id,
        }
    }

    /// Drain `peer`'s inbox. In the baseline this is the single
    /// accounting poll the synchronous driver performs after a step; the
    /// resilient driver additionally filters already-seen message ids
    /// (fault-lane duplicates or retry races) and counts suppressions.
    fn drain_dedup(&mut self, peer: PeerId) {
        let msgs = self.net.poll(peer);
        if let Some(state) = self.resilience.as_mut() {
            for m in msgs {
                if !state.seen.insert(m.id) {
                    state.stats.duplicates_suppressed += 1;
                    self.telemetry
                        .incr("negotiation.resilience.duplicates_suppressed", 1);
                }
            }
        }
    }

    /// Resume peers whose crash window has closed: restore the pristine
    /// pre-negotiation snapshot and replay the disclosure log — every
    /// signed rule disclosed *to* the peer is received again, in original
    /// order — so the peer regains exactly the credentials it had
    /// acquired before the outage. Session answer memos are kept (the
    /// model's durable answer store).
    fn maybe_crash_resume(&mut self) {
        let Some(state) = self.resilience.as_ref() else {
            return;
        };
        let Some(plan) = self.net.fault_plan() else {
            return;
        };
        let now = self.net.now();
        let due: Vec<(usize, PeerId)> = plan
            .crashes
            .iter()
            .enumerate()
            .filter(|(i, w)| w.until <= now && !state.resumed.contains(i))
            .map(|(i, w)| (i, w.peer))
            .collect();
        let sticky = self.cfg.sticky_policies;
        for (idx, peer) in due {
            let pristine = self
                .resilience
                .as_ref()
                .and_then(|s| s.pristine.get(peer))
                .cloned();
            if let Some(snapshot) = pristine {
                if let Some(slot) = self.peers.get_mut(peer) {
                    *slot = snapshot;
                    let replay: Vec<(SignedRule, PeerId)> = self
                        .disclosures
                        .iter()
                        .filter(|d| d.to == peer)
                        .filter_map(|d| match &d.item {
                            DisclosedItem::SignedRule(sr) => Some((sr.clone(), d.from)),
                            _ => None,
                        })
                        .collect();
                    for (sr, sender) in replay {
                        let _ = self
                            .peers
                            .get_mut(peer)
                            .expect("peer exists")
                            .receive_signed_mode(sr, sender, sticky);
                    }
                }
            }
            let state = self.resilience.as_mut().expect("resilient");
            state.resumed.insert(idx);
            state.stats.crash_resumes += 1;
            self.telemetry
                .incr("negotiation.resilience.crash_resumes", 1);
            if self.telemetry.enabled() {
                self.telemetry.event(
                    now,
                    self.span,
                    self.nid.0,
                    "negotiation.crash_resume",
                    vec![Field::str("peer", peer.to_string())],
                );
            }
        }
    }

    /// Complete delivery of a just-sent message: pump the simulated
    /// network and hand the message to `recipient`'s inbox. In the
    /// baseline this is exactly one `step` + one accounting `poll` (the
    /// synchronous driver's contract, kept bit-identical). With
    /// resilience attached the delivery is supervised: wait for the
    /// message's fate up to the deadline, re-send with exponential
    /// backoff on loss or timeout, suppress duplicates, and resume
    /// crashed peers. Returns `false` only after recording a
    /// [`ResilienceFailure`] — there is no non-terminating path.
    #[allow(clippy::too_many_arguments)]
    fn finish_delivery(
        &mut self,
        first_id: MessageId,
        sender: PeerId,
        recipient: PeerId,
        payload: &Payload,
        depth: u32,
        kind: &'static str,
        trace: TraceContext,
    ) -> bool {
        // Everything spent in here is network time — except deliberate
        // backoff sleeps, which the inner loop books separately.
        let t0 = self.net.now();
        let b0 = self.backoff_ticks;
        let ok =
            self.finish_delivery_inner(first_id, sender, recipient, payload, depth, kind, trace);
        let waited = (self.net.now() - t0).saturating_sub(self.backoff_ticks - b0);
        self.net_wait_ticks += waited;
        ok
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_delivery_inner(
        &mut self,
        first_id: MessageId,
        sender: PeerId,
        recipient: PeerId,
        payload: &Payload,
        depth: u32,
        kind: &'static str,
        trace: TraceContext,
    ) -> bool {
        // Supervision needs per-message fates, which only a fault lane
        // tracks; without one (or without a resilience config) fall back
        // to the unsupervised one-step contract.
        if self.resilience.is_none() || self.net.fault_plan().is_none() {
            self.net.step();
            let _ = self.net.poll(recipient);
            return true;
        }
        let cfg = self.resilience.as_ref().expect("resilient").cfg.clone();
        let deadline = self.net.now() + cfg.query_deadline_ticks;
        let mut current = first_id;
        let mut attempts: u32 = 0;
        loop {
            // Pump until the attempt's fate is known or the deadline bars
            // further progress.
            let arrived = loop {
                match self.net.fate(current) {
                    Some(MessageFate::Delivered) | None => break true,
                    Some(MessageFate::Dropped(_)) => break false,
                    Some(MessageFate::InFlight) => match self.net.next_tick() {
                        Some(t) if t <= deadline => {
                            self.net.step();
                        }
                        _ => break false,
                    },
                }
            };
            if arrived {
                self.drain_dedup(recipient);
                self.maybe_crash_resume();
                return true;
            }
            // Lost, corrupted, crashed into, or too slow for the deadline.
            self.resilience.as_mut().expect("resilient").stats.timeouts += 1;
            self.telemetry.incr("negotiation.resilience.timeouts", 1);
            let now = self.net.now();
            if now >= deadline {
                return self.give_up(ResilienceFailure::DeadlineExceeded {
                    peer: recipient,
                    kind: kind.to_string(),
                    at: now,
                });
            }
            if attempts >= cfg.max_retries {
                return self.give_up(ResilienceFailure::RetryBudgetExhausted {
                    peer: recipient,
                    kind: kind.to_string(),
                    attempts,
                });
            }
            attempts += 1;
            self.resilience.as_mut().expect("resilient").stats.retries += 1;
            self.telemetry.incr("negotiation.resilience.retries", 1);
            if self.telemetry.enabled() {
                self.telemetry.event(
                    now,
                    self.span,
                    self.nid.0,
                    "negotiation.retry",
                    vec![
                        Field::str("kind", kind),
                        Field::str("to", recipient.to_string()),
                        Field::u64("attempt", u64::from(attempts)),
                    ],
                );
            }
            // Deterministic exponential backoff, never past the deadline
            // (the shift is clamped: the cap takes over long before it
            // could overflow).
            let backoff = (cfg.backoff_base << (attempts - 1).min(16)).min(cfg.backoff_cap);
            let bspan = self.trace_push(&format!("backoff {kind}"), sender, "backoff");
            let b0 = self.net.now();
            self.net.advance_to((now + backoff).min(deadline));
            self.backoff_ticks += self.net.now().saturating_sub(b0);
            self.trace_pop(bspan);
            self.drain_dedup(sender);
            self.drain_dedup(recipient);
            self.maybe_crash_resume();
            let retry_trace = self.trace_retry(trace);
            match self.net.send_traced(
                self.nid,
                sender,
                recipient,
                payload.clone(),
                depth,
                retry_trace,
            ) {
                Ok(id) => current = id,
                Err(_) => {
                    return self.give_up(ResilienceFailure::SendRejected {
                        peer: recipient,
                        kind: kind.to_string(),
                    });
                }
            }
        }
    }

    /// Record one abandoned delivery and its telemetry; always `false`.
    fn give_up(&mut self, failure: ResilienceFailure) -> bool {
        let state = self.resilience.as_mut().expect("resilient");
        state.stats.gave_up += 1;
        state.failures.push(failure.clone());
        self.telemetry.incr("negotiation.resilience.gave_up", 1);
        if self.telemetry.enabled() {
            self.telemetry.event(
                self.net.now(),
                self.span,
                self.nid.0,
                "negotiation.gave_up",
                vec![
                    Field::str("peer", failure.peer().to_string()),
                    Field::str("reason", format!("{failure:?}")),
                ],
            );
        }
        false
    }

    /// `from` asks `to` to establish `goal`. Returns the answer instances
    /// `from` accepts (after verification).
    pub(crate) fn request(
        &mut self,
        from: PeerId,
        to: PeerId,
        goal: Literal,
        depth: u32,
    ) -> Vec<Literal> {
        self.max_depth_seen = self.max_depth_seen.max(depth);
        if depth > self.cfg.max_hop_depth {
            self.record_refusal(Refusal {
                peer: to,
                requester: from,
                goal,
                reason: RefusalReason::DepthExceeded,
            });
            return Vec::new();
        }
        let key = (to, canonicalize(&goal));
        if self.in_flight.contains(&key) {
            // Classical semantics: a repeated in-flight query variant is a
            // cycle and the branch is refused. Under GEM the closure is
            // recorded into a cross-peer SCC and answered from the goal
            // tables instead (partial answers flow back along the loop).
            if self.cfg.gem {
                return self.gem_close_loop(from, to, goal, depth, key);
            }
            self.record_refusal(Refusal {
                peer: to,
                requester: from,
                goal,
                reason: RefusalReason::CycleDetected,
            });
            return Vec::new();
        }
        if !self.peers.contains(to) {
            return Vec::new();
        }

        // Remote-answer caches: a repeat of an already answered query is
        // served without a network round-trip (and without re-pushing
        // credentials — the requester holds them from the first exchange).
        let cache_key: CacheKey = (from, to, key.1.clone());
        if self.cfg.cache_remote_answers {
            if let Some(hit) = self.session_answers.get(&cache_key) {
                if self.telemetry.enabled() {
                    self.telemetry.incr("negotiation.cache.session_hits", 1);
                }
                return hit.clone();
            }
        }
        if self.answer_cache.is_attached() {
            let kb_len = self.peers.get(to).map(|p| p.kb.len()).unwrap_or(0);
            let now = self.net.now();
            if let Some(hit) = self
                .answer_cache
                .lookup(from, to, &cache_key.2, now, kb_len)
            {
                if self.telemetry.enabled() {
                    self.telemetry.incr("negotiation.cache.cross_hits", 1);
                }
                return hit;
            }
        }
        if self.telemetry.enabled()
            && (self.cfg.cache_remote_answers || self.answer_cache.is_attached())
        {
            self.telemetry.incr("negotiation.cache.misses", 1);
        }

        // A cache miss means real work: open a causal span covering the
        // query round-trip (and everything nested under it — the
        // responder's solve, counter-queries, pushes, answers).
        let tspan = self.trace_push(&format!("request {goal}"), to, "request");
        let out = self.request_inner(from, to, goal, depth, key, cache_key);
        self.trace_pop(tspan);
        out
    }

    /// The post-guard body of [`Session::request`]: ship the query, let
    /// the responder solve (recursing through [`SessionHook`]), ship
    /// credential pushes and answers back, verify, and fill the caches.
    fn request_inner(
        &mut self,
        from: PeerId,
        to: PeerId,
        goal: Literal,
        depth: u32,
        key: (PeerId, Literal),
        cache_key: CacheKey,
    ) -> Vec<Literal> {
        // Ship the query.
        let qid = QueryId(self.next_query);
        self.next_query += 1;
        let query_payload = Payload::Query {
            id: qid,
            goal: goal.clone(),
        };
        let query_trace = self.trace_msg();
        let Ok(query_msg) = self.net.send_traced(
            self.nid,
            from,
            to,
            query_payload.clone(),
            depth,
            query_trace,
        ) else {
            return Vec::new(); // topology/hop failure
        };
        if self.telemetry.enabled() {
            self.telemetry
                .incr(&format!("negotiation.queries_issued.{from}"), 1);
            self.telemetry
                .incr(&format!("negotiation.queries_received.{to}"), 1);
            self.telemetry.event(
                self.net.now(),
                self.span,
                self.nid.0,
                "negotiation.query",
                vec![
                    Field::u64("qid", qid.0),
                    Field::str("from", from.to_string()),
                    Field::str("to", to.to_string()),
                    Field::str("goal", goal.to_string()),
                    Field::u64("depth", u64::from(depth)),
                ],
            );
        }
        if !self.finish_delivery(
            query_msg,
            from,
            to,
            &query_payload,
            depth,
            "query",
            query_trace,
        ) {
            self.record_refusal(Refusal {
                peer: to,
                requester: from,
                goal,
                reason: RefusalReason::Unreachable,
            });
            return Vec::new();
        }

        self.in_flight.push(key.clone());
        let (mut answers, mut pushes) = self.respond(to, from, &goal, depth);
        self.in_flight.pop();

        // If this frame is the generator of a GEM component (a loop closed
        // back to it during the descent), iterate answer propagation to
        // fixpoint and re-evaluate against the converged tables.
        if self.cfg.gem {
            if let Some((fx_answers, fx_pushes)) = self.gem_fixpoint(from, to, &goal, depth, &key) {
                answers = fx_answers;
                pushes = fx_pushes;
            }
        }

        // Ship credential pushes (before the answers that depend on them).
        if !pushes.is_empty() {
            // Contexts stripped on the wire (paper §3.1) — unless sticky
            // policies are on, in which case the *licensing* context (the
            // release policy under which this disclosure was granted, with
            // Requester still symbolic) travels with the rule. Signatures
            // are unaffected: they cover the context-free canonical form.
            let sticky = self.cfg.sticky_policies;
            let rules: Vec<SignedRule> = pushes
                .iter()
                .map(|(sr, _, _, raw)| SignedRule {
                    rule: if sticky {
                        let mut r = sr.rule.clone();
                        if r.head_context.is_none() {
                            r.head_context = Some(raw.clone());
                        }
                        r
                    } else {
                        sr.rule.strip_contexts()
                    },
                    signatures: sr.signatures.clone(),
                })
                .collect();
            let push_payload = Payload::CredentialPush { rules };
            let push_trace = self.trace_msg();
            let delivered = match self.net.send_traced(
                self.nid,
                to,
                from,
                push_payload.clone(),
                depth,
                push_trace,
            ) {
                Ok(push_msg) => self.finish_delivery(
                    push_msg,
                    to,
                    from,
                    &push_payload,
                    depth,
                    "push",
                    push_trace,
                ),
                Err(_) => false,
            };
            // The transport is authoritative: a rejected push (partition,
            // hop budget) means the recipient learns nothing.
            for (sr, ctx, ev, raw) in pushes.into_iter().filter(|_| delivered) {
                // What actually crossed the wire: the context-stripped
                // form (paper §3.1). `Ok(false)` from receive_signed means
                // the recipient already held the rule — the wire transfer
                // still happened, and the ledger must record it so the
                // recipient can later relay it (delegation chains).
                let sticky = self.cfg.sticky_policies;
                let wire = SignedRule {
                    rule: if sticky {
                        let mut r = sr.rule.clone();
                        if r.head_context.is_none() {
                            r.head_context = Some(raw.clone());
                        }
                        r
                    } else {
                        sr.rule.strip_contexts()
                    },
                    signatures: sr.signatures.clone(),
                };
                let accepted = self
                    .peers
                    .get_mut(from)
                    .expect("requester exists")
                    .receive_signed_mode(wire.clone(), to, sticky);
                // On a bad signature the recipient simply drops the rule.
                if accepted.is_ok() {
                    let ledger = self.received_rules.entry(from).or_default();
                    if !ledger.iter().any(|(r, s)| *r == wire.rule && *s == to) {
                        ledger.push((wire.rule.clone(), to));
                        if let Some(ext) = crate::peer::sender_extended(&wire.rule, to) {
                            self.received_rules.entry(from).or_default().push((ext, to));
                        }
                        let seq = self.disclosures.len();
                        self.record_disclosure(Disclosure {
                            seq,
                            from: to,
                            to: from,
                            item: DisclosedItem::SignedRule(wire),
                            context: ctx,
                            evidence: ev,
                        });
                    }
                }
            }
        }

        // Ship the answers.
        let answers_payload = Payload::Answers {
            id: qid,
            goal: goal.clone(),
            answers: answers.iter().map(|(a, _, _)| a.clone()).collect(),
        };
        let answers_trace = self.trace_msg();
        let Ok(answers_msg) = self.net.send_traced(
            self.nid,
            to,
            from,
            answers_payload.clone(),
            depth,
            answers_trace,
        ) else {
            return Vec::new();
        };
        if self.telemetry.enabled() {
            self.telemetry
                .incr(&format!("negotiation.queries_answered.{to}"), 1);
        }
        if !self.finish_delivery(
            answers_msg,
            to,
            from,
            &answers_payload,
            depth,
            "answers",
            answers_trace,
        ) {
            self.record_refusal(Refusal {
                peer: from,
                requester: to,
                goal: goal.clone(),
                reason: RefusalReason::Unreachable,
            });
            return Vec::new();
        }

        let mut accepted_answers = Vec::new();
        let all_public = answers.iter().all(|(_, ctx, _)| ctx.is_public());
        for (answer, ctx, ev) in answers {
            self.received_answers
                .entry(from)
                .or_default()
                .push((answer.clone(), to));
            let seq = self.disclosures.len();
            self.record_disclosure(Disclosure {
                seq,
                from: to,
                to: from,
                item: DisclosedItem::Answer(answer.clone()),
                context: ctx,
                evidence: ev,
            });
            accepted_answers.push(answer);
        }

        // Requester-side verification: third-party statements must be
        // re-derivable from signed material.
        let verify = self
            .peers
            .get(from)
            .map(|p| p.config.verify_answers)
            .unwrap_or(false);
        let self_certified = goal.authority.is_empty() || goal.eval_peer() == Some(to);
        let mut any_dropped = false;
        if verify && !self_certified {
            let requester_peer = self.peers.get(from).expect("requester exists");
            let signed_kb = requester_peer.signed_only_kb();
            let engine = requester_peer.config.engine;
            let mut dropped = Vec::new();
            accepted_answers.retain(|a| {
                let mut solver = Solver::new(&signed_kb, from).with_config(engine);
                let ok = solver.provable(std::slice::from_ref(a));
                if !ok {
                    dropped.push(a.clone());
                }
                ok
            });
            any_dropped = !dropped.is_empty();
            for a in dropped {
                self.record_refusal(Refusal {
                    peer: from,
                    requester: to,
                    goal: a,
                    reason: RefusalReason::VerificationFailed,
                });
            }
        }

        // While a GEM component is still iterating, any answers flowing
        // through this frame may be partial (read from a not-yet-converged
        // table) — they must never be written into the per-session memo or
        // the cross-negotiation cache, or later rounds and later
        // negotiations would be fed stale partial sets. (Empty answer sets
        // are never cached on any path — see the `is_empty` gate below.)
        let gem_pending = self.cfg.gem && self.gem.active();
        if gem_pending && !accepted_answers.is_empty() && self.telemetry.enabled() {
            self.telemetry.incr("negotiation.gem.cache_suppressed", 1);
        }
        if !accepted_answers.is_empty() && !gem_pending {
            if self.cfg.cache_remote_answers {
                self.session_answers
                    .insert(cache_key.clone(), accepted_answers.clone());
            }
            // Cross-negotiation entries must be replayable outside this
            // exchange: every answer publicly released and none dropped by
            // verification. Context-guarded answers never cross sessions.
            if all_public && !any_dropped {
                let kb_len = self.peers.get(to).map(|p| p.kb.len()).unwrap_or(0);
                let now = self.net.now();
                let inserted = self.answer_cache.insert(
                    from,
                    to,
                    cache_key.2,
                    accepted_answers.clone(),
                    now,
                    kb_len,
                );
                if inserted && self.telemetry.enabled() {
                    self.telemetry.incr("negotiation.cache.inserts", 1);
                }
            }
        }
        accepted_answers
    }

    /// GEM closure branch of [`Session::request`]: `from`'s evaluation
    /// re-requested `goal` while the frame `key` was already open further
    /// up the stack. Record the loop edge into a (possibly merged) SCC,
    /// ship a `GemQuery` carrying the evaluation context — so the frame
    /// owner recognizes the closure on the wire instead of re-descending —
    /// and serve the current tabled partial answers back along the loop.
    fn gem_close_loop(
        &mut self,
        from: PeerId,
        to: PeerId,
        goal: Literal,
        depth: u32,
        key: (PeerId, Literal),
    ) -> Vec<Literal> {
        let pos = self
            .in_flight
            .iter()
            .position(|k| *k == key)
            .expect("closure key is in flight");
        let seq = self.gem.next_seq();
        let edge = GemEdge {
            consumer: from,
            responder: to,
            goal: goal.clone(),
            canonical: key.1.clone(),
            depth,
            seq,
        };
        let stack = self.in_flight.clone();
        let is_new = self.gem.close_loop(pos, &stack, edge);
        if is_new && self.telemetry.enabled() {
            self.telemetry.incr("negotiation.gem.loops", 1);
        }
        let span = self.trace_push(&format!("gem loop {goal}"), to, "gem");

        let qid = QueryId(self.next_query);
        self.next_query += 1;
        let query = Payload::GemQuery {
            id: qid,
            goal: goal.clone(),
            context: stack,
        };
        if !self.gem_ship(from, to, query, depth, "gem-query") {
            self.record_refusal(Refusal {
                peer: to,
                requester: from,
                goal,
                reason: RefusalReason::Unreachable,
            });
            self.trace_pop(span);
            return Vec::new();
        }
        let answers = self.gem.table(from, to, &key.1);
        let round = self.gem.scc_containing(&key).map(|s| s.rounds).unwrap_or(0);
        let reply = Payload::GemAnswers {
            id: qid,
            goal,
            round,
            answers: answers.clone(),
        };
        let delivered = self.gem_ship(to, from, reply, depth, "gem-answers");
        self.trace_pop(span);
        // The transport is authoritative: if the tabled answers never
        // reached the consumer, its evaluation proceeds without them.
        if delivered {
            answers
        } else {
            Vec::new()
        }
    }

    /// Ship one GEM coordination message through the standard traced and
    /// supervised delivery path — fault lanes, deadlines, retries, and
    /// causal tracing behave exactly as for queries and answers.
    fn gem_ship(
        &mut self,
        sender: PeerId,
        recipient: PeerId,
        payload: Payload,
        depth: u32,
        kind: &'static str,
    ) -> bool {
        let trace = self.trace_msg();
        match self
            .net
            .send_traced(self.nid, sender, recipient, payload.clone(), depth, trace)
        {
            Ok(id) => self.finish_delivery(id, sender, recipient, &payload, depth, kind, trace),
            Err(_) => false,
        }
    }

    /// Run the GEM answer-propagation fixpoint for the component anchored
    /// at `key`, then re-evaluate the anchor goal against the converged
    /// tables. Returns `None` when `key` anchors no active component —
    /// either no loop closed under this frame, or a merge moved the
    /// anchor to an enclosing frame (which runs the fixpoint when *it*
    /// pops).
    ///
    /// Round order is derived from peer names and edge discovery sequence
    /// numbers — never from hash or symbol-intern order — so batch runs
    /// stay bit-identical across worker counts.
    #[allow(clippy::type_complexity)]
    fn gem_fixpoint(
        &mut self,
        from: PeerId,
        to: PeerId,
        goal: &Literal,
        depth: u32,
        key: &(PeerId, Literal),
    ) -> Option<(
        Vec<(Literal, Context, Vec<Evidence>)>,
        Vec<(SignedRule, Context, Vec<Evidence>, Context)>,
    )> {
        self.gem.scc_index_by_anchor(key)?;
        let span = self.trace_push(&format!("gem fixpoint {goal}"), to, "gem");
        loop {
            // Re-locate each round: a re-evaluation can close an outer
            // loop and merge the component outward, moving the anchor.
            let Some(idx) = self.gem.scc_index_by_anchor(key) else {
                self.trace_pop(span);
                return None;
            };
            if self.gem.scc_at(idx).rounds >= self.cfg.gem_max_rounds {
                self.record_refusal(Refusal {
                    peer: to,
                    requester: from,
                    goal: goal.clone(),
                    reason: RefusalReason::GemRoundLimit,
                });
                break;
            }
            let round = self.gem.bump_rounds(idx);
            self.telemetry.incr("negotiation.gem.rounds", 1);
            let edges = self.gem.scc_at(idx).round_order();
            let edges_before = self.gem.scc_at(idx).edges.len();
            let rspan = self.trace_push(&format!("gem round {round}"), to, "gem");
            let mut changed = false;
            for e in &edges {
                // The anchor frame stays pinned on the stack so
                // re-closures during the re-evaluation fold into this
                // component instead of spawning a fresh one. Release
                // checks run for the true consumer, so the tables never
                // hold answers a peer was not licensed to see.
                self.in_flight.push(key.clone());
                let (released, _pushes) = self.respond(e.responder, e.consumer, &e.goal, e.depth);
                self.in_flight.pop();
                let lits: Vec<Literal> = released.iter().map(|(a, _, _)| a.clone()).collect();
                if self
                    .gem
                    .update_table(e.consumer, e.responder, e.canonical.clone(), &lits)
                {
                    changed = true;
                    let qid = QueryId(self.next_query);
                    self.next_query += 1;
                    let payload = Payload::GemAnswers {
                        id: qid,
                        goal: e.goal.clone(),
                        round,
                        answers: lits,
                    };
                    let _ = self.gem_ship(e.responder, e.consumer, payload, e.depth, "gem-answers");
                }
            }
            self.trace_pop(rspan);
            // Edges discovered during the round mean new table entries
            // that still need a propagation pass.
            if let Some(idx2) = self.gem.scc_index_by_anchor(key) {
                if self.gem.scc_at(idx2).edges.len() > edges_before {
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Converged (or round-limited): re-evaluate the anchor goal
        // against the final tables. The component stays active during this
        // descent so re-closures keep reading its tables rather than
        // opening a phantom component that would never complete.
        self.in_flight.push(key.clone());
        let result = self.respond(to, from, goal, depth);
        self.in_flight.pop();

        let Some(idx) = self.gem.scc_index_by_anchor(key) else {
            self.trace_pop(span);
            return None; // merged outward during the final descent
        };
        let scc = self.gem.take_scc(idx);
        if self.telemetry.enabled() {
            self.telemetry.incr("negotiation.gem.sccs", 1);
            self.telemetry
                .incr("negotiation.gem.answers", self.gem.scc_answer_count(&scc));
        }
        // Completion notifications: the leader (lowest peer name on the
        // component) tells every other member the tabled entries are
        // final and may be released for reuse.
        let leader = scc.leader();
        for peer in scc.member_peers() {
            if peer == leader {
                continue;
            }
            let payload = Payload::GemComplete {
                goal: key.1.clone(),
                rounds: scc.rounds,
            };
            let _ = self.gem_ship(leader, peer, payload, depth, "gem-complete");
        }
        self.trace_pop(span);
        Some(result)
    }

    /// Evaluate `goal` at `responder` on behalf of `requester`, applying
    /// effort policy and release policies. Returns released answers and the
    /// signed rules to push, each with the licensing context and evidence.
    #[allow(clippy::type_complexity)]
    fn respond(
        &mut self,
        responder: PeerId,
        requester: PeerId,
        goal: &Literal,
        depth: u32,
    ) -> (
        Vec<(Literal, Context, Vec<Evidence>)>,
        Vec<(SignedRule, Context, Vec<Evidence>, Context)>,
    ) {
        let Some(peer) = self.peers.get(responder) else {
            return (Vec::new(), Vec::new());
        };
        if !peer.accepts_query(requester, goal) {
            self.record_refusal(Refusal {
                peer: responder,
                requester,
                goal: goal.clone(),
                reason: RefusalReason::EffortPolicy,
            });
            return (Vec::new(), Vec::new());
        }
        let budget = peer.config.max_queries_per_negotiation;
        let counter = self.answered.entry(responder).or_insert(0);
        *counter += 1;
        if *counter > budget {
            self.record_refusal(Refusal {
                peer: responder,
                requester,
                goal: goal.clone(),
                reason: RefusalReason::QueryBudget,
            });
            return (Vec::new(), Vec::new());
        }

        let kb = peer.kb.clone();
        let engine_cfg = peer.config.engine;
        // `kb` is a clone of the peer's KB, so the compiled artifact's
        // prefix fingerprint matches it exactly.
        let compiled = peer.compiled();
        let strict_push = self.cfg.strict_push_release;

        let solutions = {
            let telemetry = self.telemetry.clone();
            let mut hook = SessionHook {
                session: self,
                peer: responder,
                depth,
            };
            let mut solver = Solver::new(&kb, responder)
                .with_config(engine_cfg)
                .with_compiled_opt(compiled)
                .with_hook(&mut hook)
                .with_telemetry(telemetry);
            solver.solve(std::slice::from_ref(goal))
        };

        let mut answers: Vec<(Literal, Context, Vec<Evidence>)> = Vec::new();
        let mut pushes: Vec<(SignedRule, Context, Vec<Evidence>, Context)> = Vec::new();

        for sol in solutions {
            let proof = &sol.proofs[0];
            // The answer is the goal instance under the solution bindings
            // (NOT the proof node's goal, which for remote-rooted proofs
            // records the stripped inner literal).
            let answer = sol.subst.apply_literal(goal);
            if answers.iter().any(|(a, _, _)| *a == answer) {
                continue;
            }
            match self.release_check(responder, requester, proof, &kb, depth) {
                Release::Granted {
                    context,
                    raw_context,
                    evidence,
                } => {
                    // The certified proof: push every signed rule it uses
                    // (subject to strict mode).
                    let peer = self.peers.get(responder).expect("responder exists");
                    for rid in proof.used_rules() {
                        if let Some(sr) = peer.signed_rule(rid) {
                            if pushes.iter().any(|(p, _, _, _)| p.rule == sr.rule) {
                                continue;
                            }
                            // Never echo back what the requester itself
                            // provided (now or in an earlier negotiation).
                            if peer.kb.get(rid).is_some_and(|st| {
                                st.origin == peertrust_core::kb::RuleOrigin::Received(requester)
                            }) {
                                continue;
                            }
                            if strict_push {
                                let rule = &peer.kb.get(rid).expect("rule exists").rule;
                                let ctx = rule.effective_head_context();
                                if ctx.is_default_private() && requester != responder {
                                    continue;
                                }
                            }
                            pushes.push((
                                sr.clone(),
                                context.clone(),
                                evidence.clone(),
                                raw_context.clone(),
                            ));
                        }
                    }
                    // Relay the signed rules backing remote answers so the
                    // requester can verify multi-hop delegation chains.
                    if peer.config.relay_received {
                        for (p, _a) in proof.remote_dependencies() {
                            // No point relaying a peer's own statements
                            // back to it.
                            if p == requester {
                                continue;
                            }
                            let relayable: Vec<peertrust_core::Rule> = self
                                .received_rules
                                .get(&responder)
                                .map(|l| {
                                    l.iter()
                                        .filter(|(r, sender)| *sender == p && r.is_signed())
                                        .map(|(r, _)| r.clone())
                                        .collect()
                                })
                                .unwrap_or_default();
                            let sticky = self.cfg.sticky_policies;
                            let peer = self.peers.get(responder).expect("responder exists");
                            for rule in relayable {
                                if pushes.iter().any(|(pr, _, _, _)| pr.rule == rule) {
                                    continue;
                                }
                                // Sticky policies: the originator's retained
                                // head context must hold for the NEW
                                // recipient before this peer may relay.
                                if sticky {
                                    if let Some(ctx) = &rule.head_context {
                                        if ctx.is_default_private() {
                                            continue;
                                        }
                                        if !ctx.is_public() {
                                            let goals = ctx.instantiate(requester, responder);
                                            let mut cfg = peer.config.engine;
                                            cfg.remote_fallback =
                                                peertrust_engine::RemoteFallback::Never;
                                            let mut solver = Solver::new(&peer.kb, responder)
                                                .with_config(cfg)
                                                .with_compiled_opt(peer.compiled());
                                            if !solver.provable(&goals) {
                                                continue;
                                            }
                                        }
                                    }
                                }
                                if let Some(sr) = peer.signed_rule_for(&rule) {
                                    // Relays keep whatever context the rule
                                    // arrived with (retained in sticky mode).
                                    let raw =
                                        rule.head_context.clone().unwrap_or_else(Context::public);
                                    pushes.push((
                                        sr.clone(),
                                        Context::public(),
                                        vec![Evidence::ReceivedRule {
                                            from: p,
                                            rule: rule.clone(),
                                        }],
                                        raw,
                                    ));
                                }
                            }
                        }
                    }
                    answers.push((answer, context, evidence));
                }
                Release::Denied => {
                    self.record_refusal(Refusal {
                        peer: responder,
                        requester,
                        goal: answer,
                        reason: RefusalReason::ReleaseDenied,
                    });
                }
            }
        }
        (answers, pushes)
    }

    /// Decide whether the solution rooted at `proof` may be released to
    /// `requester`.
    ///
    /// Builtin results and relayed third-party answers are always
    /// releasable; locally derived answers go through the *licensing scan*
    /// of [`Session::license_scan`].
    fn release_check(
        &mut self,
        responder: PeerId,
        requester: PeerId,
        proof: &Proof,
        kb: &KnowledgeBase,
        depth: u32,
    ) -> Release {
        match &proof.step {
            ProofStep::Builtin | ProofStep::Negation => Release::Granted {
                context: Context::public(),
                raw_context: Context::public(),
                evidence: Vec::new(),
            },
            ProofStep::SelfAuthority => {
                // The licensing rules are those for the inner literal.
                match proof.children.first() {
                    Some(child) => self.release_check(responder, requester, child, kb, depth),
                    None => Release::Denied,
                }
            }
            ProofStep::Remote(peer) => {
                // A relayed third-party statement: the origin enforced its
                // own release policy; the relay is free to forward.
                Release::Granted {
                    context: Context::public(),
                    raw_context: Context::public(),
                    evidence: vec![Evidence::ReceivedAnswer {
                        from: *peer,
                        answer: proof.goal.clone(),
                    }],
                }
            }
            ProofStep::Rule(root_id) => {
                self.license_scan(responder, requester, &proof.goal, Some(*root_id), kb, depth)
            }
        }
    }

    /// The disclosure decision of §3.1's release-policy pattern
    /// (`p(X...) $ ctx_p(...) <- p(X...)`): `answer` may be sent to
    /// `requester` iff some rule whose head unifies with it has a
    /// non-default head context that is derivable with `Requester` bound
    /// to the requester, *and* whose body is derivable. The body check is
    /// skipped when the licensing rule is the rule that already proved the
    /// answer (`root_id`).
    ///
    /// This is a single release-rule unfolding: the derivation engine's
    /// ancestor check deliberately prunes `p <- p` self-rules, so release
    /// rules never participate in derivations — they are applied exactly
    /// here, at disclosure time, matching the paper's separation between
    /// deriving a literal and deriving its releasability.
    #[allow(clippy::too_many_arguments)]
    fn license_scan(
        &mut self,
        responder: PeerId,
        requester: PeerId,
        answer: &Literal,
        root_id: Option<peertrust_core::RuleId>,
        kb: &KnowledgeBase,
        depth: u32,
    ) -> Release {
        if requester == responder {
            return Release::Granted {
                context: Context::public(),
                raw_context: Context::public(),
                evidence: Vec::new(),
            };
        }
        // Counterfactual override (failure analysis, paper §6).
        if self
            .cfg
            .release_overrides
            .iter()
            .any(|(p, g)| *p == responder && canonicalize(g) == canonicalize(answer))
        {
            return Release::Granted {
                context: Context::public(),
                raw_context: Context::public(),
                evidence: Vec::new(),
            };
        }
        let responder_peer = self.peers.get(responder).expect("responder exists");
        let engine_cfg = responder_peer.config.engine;
        // Valid for `kb` whenever it is (a clone of) the responder's KB;
        // the engine's fingerprint check ignores it otherwise.
        let compiled = responder_peer.compiled();
        let candidates: Vec<(peertrust_core::RuleId, peertrust_core::Rule)> = kb
            .candidates(answer)
            .map(|sr| (sr.id, sr.rule.as_ref().clone()))
            .collect();

        // §3.2 self-closure: a chainless answer is equivalent to
        // `answer @ responder`, so licensing rules written with the
        // explicit authority also apply.
        let extended = answer.clone().at(peertrust_core::Term::peer(responder));
        for (id, rule) in candidates {
            self.rename_seq += 1;
            let renamed = rule.rename_apart(self.rename_seq);
            let mut s = Subst::new();
            if !peertrust_core::unify_literals(&renamed.head, answer, &mut s) {
                s = Subst::new();
                if answer.eval_peer() == Some(responder)
                    || !peertrust_core::unify_literals(&renamed.head, &extended, &mut s)
                {
                    continue;
                }
            }
            let ctx = renamed.effective_head_context().apply(&s);
            if ctx.is_default_private() {
                continue; // not a licensing rule for outsiders
            }

            let mut evidence = Vec::new();
            let mut ctx_goals = Vec::new();
            if !ctx.is_public() {
                ctx_goals = ctx.instantiate(requester, responder);
                let solutions = {
                    let telemetry = self.telemetry.clone();
                    let mut hook = SessionHook {
                        session: self,
                        peer: responder,
                        depth: depth + 1,
                    };
                    let mut solver = Solver::new(kb, responder)
                        .with_config(engine_cfg)
                        .with_compiled_opt(compiled.clone())
                        .with_hook(&mut hook)
                        .with_telemetry(telemetry);
                    solver.solve(&ctx_goals)
                };
                match solutions.into_iter().next() {
                    Some(sol) => evidence = self.collect_evidence(responder, &sol.proofs),
                    None => continue,
                }
            }

            // Body derivability. Skipped when this rule already proved the
            // answer, or when the body is exactly the answer itself (the
            // release pattern `p $ ctx <- p` — the answer's own derivation
            // already witnessed it).
            let body: Vec<Literal> = renamed.body.iter().map(|b| s.apply_literal(b)).collect();
            let body_is_answer = body.len() == 1 && body[0] == *answer;
            if Some(id) != root_id && !renamed.body.is_empty() && !body_is_answer {
                let ok = {
                    let telemetry = self.telemetry.clone();
                    let mut hook = SessionHook {
                        session: self,
                        peer: responder,
                        depth: depth + 1,
                    };
                    let mut solver = Solver::new(kb, responder)
                        .with_config(engine_cfg)
                        .with_compiled_opt(compiled.clone())
                        .with_hook(&mut hook)
                        .with_telemetry(telemetry);
                    solver.provable(&body)
                };
                if !ok {
                    continue;
                }
            }

            return Release::Granted {
                context: Context::goals(ctx_goals),
                raw_context: ctx,
                evidence,
            };
        }
        Release::Denied
    }

    /// Classify the rules and remote answers used in a context proof as
    /// evidence entries.
    fn collect_evidence(&self, owner: PeerId, proofs: &[Proof]) -> Vec<Evidence> {
        let peer = self.peers.get(owner).expect("owner exists");
        classify_evidence(
            peer,
            self.received_rules.get(&owner).map(Vec::as_slice),
            proofs,
        )
    }
}

/// Classify the rules and remote answers used in proofs as disclosure
/// evidence: rules received during this negotiation (per `ledger`) become
/// [`Evidence::ReceivedRule`], everything else [`Evidence::Initial`];
/// remote answers become [`Evidence::ReceivedAnswer`]. Shared by the
/// parsimonious and eager drivers.
pub(crate) fn classify_evidence(
    peer: &NegotiationPeer,
    ledger: Option<&[(peertrust_core::Rule, PeerId)]>,
    proofs: &[Proof],
) -> Vec<Evidence> {
    let mut evidence = Vec::new();
    for proof in proofs {
        for rid in proof.used_rules() {
            if let Some(sr) = peer.kb.get(rid) {
                let rule = sr.rule.as_ref().clone();
                let session_received = ledger
                    .map(|l| l.iter().find(|(r, _)| *r == rule))
                    .unwrap_or(None);
                let ev = match session_received {
                    Some((_, from)) => Evidence::ReceivedRule { from: *from, rule },
                    None => Evidence::Initial(rule),
                };
                if !evidence.contains(&ev) {
                    evidence.push(ev);
                }
            }
        }
        for (peer_id, answer) in proof.remote_dependencies() {
            let ev = Evidence::ReceivedAnswer {
                from: peer_id,
                answer,
            };
            if !evidence.contains(&ev) {
                evidence.push(ev);
            }
        }
    }
    evidence
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::verify_safe_sequence;
    use peertrust_crypto::KeyRegistry;
    use peertrust_parser::parse_literal;

    fn registry() -> KeyRegistry {
        let r = KeyRegistry::new();
        for (i, name) in [
            "UIUC",
            "UIUC Registrar",
            "BBB",
            "ELENA",
            "VISA",
            "IBM",
            "CSP",
        ]
        .iter()
        .enumerate()
        {
            r.register_derived(PeerId::new(name), i as u64 + 1);
        }
        r
    }

    fn run(
        peers: &mut PeerMap,
        requester: &str,
        responder: &str,
        goal: &str,
    ) -> NegotiationOutcome {
        let mut net = SimNetwork::new(7);
        negotiate(
            peers,
            &mut net,
            SessionConfig::default(),
            NegotiationId(1),
            PeerId::new(requester),
            PeerId::new(responder),
            parse_literal(goal).unwrap(),
        )
    }

    /// Minimal bilateral scenario: E-Learn grants `resource` to holders of
    /// a UIUC student credential; Alice releases her credential only to
    /// BBB members; E-Learn's BBB membership is public.
    fn bilateral_peers() -> PeerMap {
        let reg = registry();
        let mut peers = PeerMap::new();

        let mut elearn = NegotiationPeer::new("E-Learn", reg.clone());
        elearn
            .load_program(
                r#"
                resource(X) $ true <- student(X) @ "UIUC" @ X.
                member("E-Learn") @ "BBB" $ true signedBy ["BBB"].
                "#,
            )
            .unwrap();
        peers.insert(elearn);

        let mut alice = NegotiationPeer::new("Alice", reg);
        alice
            .load_program(
                r#"
                student("Alice") @ "UIUC" signedBy ["UIUC"].
                student(X) @ Y $ member(Requester) @ "BBB" @ Requester <-_true student(X) @ Y.
                "#,
            )
            .unwrap();
        peers.insert(alice);

        peers
    }

    #[test]
    fn bilateral_negotiation_succeeds() {
        let mut peers = bilateral_peers();
        let out = run(&mut peers, "Alice", "E-Learn", r#"resource("Alice")"#);
        assert!(out.success, "refusals: {:?}", out.refusals);
        assert_eq!(out.granted[0].to_string(), "resource(\"Alice\")");
        // Disclosure sequence includes Alice's credential and E-Learn's
        // membership answer or credential.
        assert!(
            out.credential_count() >= 2,
            "sequence: {:#?}",
            out.disclosures
        );
        verify_safe_sequence(&out).unwrap();
        assert!(out.messages >= 4);
    }

    #[test]
    fn negotiation_fails_without_counter_credential() {
        // E-Learn cannot prove BBB membership -> Alice refuses -> failure.
        let reg = registry();
        let mut peers = PeerMap::new();
        let mut elearn = NegotiationPeer::new("E-Learn", reg.clone());
        elearn
            .load_program(r#"resource(X) $ true <- student(X) @ "UIUC" @ X."#)
            .unwrap();
        peers.insert(elearn);
        let mut alice = NegotiationPeer::new("Alice", reg);
        alice
            .load_program(
                r#"
                student("Alice") @ "UIUC" signedBy ["UIUC"].
                student(X) @ Y $ member(Requester) @ "BBB" @ Requester <-_true student(X) @ Y.
                "#,
            )
            .unwrap();
        peers.insert(alice);

        let out = run(&mut peers, "Alice", "E-Learn", r#"resource("Alice")"#);
        assert!(!out.success);
        assert!(out
            .refusals
            .iter()
            .any(|r| r.reason == RefusalReason::ReleaseDenied));
    }

    #[test]
    fn default_private_context_blocks_release() {
        // Alice's credential has NO release rule: default Requester = Self.
        let reg = registry();
        let mut peers = PeerMap::new();
        let mut elearn = NegotiationPeer::new("E-Learn", reg.clone());
        elearn
            .load_program(r#"resource(X) $ true <- student(X) @ "UIUC" @ X."#)
            .unwrap();
        peers.insert(elearn);
        let mut alice = NegotiationPeer::new("Alice", reg);
        alice
            .load_program(r#"student("Alice") @ "UIUC" signedBy ["UIUC"]."#)
            .unwrap();
        peers.insert(alice);

        let out = run(&mut peers, "Alice", "E-Learn", r#"resource("Alice")"#);
        assert!(!out.success);
    }

    #[test]
    fn public_resource_needs_no_credentials() {
        let reg = registry();
        let mut peers = PeerMap::new();
        let mut srv = NegotiationPeer::new("Server", reg.clone());
        srv.load_program("open(X) $ true <- base(X). base(1).")
            .unwrap();
        peers.insert(srv);
        peers.insert(NegotiationPeer::new("Client", reg));

        let out = run(&mut peers, "Client", "Server", "open(X)");
        assert!(out.success);
        assert_eq!(out.granted[0].to_string(), "open(1)");
        assert_eq!(out.credential_count(), 0);
    }

    #[test]
    fn delegation_chain_is_pushed_and_verified() {
        // Alice holds a registrar-signed ID plus UIUC's delegation rule;
        // E-Learn verifies the answer against the pushed signed chain.
        let reg = registry();
        let mut peers = PeerMap::new();
        let mut elearn = NegotiationPeer::new("E-Learn", reg.clone());
        elearn
            .load_program(r#"resource(X) $ true <- student(X) @ "UIUC" @ X."#)
            .unwrap();
        peers.insert(elearn);
        let mut alice = NegotiationPeer::new("Alice", reg);
        alice
            .load_program(
                r#"
                student("Alice") @ "UIUC Registrar" signedBy ["UIUC Registrar"].
                student(X) @ "UIUC" <- signedBy ["UIUC"] student(X) @ "UIUC Registrar".
                student(X) @ Y $ true <-_true student(X) @ Y.
                "#,
            )
            .unwrap();
        peers.insert(alice);

        let out = run(&mut peers, "Alice", "E-Learn", r#"resource("Alice")"#);
        assert!(out.success, "refusals: {:?}", out.refusals);
        // Both links of the chain were pushed.
        assert!(out.credential_count() >= 2);
        verify_safe_sequence(&out).unwrap();
    }

    #[test]
    fn unverifiable_answer_is_rejected() {
        // Alice claims UIUC student status but holds no signed credential;
        // E-Learn's verification drops the unsupported answer.
        let reg = registry();
        let mut peers = PeerMap::new();
        let mut elearn = NegotiationPeer::new("E-Learn", reg.clone());
        elearn
            .load_program(r#"resource(X) $ true <- student(X) @ "UIUC" @ X."#)
            .unwrap();
        peers.insert(elearn);
        let mut alice = NegotiationPeer::new("Alice", reg);
        alice
            .load_program(
                r#"
                % Unsigned local assertion, released publicly — but nothing
                % signed backs it up.
                student("Alice") @ "UIUC" $ true <-_true claimed.
                claimed.
                "#,
            )
            .unwrap();
        peers.insert(alice);

        let out = run(&mut peers, "Alice", "E-Learn", r#"resource("Alice")"#);
        assert!(!out.success, "unsigned claim must not grant access");
    }

    #[test]
    fn effort_policy_refusal_recorded() {
        let reg = registry();
        let mut peers = PeerMap::new();
        let mut server = NegotiationPeer::new("Server", reg.clone());
        server.load_program("open(1) $ true.").unwrap();
        server.config.deny_peers.insert(PeerId::new("Mallory"));
        peers.insert(server);
        peers.insert(NegotiationPeer::new("Mallory", reg));

        let out = run(&mut peers, "Mallory", "Server", "open(X)");
        assert!(!out.success);
        assert_eq!(out.refusals[0].reason, RefusalReason::EffortPolicy);
    }

    #[test]
    fn cyclic_release_policies_terminate() {
        // A requires B's credential to release; B requires A's. Deadlock —
        // the negotiation must fail finitely, not hang.
        let reg = registry();
        reg.register_derived(PeerId::new("CA"), 99);
        let mut peers = PeerMap::new();
        let mut a = NegotiationPeer::new("A", reg.clone());
        a.load_program(
            r#"
            resource(X) $ true <- credB(X) @ "CA" @ X.
            credA("A") @ "CA" signedBy ["CA"].
            credA(X) @ Y $ credB(Requester) @ "CA" @ Requester <-_true credA(X) @ Y.
            "#,
        )
        .unwrap();
        peers.insert(a);
        let mut b = NegotiationPeer::new("B", reg);
        b.load_program(
            r#"
            credB("B") @ "CA" signedBy ["CA"].
            credB(X) @ Y $ credA(Requester) @ "CA" @ Requester <-_true credB(X) @ Y.
            "#,
        )
        .unwrap();
        peers.insert(b);

        let out = run(&mut peers, "B", "A", r#"resource("B")"#);
        assert!(!out.success);
        assert!(out
            .refusals
            .iter()
            .any(|r| r.reason == RefusalReason::CycleDetected
                || r.reason == RefusalReason::DepthExceeded
                || r.reason == RefusalReason::ReleaseDenied));
    }

    #[test]
    fn missing_responder_fails_cleanly() {
        let mut peers = PeerMap::new();
        peers.insert(NegotiationPeer::new("Alice", registry()));
        let out = run(&mut peers, "Alice", "Ghost", "anything(1)");
        assert!(!out.success);
        assert_eq!(out.messages, 0);
    }

    #[test]
    fn outcome_metrics_are_populated() {
        let mut peers = bilateral_peers();
        let out = run(&mut peers, "Alice", "E-Learn", r#"resource("Alice")"#);
        assert!(out.messages > 0);
        assert!(out.bytes > 0);
        assert!(out.queries >= 1);
        assert!(out.elapsed_ticks > 0);
    }

    /// Two peers whose `r/1` definitions are mutually recursive through
    /// delegation: `r(Y) @ "A"` needs `r(X) @ "B"` needs `r(X) @ "A"`.
    /// The seed fact `r(0)` lives at A and the `next` steps alternate
    /// between the peers, so `r(4) @ "A"` needs two full laps around the
    /// loop: one unrolling (which the classical driver's variant check
    /// still permits before refusing) only reaches `r(2)` — reaching
    /// `r(4)` requires the GEM fixpoint to pump instances around the
    /// cycle.
    fn mutual_recursion_peers() -> PeerMap {
        let reg = registry();
        let mut peers = PeerMap::new();
        let mut a = NegotiationPeer::new("A", reg.clone());
        a.load_program(
            r#"
            r(0) @ "A".
            r(Y) @ "A" <- r(X) @ "B" @ "B", next(X, Y).
            next(1, 2).
            next(3, 4).
            r(X) @ Y $ true <-_true r(X) @ Y.
            "#,
        )
        .unwrap();
        peers.insert(a);
        let mut b = NegotiationPeer::new("B", reg);
        b.load_program(
            r#"
            r(Y) @ "B" <- r(X) @ "A" @ "A", next(X, Y).
            next(0, 1).
            next(2, 3).
            r(X) @ Y $ true <-_true r(X) @ Y.
            "#,
        )
        .unwrap();
        peers.insert(b);
        peers
    }

    #[test]
    fn mutual_recursion_refused_without_gem() {
        let mut peers = mutual_recursion_peers();
        let out = run(&mut peers, "B", "A", r#"r(4) @ "A""#);
        assert!(!out.success, "classical driver must refuse the loop");
        assert!(
            out.refusals
                .iter()
                .any(|r| r.reason == RefusalReason::CycleDetected),
            "refusals: {:?}",
            out.refusals
        );
    }

    #[test]
    fn mutual_recursion_converges_with_gem() {
        let mut peers = mutual_recursion_peers();
        let mut net = SimNetwork::new(7);
        let cfg = SessionConfig {
            gem: true,
            ..SessionConfig::default()
        };
        let (telemetry, _ring) = Telemetry::ring(4096);
        let out = negotiate_traced(
            &mut peers,
            &mut net,
            cfg,
            NegotiationId(1),
            PeerId::new("B"),
            PeerId::new("A"),
            parse_literal(r#"r(4) @ "A""#).unwrap(),
            &telemetry,
        );
        assert!(out.success, "refusals: {:?}", out.refusals);
        assert_eq!(
            out.granted[0],
            parse_literal(r#"r(4) @ "A""#).unwrap(),
            "the answer only derivable through the loop must be granted"
        );
        assert!(
            !out.refusals
                .iter()
                .any(|r| r.reason == RefusalReason::CycleDetected),
            "GEM must resolve the loop, not refuse it: {:?}",
            out.refusals
        );
        let m = telemetry.metrics().expect("telemetry enabled");
        assert!(m.counter("negotiation.gem.loops") >= 1);
        assert!(m.counter("negotiation.gem.sccs") >= 1);
        assert!(m.counter("negotiation.gem.rounds") >= 3);
        assert_eq!(m.counter("negotiation.refusal.cycle_detected"), 0);
    }

    #[test]
    fn refusal_reason_counters_use_snake_case() {
        let mut peers = mutual_recursion_peers();
        let mut net = SimNetwork::new(7);
        let (telemetry, _ring) = Telemetry::ring(4096);
        let out = negotiate_traced(
            &mut peers,
            &mut net,
            SessionConfig::default(),
            NegotiationId(1),
            PeerId::new("B"),
            PeerId::new("A"),
            parse_literal(r#"r(4) @ "A""#).unwrap(),
            &telemetry,
        );
        assert!(!out.success);
        let m = telemetry.metrics().expect("telemetry enabled");
        assert!(m.counter("negotiation.refusal.cycle_detected") >= 1);
        // The legacy Debug-cased series is retired: only the snake_case
        // per-reason counters and the total are emitted.
        assert_eq!(m.counter("negotiation.refusals.CycleDetected"), 0);
        assert_eq!(
            m.counter("negotiation.refusals"),
            m.counter("negotiation.refusal.cycle_detected")
        );
    }

    #[test]
    fn cycle_refusal_answers_never_reach_caches() {
        // Satellite regression: an empty (CycleDetected) answer set must
        // not be written into the per-session memo or the cross-
        // negotiation cache — a later negotiation that could succeed
        // (e.g. with GEM on) must not be fed the cached refusal.
        let mut peers = mutual_recursion_peers();
        let mut cache = RemoteAnswerCache::default();
        let mut net = SimNetwork::new(7);
        let out = negotiate_cached(
            &mut peers,
            &mut net,
            SessionConfig::default(),
            NegotiationId(1),
            PeerId::new("B"),
            PeerId::new("A"),
            parse_literal(r#"r(4) @ "A""#).unwrap(),
            &mut cache,
            &Telemetry::disabled(),
        );
        assert!(!out.success);
        let kb_len = peers.get(PeerId::new("A")).unwrap().kb.len();
        let canonical = canonicalize(&parse_literal(r#"r(4) @ "A""#).unwrap());
        assert_eq!(
            cache.lookup(
                PeerId::new("B"),
                PeerId::new("A"),
                &canonical,
                net.now(),
                kb_len
            ),
            None,
            "empty refusal answers must never be cached"
        );
    }

    #[test]
    fn gem_partial_answers_never_poison_cross_cache() {
        // Run the cyclic scenario twice against one shared cache with GEM
        // on: the second negotiation must still converge to the full
        // answer — i.e. no partial (mid-fixpoint) set was cached by the
        // first.
        let mut peers = mutual_recursion_peers();
        let mut cache = RemoteAnswerCache::default();
        let cfg = SessionConfig {
            gem: true,
            ..SessionConfig::default()
        };
        for nid in 1..=2u64 {
            let mut net = SimNetwork::new(7);
            let out = negotiate_cached(
                &mut peers,
                &mut net,
                cfg.clone(),
                NegotiationId(nid),
                PeerId::new("B"),
                PeerId::new("A"),
                parse_literal(r#"r(4) @ "A""#).unwrap(),
                &mut cache,
                &Telemetry::disabled(),
            );
            assert!(out.success, "negotiation {nid} failed: {:?}", out.refusals);
            assert_eq!(out.granted[0], parse_literal(r#"r(4) @ "A""#).unwrap());
        }
    }

    #[test]
    fn gem_leaves_acyclic_negotiations_bit_identical() {
        // The GEM branch only fires on in-flight variant hits, so an
        // acyclic workload must produce exactly the same outcome with the
        // flag on.
        let run_with = |gem: bool| {
            let mut peers = bilateral_peers();
            let mut net = SimNetwork::new(7);
            let cfg = SessionConfig {
                gem,
                ..SessionConfig::default()
            };
            negotiate(
                &mut peers,
                &mut net,
                cfg,
                NegotiationId(1),
                PeerId::new("Alice"),
                PeerId::new("E-Learn"),
                parse_literal(r#"resource("Alice")"#).unwrap(),
            )
        };
        let off = run_with(false);
        let on = run_with(true);
        assert_eq!(
            serde_json::to_string(&off).unwrap(),
            serde_json::to_string(&on).unwrap()
        );
    }
}
