//! GEM-style distributed tabling: cross-peer SCC state and answer tables.
//!
//! Delegation literals (`lit @ Authority`) naturally produce cyclic goal
//! dependencies between peers — mutually recursive credential chains,
//! redundant delegation meshes. The classical driver refuses any loop
//! ([`crate::outcome::RefusalReason::CycleDetected`] with an empty answer
//! set), so cyclic workloads cannot converge even when a fixpoint exists.
//! This module holds the session-side state for the GEM alternative
//! (enabled via `SessionConfig::gem`): when a request closes a loop, the
//! closing edge is recorded into a strongly connected component, the
//! consumer is served the current *tabled* partial answer set instead of a
//! refusal, and once the component's outermost frame (the *generator*)
//! finishes its first descent the session iterates answer-propagation
//! rounds over the recorded edges until the tables reach a fixpoint.
//!
//! Key design points, mirrored from the GEM paper through this codebase's
//! substrate:
//!
//! * **Tables are keyed per `(consumer, responder, canonical goal)`** —
//!   not per goal alone — because what a responder may *release* depends
//!   on who is asking (release policies, paper §3.1). Two peers closing
//!   the same loop may legitimately see different partial answer sets.
//! * **Entries are stored in variant normal form**
//!   ([`peertrust_engine::canonical_answer_set`]): each fixpoint round
//!   re-derives answers through the solver's standardize-apart, so open
//!   answers only compare equal across rounds after canonicalization.
//!   Without it the fixpoint would never be detected.
//! * **SCCs merge by member overlap.** A depth-first evaluation can close
//!   several loops; any closure whose span overlaps an existing
//!   component folds into it, and the *outermost* frame on the current
//!   in-flight stack becomes the merged anchor — deferring the fixpoint
//!   to the frame that encloses every member.
//! * **The leader is the lexicographically smallest peer name** on the
//!   component (peer *names*, not [`peertrust_core::Sym`] order, which is
//!   intern-index order and not stable across runs). The leader fronts
//!   coordination traffic (completion notifications), keeping message
//!   sequences deterministic across worker counts.
//!
//! The driving loop lives in `crate::session` (it needs the solver, the
//! network, and the release machinery); this module is the bookkeeping,
//! unit-testable in isolation.

use peertrust_core::{Literal, PeerId};
use peertrust_engine::canonical_answer_set;
use std::collections::HashMap;

/// One evaluation frame key, as kept on the session's in-flight stack:
/// `(responder, canonical goal variant)`.
pub type FrameKey = (PeerId, Literal);

/// A recorded loop-closing edge: `consumer`'s evaluation re-requested
/// `goal` from `responder` while the frame `(responder, canonical)` was
/// already open.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GemEdge {
    /// The peer whose evaluation closed the loop (the re-requester).
    pub consumer: PeerId,
    /// The peer that owns the re-requested goal.
    pub responder: PeerId,
    /// The goal as re-requested (variables intact, for re-evaluation).
    pub goal: Literal,
    /// Canonical variant of `goal` — the frame/table key component.
    pub canonical: Literal,
    /// Hop depth at which the closure occurred (re-evaluations run here).
    pub depth: u32,
    /// Session-deterministic discovery sequence number (tie-breaker for
    /// round ordering).
    pub seq: u64,
}

/// One active strongly connected component of the cross-peer goal graph.
#[derive(Clone, Debug)]
pub struct GemScc {
    /// The generator frame's key: the outermost in-flight frame the
    /// component reaches. Its `request_inner` runs the fixpoint.
    pub anchor: FrameKey,
    /// Every frame key known to belong to the component, in discovery
    /// order.
    pub members: Vec<FrameKey>,
    /// Loop-closing edges, in discovery order.
    pub edges: Vec<GemEdge>,
    /// Fixpoint rounds completed so far.
    pub rounds: u32,
}

impl GemScc {
    /// Distinct peers participating in the component (frame responders
    /// and edge consumers), sorted by peer name for deterministic
    /// notification order.
    pub fn member_peers(&self) -> Vec<PeerId> {
        let mut peers: Vec<PeerId> = Vec::new();
        for (p, _) in &self.members {
            if !peers.contains(p) {
                peers.push(*p);
            }
        }
        for e in &self.edges {
            if !peers.contains(&e.consumer) {
                peers.push(e.consumer);
            }
        }
        peers.sort_by_key(|p| p.name());
        peers
    }

    /// The coordinator: lowest peer *name* on the component. Names, not
    /// `Sym` order — symbol interning order varies run to run.
    pub fn leader(&self) -> PeerId {
        self.member_peers()
            .into_iter()
            .min_by_key(|p| p.name())
            .expect("an SCC has at least one member")
    }

    /// Edges in fixpoint evaluation order: by responder name, consumer
    /// name, then discovery sequence — derived from peer ids and session
    /// sequence numbers, never from hash or intern order.
    pub fn round_order(&self) -> Vec<GemEdge> {
        let mut edges = self.edges.clone();
        edges.sort_by(|a, b| {
            (a.responder.name(), a.consumer.name(), a.seq).cmp(&(
                b.responder.name(),
                b.consumer.name(),
                b.seq,
            ))
        });
        edges
    }
}

/// Per-session GEM state: partial-answer tables plus the active SCCs.
#[derive(Default)]
pub struct GemState {
    /// Tabled (partial) answers per `(consumer, responder, canonical
    /// goal)`, in variant normal form.
    tables: HashMap<(PeerId, PeerId, Literal), Vec<Literal>>,
    /// Components whose generator frame has not yet completed.
    sccs: Vec<GemScc>,
    /// Next edge discovery sequence number.
    next_seq: u64,
    /// Completed components (stat).
    pub completed: u64,
}

impl GemState {
    pub fn new() -> GemState {
        GemState::default()
    }

    /// Is any component still being evaluated? While true, remote-answer
    /// cache inserts are suppressed — in-progress partial answers must
    /// never poison per-session or cross-negotiation caches.
    pub fn active(&self) -> bool {
        !self.sccs.is_empty()
    }

    /// Allocate the next edge sequence number.
    pub fn next_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Record a loop closure observed at position `pos` of the in-flight
    /// stack: the span `stack[pos..]` joins one component together with
    /// any existing components it overlaps; the merged anchor is the
    /// overlapping frame that sits outermost on the *current* stack.
    /// Returns `true` when `edge` was not already recorded.
    pub fn close_loop(&mut self, pos: usize, stack: &[FrameKey], edge: GemEdge) -> bool {
        let span: Vec<FrameKey> = stack[pos..].to_vec();
        let mut members = span;
        let mut edges: Vec<GemEdge> = Vec::new();
        let mut rounds = 0u32;
        let mut anchors: Vec<FrameKey> = vec![stack[pos].clone()];

        // Fold in every existing component that shares a frame with the
        // closed span (checked against the growing member set, so chains
        // of overlaps collapse into one component).
        let mut remaining: Vec<GemScc> = Vec::new();
        for scc in self.sccs.drain(..) {
            if scc.members.iter().any(|m| members.contains(m)) {
                for m in scc.members {
                    if !members.contains(&m) {
                        members.push(m);
                    }
                }
                edges.extend(scc.edges);
                rounds = rounds.max(scc.rounds);
                anchors.push(scc.anchor);
            } else {
                remaining.push(scc);
            }
        }
        self.sccs = remaining;

        // Outermost anchor on the current stack wins; an anchor not on
        // the stack (possible only transiently) ranks last.
        let anchor = anchors
            .into_iter()
            .min_by_key(|a| stack.iter().position(|k| k == a).unwrap_or(usize::MAX))
            .expect("at least the closing frame");

        let is_new = !edges.iter().any(|e| {
            e.consumer == edge.consumer
                && e.responder == edge.responder
                && e.canonical == edge.canonical
        });
        if is_new {
            edges.push(edge);
        }
        self.sccs.push(GemScc {
            anchor,
            members,
            edges,
            rounds,
        });
        true & is_new
    }

    /// Current tabled entry for a closing edge (empty when nothing has
    /// been derived yet).
    pub fn table(&self, consumer: PeerId, responder: PeerId, canonical: &Literal) -> Vec<Literal> {
        self.tables
            .get(&(consumer, responder, canonical.clone()))
            .cloned()
            .unwrap_or_default()
    }

    /// Replace a table entry with the freshly derived answer set (stored
    /// in variant normal form). Returns `true` when the entry changed —
    /// the fixpoint continues while any entry changes.
    pub fn update_table(
        &mut self,
        consumer: PeerId,
        responder: PeerId,
        canonical: Literal,
        answers: &[Literal],
    ) -> bool {
        let normal = canonical_answer_set(answers);
        let key = (consumer, responder, canonical);
        match self.tables.get(&key) {
            Some(old) if *old == normal => false,
            _ => {
                self.tables.insert(key, normal);
                true
            }
        }
    }

    /// Index of the active component anchored at `key`, if any — the
    /// frame popping `key` owns that component's fixpoint.
    pub fn scc_index_by_anchor(&self, key: &FrameKey) -> Option<usize> {
        self.sccs.iter().position(|s| s.anchor == *key)
    }

    /// Borrow the active component at `index` (as returned by
    /// [`GemState::scc_index_by_anchor`]).
    pub fn scc_at(&self, index: usize) -> &GemScc {
        &self.sccs[index]
    }

    /// Increment and return the round counter of the component at `index`.
    pub fn bump_rounds(&mut self, index: usize) -> u32 {
        self.sccs[index].rounds += 1;
        self.sccs[index].rounds
    }

    /// The active component containing `key` as a member, if any.
    pub fn scc_containing(&self, key: &FrameKey) -> Option<&GemScc> {
        self.sccs.iter().find(|s| s.members.contains(key))
    }

    /// Retire a completed component. Its table entries stay readable —
    /// they are final now ("completion releases tabled entries for
    /// reuse").
    pub fn take_scc(&mut self, index: usize) -> GemScc {
        self.completed += 1;
        self.sccs.remove(index)
    }

    /// Total tabled answers across the component's edges (deduplicated
    /// by table key; deterministic: iterates edges, not the hash map).
    pub fn scc_answer_count(&self, scc: &GemScc) -> u64 {
        let mut seen: Vec<(PeerId, PeerId, &Literal)> = Vec::new();
        let mut total = 0u64;
        for e in &scc.edges {
            let k = (e.consumer, e.responder, &e.canonical);
            if seen.contains(&k) {
                continue;
            }
            seen.push(k);
            total += self
                .tables
                .get(&(e.consumer, e.responder, e.canonical.clone()))
                .map(|v| v.len() as u64)
                .unwrap_or(0);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peertrust_core::Term;

    fn lit(name: &str, v: &str) -> Literal {
        Literal::new(name, vec![Term::var(v)])
    }

    fn ground(name: &str, n: i64) -> Literal {
        Literal::new(name, vec![Term::int(n)])
    }

    fn key(peer: &str, l: Literal) -> FrameKey {
        (PeerId::new(peer), peertrust_engine::canonicalize(&l))
    }

    fn edge(consumer: &str, responder: &str, l: Literal, seq: u64) -> GemEdge {
        GemEdge {
            consumer: PeerId::new(consumer),
            responder: PeerId::new(responder),
            canonical: peertrust_engine::canonicalize(&l),
            goal: l,
            depth: 3,
            seq,
        }
    }

    #[test]
    fn close_loop_records_component_and_edge() {
        let mut gem = GemState::new();
        let stack = vec![key("A", lit("r", "X")), key("B", lit("s", "Y"))];
        assert!(!gem.active());
        let e = edge("B", "A", lit("r", "Z"), gem.next_seq());
        assert!(gem.close_loop(0, &stack, e.clone()));
        assert!(gem.active());
        // Same edge again: folds in, not new.
        assert!(!gem.close_loop(0, &stack, e));
        let scc = gem.scc_containing(&stack[0]).unwrap();
        assert_eq!(scc.anchor, stack[0]);
        assert_eq!(scc.members.len(), 2);
        assert_eq!(scc.edges.len(), 1);
    }

    #[test]
    fn overlapping_components_merge_to_outermost_anchor() {
        let mut gem = GemState::new();
        let stack = vec![
            key("A", lit("r", "X")),
            key("B", lit("s", "Y")),
            key("C", lit("t", "Z")),
        ];
        // Inner loop first: C closes back to B (anchor = stack[1]).
        let s1 = gem.next_seq();
        gem.close_loop(1, &stack, edge("C", "B", lit("s", "Q"), s1));
        assert_eq!(gem.scc_containing(&stack[1]).unwrap().anchor, stack[1]);
        // Outer loop: C closes back to A. Overlaps the existing component
        // (shares frame B..C? shares C) -> merge, anchor moves out to A.
        let s2 = gem.next_seq();
        gem.close_loop(0, &stack, edge("C", "A", lit("r", "Q"), s2));
        let scc = gem.scc_containing(&stack[0]).unwrap();
        assert_eq!(scc.anchor, stack[0]);
        assert_eq!(scc.members.len(), 3);
        assert_eq!(scc.edges.len(), 2);
        assert_eq!(gem.scc_index_by_anchor(&stack[0]), Some(0));
        assert_eq!(gem.scc_index_by_anchor(&stack[1]), None);
    }

    #[test]
    fn leader_is_lowest_peer_name_not_intern_order() {
        // Intern "Zeta" strictly before "Alpha" so Sym order and name
        // order disagree.
        let z = PeerId::new("Zeta");
        let a = PeerId::new("Alpha");
        let _ = (z, a);
        let mut gem = GemState::new();
        let stack = vec![key("Zeta", lit("r", "X")), key("Mid", lit("s", "Y"))];
        let s = gem.next_seq();
        gem.close_loop(0, &stack, edge("Alpha", "Zeta", lit("r", "Q"), s));
        let scc = gem.scc_containing(&stack[0]).unwrap();
        assert_eq!(scc.leader().name(), "Alpha");
        let peers: Vec<&str> = scc.member_peers().iter().map(|p| p.name()).collect();
        assert_eq!(peers, ["Alpha", "Mid", "Zeta"]);
    }

    #[test]
    fn round_order_is_by_peer_names_then_seq() {
        let mut gem = GemState::new();
        let stack = vec![key("A", lit("r", "X")), key("Zed", lit("s", "Y"))];
        let s1 = gem.next_seq();
        let s2 = gem.next_seq();
        let s3 = gem.next_seq();
        gem.close_loop(0, &stack, edge("Zed", "A", lit("r", "Q"), s1));
        gem.close_loop(0, &stack, edge("Bob", "A", lit("r", "W"), s2));
        gem.close_loop(0, &stack, edge("Bob", "A", ground("r", 9), s3));
        let order: Vec<(String, u64)> = gem
            .scc_containing(&stack[0])
            .unwrap()
            .round_order()
            .iter()
            .map(|e| (e.consumer.name().to_string(), e.seq))
            .collect();
        assert_eq!(
            order,
            vec![
                ("Bob".to_string(), s2),
                ("Bob".to_string(), s3),
                ("Zed".to_string(), s1)
            ]
        );
    }

    #[test]
    fn table_updates_detect_change_up_to_renaming() {
        let mut gem = GemState::new();
        let c = PeerId::new("B");
        let r = PeerId::new("A");
        let goal = peertrust_engine::canonicalize(&lit("r", "X"));
        assert!(gem.table(c, r, &goal).is_empty());
        assert!(gem.update_table(c, r, goal.clone(), &[ground("r", 0)]));
        // Same set, different variable names and order: no change.
        assert!(!gem.update_table(c, r, goal.clone(), &[ground("r", 0)]));
        assert!(gem.update_table(c, r, goal.clone(), &[ground("r", 2), ground("r", 0)]));
        assert!(!gem.update_table(c, r, goal.clone(), &[ground("r", 0), ground("r", 2)]));
        // Open answers compare equal across renamings.
        assert!(gem.update_table(c, r, goal.clone(), &[lit("r", "Fresh1")]));
        assert!(!gem.update_table(c, r, goal.clone(), &[lit("r", "Fresh2")]));
        assert_eq!(gem.table(c, r, &goal).len(), 1);
    }

    #[test]
    fn take_scc_retires_but_tables_stay_readable() {
        let mut gem = GemState::new();
        let stack = vec![key("A", lit("r", "X"))];
        let s = gem.next_seq();
        gem.close_loop(0, &stack, edge("B", "A", lit("r", "Q"), s));
        let c = PeerId::new("B");
        let r = PeerId::new("A");
        let goal = peertrust_engine::canonicalize(&lit("r", "Q"));
        gem.update_table(c, r, goal.clone(), &[ground("r", 1), ground("r", 2)]);
        let idx = gem.scc_index_by_anchor(&stack[0]).unwrap();
        let scc = gem.sccs[idx].clone();
        assert_eq!(gem.scc_answer_count(&scc), 2);
        let taken = gem.take_scc(idx);
        assert_eq!(taken.anchor, stack[0]);
        assert!(!gem.active());
        assert_eq!(gem.completed, 1);
        assert_eq!(gem.table(c, r, &goal).len(), 2);
    }
}
