//! Tamper-evident audit trail.
//!
//! Paper §3.1: the access mechanism "can also implement other
//! security-related measures, such as creating an audit trail for the
//! enrollment". [`AuditLog`] records every negotiation outcome as a
//! hash-chained entry (each record's digest covers its serialized outcome
//! plus the previous record's digest), so truncation or in-place edits are
//! detectable with [`AuditLog::verify_chain`]. Records serialize to JSON
//! for archival.

use crate::outcome::NegotiationOutcome;
use peertrust_core::PeerId;
use peertrust_crypto::{sha256_digest, Digest, Tick};

/// One audit record.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct AuditRecord {
    /// Position in the log.
    pub seq: u64,
    /// Simulated time of recording.
    pub at: Tick,
    /// The full negotiation outcome (disclosure sequence included).
    pub outcome: NegotiationOutcome,
    /// Chain digest: `sha256(prev_digest || canonical json of (seq, at,
    /// outcome))`.
    pub digest: Digest,
}

/// The append-only log.
#[derive(Default, Debug, serde::Serialize, serde::Deserialize)]
pub struct AuditLog {
    records: Vec<AuditRecord>,
}

/// Chain verification failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainViolation {
    pub seq: u64,
    pub description: String,
}

impl AuditLog {
    pub fn new() -> AuditLog {
        AuditLog::default()
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    fn chain_digest(
        prev: Option<&Digest>,
        seq: u64,
        at: Tick,
        outcome: &NegotiationOutcome,
    ) -> Digest {
        let mut bytes = Vec::new();
        if let Some(p) = prev {
            bytes.extend_from_slice(p);
        }
        bytes.extend_from_slice(&seq.to_be_bytes());
        bytes.extend_from_slice(&at.to_be_bytes());
        bytes.extend_from_slice(
            serde_json::to_string(outcome)
                .expect("outcomes serialize")
                .as_bytes(),
        );
        sha256_digest(&bytes)
    }

    /// Append an outcome, extending the hash chain.
    pub fn record(&mut self, at: Tick, outcome: NegotiationOutcome) -> &AuditRecord {
        let seq = self.records.len() as u64;
        let prev = self.records.last().map(|r| &r.digest);
        let digest = AuditLog::chain_digest(prev, seq, at, &outcome);
        self.records.push(AuditRecord {
            seq,
            at,
            outcome,
            digest,
        });
        self.records.last().expect("just pushed")
    }

    /// Re-derive every digest; any mismatch (edit, reorder, splice) is
    /// reported.
    pub fn verify_chain(&self) -> Result<(), ChainViolation> {
        let mut prev: Option<&Digest> = None;
        for (i, r) in self.records.iter().enumerate() {
            if r.seq != i as u64 {
                return Err(ChainViolation {
                    seq: i as u64,
                    description: format!("sequence gap: record {i} claims seq {}", r.seq),
                });
            }
            let expect = AuditLog::chain_digest(prev, r.seq, r.at, &r.outcome);
            if expect != r.digest {
                return Err(ChainViolation {
                    seq: r.seq,
                    description: "digest mismatch (record edited or chain spliced)".into(),
                });
            }
            prev = Some(&r.digest);
        }
        Ok(())
    }

    /// The digest of the newest record, if any. Publishing `(len, tip)`
    /// out of band anchors the log: [`AuditLog::verify_anchored`] can then
    /// detect tail truncation, which [`AuditLog::verify_chain`] alone
    /// cannot (a truncated log is a valid shorter chain).
    pub fn tip(&self) -> Option<Digest> {
        self.records.last().map(|r| r.digest)
    }

    /// [`AuditLog::verify_chain`] plus an anchor check against a
    /// previously published `(expected_len, tip)` pair. A truncated tail
    /// is reported with `seq` = the length of the surviving prefix (the
    /// position of the first missing record).
    pub fn verify_anchored(&self, expected_len: u64, tip: &Digest) -> Result<(), ChainViolation> {
        self.verify_chain()?;
        let len = self.records.len() as u64;
        if len != expected_len {
            return Err(ChainViolation {
                seq: len.min(expected_len),
                description: format!(
                    "length mismatch: log has {len} records, anchor says {expected_len} \
                     (tail truncated or records appended)"
                ),
            });
        }
        match self.records.last() {
            Some(last) if last.digest == *tip => Ok(()),
            Some(last) => Err(ChainViolation {
                seq: last.seq,
                description: "tip digest does not match the published anchor".into(),
            }),
            None if expected_len == 0 => Ok(()),
            None => unreachable!("len == expected_len > 0 but log is empty"),
        }
    }

    /// Records involving `peer` as requester or responder.
    pub fn involving(&self, peer: PeerId) -> Vec<&AuditRecord> {
        self.records
            .iter()
            .filter(|r| r.outcome.requester == peer || r.outcome.responder == peer)
            .collect()
    }

    /// Success / failure counts.
    pub fn stats(&self) -> (usize, usize) {
        let ok = self.records.iter().filter(|r| r.outcome.success).count();
        (ok, self.records.len() - ok)
    }

    /// Export as JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("log serializes")
    }

    /// Import from JSON (the chain should be verified afterwards).
    pub fn from_json(s: &str) -> Result<AuditLog, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peertrust_core::Literal;

    fn outcome(n: u64, success: bool) -> NegotiationOutcome {
        NegotiationOutcome {
            success,
            requester: PeerId::new("Alice"),
            responder: PeerId::new("E-Learn"),
            goal: Literal::new("resource", vec![peertrust_core::Term::int(n as i64)]),
            granted: vec![],
            disclosures: vec![],
            refusals: vec![],
            messages: n,
            bytes: 0,
            queries: 0,
            rounds: 0,
            elapsed_ticks: 0,
        }
    }

    fn sample_log() -> AuditLog {
        let mut log = AuditLog::new();
        for i in 0..5 {
            log.record(i * 10, outcome(i, i % 2 == 0));
        }
        log
    }

    #[test]
    fn chain_verifies_when_untouched() {
        let log = sample_log();
        assert_eq!(log.len(), 5);
        log.verify_chain().unwrap();
    }

    #[test]
    fn edited_record_breaks_the_chain() {
        let mut log = sample_log();
        log.records[2].outcome.messages = 999;
        let v = log.verify_chain().unwrap_err();
        assert_eq!(v.seq, 2);
    }

    #[test]
    fn spliced_tail_breaks_the_chain() {
        let mut log = sample_log();
        // Drop record 1 and renumber: the digests no longer chain.
        log.records.remove(1);
        for (i, r) in log.records.iter_mut().enumerate() {
            r.seq = i as u64;
        }
        assert!(log.verify_chain().is_err());
    }

    #[test]
    fn reordering_detected_via_seq() {
        let mut log = sample_log();
        log.records.swap(1, 3);
        assert!(log.verify_chain().is_err());
    }

    #[test]
    fn json_roundtrip_preserves_chain() {
        let log = sample_log();
        let json = log.to_json();
        let back = AuditLog::from_json(&json).unwrap();
        back.verify_chain().unwrap();
        assert_eq!(back.len(), 5);
    }

    #[test]
    fn tampered_outcome_reports_exact_seq() {
        // Flip the middle record's outcome: verification must name seq 2,
        // not just "somewhere broken".
        let mut log = sample_log();
        log.records[2].outcome.success = !log.records[2].outcome.success;
        let v = log.verify_chain().unwrap_err();
        assert_eq!(v.seq, 2);
        assert!(v.description.contains("digest mismatch"), "{v:?}");
        // Records before the edit still verify on their own.
        let prefix = AuditLog {
            records: log.records[..2].to_vec(),
        };
        prefix.verify_chain().unwrap();
    }

    #[test]
    fn truncated_tail_reports_first_missing_seq() {
        let log = sample_log();
        let anchor = (log.len() as u64, log.tip().unwrap());

        // Plain chain verification cannot see truncation: the shorter log
        // is a valid chain.
        let mut truncated = AuditLog {
            records: log.records[..3].to_vec(),
        };
        truncated.verify_chain().unwrap();

        // The anchor pins it down to the first missing record, seq 3.
        let v = truncated.verify_anchored(anchor.0, &anchor.1).unwrap_err();
        assert_eq!(v.seq, 3);
        assert!(v.description.contains("length mismatch"), "{v:?}");

        // An edit *and* matching length: the anchor reports the tip.
        truncated.record(99, outcome(9, true));
        truncated.record(100, outcome(10, false));
        let v = truncated.verify_anchored(anchor.0, &anchor.1).unwrap_err();
        assert_eq!(v.seq, 4);
        assert!(v.description.contains("tip digest"), "{v:?}");

        // The untouched log passes the anchored check.
        log.verify_anchored(anchor.0, &anchor.1).unwrap();
    }

    #[test]
    fn queries_and_stats() {
        let log = sample_log();
        assert_eq!(log.involving(PeerId::new("Alice")).len(), 5);
        assert_eq!(log.involving(PeerId::new("Nobody")).len(), 0);
        assert_eq!(log.stats(), (3, 2));
    }
}
