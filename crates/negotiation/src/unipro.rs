//! UniPro-style policy protection (paper §2, "Sensitive policies").
//!
//! "UniPro gives (opaque) names to policies and allows any named policy P1
//! to have its own policy P2, meaning that the contents of P1 can only be
//! disclosed to parties who have shown that they satisfy P2."
//!
//! In PeerTrust terms: a named policy is a predicate (e.g. `policy49`);
//! its defining rules are protected by their *rule contexts* (`<-_ctx`).
//! A peer may ask another for a policy's definition; the owner discloses
//! the defining rules — contexts stripped, as always on the wire — iff
//! each rule's context is derivable for the requester. Disclosed rules are
//! cached by the requester, which is how "ELENA member companies can
//! disseminate the definition of freebieEligible to their employees"
//! (§4.2) is realized at run time.
//!
//! Graduated disclosure arises naturally: `policy49`'s definition may be
//! guarded by `policy27(Requester)`, whose own definition is guarded by
//! something weaker, and so on — experiment E7 measures the cost of
//! unlocking such chains.

use crate::outcome::{DisclosedItem, Disclosure, Evidence};
use crate::peer::NegotiationPeer;
use crate::session::PeerMap;
use peertrust_core::{Context, Literal, PeerId, Rule, Subst, Sym};
use peertrust_engine::{RemoteFallback, Solver};
use peertrust_net::{NegotiationId, Payload, QueryId, SimNetwork};

/// The result of a policy disclosure request.
#[derive(Clone, Debug)]
pub struct PolicyDisclosureOutcome {
    /// The rules disclosed (contexts stripped). Empty = refused.
    pub rules: Vec<Rule>,
    /// Disclosure records (for sequence auditing).
    pub disclosures: Vec<Disclosure>,
    pub messages: u64,
}

/// `requester` asks `owner` for the definition of named policy `policy`.
///
/// The owner's per-rule check is purely local (like the eager strategy):
/// the rule context must be derivable from what the owner already knows
/// about the requester. Callers that need bilateral unlock first push the
/// relevant credentials (or run a negotiation) and then re-request.
pub fn request_policy(
    peers: &mut PeerMap,
    net: &mut SimNetwork,
    nid: NegotiationId,
    requester: PeerId,
    owner: PeerId,
    policy: Sym,
) -> PolicyDisclosureOutcome {
    let msgs0 = net.stats().messages_sent;
    let mut outcome = PolicyDisclosureOutcome {
        rules: Vec::new(),
        disclosures: Vec::new(),
        messages: 0,
    };
    if !peers.contains(owner) || !peers.contains(requester) {
        return outcome;
    }

    // Ship the request.
    let qid = QueryId(0);
    if net
        .send(
            nid,
            requester,
            owner,
            Payload::PolicyRequest { id: qid, policy },
            0,
        )
        .is_err()
    {
        return outcome;
    }
    net.step();
    let _ = net.poll(owner);

    // Owner-side check.
    let disclosed =
        disclosable_definition(peers.get(owner).expect("owner exists"), requester, policy);

    // Ship the disclosure (possibly empty = refusal).
    let _ = net.send(
        nid,
        owner,
        requester,
        Payload::PolicyDisclosure {
            id: qid,
            rules: disclosed.clone(),
        },
        0,
    );
    net.step();
    let _ = net.poll(requester);

    if !disclosed.is_empty() {
        // Requester caches the definition for later negotiations.
        let requester_peer = peers.get_mut(requester).expect("requester exists");
        for rule in &disclosed {
            requester_peer.kb.add_received_dedup(rule.clone(), owner);
        }
        outcome.disclosures.push(Disclosure {
            seq: 0,
            from: owner,
            to: requester,
            item: DisclosedItem::Policy(disclosed.clone()),
            context: Context::public(),
            evidence: disclosed
                .iter()
                .map(|r| Evidence::Initial(r.clone()))
                .collect(),
        });
    }
    outcome.rules = disclosed;
    outcome.messages = net.stats().messages_sent - msgs0;
    outcome
}

/// The subset of `policy`'s defining rules the owner may show `requester`,
/// contexts stripped. A rule qualifies iff its *rule context* (`<-_ctx`)
/// is non-default and locally derivable with `Requester` bound.
pub fn disclosable_definition(
    owner: &NegotiationPeer,
    requester: PeerId,
    policy: Sym,
) -> Vec<Rule> {
    let mut engine = owner.config.engine;
    engine.remote_fallback = RemoteFallback::Never;

    let mut out = Vec::new();
    for sr in owner.kb.iter() {
        if sr.rule.head.pred != policy {
            continue;
        }
        let ctx = sr.rule.effective_rule_context();
        if requester != owner.id {
            if ctx.is_default_private() {
                continue;
            }
            if !ctx.is_public() {
                let goals = ctx.instantiate(requester, owner.id);
                let mut solver = Solver::new(&owner.kb, owner.id)
                    .with_config(engine)
                    .with_compiled_opt(owner.compiled());
                if !solver.provable(&goals) {
                    continue;
                }
            }
        }
        out.push(sr.rule.strip_contexts());
    }
    out
}

/// Iteratively unlock a chain of protected policies: request `policy`; if
/// its definition mentions further named policies from `owner` (heads of
/// body literals with zero local definition at the requester), request
/// those too, up to `max_rounds`. Returns every definition obtained.
///
/// This is UniPro's graduated disclosure: each unlocked definition tells
/// the requester which guard protects the next layer.
pub fn unlock_policy_chain(
    peers: &mut PeerMap,
    net: &mut SimNetwork,
    nid: NegotiationId,
    requester: PeerId,
    owner: PeerId,
    policy: Sym,
    max_rounds: usize,
) -> Vec<(Sym, Vec<Rule>)> {
    let mut obtained: Vec<(Sym, Vec<Rule>)> = Vec::new();
    let mut frontier = vec![policy];
    for _ in 0..max_rounds {
        let Some(next) = frontier.pop() else { break };
        if obtained.iter().any(|(p, _)| *p == next) {
            continue;
        }
        let res = request_policy(peers, net, nid, requester, owner, next);
        if res.rules.is_empty() {
            continue;
        }
        // Scan disclosed bodies for further policy names to unlock.
        for rule in &res.rules {
            for body in &rule.body {
                if body.authority.is_empty()
                    && body.pred.as_str().starts_with("policy")
                    && !obtained.iter().any(|(p, _)| *p == body.pred)
                {
                    frontier.push(body.pred);
                }
            }
        }
        obtained.push((next, res.rules));
    }
    obtained
}

/// Convenience for tests and benches: does `rules` (a disclosed policy
/// definition) mention `pred` in any body?
pub fn definition_mentions(rules: &[Rule], pred: Sym) -> bool {
    rules.iter().any(|r| {
        r.body.iter().any(|b| {
            b.pred == pred
                || b.args.iter().any(|t| {
                    let mut s = Subst::new();
                    peertrust_core::unify(t, &peertrust_core::Term::atom(pred.as_str()), &mut s)
                })
        })
    })
}

/// The default opaque-name check: is `lit` a reference to a named policy?
pub fn is_policy_name(lit: &Literal) -> bool {
    lit.pred.as_str().starts_with("policy")
}

#[cfg(test)]
mod tests {
    use super::*;
    use peertrust_crypto::KeyRegistry;

    fn registry() -> KeyRegistry {
        let r = KeyRegistry::new();
        r.register_derived(PeerId::new("VISA"), 1);
        r.register_derived(PeerId::new("ELENA"), 2);
        r
    }

    fn elearn_with_policies(reg: &KeyRegistry) -> NegotiationPeer {
        let mut p = NegotiationPeer::new("E-Learn", reg.clone());
        p.load_program(
            r#"
            % policy49 is protected by policy27; policy27 is public.
            policy49(Course, Requester, Company, Price) <-_(policy27(Requester))
                price(Course, Price),
                authorized(Requester, Price) @ Company @ Requester,
                visaCard(Company) @ "VISA" @ Requester.
            policy27(Requester) <-_true
                authorizedMerchant(Requester) @ "VISA" @ Requester,
                member(Requester) @ "ELENA".
            % freebieEligible keeps the paper's default-private protection.
            freebieEligible(C, R, Co, E) <-
                email(R, E) @ R,
                employee(R) @ Co @ R,
                member(Co) @ "ELENA" @ R.
            "#,
        )
        .unwrap();
        p
    }

    #[test]
    fn public_guard_policy_is_disclosed() {
        let reg = registry();
        let mut peers = PeerMap::new();
        peers.insert(elearn_with_policies(&reg));
        peers.insert(NegotiationPeer::new("IBM", reg));

        let mut net = SimNetwork::new(1);
        let res = request_policy(
            &mut peers,
            &mut net,
            NegotiationId(1),
            PeerId::new("IBM"),
            PeerId::new("E-Learn"),
            Sym::new("policy27"),
        );
        assert_eq!(res.rules.len(), 1);
        // Contexts are stripped on the wire.
        assert!(res.rules[0].rule_context.is_none());
        assert_eq!(res.messages, 2);
        // The requester cached it.
        let ibm = peers.get(PeerId::new("IBM")).unwrap();
        assert!(!ibm.kb.is_empty());
    }

    #[test]
    fn default_private_policy_is_refused() {
        let reg = registry();
        let mut peers = PeerMap::new();
        peers.insert(elearn_with_policies(&reg));
        peers.insert(NegotiationPeer::new("IBM", reg));

        let mut net = SimNetwork::new(1);
        let res = request_policy(
            &mut peers,
            &mut net,
            NegotiationId(1),
            PeerId::new("IBM"),
            PeerId::new("E-Learn"),
            Sym::new("freebieEligible"),
        );
        assert!(res.rules.is_empty());
    }

    #[test]
    fn guarded_policy_unlocks_after_requirement_met() {
        // policy49 guarded by policy27(Requester): refused until E-Learn
        // can derive policy27("IBM") locally.
        let reg = registry();
        let mut peers = PeerMap::new();
        peers.insert(elearn_with_policies(&reg));
        let mut ibm = NegotiationPeer::new("IBM", reg.clone());
        ibm.load_program(
            r#"
            authorizedMerchant("IBM") @ "VISA" $ true signedBy ["VISA"].
            member("IBM") @ "ELENA" $ true signedBy ["ELENA"].
            "#,
        )
        .unwrap();
        peers.insert(ibm);

        let mut net = SimNetwork::new(1);
        let refused = request_policy(
            &mut peers,
            &mut net,
            NegotiationId(1),
            PeerId::new("IBM"),
            PeerId::new("E-Learn"),
            Sym::new("policy49"),
        );
        assert!(refused.rules.is_empty(), "guard not yet satisfied");

        // IBM pushes the credentials satisfying policy27's body.
        let creds: Vec<_> = {
            let ibm = peers.get(PeerId::new("IBM")).unwrap();
            ibm.disclosable_signed_rules()
                .map(|(_, sr)| sr.clone())
                .collect()
        };
        for sr in creds {
            peers
                .get_mut(PeerId::new("E-Learn"))
                .unwrap()
                .receive_signed(sr, PeerId::new("IBM"))
                .unwrap();
        }

        let granted = request_policy(
            &mut peers,
            &mut net,
            NegotiationId(2),
            PeerId::new("IBM"),
            PeerId::new("E-Learn"),
            Sym::new("policy49"),
        );
        assert_eq!(granted.rules.len(), 1, "guard satisfied after pushes");
    }

    #[test]
    fn owner_sees_own_policies_unconditionally() {
        let reg = registry();
        let peer = elearn_with_policies(&reg);
        let own =
            disclosable_definition(&peer, PeerId::new("E-Learn"), Sym::new("freebieEligible"));
        assert_eq!(own.len(), 1);
    }

    #[test]
    fn policy_chain_unlocks_iteratively() {
        let reg = registry();
        let mut peers = PeerMap::new();
        peers.insert(elearn_with_policies(&reg));
        let mut ibm = NegotiationPeer::new("IBM", reg.clone());
        ibm.load_program(
            r#"
            authorizedMerchant("IBM") @ "VISA" $ true signedBy ["VISA"].
            member("IBM") @ "ELENA" $ true signedBy ["ELENA"].
            "#,
        )
        .unwrap();
        peers.insert(ibm);
        // Pre-push credentials so policy49's guard holds.
        let creds: Vec<_> = {
            let ibm = peers.get(PeerId::new("IBM")).unwrap();
            ibm.disclosable_signed_rules()
                .map(|(_, sr)| sr.clone())
                .collect()
        };
        for sr in creds {
            peers
                .get_mut(PeerId::new("E-Learn"))
                .unwrap()
                .receive_signed(sr, PeerId::new("IBM"))
                .unwrap();
        }

        let mut net = SimNetwork::new(1);
        let chain = unlock_policy_chain(
            &mut peers,
            &mut net,
            NegotiationId(1),
            PeerId::new("IBM"),
            PeerId::new("E-Learn"),
            Sym::new("policy49"),
            8,
        );
        let names: Vec<&str> = chain.iter().map(|(p, _)| p.as_str()).collect();
        assert!(names.contains(&"policy49"));
    }

    #[test]
    fn is_policy_name_prefix_convention() {
        assert!(is_policy_name(&Literal::new("policy27", vec![])));
        assert!(!is_policy_name(&Literal::new("student", vec![])));
    }
}
