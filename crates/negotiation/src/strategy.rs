//! Strategy selection.
//!
//! Yu et al. (paper §5) predefine families of negotiation strategies with
//! interoperability guarantees. PeerTrust's paper notes "Similar concepts
//! will be needed in PeerTrust"; we implement the two canonical endpoints
//! of the family — *eager* (disclose everything unlocked, maximal
//! disclosure, minimal rounds) and *parsimonious* (request exactly what is
//! needed, minimal disclosure) — behind one dispatch point, so experiments
//! can sweep `Strategy::ALL` over identical policy graphs.

use crate::eager::{negotiate_eager, EagerConfig};
use crate::outcome::NegotiationOutcome;
use crate::session::{negotiate, negotiate_traced, record_outcome, PeerMap, SessionConfig};
use peertrust_core::{Literal, PeerId};
use peertrust_net::{NegotiationId, SimNetwork};
use peertrust_telemetry::{Field, Telemetry};

/// Which negotiation strategy drives the disclosure process.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// Backward-chaining: queries flow to exactly the literals on a path
    /// to the goal; credentials are disclosed only when needed.
    Parsimonious,
    /// Forward-pushing: every unlocked credential is disclosed each round;
    /// no queries or policy information cross the wire.
    Eager,
}

impl Strategy {
    pub const ALL: [Strategy; 2] = [Strategy::Parsimonious, Strategy::Eager];

    pub fn name(self) -> &'static str {
        match self {
            Strategy::Parsimonious => "parsimonious",
            Strategy::Eager => "eager",
        }
    }

    /// Run a negotiation with this strategy under default driver settings.
    pub fn run(
        self,
        peers: &mut PeerMap,
        net: &mut SimNetwork,
        nid: NegotiationId,
        requester: PeerId,
        responder: PeerId,
        goal: Literal,
    ) -> NegotiationOutcome {
        match self {
            Strategy::Parsimonious => negotiate(
                peers,
                net,
                SessionConfig::default(),
                nid,
                requester,
                responder,
                goal,
            ),
            Strategy::Eager => negotiate_eager(
                peers,
                net,
                EagerConfig::default(),
                nid,
                requester,
                responder,
                goal,
            ),
        }
    }

    /// [`Strategy::run`] with a telemetry pipeline. The parsimonious
    /// driver traces every query/disclosure/refusal; the eager driver is
    /// wrapped in a `negotiation` span with outcome-level metrics (its
    /// round loop has no per-item decision points to instrument).
    #[allow(clippy::too_many_arguments)]
    pub fn run_traced(
        self,
        peers: &mut PeerMap,
        net: &mut SimNetwork,
        nid: NegotiationId,
        requester: PeerId,
        responder: PeerId,
        goal: Literal,
        telemetry: &Telemetry,
    ) -> NegotiationOutcome {
        match self {
            Strategy::Parsimonious => negotiate_traced(
                peers,
                net,
                SessionConfig::default(),
                nid,
                requester,
                responder,
                goal,
                telemetry,
            ),
            Strategy::Eager => {
                let span = telemetry.span_start(
                    net.now(),
                    nid.0,
                    "negotiation",
                    vec![
                        Field::str("strategy", "eager"),
                        Field::str("requester", requester.to_string()),
                        Field::str("responder", responder.to_string()),
                        Field::str("goal", goal.to_string()),
                    ],
                );
                let outcome = negotiate_eager(
                    peers,
                    net,
                    EagerConfig::default(),
                    nid,
                    requester,
                    responder,
                    goal,
                );
                if telemetry.enabled() {
                    record_outcome(telemetry, &outcome);
                    telemetry.span_end(
                        net.now(),
                        span,
                        nid.0,
                        vec![
                            Field::bool("success", outcome.success),
                            Field::u64("disclosures", outcome.disclosures.len() as u64),
                        ],
                    );
                }
                outcome
            }
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::NegotiationPeer;
    use peertrust_crypto::KeyRegistry;
    use peertrust_parser::parse_literal;

    /// Both strategies must agree on success for the bilateral scenario,
    /// with the expected disclosure/messaging trade-off.
    #[test]
    fn strategies_agree_on_bilateral_scenario() {
        let reg = KeyRegistry::new();
        reg.register_derived(PeerId::new("UIUC"), 1);
        reg.register_derived(PeerId::new("BBB"), 2);

        let build = || {
            let mut peers = PeerMap::new();
            let mut elearn = NegotiationPeer::new("E-Learn", reg.clone());
            elearn
                .load_program(
                    r#"
                    resource(X) $ true <- student(X) @ "UIUC" @ X.
                    member("E-Learn") @ "BBB" $ true signedBy ["BBB"].
                    "#,
                )
                .unwrap();
            peers.insert(elearn);
            let mut alice = NegotiationPeer::new("Alice", reg.clone());
            alice
                .load_program(
                    r#"
                    student("Alice") @ "UIUC" signedBy ["UIUC"].
                    student(X) @ Y $ member(Requester) @ "BBB" @ Requester <-_true student(X) @ Y.
                    "#,
                )
                .unwrap();
            peers.insert(alice);
            peers
        };

        let goal = parse_literal(r#"resource("Alice")"#).unwrap();
        let mut results = Vec::new();
        for strat in Strategy::ALL {
            let mut peers = build();
            let mut net = SimNetwork::new(11);
            let out = strat.run(
                &mut peers,
                &mut net,
                NegotiationId(1),
                PeerId::new("Alice"),
                PeerId::new("E-Learn"),
                goal.clone(),
            );
            assert!(out.success, "{strat} failed");
            crate::outcome::verify_safe_sequence(&out).unwrap();
            results.push((strat, out));
        }
        // Parsimonious uses queries; eager uses none.
        let pars = &results[0].1;
        let eag = &results[1].1;
        assert!(pars.queries > 0);
        assert_eq!(eag.queries, 0);
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Strategy::Parsimonious.name(), "parsimonious");
        assert_eq!(Strategy::Eager.to_string(), "eager");
        assert_eq!(Strategy::ALL.len(), 2);
    }
}
