//! Open-loop serving with admission control.
//!
//! [`negotiate_batch`](crate::scheduler::negotiate_batch) is *closed-loop*:
//! every job eventually runs, so offered load can never exceed capacity —
//! the workload just takes longer. Real serving is *open-loop*: arrivals
//! come whether or not the system keeps up, and an engine that buffers
//! without bound converts a transient burst into unbounded queueing delay
//! (and memory). [`serve_open_loop`] models that regime in deterministic
//! virtual time:
//!
//! * **arrivals** — a seeded Poisson process ([`poisson_arrivals`]):
//!   exponentially distributed inter-arrival gaps with a configurable
//!   mean, quantized to whole ticks (minimum gap 1);
//! * **capacity** — `servers` *virtual* servers, each able to run one
//!   negotiation at a time. Capacity is deliberately decoupled from the
//!   OS worker pool (`workers`), which only affects wall-clock speed —
//!   admission decisions and every reported tick are identical across
//!   worker counts;
//! * **admission control** — a bounded FIFO queue (`queue_cap`). An
//!   arrival that finds every server busy and the queue full is shed
//!   immediately (`queue_full`); a queued job whose start would exceed
//!   `arrival + deadline_ticks` is shed at dequeue (`deadline`). Shed
//!   jobs are **never executed**: they get a synthesized failed
//!   [`NegotiationOutcome`] with a typed
//!   [`RefusalReason::Overload`] refusal and a
//!   [`ResilienceFailure::Overload`] record. Nothing in the driver
//!   buffers beyond `queue_cap + servers` jobs;
//! * **service** — an admitted job runs a real negotiation on a
//!   copy-on-write snapshot of the frozen peer map (DESIGN.md §4i) with
//!   its own [`SimNetwork::for_job`] stream; its virtual service time is
//!   the negotiation's `elapsed_ticks`. Because per-job service times
//!   depend only on the job index, the whole M/G/c simulation — admit
//!   and shed decisions, waits, completions — is bit-identical across
//!   runs *and* worker counts.
//!
//! Latency accounting flows through the telemetry quantile sketches:
//! `negotiation.serve.{offered,admitted,shed,completed}` counters and
//! `negotiation.serve.{wait,service,latency}_ticks` histograms
//! (p50/p99/p999 in the exported snapshot), plus
//! `negotiation.serve.base_clones` — the number of per-job snapshots
//! that did *not* share their peer's frozen KB base, asserted zero in
//! tests and benches as the clone-free-startup regression guard.

use crate::answer_cache::SharedRemoteAnswerCache;
use crate::outcome::{NegotiationOutcome, Refusal, RefusalReason};
use crate::resilience::ResilienceFailure;
use crate::scheduler::{BatchJob, EventCollector, SharedCollector};
use crate::session::{negotiate_shared_cached, negotiate_traced, PeerMap, SessionConfig};
use peertrust_net::{NegotiationId, SimNetwork, Tick};
use peertrust_telemetry::{MetricsSnapshot, SpanId, Telemetry, TraceEvent};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Open-loop driver configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Mean inter-arrival gap in ticks; the offered rate is its inverse.
    pub mean_interarrival_ticks: f64,
    /// Virtual serving capacity: negotiations in service at once. This is
    /// the *model's* concurrency; see `workers` for the OS pool.
    pub servers: usize,
    /// Bounded FIFO admission queue. Arrivals beyond it are shed.
    pub queue_cap: usize,
    /// Maximum ticks a job may wait in the queue; a job whose service
    /// cannot start by `arrival + deadline_ticks` is shed at dequeue.
    pub deadline_ticks: Tick,
    /// Seed for the Poisson arrival process.
    pub arrival_seed: u64,
    /// Base seed for the per-job simulated networks
    /// ([`SimNetwork::for_job`]), exactly as in the batch scheduler.
    pub net_seed: u64,
    /// OS worker threads executing admitted jobs. Result-invisible: every
    /// decision and tick is identical across worker counts. `0` and `1`
    /// run jobs inline on the coordinator.
    pub workers: usize,
    /// Per-session configuration, cloned into every admitted job.
    pub session: SessionConfig,
    /// Cross-negotiation answer cache. When set, admitted jobs execute
    /// sequentially in virtual start order (cache warmth then depends
    /// only on that deterministic order, keeping the run reproducible).
    pub shared_cache: Option<SharedRemoteAnswerCache>,
    /// Compile every peer's KB to WAM-lite bytecode at freeze time; the
    /// `Arc<CompiledKb>` artifacts are shared into every job snapshot.
    pub compile_policies: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            mean_interarrival_ticks: 8.0,
            servers: 4,
            queue_cap: 16,
            deadline_ticks: 64,
            arrival_seed: 7,
            net_seed: 7,
            workers: 1,
            session: SessionConfig::default(),
            shared_cache: None,
            compile_policies: false,
        }
    }
}

/// What admission control decided for one arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ServeDecision {
    /// Started service (immediately or after queueing).
    Admitted,
    /// Shed on arrival: every server busy and the bounded queue full.
    ShedQueueFull,
    /// Shed at dequeue: service could not start within the deadline.
    ShedDeadline,
}

/// Exact quantiles over one per-job tick series (computed from the full
/// sorted series, unlike the sketch-backed telemetry histograms).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TickQuantiles {
    pub p50: Tick,
    pub p99: Tick,
    pub p999: Tick,
    pub max: Tick,
}

impl TickQuantiles {
    fn from_samples(mut samples: Vec<Tick>) -> TickQuantiles {
        if samples.is_empty() {
            return TickQuantiles::default();
        }
        samples.sort_unstable();
        let at = |q: f64| samples[((q * (samples.len() - 1) as f64).round()) as usize];
        TickQuantiles {
            p50: at(0.50),
            p99: at(0.99),
            p999: at(0.999),
            max: *samples.last().expect("non-empty"),
        }
    }
}

/// Aggregate measurements of one open-loop run.
#[derive(Clone, Debug, Default, serde::Serialize)]
pub struct ServeStats {
    /// Arrivals offered to the engine.
    pub offered: usize,
    /// Jobs that started service.
    pub admitted: usize,
    /// Jobs shed because the bounded queue was full on arrival.
    pub shed_queue_full: usize,
    /// Jobs shed because they could not start within their deadline.
    pub shed_deadline: usize,
    /// Admitted jobs that ran to completion (always equals `admitted`:
    /// admitted work is never abandoned).
    pub completed: usize,
    /// Completed jobs whose negotiation succeeded.
    pub successes: usize,
    /// Per-job peer-map snapshots that did **not** share the frozen KB
    /// base — i.e. hot-path deep clones. Zero whenever the copy-on-write
    /// path is intact.
    pub base_clones: u64,
    /// Peak admission-queue depth observed (never exceeds `queue_cap`).
    pub max_queue_depth: usize,
    /// Virtual tick of the last completion (0 when nothing ran).
    pub makespan_ticks: Tick,
    /// Queueing delay of admitted jobs (start − arrival).
    pub wait: TickQuantiles,
    /// Service time of admitted jobs (the negotiation's elapsed ticks).
    pub service: TickQuantiles,
    /// End-to-end latency of admitted jobs (completion − arrival).
    pub latency: TickQuantiles,
}

/// Everything one open-loop run produced, aligned by arrival index.
pub struct ServeReport {
    /// Admission decision per arrival.
    pub decisions: Vec<ServeDecision>,
    /// Outcome per arrival: the real negotiation outcome for admitted
    /// jobs, a synthesized [`RefusalReason::Overload`] refusal for shed
    /// ones.
    pub outcomes: Vec<NegotiationOutcome>,
    /// `Some(`[`ResilienceFailure::Overload`]`)` for shed arrivals.
    pub failures: Vec<Option<ResilienceFailure>>,
    /// Virtual arrival tick per job.
    pub arrivals: Vec<Tick>,
    /// Virtual service-start tick (`None` for shed jobs).
    pub starts: Vec<Option<Tick>>,
    /// Virtual completion tick (`None` for shed jobs).
    pub completions: Vec<Option<Tick>>,
    pub stats: ServeStats,
}

/// Deterministic Poisson arrival schedule: `n` cumulative arrival ticks
/// whose gaps are exponentially distributed with the given mean, rounded
/// to whole ticks with a minimum gap of 1. Identical for identical
/// `(n, mean, seed)`.
pub fn poisson_arrivals(n: usize, mean_interarrival_ticks: f64, seed: u64) -> Vec<Tick> {
    assert!(
        mean_interarrival_ticks > 0.0,
        "mean inter-arrival must be positive"
    );
    let mut state = seed;
    let mut t: Tick = 0;
    (0..n)
        .map(|_| {
            // splitmix64 → uniform in [0, 1) → inverse-CDF exponential.
            let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            let gap = -(1.0 - u).ln() * mean_interarrival_ticks;
            t += (gap.round() as Tick).max(1);
            t
        })
        .collect()
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What one executed job hands back to the coordinator.
struct JobResult {
    outcome: NegotiationOutcome,
    /// Did the job's peer-map snapshot share every frozen KB base with
    /// the serving base (`true` = copy-on-write, no deep clone)?
    shared_base: bool,
}

/// Bounded-by-construction dispatch queue for the worker pool. Only jobs
/// the admission controller has *started* are ever pushed, so at most
/// `servers` entries are pending at once.
struct WorkQueue {
    state: Mutex<(VecDeque<usize>, bool)>,
    cv: Condvar,
}

impl WorkQueue {
    fn new() -> WorkQueue {
        WorkQueue {
            state: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    fn push(&self, idx: usize) {
        self.state.lock().expect("work lock").0.push_back(idx);
        self.cv.notify_one();
    }

    fn close(&self) {
        self.state.lock().expect("work lock").1 = true;
        self.cv.notify_all();
    }

    fn pop(&self) -> Option<usize> {
        let mut guard = self.state.lock().expect("work lock");
        loop {
            if let Some(idx) = guard.0.pop_front() {
                return Some(idx);
            }
            if guard.1 {
                return None;
            }
            guard = self.cv.wait(guard).expect("work lock");
        }
    }
}

/// Per-job result slots the coordinator blocks on when the simulation
/// needs a completion time.
struct ResultSlots {
    slots: Mutex<Vec<Option<JobResult>>>,
    cv: Condvar,
}

impl ResultSlots {
    fn new(n: usize) -> ResultSlots {
        ResultSlots {
            slots: Mutex::new((0..n).map(|_| None).collect()),
            cv: Condvar::new(),
        }
    }

    fn fill(&self, idx: usize, result: JobResult) {
        self.slots.lock().expect("slot lock")[idx] = Some(result);
        self.cv.notify_all();
    }

    /// Block until job `idx` finished; return its virtual service ticks.
    fn service_ticks(&self, idx: usize) -> Tick {
        let mut guard = self.slots.lock().expect("slot lock");
        loop {
            if let Some(result) = &guard[idx] {
                // A negotiation always occupies its server for at least
                // one tick, even if it resolved without network traffic.
                return result.outcome.elapsed_ticks.max(1);
            }
            guard = self.cv.wait(guard).expect("slot lock");
        }
    }
}

/// One job in service: started at `start`, completion resolved lazily
/// (blocking on the worker pool) the first time the simulation needs it.
struct InService {
    job: usize,
    completion: Option<Tick>,
}

/// Run `jobs` through the open-loop admission controller. See the module
/// docs for the model; the report is aligned with `jobs` by index.
pub fn serve_open_loop(
    peers: &PeerMap,
    jobs: &[BatchJob],
    cfg: &ServeConfig,
    telemetry: &Telemetry,
) -> ServeReport {
    // Freeze (and optionally compile) once, exactly like the batch
    // scheduler: every per-job snapshot below is then a copy-on-write
    // view over Arc-shared rule stores.
    let prepared = (cfg.compile_policies || !peers.is_frozen()).then(|| {
        let mut prepared = peers.clone();
        prepared.freeze();
        if cfg.compile_policies {
            for id in prepared.ids() {
                if let Some(peer) = prepared.get_mut(id) {
                    peer.compile_policies();
                }
            }
        }
        prepared
    });
    let peers = prepared.as_ref().unwrap_or(peers);

    let n = jobs.len();
    let arrivals = poisson_arrivals(n, cfg.mean_interarrival_ticks, cfg.arrival_seed);
    // A shared cache makes service times depend on execution order, so
    // order is pinned to the deterministic virtual start order by running
    // inline on the coordinator.
    let sequential = cfg.shared_cache.is_some() || cfg.workers <= 1;
    let pool_workers = if sequential {
        0
    } else {
        cfg.workers.min(n.max(1))
    };

    let work = WorkQueue::new();
    let slots = ResultSlots::new(n);

    type WorkerYield = (MetricsSnapshot, Vec<TraceEvent>);
    let (sim, mut per_worker) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..pool_workers)
            .map(|_| {
                let work = &work;
                let slots = &slots;
                scope.spawn(move || {
                    let collector = telemetry.enabled().then(EventCollector::new);
                    let worker_tele = match &collector {
                        Some(c) => Telemetry::with_recorder(Box::new(SharedCollector(c.clone()))),
                        None => Telemetry::disabled(),
                    };
                    while let Some(idx) = work.pop() {
                        slots.fill(idx, run_one(peers, &jobs[idx], idx, cfg, &worker_tele));
                    }
                    yield_worker(worker_tele, collector)
                })
            })
            .collect();

        // The coordinator's own pipeline for inline (sequential-mode)
        // jobs, merged through the same path as the workers'.
        let collector = telemetry.enabled().then(EventCollector::new);
        let inline_tele = match &collector {
            Some(c) => Telemetry::with_recorder(Box::new(SharedCollector(c.clone()))),
            None => Telemetry::disabled(),
        };
        let dispatch = |idx: usize| {
            if sequential {
                slots.fill(idx, run_one(peers, &jobs[idx], idx, cfg, &inline_tele));
            } else {
                work.push(idx);
            }
        };
        let sim = simulate(&arrivals, cfg, &dispatch, &slots);
        work.close();
        let mut per_worker: Vec<WorkerYield> = handles
            .into_iter()
            .map(|h| h.join().expect("serve worker panicked"))
            .collect();
        per_worker.push(yield_worker(inline_tele, collector));
        (sim, per_worker)
    });

    // Merge per-worker metric registries, then re-emit buffered events
    // sorted by (negotiation, seq) — the same scheduling-independent
    // order the batch scheduler uses.
    if let Some(metrics) = telemetry.metrics() {
        for (snapshot, _) in &per_worker {
            metrics.merge(snapshot);
        }
    }
    if telemetry.enabled() {
        let mut events: Vec<TraceEvent> = per_worker
            .iter_mut()
            .flat_map(|(_, ev)| std::mem::take(ev))
            .collect();
        events.sort_by_key(|e| (e.negotiation, e.seq));
        for e in events {
            telemetry.event(e.at, SpanId(e.span), e.negotiation, &e.kind, e.fields);
        }
    }

    // Assemble per-job results in arrival order.
    let results = slots.slots.into_inner().expect("slot lock");
    let mut decisions = Vec::with_capacity(n);
    let mut outcomes = Vec::with_capacity(n);
    let mut failures = Vec::with_capacity(n);
    let mut base_clones = 0u64;
    let mut successes = 0usize;
    let (mut waits, mut services, mut latencies) = (Vec::new(), Vec::new(), Vec::new());
    for (idx, result) in results.into_iter().enumerate() {
        match result {
            Some(result) => {
                if !result.shared_base {
                    base_clones += 1;
                }
                if result.outcome.success {
                    successes += 1;
                }
                let start = sim.starts[idx].expect("admitted job has a start");
                let completion = sim.completions[idx].expect("admitted job completed");
                waits.push(start - arrivals[idx]);
                services.push(completion - start);
                latencies.push(completion - arrivals[idx]);
                decisions.push(ServeDecision::Admitted);
                outcomes.push(result.outcome);
                failures.push(None);
            }
            None => {
                let (decision, kind) = sim.shed_kind(idx);
                decisions.push(decision);
                outcomes.push(shed_outcome(&jobs[idx]));
                failures.push(Some(ResilienceFailure::Overload {
                    peer: jobs[idx].responder,
                    kind: kind.to_string(),
                    at: arrivals[idx],
                }));
            }
        }
    }

    let stats = ServeStats {
        offered: n,
        admitted: waits.len(),
        shed_queue_full: sim.shed_queue_full.len(),
        shed_deadline: sim.shed_deadline.len(),
        completed: waits.len(),
        successes,
        base_clones,
        max_queue_depth: sim.max_queue_depth,
        makespan_ticks: sim.completions.iter().flatten().copied().max().unwrap_or(0),
        wait: TickQuantiles::from_samples(waits.clone()),
        service: TickQuantiles::from_samples(services.clone()),
        latency: TickQuantiles::from_samples(latencies.clone()),
    };
    flush_serve_metrics(telemetry, &stats, &waits, &services, &latencies);

    ServeReport {
        decisions,
        outcomes,
        failures,
        arrivals,
        starts: sim.starts,
        completions: sim.completions,
        stats,
    }
}

/// Virtual-time M/G/c simulation state produced by [`simulate`].
struct SimResult {
    starts: Vec<Option<Tick>>,
    completions: Vec<Option<Tick>>,
    shed_queue_full: Vec<usize>,
    shed_deadline: Vec<usize>,
    max_queue_depth: usize,
}

impl SimResult {
    fn shed_kind(&self, idx: usize) -> (ServeDecision, &'static str) {
        if self.shed_queue_full.contains(&idx) {
            (ServeDecision::ShedQueueFull, "queue_full")
        } else {
            debug_assert!(self.shed_deadline.contains(&idx));
            (ServeDecision::ShedDeadline, "deadline")
        }
    }
}

/// Drive arrivals through the bounded queue and virtual servers.
/// `dispatch` hands an admitted job to the execution engine; completion
/// times are resolved lazily (blocking) through `slots` only when the
/// simulation needs them, so independent in-service jobs overlap on the
/// worker pool.
fn simulate(
    arrivals: &[Tick],
    cfg: &ServeConfig,
    dispatch: &dyn Fn(usize),
    slots: &ResultSlots,
) -> SimResult {
    let n = arrivals.len();
    let servers = cfg.servers.max(1);
    let mut idle = servers;
    let mut in_service: Vec<InService> = Vec::with_capacity(servers);
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut result = SimResult {
        starts: vec![None; n],
        completions: vec![None; n],
        shed_queue_full: Vec::new(),
        shed_deadline: Vec::new(),
        max_queue_depth: 0,
    };

    // Advance virtual time up to `horizon` (or drain fully on `None`):
    // resolve in-service completions (blocking on the pool — they all
    // run concurrently), ties broken by job index so completion order is
    // deterministic, and let freed servers pull from the queue.
    let process = |result: &mut SimResult,
                   in_service: &mut Vec<InService>,
                   queue: &mut VecDeque<usize>,
                   idle: &mut usize,
                   horizon: Option<Tick>| {
        loop {
            let next = in_service
                .iter_mut()
                .enumerate()
                .map(|(pos, entry)| {
                    let start = result.starts[entry.job].expect("in-service job started");
                    let ct = *entry
                        .completion
                        .get_or_insert_with(|| start + slots.service_ticks(entry.job));
                    (pos, ct, entry.job)
                })
                .min_by_key(|&(_, ct, job)| (ct, job))
                .map(|(pos, ct, _)| (pos, ct));
            let Some((pos, ct)) = next else { break };
            if let Some(horizon) = horizon {
                if ct > horizon {
                    break;
                }
            }
            let done = in_service.swap_remove(pos);
            result.completions[done.job] = Some(ct);
            *idle += 1;
            // The freed server picks up queued work at tick `ct`; jobs
            // whose wait already blew the deadline are shed at dequeue
            // and the server stays free for the next in line.
            while *idle > 0 {
                let Some(&j) = queue.front() else { break };
                queue.pop_front();
                if ct.saturating_sub(arrivals[j]) > cfg.deadline_ticks {
                    result.shed_deadline.push(j);
                    continue;
                }
                result.starts[j] = Some(ct);
                dispatch(j);
                in_service.push(InService {
                    job: j,
                    completion: None,
                });
                *idle -= 1;
            }
        }
    };

    for (i, &t) in arrivals.iter().enumerate() {
        process(&mut result, &mut in_service, &mut queue, &mut idle, Some(t));
        if idle > 0 && queue.is_empty() {
            result.starts[i] = Some(t);
            dispatch(i);
            in_service.push(InService {
                job: i,
                completion: None,
            });
            idle -= 1;
        } else if queue.len() < cfg.queue_cap {
            queue.push_back(i);
            result.max_queue_depth = result.max_queue_depth.max(queue.len());
        } else {
            result.shed_queue_full.push(i);
        }
    }
    process(&mut result, &mut in_service, &mut queue, &mut idle, None);
    debug_assert!(queue.is_empty() && in_service.is_empty());
    result
}

/// Execute one admitted job on an isolated snapshot and per-job network.
fn run_one(
    peers: &PeerMap,
    job: &BatchJob,
    idx: usize,
    cfg: &ServeConfig,
    telemetry: &Telemetry,
) -> JobResult {
    // Copy-on-write snapshot over the frozen serving base: O(#peers)
    // pointer bumps. `shared_base` records whether sharing actually held
    // (it is the per-job input to `negotiation.serve.base_clones`).
    let mut job_peers = peers.clone();
    let shared_base = job_peers.shares_frozen_bases_with(peers);
    let mut net = SimNetwork::for_job(cfg.net_seed, idx);
    let nid = NegotiationId(idx as u64 + 1);
    let outcome = match &cfg.shared_cache {
        Some(cache) => negotiate_shared_cached(
            &mut job_peers,
            &mut net,
            cfg.session.clone(),
            nid,
            job.requester,
            job.responder,
            job.goal.clone(),
            cache,
            telemetry,
        ),
        None => negotiate_traced(
            &mut job_peers,
            &mut net,
            cfg.session.clone(),
            nid,
            job.requester,
            job.responder,
            job.goal.clone(),
            telemetry,
        ),
    };
    JobResult {
        outcome,
        shared_base,
    }
}

/// A shed job's synthesized outcome: failed, nothing disclosed, one
/// typed [`RefusalReason::Overload`] refusal from the responder the
/// request never reached.
fn shed_outcome(job: &BatchJob) -> NegotiationOutcome {
    NegotiationOutcome {
        success: false,
        requester: job.requester,
        responder: job.responder,
        goal: job.goal.clone(),
        granted: Vec::new(),
        disclosures: Vec::new(),
        refusals: vec![Refusal {
            peer: job.responder,
            requester: job.requester,
            goal: job.goal.clone(),
            reason: RefusalReason::Overload,
        }],
        messages: 0,
        bytes: 0,
        queries: 0,
        rounds: 0,
        elapsed_ticks: 0,
    }
}

fn yield_worker(
    tele: Telemetry,
    collector: Option<Arc<EventCollector>>,
) -> (MetricsSnapshot, Vec<TraceEvent>) {
    let snapshot = tele.metrics().map(|m| m.snapshot()).unwrap_or_default();
    let events = collector
        .map(|c| std::mem::take(&mut *c.events.lock().expect("collector lock")))
        .unwrap_or_default();
    (snapshot, events)
}

/// Record the `negotiation.serve.*` series (tick-valued, so the exported
/// snapshot is deterministic across runs and worker counts).
fn flush_serve_metrics(
    telemetry: &Telemetry,
    stats: &ServeStats,
    waits: &[Tick],
    services: &[Tick],
    latencies: &[Tick],
) {
    if !telemetry.enabled() {
        return;
    }
    telemetry.incr("negotiation.serve.offered", stats.offered as u64);
    telemetry.incr("negotiation.serve.admitted", stats.admitted as u64);
    telemetry.incr(
        "negotiation.serve.shed",
        (stats.shed_queue_full + stats.shed_deadline) as u64,
    );
    telemetry.incr(
        "negotiation.serve.shed.queue_full",
        stats.shed_queue_full as u64,
    );
    telemetry.incr(
        "negotiation.serve.shed.deadline",
        stats.shed_deadline as u64,
    );
    telemetry.incr("negotiation.serve.completed", stats.completed as u64);
    telemetry.incr("negotiation.serve.succeeded", stats.successes as u64);
    telemetry.incr("negotiation.serve.base_clones", stats.base_clones);
    telemetry.observe(
        "negotiation.serve.queue_depth_peak",
        stats.max_queue_depth as u64,
    );
    telemetry.observe("negotiation.serve.makespan_ticks", stats.makespan_ticks);
    for &w in waits {
        telemetry.observe("negotiation.serve.wait_ticks", w);
    }
    for &s in services {
        telemetry.observe("negotiation.serve.service_ticks", s);
    }
    for &l in latencies {
        telemetry.observe("negotiation.serve.latency_ticks", l);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::NegotiationPeer;
    use crate::scheduler::{negotiate_batch, BatchConfig};
    use peertrust_core::PeerId;
    use peertrust_crypto::KeyRegistry;
    use peertrust_parser::parse_literal;

    /// The scheduler tests' bilateral scenario as an arrival stream.
    fn bilateral_jobs(n: usize) -> (PeerMap, Vec<BatchJob>) {
        let reg = KeyRegistry::new();
        for (i, name) in ["UIUC", "BBB"].iter().enumerate() {
            reg.register_derived(PeerId::new(name), i as u64 + 1);
        }
        let mut peers = PeerMap::new();
        let mut elearn = NegotiationPeer::new("E-Learn", reg.clone());
        elearn
            .load_program(
                r#"
                resource(X) $ true <- student(X) @ "UIUC" @ X.
                member("E-Learn") @ "BBB" $ true signedBy ["BBB"].
                "#,
            )
            .unwrap();
        peers.insert(elearn);
        let mut alice = NegotiationPeer::new("Alice", reg);
        alice
            .load_program(
                r#"
                student("Alice") @ "UIUC" signedBy ["UIUC"].
                student(X) @ Y $ member(Requester) @ "BBB" @ Requester <-_true student(X) @ Y.
                "#,
            )
            .unwrap();
        peers.insert(alice);
        let goal = parse_literal(r#"resource("Alice")"#).unwrap();
        let jobs = (0..n)
            .map(|_| BatchJob::new(PeerId::new("Alice"), PeerId::new("E-Learn"), goal.clone()))
            .collect();
        (peers, jobs)
    }

    /// An overloaded config: arrivals every ~1 tick into a single server
    /// whose bilateral negotiation takes many ticks.
    fn overload_cfg(workers: usize) -> ServeConfig {
        ServeConfig {
            mean_interarrival_ticks: 1.0,
            servers: 1,
            queue_cap: 3,
            deadline_ticks: 48,
            workers,
            ..ServeConfig::default()
        }
    }

    fn fingerprint(report: &ServeReport) -> String {
        [
            serde_json::to_string(&report.decisions).unwrap(),
            serde_json::to_string(&report.arrivals).unwrap(),
            serde_json::to_string(&report.starts).unwrap(),
            serde_json::to_string(&report.completions).unwrap(),
            serde_json::to_string(&report.outcomes).unwrap(),
            serde_json::to_string(&report.failures).unwrap(),
        ]
        .join("|")
    }

    #[test]
    fn poisson_arrival_schedule_is_deterministic_and_strictly_increasing() {
        let a = poisson_arrivals(512, 8.0, 42);
        let b = poisson_arrivals(512, 8.0, 42);
        assert_eq!(a, b);
        assert_ne!(a, poisson_arrivals(512, 8.0, 43), "seed must matter");
        for w in a.windows(2) {
            assert!(w[0] < w[1], "arrival ticks must be strictly increasing");
        }
        // Mean gap should be in the right ballpark of the configured mean.
        let mean = *a.last().unwrap() as f64 / a.len() as f64;
        assert!(
            (4.0..=12.0).contains(&mean),
            "mean inter-arrival {mean} implausible for configured 8.0"
        );
    }

    #[test]
    fn overload_sheds_with_typed_refusals_and_bounded_queue() {
        let (peers, jobs) = bilateral_jobs(40);
        let cfg = overload_cfg(1);
        let report = serve_open_loop(&peers, &jobs, &cfg, &Telemetry::disabled());
        let stats = &report.stats;
        assert_eq!(stats.offered, 40);
        assert_eq!(
            stats.admitted + stats.shed_queue_full + stats.shed_deadline,
            stats.offered,
            "every arrival is admitted or shed"
        );
        assert!(
            stats.shed_queue_full + stats.shed_deadline > 0,
            "offered load far above capacity must shed"
        );
        assert!(stats.admitted > 0, "capacity is nonzero, some jobs run");
        assert!(
            stats.max_queue_depth <= cfg.queue_cap,
            "queue stayed bounded"
        );
        // p99 (indeed max) admitted queueing delay within the deadline.
        assert!(stats.wait.max <= cfg.deadline_ticks);
        for (idx, decision) in report.decisions.iter().enumerate() {
            match decision {
                ServeDecision::Admitted => {
                    assert!(report.outcomes[idx].success);
                    assert!(report.failures[idx].is_none());
                    let wait = report.starts[idx].unwrap() - report.arrivals[idx];
                    assert!(wait <= cfg.deadline_ticks);
                }
                ServeDecision::ShedQueueFull | ServeDecision::ShedDeadline => {
                    let o = &report.outcomes[idx];
                    assert!(!o.success);
                    assert_eq!(o.refusals.len(), 1);
                    assert_eq!(o.refusals[0].reason, RefusalReason::Overload);
                    assert_eq!(o.messages + o.bytes + o.queries, 0, "shed jobs never ran");
                    match report.failures[idx].as_ref().unwrap() {
                        ResilienceFailure::Overload { peer, kind, at } => {
                            assert_eq!(*peer, jobs[idx].responder);
                            assert_eq!(*at, report.arrivals[idx]);
                            let expected = match decision {
                                ServeDecision::ShedQueueFull => "queue_full",
                                _ => "deadline",
                            };
                            assert_eq!(kind, expected);
                        }
                        other => panic!("expected Overload failure, got {other:?}"),
                    }
                    assert!(report.starts[idx].is_none());
                }
            }
        }
    }

    #[test]
    fn decisions_and_metrics_are_bit_identical_across_runs_and_worker_counts() {
        let (peers, jobs) = bilateral_jobs(24);
        let run = |workers: usize| {
            let (tele, _ring) = Telemetry::ring(4096);
            let report = serve_open_loop(&peers, &jobs, &overload_cfg(workers), &tele);
            (fingerprint(&report), tele.metrics().unwrap().to_json())
        };
        let (baseline_fp, baseline_metrics) = run(1);
        let (again_fp, again_metrics) = run(1);
        assert_eq!(again_fp, baseline_fp, "re-run divergence");
        assert_eq!(again_metrics, baseline_metrics, "re-run metric divergence");
        for workers in [2, 4] {
            let (fp, metrics) = run(workers);
            assert_eq!(fp, baseline_fp, "divergence at {workers} workers");
            assert_eq!(
                metrics, baseline_metrics,
                "metric divergence at {workers} workers"
            );
        }
    }

    #[test]
    fn uncontended_serving_matches_the_closed_loop_batch() {
        let (peers, jobs) = bilateral_jobs(6);
        // Plenty of capacity and headroom: nothing queues, nothing sheds.
        let cfg = ServeConfig {
            mean_interarrival_ticks: 1000.0,
            servers: 4,
            queue_cap: 8,
            deadline_ticks: 10_000,
            workers: 2,
            ..ServeConfig::default()
        };
        let report = serve_open_loop(&peers, &jobs, &cfg, &Telemetry::disabled());
        assert_eq!(report.stats.admitted, 6);
        assert_eq!(report.stats.shed_queue_full + report.stats.shed_deadline, 0);
        assert_eq!(report.stats.wait.max, 0, "no contention, no queueing");
        // Same nid / net-seed scheme as the batch scheduler, so the
        // negotiated outcomes are identical to the closed-loop run.
        let batch = negotiate_batch(
            &peers,
            &jobs,
            &BatchConfig::default(),
            &Telemetry::disabled(),
        );
        for (served, batched) in report.outcomes.iter().zip(&batch.outcomes) {
            assert_eq!(
                serde_json::to_string(served).unwrap(),
                serde_json::to_string(batched).unwrap()
            );
        }
    }

    #[test]
    fn session_startup_shares_the_frozen_base() {
        let (peers, jobs) = bilateral_jobs(16);
        let (tele, _ring) = Telemetry::ring(4096);
        let report = serve_open_loop(&peers, &jobs, &overload_cfg(2), &tele);
        assert_eq!(
            report.stats.base_clones, 0,
            "per-job startup must not deep-clone the peer map"
        );
        assert_eq!(
            tele.metrics()
                .unwrap()
                .counter("negotiation.serve.base_clones"),
            0
        );
        // The caller's map is untouched (serve froze a private copy).
        assert!(!peers.is_frozen());
    }

    #[test]
    fn serve_emits_the_admission_metric_series() {
        let (peers, jobs) = bilateral_jobs(24);
        let (tele, _ring) = Telemetry::ring(4096);
        let report = serve_open_loop(&peers, &jobs, &overload_cfg(1), &tele);
        let m = tele.metrics().unwrap();
        assert_eq!(m.counter("negotiation.serve.offered"), 24);
        assert_eq!(
            m.counter("negotiation.serve.admitted"),
            report.stats.admitted as u64
        );
        assert_eq!(
            m.counter("negotiation.serve.shed"),
            m.counter("negotiation.serve.shed.queue_full")
                + m.counter("negotiation.serve.shed.deadline")
        );
        assert_eq!(
            m.counter("negotiation.serve.completed"),
            m.counter("negotiation.serve.admitted")
        );
        let latency = m
            .histogram("negotiation.serve.latency_ticks")
            .expect("latency sketch recorded");
        assert_eq!(latency.count, report.stats.admitted as u64);
        assert!(latency.p999 >= latency.p50);
        assert!(m.histogram("negotiation.serve.wait_ticks").is_some());
        assert!(m.histogram("negotiation.serve.service_ticks").is_some());
    }

    #[test]
    fn shared_cache_serving_is_deterministic_and_warms_up() {
        let (peers, jobs) = bilateral_jobs(16);
        let run = || {
            let cache = SharedRemoteAnswerCache::new();
            let cfg = ServeConfig {
                shared_cache: Some(cache.clone()),
                workers: 4, // forced sequential by the shared cache
                ..overload_cfg(4)
            };
            let report = serve_open_loop(&peers, &jobs, &cfg, &Telemetry::disabled());
            (fingerprint(&report), cache.stats().hits)
        };
        let (a_fp, a_hits) = run();
        let (b_fp, b_hits) = run();
        assert_eq!(a_fp, b_fp);
        assert_eq!(a_hits, b_hits);
        assert!(a_hits > 0, "repeated hot goal should hit the shared cache");
    }

    #[test]
    fn empty_offered_stream_is_fine() {
        let (peers, _) = bilateral_jobs(1);
        let report = serve_open_loop(&peers, &[], &ServeConfig::default(), &Telemetry::disabled());
        assert_eq!(report.stats.offered, 0);
        assert!(report.decisions.is_empty());
        assert_eq!(report.stats.makespan_ticks, 0);
    }
}
