//! Resilient negotiation: deadlines, retries, backoff, crash-resume.
//!
//! The paper's driver assumes every query, credential push, and answer
//! arrives; its §6 outlook asks for negotiations that "always terminate
//! and succeed when possible". On a faulty substrate (see
//! `peertrust_net::faults`) that requires an explicit robustness layer,
//! which this module provides on top of the session driver:
//!
//! * **Per-query deadlines.** Every shipped message gets a delivery
//!   deadline in simulated ticks; a message still undelivered (lost,
//!   corrupted, or delayed past the deadline) counts as a timeout.
//! * **Bounded retries with deterministic exponential backoff.** A timed
//!   out message is re-sent after `backoff_base * 2^(attempt-1)` ticks
//!   (capped), up to `max_retries` times. Backoff waits advance the
//!   simulated clock, so retry schedules are fully deterministic.
//! * **Duplicate suppression.** The fault lane can deliver the same
//!   message twice (and retries can race a delayed original); receivers
//!   drop message ids they have already seen.
//! * **Crash-resume.** When a peer's scheduled crash window closes, its
//!   session state is rebuilt from scratch: the pristine pre-negotiation
//!   peer snapshot is restored and the disclosure log is replayed —
//!   every signed rule recorded as disclosed *to* that peer is received
//!   again, in original order. Session answer caches are durable (the
//!   model's stand-in for a persisted answer store). Because the log
//!   replay reconstructs exactly the credentials the peer had acquired,
//!   a negotiation that survives the outage converges to the fault-free
//!   outcome.
//!
//! Termination is unconditional: every delivery attempt ends in success,
//! a [`ResilienceFailure::DeadlineExceeded`], a
//! [`ResilienceFailure::RetryBudgetExhausted`], or a
//! [`ResilienceFailure::SendRejected`] — there is no path that waits
//! forever. Failed deliveries surface in the outcome as
//! `RefusalReason::Unreachable` refusals.
//!
//! With [`peertrust_net::FaultPlan::none`] the resilient driver is bit-identical to the
//! plain one — outcomes, metrics, and timeline events — because no
//! retry, suppression, or resume code path is reachable and all
//! `negotiation.resilience.*` telemetry is emitted only on occurrence
//! (property-tested in `tests/prop_resilience.rs`).
//!
//! One sizing rule: `query_deadline_ticks` must exceed the worst-case
//! link latency, or fault-free deliveries would be misread as timeouts
//! (the default of 64 covers every latency model in the experiments).

use crate::answer_cache::SharedRemoteAnswerCache;
use crate::outcome::NegotiationOutcome;
use crate::session::{negotiate_with_cache, CacheRef, PeerMap, SessionConfig};
use peertrust_core::PeerId;
use peertrust_net::{MessageId, NegotiationId, SimNetwork, Tick};
use peertrust_telemetry::Telemetry;
use std::collections::HashSet;

/// Retry/timeout policy for one negotiation session.
#[derive(Clone, Debug)]
pub struct ResilienceConfig {
    /// Delivery deadline per shipped message, in ticks from the send.
    /// Retries of the same message share the deadline, so a delivery
    /// attempt occupies at most this many ticks in total.
    pub query_deadline_ticks: Tick,
    /// Maximum re-sends of one message after the original.
    pub max_retries: u32,
    /// Backoff before retry `n` is `backoff_base * 2^(n-1)` ticks…
    pub backoff_base: Tick,
    /// …capped at this many ticks.
    pub backoff_cap: Tick,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            // Worst-case retry span with the defaults: backoffs
            // 2+4+8+16 = 30 ticks plus per-attempt latency, comfortably
            // inside the 64-tick deadline for latency models up to ~6.
            query_deadline_ticks: 64,
            max_retries: 4,
            backoff_base: 2,
            backoff_cap: 16,
        }
    }
}

/// Why a delivery was abandoned. Every non-converging run terminates with
/// at least one of these — never a hang.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ResilienceFailure {
    /// The per-message deadline elapsed with retries still failing.
    DeadlineExceeded {
        peer: PeerId,
        kind: String,
        at: Tick,
    },
    /// The retry budget ran out before the deadline.
    RetryBudgetExhausted {
        peer: PeerId,
        kind: String,
        attempts: u32,
    },
    /// A retry send was rejected outright by the transport (topology or
    /// hop budget).
    SendRejected { peer: PeerId, kind: String },
    /// Admission control refused the whole negotiation before any message
    /// was sent: the serving layer's bounded queue was full, or the job
    /// could not start within its admission deadline (see `crate::serve`).
    /// `kind` records which guard fired (`"queue_full"` or `"deadline"`),
    /// `at` the arrival tick of the shed job.
    Overload {
        peer: PeerId,
        kind: String,
        at: Tick,
    },
}

impl ResilienceFailure {
    /// The peer the work could not be delivered to (for [`Overload`]
    /// sheds, the responder that never saw the request).
    ///
    /// [`Overload`]: ResilienceFailure::Overload
    pub fn peer(&self) -> PeerId {
        match self {
            ResilienceFailure::DeadlineExceeded { peer, .. }
            | ResilienceFailure::RetryBudgetExhausted { peer, .. }
            | ResilienceFailure::SendRejected { peer, .. }
            | ResilienceFailure::Overload { peer, .. } => *peer,
        }
    }
}

/// Counters for one resilient session (also emitted as
/// `negotiation.resilience.*` telemetry, on occurrence only).
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ResilienceStats {
    /// Messages re-sent after a timeout.
    pub retries: u64,
    /// Delivery waits that expired (lost or too-slow message).
    pub timeouts: u64,
    /// Received messages discarded as already-seen ids.
    pub duplicates_suppressed: u64,
    /// Crash windows recovered by pristine-restore + log replay.
    pub crash_resumes: u64,
    /// Deliveries abandoned (one per [`ResilienceFailure`]).
    pub gave_up: u64,
}

/// What the resilience layer did during one negotiation.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ResilienceReport {
    pub stats: ResilienceStats,
    pub failures: Vec<ResilienceFailure>,
    /// True iff no delivery was abandoned — the session ran to the same
    /// conclusion a fault-free transport would reach.
    pub converged: bool,
}

/// Per-session working state the driver threads through deliveries.
pub(crate) struct ResilienceState {
    pub(crate) cfg: ResilienceConfig,
    pub(crate) stats: ResilienceStats,
    pub(crate) failures: Vec<ResilienceFailure>,
    /// Pre-negotiation snapshot every crash-resume restores from.
    pub(crate) pristine: PeerMap,
    /// Message ids already delivered to some inbox (duplicate filter).
    pub(crate) seen: HashSet<MessageId>,
    /// Indices into the fault plan's crash list already resumed.
    pub(crate) resumed: HashSet<usize>,
}

impl ResilienceState {
    pub(crate) fn new(cfg: ResilienceConfig, pristine: PeerMap) -> ResilienceState {
        ResilienceState {
            cfg,
            stats: ResilienceStats::default(),
            failures: Vec::new(),
            pristine,
            seen: HashSet::new(),
            resumed: HashSet::new(),
        }
    }

    pub(crate) fn into_report(self) -> ResilienceReport {
        ResilienceReport {
            converged: self.failures.is_empty(),
            stats: self.stats,
            failures: self.failures,
        }
    }
}

/// [`crate::session::negotiate_traced`] hardened against an unreliable
/// transport: attach a fault lane to `net` (see
/// [`SimNetwork::with_faults`]) and the session retries, suppresses
/// duplicates, and resumes crashed peers per `resilience`. Returns the
/// outcome plus a [`ResilienceReport`] of what the layer had to do.
#[allow(clippy::too_many_arguments)]
pub fn negotiate_resilient(
    peers: &mut PeerMap,
    net: &mut SimNetwork,
    cfg: SessionConfig,
    resilience: ResilienceConfig,
    nid: NegotiationId,
    requester: PeerId,
    responder: PeerId,
    goal: peertrust_core::Literal,
    telemetry: &Telemetry,
) -> (NegotiationOutcome, ResilienceReport) {
    let (outcome, report) = negotiate_with_cache(
        peers,
        net,
        cfg,
        nid,
        requester,
        responder,
        goal,
        CacheRef::None,
        Some(resilience),
        telemetry,
    );
    (outcome, report.expect("resilience attached"))
}

/// [`negotiate_resilient`] against a shared cross-negotiation answer
/// cache (the batch scheduler's warm-cache mode).
#[allow(clippy::too_many_arguments)]
pub fn negotiate_resilient_shared(
    peers: &mut PeerMap,
    net: &mut SimNetwork,
    cfg: SessionConfig,
    resilience: ResilienceConfig,
    nid: NegotiationId,
    requester: PeerId,
    responder: PeerId,
    goal: peertrust_core::Literal,
    cache: &SharedRemoteAnswerCache,
    telemetry: &Telemetry,
) -> (NegotiationOutcome, ResilienceReport) {
    let (outcome, report) = negotiate_with_cache(
        peers,
        net,
        cfg,
        nid,
        requester,
        responder,
        goal,
        CacheRef::Shared(cache),
        Some(resilience),
        telemetry,
    );
    (outcome, report.expect("resilience attached"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::RefusalReason;
    use crate::peer::NegotiationPeer;
    use crate::session::negotiate;
    use peertrust_crypto::KeyRegistry;
    use peertrust_net::{FaultPlan, LinkFaults};
    use peertrust_parser::parse_literal;

    /// The bilateral scenario from the session tests: E-Learn guards
    /// `resource` behind a UIUC credential Alice releases only to BBB
    /// members.
    fn bilateral_peers() -> PeerMap {
        let reg = KeyRegistry::new();
        for (i, name) in ["UIUC", "BBB"].iter().enumerate() {
            reg.register_derived(PeerId::new(name), i as u64 + 1);
        }
        let mut peers = PeerMap::new();
        let mut elearn = NegotiationPeer::new("E-Learn", reg.clone());
        elearn
            .load_program(
                r#"
                resource(X) $ true <- student(X) @ "UIUC" @ X.
                member("E-Learn") @ "BBB" $ true signedBy ["BBB"].
                "#,
            )
            .unwrap();
        peers.insert(elearn);
        let mut alice = NegotiationPeer::new("Alice", reg);
        alice
            .load_program(
                r#"
                student("Alice") @ "UIUC" signedBy ["UIUC"].
                student(X) @ Y $ member(Requester) @ "BBB" @ Requester <-_true student(X) @ Y.
                "#,
            )
            .unwrap();
        peers.insert(alice);
        peers
    }

    fn alice() -> PeerId {
        PeerId::new("Alice")
    }

    fn elearn() -> PeerId {
        PeerId::new("E-Learn")
    }

    fn goal() -> peertrust_core::Literal {
        parse_literal(r#"resource("Alice")"#).unwrap()
    }

    fn fault_free_outcome() -> NegotiationOutcome {
        let mut peers = bilateral_peers();
        let mut net = SimNetwork::new(7);
        negotiate(
            &mut peers,
            &mut net,
            SessionConfig::default(),
            NegotiationId(1),
            alice(),
            elearn(),
            goal(),
        )
    }

    fn resilient_under(
        plan: FaultPlan,
        resilience: ResilienceConfig,
    ) -> (NegotiationOutcome, ResilienceReport) {
        let mut peers = bilateral_peers();
        let mut net = SimNetwork::new(7).with_faults(plan);
        negotiate_resilient(
            &mut peers,
            &mut net,
            SessionConfig::default(),
            resilience,
            NegotiationId(1),
            alice(),
            elearn(),
            goal(),
            &Telemetry::disabled(),
        )
    }

    #[test]
    fn none_plan_resilient_run_matches_baseline_outcome() {
        let baseline = fault_free_outcome();
        let (out, report) = resilient_under(FaultPlan::none(), ResilienceConfig::default());
        assert_eq!(
            serde_json::to_string(&out).unwrap(),
            serde_json::to_string(&baseline).unwrap()
        );
        assert!(report.converged);
        assert_eq!(report.stats, ResilienceStats::default());
    }

    #[test]
    fn retries_recover_from_drops_to_the_fault_free_outcome() {
        let baseline = fault_free_outcome();
        let mut any_retry = false;
        for seed in 0..12u64 {
            let (out, report) = resilient_under(
                FaultPlan::uniform(seed, LinkFaults::drops(0.3)),
                ResilienceConfig {
                    max_retries: 8,
                    query_deadline_ticks: 128,
                    ..ResilienceConfig::default()
                },
            );
            assert!(report.converged, "seed {seed}: {:?}", report.failures);
            assert_eq!(out.success, baseline.success, "seed {seed}");
            assert_eq!(out.granted, baseline.granted, "seed {seed}");
            assert_eq!(
                out.disclosures.len(),
                baseline.disclosures.len(),
                "seed {seed}"
            );
            any_retry |= report.stats.retries > 0;
        }
        assert!(any_retry, "30% drop over 12 seeds must trigger a retry");
    }

    #[test]
    fn duplicates_are_suppressed_and_outcome_unchanged() {
        let baseline = fault_free_outcome();
        let (out, report) = resilient_under(
            FaultPlan::uniform(
                3,
                LinkFaults {
                    dup_ppm: 1_000_000,
                    ..LinkFaults::NONE
                },
            ),
            ResilienceConfig::default(),
        );
        assert!(report.converged);
        assert!(report.stats.duplicates_suppressed > 0);
        assert_eq!(out.success, baseline.success);
        assert_eq!(out.granted, baseline.granted);
    }

    #[test]
    fn crash_window_is_survived_via_resume() {
        let baseline = fault_free_outcome();
        let plan = FaultPlan::none().with_crash(elearn(), 0, 6);
        let (out, report) = resilient_under(
            plan,
            ResilienceConfig {
                max_retries: 8,
                ..ResilienceConfig::default()
            },
        );
        assert!(report.converged, "failures: {:?}", report.failures);
        assert!(report.stats.retries > 0, "crash must force retries");
        assert!(report.stats.crash_resumes >= 1);
        assert_eq!(out.success, baseline.success);
        assert_eq!(out.granted, baseline.granted);
    }

    #[test]
    fn zero_retry_budget_gives_up_with_budget_reason() {
        let (out, report) = resilient_under(
            FaultPlan::uniform(1, LinkFaults::drops(1.0)),
            ResilienceConfig {
                max_retries: 0,
                ..ResilienceConfig::default()
            },
        );
        assert!(!out.success);
        assert!(!report.converged);
        assert!(matches!(
            report.failures[0],
            ResilienceFailure::RetryBudgetExhausted { attempts: 0, .. }
        ));
        assert!(out
            .refusals
            .iter()
            .any(|r| r.reason == RefusalReason::Unreachable));
        assert_eq!(report.stats.gave_up, report.failures.len() as u64);
    }

    #[test]
    fn tight_deadline_gives_up_with_deadline_reason() {
        let (out, report) = resilient_under(
            FaultPlan::uniform(1, LinkFaults::drops(1.0)),
            ResilienceConfig {
                query_deadline_ticks: 4,
                max_retries: 100,
                backoff_base: 2,
                backoff_cap: 4,
            },
        );
        assert!(!out.success);
        assert!(!report.converged);
        assert!(report
            .failures
            .iter()
            .any(|f| matches!(f, ResilienceFailure::DeadlineExceeded { .. })));
        assert!(report.stats.timeouts > 0);
    }

    #[test]
    fn total_loss_terminates_quickly_not_hangs() {
        // 100% loss on every link, generous budgets: the session must
        // still terminate (bounded by deadline × messages).
        let (out, report) = resilient_under(
            FaultPlan::uniform(9, LinkFaults::drops(1.0)),
            ResilienceConfig::default(),
        );
        assert!(!out.success);
        assert!(!report.converged);
        assert!(report.stats.gave_up > 0);
    }

    #[test]
    fn resilience_telemetry_is_emitted_on_occurrence() {
        let (tele, _ring) = Telemetry::ring(4096);
        let mut peers = bilateral_peers();
        let mut net = SimNetwork::new(7).with_faults(FaultPlan::uniform(2, LinkFaults::drops(0.5)));
        let (_out, report) = negotiate_resilient(
            &mut peers,
            &mut net,
            SessionConfig::default(),
            ResilienceConfig {
                max_retries: 8,
                query_deadline_ticks: 128,
                ..ResilienceConfig::default()
            },
            NegotiationId(1),
            alice(),
            elearn(),
            goal(),
            &tele,
        );
        let m = tele.metrics().unwrap();
        assert_eq!(
            m.counter("negotiation.resilience.retries"),
            report.stats.retries
        );
        assert_eq!(
            m.counter("negotiation.resilience.timeouts"),
            report.stats.timeouts
        );
    }
}
