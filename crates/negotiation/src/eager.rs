//! The eager negotiation strategy.
//!
//! Yu, Winslett & Seamons' *eager* strategy (paper §5, \[21\]): in each round
//! a party discloses **every** credential whose release policy is already
//! satisfied by what it has received so far, without waiting to learn
//! whether the other side needs it. No policy content ever crosses the
//! wire — only credentials — which trades bandwidth for policy privacy.
//!
//! The negotiation succeeds as soon as the responder can derive the
//! requested resource and license its release to the requester from purely
//! local knowledge; it fails when a full round passes with no new
//! disclosure on either side (the monotone disclosure sets have reached
//! their fixpoint, so no later round could differ — this is the classic
//! eager-strategy completeness argument: if a safe disclosure sequence
//! exists, the round-by-round fixpoint finds one).
//!
//! Experiments E3/E4 compare this driver against the parsimonious
//! [`crate::session::negotiate`] on the same policy graphs: eager needs
//! fewer rounds but discloses more credentials and bytes.

use crate::outcome::{DisclosedItem, Disclosure, Evidence, NegotiationOutcome};
use crate::peer::NegotiationPeer;
use crate::session::{classify_evidence, PeerMap};
use peertrust_core::{Context, KnowledgeBase, Literal, PeerId, Rule, RuleId, Subst};
use peertrust_engine::{EngineConfig, Solver};
use peertrust_net::{NegotiationId, Payload, SimNetwork};

/// Eager driver configuration.
#[derive(Clone, Copy, Debug)]
pub struct EagerConfig {
    /// Hard round cap (a fixpoint is normally reached much earlier).
    pub max_rounds: u64,
}

impl Default for EagerConfig {
    fn default() -> Self {
        EagerConfig { max_rounds: 64 }
    }
}

/// Run one eager negotiation between `requester` and `responder`.
///
/// Only the two principals disclose (the strategy set of \[21\] is defined
/// for two-party negotiations); credentials issued by third parties are
/// fine — they were collected beforehand — but no third peer is contacted
/// at run time.
pub fn negotiate_eager(
    peers: &mut PeerMap,
    net: &mut SimNetwork,
    cfg: EagerConfig,
    nid: NegotiationId,
    requester: PeerId,
    responder: PeerId,
    goal: Literal,
) -> NegotiationOutcome {
    let msgs0 = net.stats().messages_sent;
    let bytes0 = net.stats().bytes_sent;
    let queries0 = net.stats().queries;
    let tick0 = net.now();

    let mut disclosures: Vec<Disclosure> = Vec::new();
    // (owner, rule) pairs already sent, to avoid re-disclosure.
    let mut sent: Vec<(PeerId, Rule)> = Vec::new();
    // What each principal received this negotiation: (rule, sender).
    let mut ledgers: std::collections::HashMap<PeerId, Vec<(Rule, PeerId)>> =
        std::collections::HashMap::new();
    let mut rename_seq: u32 = 0;

    let mut success_answers: Vec<Literal> = Vec::new();
    let mut rounds = 0u64;

    'rounds: for round in 1..=cfg.max_rounds {
        rounds = round;
        let mut any_disclosed = false;

        // Requester discloses first (it initiated), then the responder.
        for (discloser, recipient) in [(requester, responder), (responder, requester)] {
            let newly = releasable_credentials(
                peers,
                discloser,
                recipient,
                &sent,
                ledgers.get(&discloser).map(Vec::as_slice),
                &mut rename_seq,
            );
            if newly.is_empty() {
                continue;
            }
            // Contexts stripped on the wire (paper §3.1).
            let rules: Vec<_> = newly
                .iter()
                .map(|(sr, _, _)| peertrust_crypto::SignedRule {
                    rule: sr.rule.strip_contexts(),
                    signatures: sr.signatures.clone(),
                })
                .collect();
            // The transport is authoritative: if the push cannot be routed
            // (partition), nothing was disclosed this turn.
            if net
                .send(
                    nid,
                    discloser,
                    recipient,
                    Payload::CredentialPush { rules },
                    0,
                )
                .is_err()
            {
                continue;
            }
            any_disclosed = true;
            net.step();
            let _ = net.poll(recipient);

            for (sr, ctx, ev) in newly {
                sent.push((discloser, sr.rule.clone()));
                // The wire form is context-stripped (paper §3.1).
                let wire = peertrust_crypto::SignedRule {
                    rule: sr.rule.strip_contexts(),
                    signatures: sr.signatures.clone(),
                };
                let accepted = peers
                    .get_mut(recipient)
                    .expect("recipient exists")
                    .receive_signed(wire.clone(), discloser);
                if let Ok(true) = accepted {
                    ledgers
                        .entry(recipient)
                        .or_default()
                        .push((wire.rule.clone(), discloser));
                    if let Some(ext) = crate::peer::sender_extended(&wire.rule, discloser) {
                        ledgers.entry(recipient).or_default().push((ext, discloser));
                    }
                    let seq = disclosures.len();
                    disclosures.push(Disclosure {
                        seq,
                        from: discloser,
                        to: recipient,
                        item: DisclosedItem::SignedRule(wire),
                        context: ctx,
                        evidence: ev,
                    });
                }
            }
        }

        // Success check: can the responder derive *and license* the goal
        // from purely local knowledge now?
        if let Some((answers, _ctx, _ev)) = grantable_locally(
            peers,
            responder,
            requester,
            &goal,
            ledgers.get(&responder).map(Vec::as_slice),
            &mut rename_seq,
        ) {
            success_answers = answers;
            break 'rounds;
        }

        if !any_disclosed {
            break; // fixpoint without success: negotiation fails
        }
    }

    let success = !success_answers.is_empty();
    if success {
        let seq = disclosures.len();
        disclosures.push(Disclosure {
            seq,
            from: responder,
            to: requester,
            item: DisclosedItem::Resource(success_answers[0].clone()),
            context: Context::public(),
            evidence: Vec::new(),
        });
    }

    NegotiationOutcome {
        success,
        requester,
        responder,
        goal,
        granted: success_answers,
        disclosures,
        refusals: Vec::new(),
        messages: net.stats().messages_sent - msgs0,
        bytes: net.stats().bytes_sent - bytes0,
        queries: net.stats().queries - queries0,
        rounds,
        elapsed_ticks: net.now() - tick0,
    }
}

/// Every credential of `owner` whose release policy is *locally* satisfied
/// for `recipient` and which has not been sent yet.
fn releasable_credentials(
    peers: &PeerMap,
    owner: PeerId,
    recipient: PeerId,
    sent: &[(PeerId, Rule)],
    ledger: Option<&[(Rule, PeerId)]>,
    rename_seq: &mut u32,
) -> Vec<(peertrust_crypto::SignedRule, Context, Vec<Evidence>)> {
    let Some(peer) = peers.get(owner) else {
        return Vec::new();
    };
    let mut out: Vec<(peertrust_crypto::SignedRule, Context, Vec<Evidence>)> = Vec::new();
    for (_id, sr) in peer.disclosable_signed_rules() {
        if sent.iter().any(|(p, r)| *p == owner && *r == sr.rule) {
            continue;
        }
        // A credential registered under several rule ids (re-minted, or
        // received through different channels) must still cross the wire
        // once per round — the `sent` ledger only catches repeats across
        // rounds, so dedup within the batch as well.
        if out.iter().any(|(prev, _, _)| prev.rule == sr.rule) {
            continue;
        }
        if let Some((ctx, ev)) =
            license_locally(peer, recipient, &sr.rule.head, &peer.kb, ledger, rename_seq)
        {
            out.push((sr.clone(), ctx, ev));
        }
    }
    out
}

/// Can `responder` grant `goal` to `requester` using only local knowledge?
/// Returns the granted instances with licensing context and evidence.
#[allow(clippy::type_complexity)]
fn grantable_locally(
    peers: &PeerMap,
    responder: PeerId,
    requester: PeerId,
    goal: &Literal,
    ledger: Option<&[(Rule, PeerId)]>,
    rename_seq: &mut u32,
) -> Option<(Vec<Literal>, Context, Vec<Evidence>)> {
    let peer = peers.get(responder)?;
    let solutions = {
        let mut solver = Solver::new(&peer.kb, responder)
            .with_config(local_config(peer.config.engine))
            .with_compiled_opt(peer.compiled());
        solver.solve(std::slice::from_ref(goal))
    };
    let mut granted = Vec::new();
    let mut license: Option<(Context, Vec<Evidence>)> = None;
    for sol in solutions {
        let answer = sol.proofs[0].goal.clone();
        if granted.contains(&answer) {
            continue;
        }
        if let Some((ctx, ev)) =
            license_locally(peer, requester, &answer, &peer.kb, ledger, rename_seq)
        {
            granted.push(answer);
            if license.is_none() {
                license = Some((ctx, ev));
            }
        }
    }
    if granted.is_empty() {
        None
    } else {
        let (ctx, ev) = license.expect("license set with granted answers");
        Some((granted, ctx, ev))
    }
}

/// Purely local licensing scan: like `Session::license_scan` but context
/// and body goals are proven without any network interaction — the essence
/// of the eager strategy, which only ever *pushes*.
fn license_locally(
    peer: &NegotiationPeer,
    recipient: PeerId,
    answer: &Literal,
    kb: &KnowledgeBase,
    ledger: Option<&[(Rule, PeerId)]>,
    rename_seq: &mut u32,
) -> Option<(Context, Vec<Evidence>)> {
    if recipient == peer.id {
        return Some((Context::public(), Vec::new()));
    }
    let engine = local_config(peer.config.engine);
    let candidates: Vec<(RuleId, Rule)> = kb
        .candidates(answer)
        .map(|sr| (sr.id, sr.rule.as_ref().clone()))
        .collect();
    // §3.2 self-closure: a chainless answer also matches licensing rules
    // written with the owner's explicit authority.
    let extended = answer.clone().at(peertrust_core::Term::peer(peer.id));
    for (_id, rule) in candidates {
        *rename_seq += 1;
        let renamed = rule.rename_apart(*rename_seq);
        let mut s = Subst::new();
        if !peertrust_core::unify_literals(&renamed.head, answer, &mut s) {
            s = Subst::new();
            if answer.eval_peer() == Some(peer.id)
                || !peertrust_core::unify_literals(&renamed.head, &extended, &mut s)
            {
                continue;
            }
        }
        let ctx = renamed.effective_head_context().apply(&s);
        if ctx.is_default_private() {
            continue;
        }

        let mut evidence = Vec::new();
        let mut ctx_goals = Vec::new();
        if !ctx.is_public() {
            ctx_goals = ctx.instantiate(recipient, peer.id);
            let mut solver = Solver::new(kb, peer.id)
                .with_config(engine)
                .with_compiled_opt(peer.compiled());
            match solver.solve(&ctx_goals).into_iter().next() {
                Some(sol) => evidence = classify_evidence(peer, ledger, &sol.proofs),
                None => continue,
            }
        }

        let body: Vec<Literal> = renamed.body.iter().map(|b| s.apply_literal(b)).collect();
        let body_is_answer = body.len() == 1 && body[0] == *answer;
        if !renamed.body.is_empty() && !body_is_answer {
            let mut solver = Solver::new(kb, peer.id)
                .with_config(engine)
                .with_compiled_opt(peer.compiled());
            if !solver.provable(&body) {
                continue;
            }
        }
        return Some((Context::goals(ctx_goals), evidence));
    }
    None
}

/// Host-facing wrapper for the threaded runtime: purely local licensing
/// of one answer/credential for `recipient`, without session ledgers.
pub(crate) fn license_locally_for_host(
    peer: &NegotiationPeer,
    recipient: PeerId,
    answer: &Literal,
    rename_seq: &mut u32,
) -> Option<(Context, Vec<Evidence>)> {
    license_locally(peer, recipient, answer, &peer.kb, None, rename_seq)
}

/// Host-facing wrapper: can `peer` derive and license `goal` for
/// `requester` from purely local knowledge? Returns the granted instances.
pub(crate) fn grantable_locally_for_host(
    peer: &NegotiationPeer,
    requester: PeerId,
    goal: &Literal,
) -> Option<Vec<Literal>> {
    let mut rename_seq = 0u32;
    let solutions = {
        let mut solver = Solver::new(&peer.kb, peer.id)
            .with_config(local_config(peer.config.engine))
            .with_compiled_opt(peer.compiled());
        solver.solve(std::slice::from_ref(goal))
    };
    let mut granted = Vec::new();
    for sol in solutions {
        let answer = sol.subst.apply_literal(goal);
        if granted.contains(&answer) {
            continue;
        }
        if license_locally(peer, requester, &answer, &peer.kb, None, &mut rename_seq).is_some() {
            granted.push(answer);
        }
    }
    if granted.is_empty() {
        None
    } else {
        Some(granted)
    }
}

/// Engine settings for purely local evaluation (no remote fallback).
fn local_config(mut cfg: EngineConfig) -> EngineConfig {
    cfg.remote_fallback = peertrust_engine::RemoteFallback::Never;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::verify_safe_sequence;
    use crate::peer::NegotiationPeer;
    use peertrust_crypto::KeyRegistry;
    use peertrust_parser::parse_literal;

    fn registry() -> KeyRegistry {
        let r = KeyRegistry::new();
        for (i, name) in ["UIUC", "BBB", "CA"].iter().enumerate() {
            r.register_derived(PeerId::new(name), i as u64 + 1);
        }
        r
    }

    fn run_eager(
        peers: &mut PeerMap,
        requester: &str,
        responder: &str,
        goal: &str,
    ) -> NegotiationOutcome {
        let mut net = SimNetwork::new(3);
        negotiate_eager(
            peers,
            &mut net,
            EagerConfig::default(),
            NegotiationId(1),
            PeerId::new(requester),
            PeerId::new(responder),
            parse_literal(goal).unwrap(),
        )
    }

    /// Bilateral scenario identical to the session tests: works under the
    /// eager strategy without any query ever crossing the wire.
    #[test]
    fn eager_bilateral_succeeds() {
        let reg = registry();
        let mut peers = PeerMap::new();
        let mut elearn = NegotiationPeer::new("E-Learn", reg.clone());
        elearn
            .load_program(
                r#"
                resource(X) $ true <- student(X) @ "UIUC" @ X.
                member("E-Learn") @ "BBB" $ true signedBy ["BBB"].
                "#,
            )
            .unwrap();
        peers.insert(elearn);
        let mut alice = NegotiationPeer::new("Alice", reg);
        alice
            .load_program(
                r#"
                student("Alice") @ "UIUC" signedBy ["UIUC"].
                student(X) @ Y $ member(Requester) @ "BBB" @ Requester <-_true student(X) @ Y.
                "#,
            )
            .unwrap();
        peers.insert(alice);

        let out = run_eager(&mut peers, "Alice", "E-Learn", r#"resource("Alice")"#);
        assert!(out.success, "disclosures: {:#?}", out.disclosures);
        // Round 1: Alice can release nothing (no BBB proof yet); E-Learn
        // pushes its BBB membership. Round 2: Alice's policy is satisfied,
        // she pushes her student ID; E-Learn grants.
        assert_eq!(out.rounds, 2);
        assert_eq!(out.credential_count(), 2);
        verify_safe_sequence(&out).unwrap();
    }

    #[test]
    fn eager_fails_at_fixpoint_when_unsatisfiable() {
        // Mutually locked credentials: nobody can move first.
        let reg = registry();
        let mut peers = PeerMap::new();
        let mut a = NegotiationPeer::new("A", reg.clone());
        a.load_program(
            r#"
            resource(X) $ true <- credB(X) @ "CA".
            credA("A") @ "CA" signedBy ["CA"].
            credA(X) @ Y $ credB(Requester) @ "CA" <-_true credA(X) @ Y.
            "#,
        )
        .unwrap();
        peers.insert(a);
        let mut b = NegotiationPeer::new("B", reg);
        b.load_program(
            r#"
            credB("B") @ "CA" signedBy ["CA"].
            credB(X) @ Y $ credA(Requester) @ "CA" <-_true credB(X) @ Y.
            "#,
        )
        .unwrap();
        peers.insert(b);

        let out = run_eager(&mut peers, "B", "A", r#"resource("B")"#);
        assert!(!out.success);
        assert_eq!(out.credential_count(), 0);
        // Terminates after the first all-quiet round.
        assert!(out.rounds <= 2);
    }

    #[test]
    fn eager_unlocks_chains_across_rounds() {
        // B's cred2 unlocks once A's cred1 arrives; A's cred1 is public.
        // Chain: A pushes cred1 (round 1) -> B pushes cred2 (round 2) ->
        // resource unlocked.
        let reg = registry();
        let mut peers = PeerMap::new();
        let mut a = NegotiationPeer::new("A", reg.clone());
        a.load_program(
            r#"
            resource(X) $ true <- cred2(X) @ "CA".
            cred1("A") @ "CA" $ true signedBy ["CA"].
            "#,
        )
        .unwrap();
        peers.insert(a);
        let mut b = NegotiationPeer::new("B", reg);
        b.load_program(
            r#"
            cred2("B") @ "CA" signedBy ["CA"].
            cred2(X) @ Y $ cred1(Requester) @ "CA" <-_true cred2(X) @ Y.
            "#,
        )
        .unwrap();
        peers.insert(b);

        let out = run_eager(&mut peers, "B", "A", r#"resource("B")"#);
        assert!(out.success, "disclosures: {:#?}", out.disclosures);
        verify_safe_sequence(&out).unwrap();
        // Evidence on B's disclosure must cite A's cred1.
        let b_discl = out
            .disclosures
            .iter()
            .find(|d| d.from == PeerId::new("B"))
            .unwrap();
        assert!(b_discl.evidence.iter().any(
            |e| matches!(e, Evidence::ReceivedRule { from, .. } if *from == PeerId::new("A"))
        ));
    }

    #[test]
    fn eager_discloses_more_than_needed() {
        // A public irrelevant credential is pushed too — the price of
        // eagerness.
        let reg = registry();
        let mut peers = PeerMap::new();
        let mut server = NegotiationPeer::new("S", reg.clone());
        server
            .load_program(r#"open(X) $ true <- base(X). base(1)."#)
            .unwrap();
        peers.insert(server);
        let mut client = NegotiationPeer::new("C", reg);
        client
            .load_program(
                r#"
                irrelevant("C") @ "CA" $ true signedBy ["CA"].
                "#,
            )
            .unwrap();
        peers.insert(client);

        let out = run_eager(&mut peers, "C", "S", "open(X)");
        assert!(out.success);
        // The irrelevant credential crossed the wire anyway.
        assert_eq!(out.credential_count(), 1);
    }

    #[test]
    fn eager_respects_round_cap() {
        let reg = registry();
        let mut peers = PeerMap::new();
        let mut a = NegotiationPeer::new("A", reg.clone());
        a.load_program(r#"resource(X) $ true <- never(X)."#)
            .unwrap();
        peers.insert(a);
        peers.insert(NegotiationPeer::new("B", reg));

        let mut net = SimNetwork::new(3);
        let out = negotiate_eager(
            &mut peers,
            &mut net,
            EagerConfig { max_rounds: 3 },
            NegotiationId(1),
            PeerId::new("B"),
            PeerId::new("A"),
            parse_literal(r#"resource("B")"#).unwrap(),
        );
        assert!(!out.success);
        assert!(out.rounds <= 3);
    }
}
