//! # peertrust-negotiation
//!
//! The PeerTrust automated trust negotiation runtime — the paper's §2/§4
//! machinery that lets strangers establish trust by iterative, bilateral
//! disclosure of credentials:
//!
//! * [`peer`] — a negotiation peer: knowledge base, crypto identity,
//!   effort policy, credential store (with the §3.2 issuer- and
//!   sender-extension axioms applied on mint/receive);
//! * [`session`] — the backward-chaining (parsimonious) driver: delegated
//!   goals become network queries, release policies are enforced by a
//!   licensing scan whose context proofs run through the same distributed
//!   machinery, answers ship with their certified proofs, recipients
//!   verify third-party statements against signed material;
//! * [`eager`] — the eager strategy: push every unlocked credential each
//!   round; complete (succeeds iff a safe disclosure sequence exists);
//! * [`strategy`] — dispatch over both strategies for the experiments;
//! * [`outcome`] — disclosure sequences `(C1, ..., Ck, R)` with evidence,
//!   and the [`verify_safe_sequence`] replay checker;
//! * [`unipro`] — UniPro policy protection: named policies guarded by
//!   policies, graduated disclosure;
//! * [`failure`] — §6's autonomy question answered counterfactually:
//!   critical refusals and rescue sets;
//! * [`gem`] — GEM-style distributed tabling: per-peer goal tables and
//!   cross-peer SCC state that turn delegation loops into iterated
//!   answer-propagation fixpoints instead of `CycleDetected` refusals;
//! * [`analysis`] — static policy lint: deadlock rings, unreleasable
//!   credentials, unsafe rules, unknown authorities/issuers;
//! * [`ticket`] — §3.1's nontransferable, expiring access tokens;
//! * [`audit`] — §3.1's audit trail, hash-chained and tamper-evident;
//! * [`threaded_host`] — the eager protocol over real threads and the
//!   crossbeam router, one peer per thread;
//! * [`scheduler`] — the multi-core batch driver: N independent
//!   negotiations over a worker pool with per-job peer-map snapshots, an
//!   optional shared answer cache, and deterministic outcome ordering;
//! * [`serve`] — the open-loop serving engine: deterministic Poisson
//!   arrivals into a bounded admission queue over virtual servers, load
//!   shedding with typed `Overload` refusals, tick-exact latency
//!   accounting — bit-identical across runs and worker counts;
//! * [`resilience`] — delivery supervision over a faulty transport
//!   (`peertrust_net::faults`): per-message deadlines, bounded retries
//!   with deterministic exponential backoff, duplicate suppression, and
//!   crash-resume by pristine-restore + disclosure-log replay.

pub mod analysis;
pub mod answer_cache;
pub mod audit;
pub mod eager;
pub mod failure;
pub mod gem;
pub mod outcome;
pub mod peer;
pub mod resilience;
pub mod scheduler;
pub mod serve;
pub mod session;
pub mod strategy;
pub mod threaded_host;
pub mod ticket;
pub mod unipro;

pub use analysis::{analyze, lint_report, AnalysisReport, Finding};
pub use answer_cache::{CacheKey, CacheStats, RemoteAnswerCache, SharedRemoteAnswerCache};
pub use audit::{AuditLog, AuditRecord, ChainViolation};
pub use eager::{negotiate_eager, EagerConfig};
pub use failure::{analyze_failure, find_rescue_set, AnalyzedRefusal, FailureAnalysis};
pub use gem::{GemEdge, GemScc, GemState};
pub use outcome::{
    verify_safe_sequence, DisclosedItem, Disclosure, Evidence, NegotiationOutcome, Refusal,
    RefusalReason, SafetyViolation,
};
pub use peer::{issuer_extended, sender_extended, NegotiationPeer, PeerConfig, PeerError};
pub use resilience::{
    negotiate_resilient, negotiate_resilient_shared, ResilienceConfig, ResilienceFailure,
    ResilienceReport, ResilienceStats,
};
pub use scheduler::{negotiate_batch, BatchConfig, BatchFaults, BatchJob, BatchReport, BatchStats};
pub use serve::{
    poisson_arrivals, serve_open_loop, ServeConfig, ServeDecision, ServeReport, ServeStats,
    TickQuantiles,
};
pub use session::{
    negotiate, negotiate_cached, negotiate_shared_cached, negotiate_traced, PeerMap, SessionConfig,
};
pub use strategy::Strategy;
pub use threaded_host::{
    negotiate_threaded, negotiate_threaded_with, ThreadedConfig, ThreadedFailure, ThreadedOutcome,
};
pub use ticket::{issue_ticket, redeem_ticket, Ticket, TicketError, TOKEN_PREDICATE};
pub use unipro::{
    disclosable_definition, request_policy, unlock_policy_chain, PolicyDisclosureOutcome,
};
