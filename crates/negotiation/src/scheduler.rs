//! Multi-core batch negotiation scheduler.
//!
//! [`negotiate_batch`] runs a workload of independent negotiations — one
//! `(requester, responder, goal)` triple per job — across a fixed pool
//! of worker threads, and returns their outcomes **in submission order**
//! regardless of which worker finished when.
//!
//! Determinism (DESIGN.md §4d): each job gets
//!
//! * its own *pristine* snapshot of the peer map. The batch freezes the
//!   map once at setup ([`PeerMap::freeze`], DESIGN.md §4i), so every
//!   peer's rule store, signed-rule map and compiled KB live behind
//!   `Arc`s and the per-job snapshot is a copy-on-write view: cloning
//!   costs O(#peers) pointer bumps, not O(total KB). Jobs never observe
//!   each other's session mutations — disclosures received mid-session
//!   land in the clone's private overlay;
//! * its own [`SimNetwork`] seeded from `(net_seed, job index)` via
//!   [`SimNetwork::for_job`], so the latency/ordering stream depends
//!   only on the job, never on the executing thread;
//! * a [`NegotiationId`] equal to `job index + 1`.
//!
//! With no shared cache, a batch is therefore bit-identical across runs
//! *and worker counts*. With a shared [`SharedRemoteAnswerCache`], the
//! negotiated results (success, granted literals, disclosure contents)
//! are still scheduling-independent — the cache only ever returns what
//! recomputation would produce — but transport *counters* (messages,
//! bytes) can differ with cache warmth, which varies with interleaving.
//!
//! Telemetry: each worker records into a private registry (no cross-core
//! lock traffic on the hot path); the registries merge into the caller's
//! at join, and batch-level `negotiation.throughput.*` series are
//! recorded on top.

use crate::answer_cache::{CacheStats, SharedRemoteAnswerCache};
use crate::outcome::NegotiationOutcome;
use crate::resilience::{
    negotiate_resilient, negotiate_resilient_shared, ResilienceConfig, ResilienceReport,
    ResilienceStats,
};
use crate::session::{negotiate_shared_cached, negotiate_traced, PeerMap, SessionConfig};
use peertrust_core::{Literal, PeerId};
use peertrust_net::faults::FaultPlan;
use peertrust_net::message::NegotiationId;
use peertrust_net::sim::SimNetwork;
use peertrust_telemetry::{MetricsSnapshot, Recorder, SpanId, Telemetry, TraceEvent};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Buffers every event a worker's private pipeline emits, so the batch
/// can re-emit the union into the caller's pipeline at join in an order
/// that does not depend on scheduling (see [`negotiate_batch`]; also
/// shared with the open-loop driver in [`crate::serve`]).
pub(crate) struct EventCollector {
    pub(crate) events: Mutex<Vec<TraceEvent>>,
}

impl EventCollector {
    pub(crate) fn new() -> Arc<EventCollector> {
        Arc::new(EventCollector {
            events: Mutex::new(Vec::new()),
        })
    }
}

/// The `Recorder` handle workers hold onto an [`EventCollector`] (a
/// newtype because `Recorder` cannot be implemented on `Arc` directly).
pub(crate) struct SharedCollector(pub(crate) Arc<EventCollector>);

impl Recorder for SharedCollector {
    fn record(&self, event: TraceEvent) {
        self.0.events.lock().expect("collector lock").push(event);
    }
}

/// One unit of work: `requester` asks `responder` to establish `goal`.
#[derive(Clone, Debug)]
pub struct BatchJob {
    pub requester: PeerId,
    pub responder: PeerId,
    pub goal: Literal,
}

impl BatchJob {
    pub fn new(requester: PeerId, responder: PeerId, goal: Literal) -> BatchJob {
        BatchJob {
            requester,
            responder,
            goal,
        }
    }
}

/// Fault-injection grid for a batch: every job runs against its own
/// deterministic reseeding of `plan` (via [`FaultPlan::for_job`]) with
/// the resilience layer supervising deliveries. Because the per-job plan
/// depends only on the job index, a faulty batch stays bit-identical
/// across runs and worker counts, exactly like a fault-free one.
#[derive(Clone)]
pub struct BatchFaults {
    /// Base fault schedule; job `i` runs under `plan.for_job(i)`.
    pub plan: FaultPlan,
    /// Retry/timeout policy for every session in the batch.
    pub resilience: ResilienceConfig,
}

/// Batch-level configuration.
#[derive(Clone)]
pub struct BatchConfig {
    /// Worker threads. `0` is treated as `1`.
    pub workers: usize,
    /// Per-session configuration, cloned into every job.
    pub session: SessionConfig,
    /// Base seed for the per-job simulated networks.
    pub net_seed: u64,
    /// Cross-negotiation answer cache shared by every worker. `None`
    /// runs each job cold (fully deterministic transport counters).
    pub shared_cache: Option<SharedRemoteAnswerCache>,
    /// Fault grid: when set, every job's network is wrapped in a fault
    /// lane and driven resiliently. `None` is the historical fault-free
    /// path, bit-identical to before this field existed.
    pub faults: Option<BatchFaults>,
    /// Compile every peer's KB to the engine's WAM-lite bytecode form
    /// once, before fanning jobs out. The compiled artifacts are
    /// `Arc`-shared into every job's peer-map snapshot (cloning a peer
    /// clones the handle, not the bytecode), so the per-solve
    /// standardize-apart and clause-scan work is paid once per batch
    /// instead of once per derivation. Answers are unchanged.
    pub compile_policies: bool,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            workers: 1,
            session: SessionConfig::default(),
            net_seed: 7,
            shared_cache: None,
            faults: None,
            compile_policies: false,
        }
    }
}

/// Aggregate measurements of one batch run.
#[derive(Clone, Debug, Default)]
pub struct BatchStats {
    /// Jobs executed.
    pub jobs: usize,
    /// Jobs whose negotiation succeeded.
    pub successes: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Negotiations per wall-clock second.
    pub negotiations_per_sec: f64,
    /// Per-worker busy time (time spent inside jobs, not idle/queueing).
    pub worker_busy: Vec<Duration>,
    /// Mean worker utilization over the batch wall time, in percent.
    pub utilization_pct: f64,
    /// Shared-cache counter deltas for this batch (zeroes when no cache).
    pub cache: CacheStats,
    /// Jobs whose resilience layer abandoned no delivery. Equals `jobs`
    /// when no fault grid is configured.
    pub converged: usize,
    /// Aggregated resilience counters across every job (zeroes without a
    /// fault grid).
    pub resilience: ResilienceStats,
}

/// Outcomes (in submission order) plus batch statistics.
pub struct BatchReport {
    pub outcomes: Vec<NegotiationOutcome>,
    /// Per-job resilience reports, aligned with `outcomes`; `None`
    /// entries when the batch ran without a fault grid.
    pub resilience: Vec<Option<ResilienceReport>>,
    pub stats: BatchStats,
}

/// Run every job in `jobs` across `cfg.workers` threads. See the module
/// docs for the isolation and determinism model.
pub fn negotiate_batch(
    peers: &PeerMap,
    jobs: &[BatchJob],
    cfg: &BatchConfig,
    telemetry: &Telemetry,
) -> BatchReport {
    let workers = cfg.workers.max(1).min(jobs.len().max(1));
    // Freeze once per batch: the per-job `peers.clone()` in `run_job`
    // then shares every peer's frozen KB base, signed map and registry
    // by `Arc` instead of deep-copying the rule stores (the pre-PR 10
    // dominant per-job cost). With `compile_policies` set the KBs are
    // additionally compiled *after* freezing, so the `Arc<CompiledKb>`
    // artifacts cover the whole frozen prefix and are shared into every
    // snapshot.
    let prepared = (cfg.compile_policies || !peers.is_frozen()).then(|| {
        let mut prepared = peers.clone();
        prepared.freeze();
        if cfg.compile_policies {
            for id in prepared.ids() {
                if let Some(peer) = prepared.get_mut(id) {
                    peer.compile_policies();
                }
            }
        }
        prepared
    });
    let peers = prepared.as_ref().unwrap_or(peers);
    let cache_before = cfg
        .shared_cache
        .as_ref()
        .map(|c| c.stats())
        .unwrap_or_default();

    let next_job = AtomicUsize::new(0);
    #[allow(clippy::type_complexity)]
    let slots: Mutex<Vec<Option<(NegotiationOutcome, Option<ResilienceReport>)>>> =
        Mutex::new((0..jobs.len()).map(|_| None).collect());
    let started = Instant::now();

    type WorkerYield = (Duration, MetricsSnapshot, Vec<TraceEvent>);
    let per_worker: Vec<WorkerYield> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next_job = &next_job;
                let slots = &slots;
                scope.spawn(move || {
                    // A private registry per worker: counters accumulate
                    // lock-free with respect to other workers and merge
                    // into the caller's registry at join. Events buffer
                    // in a collector for deterministic re-emission.
                    let collector = telemetry.enabled().then(EventCollector::new);
                    let worker_tele = match &collector {
                        Some(c) => Telemetry::with_recorder(Box::new(SharedCollector(c.clone()))),
                        None => Telemetry::disabled(),
                    };
                    let mut busy = Duration::ZERO;
                    loop {
                        let idx = next_job.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(idx) else {
                            break;
                        };
                        let job_started = Instant::now();
                        let outcome = run_job(peers, job, idx, cfg, &worker_tele);
                        busy += job_started.elapsed();
                        slots.lock().expect("slot lock")[idx] = Some(outcome);
                    }
                    let snapshot = worker_tele
                        .metrics()
                        .map(|m| m.snapshot())
                        .unwrap_or_default();
                    let events = collector
                        .map(|c| std::mem::take(&mut *c.events.lock().expect("collector lock")))
                        .unwrap_or_default();
                    (busy, snapshot, events)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    let wall = started.elapsed();
    let (outcomes, resilience): (Vec<NegotiationOutcome>, Vec<Option<ResilienceReport>>) = slots
        .into_inner()
        .expect("slot lock")
        .into_iter()
        .map(|o| o.expect("every job filled its slot"))
        .unzip();

    // Merge per-worker metric registries into the caller's.
    if let Some(metrics) = telemetry.metrics() {
        for (_, snapshot, _) in &per_worker {
            metrics.merge(snapshot);
        }
    }

    // Re-emit buffered worker events into the caller's pipeline. A
    // negotiation never spans workers, so sorting stably by negotiation
    // id (ties broken by each worker's emission order) yields a stream —
    // and therefore a reconstructed trace — that is bit-identical across
    // runs and worker counts.
    if telemetry.enabled() {
        let mut events: Vec<TraceEvent> = per_worker
            .iter()
            .flat_map(|(_, _, ev)| ev.iter().cloned())
            .collect();
        events.sort_by_key(|e| (e.negotiation, e.seq));
        for e in events {
            telemetry.event(e.at, SpanId(e.span), e.negotiation, &e.kind, e.fields);
        }
    }

    let successes = outcomes.iter().filter(|o| o.success).count();
    let worker_busy: Vec<Duration> = per_worker.iter().map(|(busy, _, _)| *busy).collect();
    let busy_total: Duration = worker_busy.iter().sum();
    let wall_secs = wall.as_secs_f64();
    let negotiations_per_sec = if wall_secs > 0.0 {
        jobs.len() as f64 / wall_secs
    } else {
        0.0
    };
    let utilization_pct = if wall_secs > 0.0 && workers > 0 {
        100.0 * busy_total.as_secs_f64() / (wall_secs * workers as f64)
    } else {
        0.0
    };
    let cache_after = cfg
        .shared_cache
        .as_ref()
        .map(|c| c.stats())
        .unwrap_or_default();
    let cache = CacheStats {
        hits: cache_after.hits - cache_before.hits,
        misses: cache_after.misses - cache_before.misses,
        inserts: cache_after.inserts - cache_before.inserts,
        invalidated: cache_after.invalidated - cache_before.invalidated,
        expired: cache_after.expired - cache_before.expired,
    };

    // Resilience rollup: without a fault grid every job trivially
    // converged (nothing could be lost).
    let converged = resilience
        .iter()
        .filter(|r| r.as_ref().map(|r| r.converged).unwrap_or(true))
        .count();
    let mut resilience_stats = ResilienceStats::default();
    for report in resilience.iter().flatten() {
        resilience_stats.retries += report.stats.retries;
        resilience_stats.timeouts += report.stats.timeouts;
        resilience_stats.duplicates_suppressed += report.stats.duplicates_suppressed;
        resilience_stats.crash_resumes += report.stats.crash_resumes;
        resilience_stats.gave_up += report.stats.gave_up;
    }

    let stats = BatchStats {
        jobs: jobs.len(),
        successes,
        workers,
        wall,
        negotiations_per_sec,
        worker_busy,
        utilization_pct,
        cache,
        converged,
        resilience: resilience_stats,
    };
    flush_throughput_metrics(telemetry, &stats);
    if cfg.faults.is_some() && telemetry.enabled() {
        telemetry.incr(
            "negotiation.resilience.converged_sessions",
            stats.converged as u64,
        );
        telemetry.incr(
            "negotiation.resilience.failed_sessions",
            (stats.jobs - stats.converged) as u64,
        );
    }
    BatchReport {
        outcomes,
        resilience,
        stats,
    }
}

/// Execute one job on an isolated peer-map snapshot and per-job network.
fn run_job(
    peers: &PeerMap,
    job: &BatchJob,
    idx: usize,
    cfg: &BatchConfig,
    telemetry: &Telemetry,
) -> (NegotiationOutcome, Option<ResilienceReport>) {
    // `peers` was frozen at batch setup, so this snapshot is a
    // copy-on-write view over the shared rule stores (O(#peers), no KB
    // deep copy); the session mutates only the snapshot's overlays.
    let mut job_peers = peers.clone();
    let mut net = SimNetwork::for_job(cfg.net_seed, idx);
    let nid = NegotiationId(idx as u64 + 1);
    if let Some(faults) = &cfg.faults {
        net = net.with_faults(faults.plan.for_job(idx));
        let (outcome, report) = match &cfg.shared_cache {
            Some(cache) => negotiate_resilient_shared(
                &mut job_peers,
                &mut net,
                cfg.session.clone(),
                faults.resilience.clone(),
                nid,
                job.requester,
                job.responder,
                job.goal.clone(),
                cache,
                telemetry,
            ),
            None => negotiate_resilient(
                &mut job_peers,
                &mut net,
                cfg.session.clone(),
                faults.resilience.clone(),
                nid,
                job.requester,
                job.responder,
                job.goal.clone(),
                telemetry,
            ),
        };
        return (outcome, Some(report));
    }
    let outcome = match &cfg.shared_cache {
        Some(cache) => negotiate_shared_cached(
            &mut job_peers,
            &mut net,
            cfg.session.clone(),
            nid,
            job.requester,
            job.responder,
            job.goal.clone(),
            cache,
            telemetry,
        ),
        None => negotiate_traced(
            &mut job_peers,
            &mut net,
            cfg.session.clone(),
            nid,
            job.requester,
            job.responder,
            job.goal.clone(),
            telemetry,
        ),
    };
    (outcome, None)
}

/// Record the batch-level `negotiation.throughput.*` series.
fn flush_throughput_metrics(telemetry: &Telemetry, stats: &BatchStats) {
    if !telemetry.enabled() {
        return;
    }
    telemetry.incr("negotiation.throughput.sessions", stats.jobs as u64);
    telemetry.incr("negotiation.throughput.succeeded", stats.successes as u64);
    telemetry.observe("negotiation.throughput.workers", stats.workers as u64);
    telemetry.observe(
        "negotiation.throughput.sessions_per_sec",
        stats.negotiations_per_sec as u64,
    );
    telemetry.observe(
        "negotiation.throughput.wall_ms",
        stats.wall.as_millis() as u64,
    );
    for busy in &stats.worker_busy {
        telemetry.observe(
            "negotiation.throughput.worker_busy_ms",
            busy.as_millis() as u64,
        );
    }
    telemetry.observe(
        "negotiation.throughput.worker_utilization_pct",
        stats.utilization_pct as u64,
    );
    telemetry.incr("negotiation.throughput.cache.hits", stats.cache.hits);
    telemetry.incr("negotiation.throughput.cache.misses", stats.cache.misses);
    telemetry.incr("negotiation.throughput.cache.inserts", stats.cache.inserts);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::NegotiationPeer;
    use peertrust_crypto::KeyRegistry;
    use peertrust_parser::parse_literal;

    /// The bilateral scenario from the session tests, repeated as a batch
    /// workload: E-Learn guards `resource` behind a UIUC credential that
    /// Alice only releases to BBB members.
    fn bilateral_batch(repeats: usize) -> (PeerMap, Vec<BatchJob>) {
        let reg = KeyRegistry::new();
        for (i, name) in ["UIUC", "BBB"].iter().enumerate() {
            reg.register_derived(PeerId::new(name), i as u64 + 1);
        }
        let mut peers = PeerMap::new();
        let mut elearn = NegotiationPeer::new("E-Learn", reg.clone());
        elearn
            .load_program(
                r#"
                resource(X) $ true <- student(X) @ "UIUC" @ X.
                member("E-Learn") @ "BBB" $ true signedBy ["BBB"].
                "#,
            )
            .unwrap();
        peers.insert(elearn);
        let mut alice = NegotiationPeer::new("Alice", reg);
        alice
            .load_program(
                r#"
                student("Alice") @ "UIUC" signedBy ["UIUC"].
                student(X) @ Y $ member(Requester) @ "BBB" @ Requester <-_true student(X) @ Y.
                "#,
            )
            .unwrap();
        peers.insert(alice);
        let goal = parse_literal(r#"resource("Alice")"#).unwrap();
        let jobs = (0..repeats)
            .map(|_| BatchJob::new(PeerId::new("Alice"), PeerId::new("E-Learn"), goal.clone()))
            .collect();
        (peers, jobs)
    }

    fn outcome_key(o: &NegotiationOutcome) -> String {
        format!(
            "{}|{}|{}|{}|{:?}",
            o.success,
            o.requester,
            o.responder,
            o.goal,
            o.granted.iter().map(|g| g.to_string()).collect::<Vec<_>>(),
        )
    }

    /// Full outcome fingerprint, transport counters included.
    fn full_key(o: &NegotiationOutcome) -> String {
        serde_json::to_string(o).unwrap()
    }

    #[test]
    fn batch_outcomes_are_ordered_and_succeed() {
        let (peers, jobs) = bilateral_batch(6);
        let report = negotiate_batch(
            &peers,
            &jobs,
            &BatchConfig::default(),
            &Telemetry::disabled(),
        );
        assert_eq!(report.outcomes.len(), 6);
        assert_eq!(report.stats.successes, 6);
        for o in &report.outcomes {
            assert!(o.success, "bilateral negotiation should succeed");
        }
    }

    #[test]
    fn uncached_batches_are_bit_identical_across_worker_counts() {
        let (peers, jobs) = bilateral_batch(8);
        let baseline: Vec<String> = negotiate_batch(
            &peers,
            &jobs,
            &BatchConfig::default(),
            &Telemetry::disabled(),
        )
        .outcomes
        .iter()
        .map(full_key)
        .collect();
        for workers in [2, 4, 8] {
            let cfg = BatchConfig {
                workers,
                ..BatchConfig::default()
            };
            let run: Vec<String> = negotiate_batch(&peers, &jobs, &cfg, &Telemetry::disabled())
                .outcomes
                .iter()
                .map(full_key)
                .collect();
            assert_eq!(run, baseline, "divergence at {workers} workers");
        }
    }

    #[test]
    fn precompiled_batches_are_bit_identical_to_interpreted_batches() {
        let (peers, jobs) = bilateral_batch(6);
        let baseline: Vec<String> = negotiate_batch(
            &peers,
            &jobs,
            &BatchConfig::default(),
            &Telemetry::disabled(),
        )
        .outcomes
        .iter()
        .map(full_key)
        .collect();
        for workers in [1, 4] {
            let cfg = BatchConfig {
                workers,
                compile_policies: true,
                ..BatchConfig::default()
            };
            let run: Vec<String> = negotiate_batch(&peers, &jobs, &cfg, &Telemetry::disabled())
                .outcomes
                .iter()
                .map(full_key)
                .collect();
            assert_eq!(run, baseline, "compiled divergence at {workers} workers");
        }
    }

    #[test]
    fn shared_cache_preserves_negotiated_results_across_worker_counts() {
        let (peers, jobs) = bilateral_batch(8);
        let baseline: Vec<String> = negotiate_batch(
            &peers,
            &jobs,
            &BatchConfig::default(),
            &Telemetry::disabled(),
        )
        .outcomes
        .iter()
        .map(outcome_key)
        .collect();
        for workers in [1, 2, 4] {
            let cfg = BatchConfig {
                workers,
                shared_cache: Some(SharedRemoteAnswerCache::new()),
                ..BatchConfig::default()
            };
            let report = negotiate_batch(&peers, &jobs, &cfg, &Telemetry::disabled());
            let run: Vec<String> = report.outcomes.iter().map(outcome_key).collect();
            assert_eq!(run, baseline, "divergence at {workers} workers");
        }
    }

    #[test]
    fn batch_emits_throughput_metrics() {
        let (peers, jobs) = bilateral_batch(4);
        let (tele, _ring) = Telemetry::ring(1024);
        let cfg = BatchConfig {
            workers: 2,
            shared_cache: Some(SharedRemoteAnswerCache::new()),
            ..BatchConfig::default()
        };
        let report = negotiate_batch(&peers, &jobs, &cfg, &tele);
        assert_eq!(report.stats.jobs, 4);
        let metrics = tele.metrics().unwrap();
        assert_eq!(metrics.counter("negotiation.throughput.sessions"), 4);
        assert_eq!(metrics.counter("negotiation.throughput.succeeded"), 4);
        assert!(metrics
            .histogram("negotiation.throughput.wall_ms")
            .is_some());
        assert!(metrics
            .histogram("negotiation.throughput.worker_busy_ms")
            .is_some());
        // Per-worker session counters merged into the caller's registry.
        assert!(metrics.counter("negotiation.queries_issued.Alice") > 0);
    }

    #[test]
    fn faulty_batches_are_bit_identical_across_worker_counts() {
        use peertrust_net::LinkFaults;
        let (peers, jobs) = bilateral_batch(8);
        let faulty = |workers| BatchConfig {
            workers,
            faults: Some(BatchFaults {
                plan: FaultPlan::uniform(11, LinkFaults::lossy(0.2)),
                resilience: ResilienceConfig {
                    max_retries: 8,
                    query_deadline_ticks: 256,
                    ..ResilienceConfig::default()
                },
            }),
            ..BatchConfig::default()
        };
        let fingerprint = |cfg: &BatchConfig| -> Vec<String> {
            let report = negotiate_batch(&peers, &jobs, cfg, &Telemetry::disabled());
            report
                .outcomes
                .iter()
                .zip(&report.resilience)
                .map(|(o, r)| format!("{}|{}", full_key(o), serde_json::to_string(r).unwrap()))
                .collect()
        };
        let baseline = fingerprint(&faulty(1));
        for workers in [2, 4, 8] {
            assert_eq!(
                fingerprint(&faulty(workers)),
                baseline,
                "divergence at {workers} workers"
            );
        }
    }

    #[test]
    fn faulty_batch_with_retries_reaches_fault_free_outcomes() {
        use peertrust_net::LinkFaults;
        let (peers, jobs) = bilateral_batch(12);
        let clean = negotiate_batch(
            &peers,
            &jobs,
            &BatchConfig::default(),
            &Telemetry::disabled(),
        );
        let report = negotiate_batch(
            &peers,
            &jobs,
            &BatchConfig {
                workers: 4,
                faults: Some(BatchFaults {
                    plan: FaultPlan::uniform(23, LinkFaults::drops(0.2)),
                    resilience: ResilienceConfig {
                        max_retries: 8,
                        query_deadline_ticks: 256,
                        ..ResilienceConfig::default()
                    },
                }),
                ..BatchConfig::default()
            },
            &Telemetry::disabled(),
        );
        assert_eq!(report.stats.converged, report.stats.jobs);
        assert_eq!(report.stats.successes, clean.stats.successes);
        for (faulty, clean) in report.outcomes.iter().zip(&clean.outcomes) {
            assert_eq!(outcome_key(faulty), outcome_key(clean));
        }
    }

    /// Mutually recursive two-peer delegation (the session tests'
    /// `mutual_recursion_peers` scenario) as a batch workload: every job
    /// exercises the GEM fixpoint.
    fn gem_batch(repeats: usize) -> (PeerMap, Vec<BatchJob>) {
        let reg = KeyRegistry::new();
        let mut peers = PeerMap::new();
        let mut a = NegotiationPeer::new("A", reg.clone());
        a.load_program(
            r#"
            r(0) @ "A".
            r(Y) @ "A" <- r(X) @ "B" @ "B", next(X, Y).
            next(1, 2).
            next(3, 4).
            r(X) @ Y $ true <-_true r(X) @ Y.
            "#,
        )
        .unwrap();
        peers.insert(a);
        let mut b = NegotiationPeer::new("B", reg);
        b.load_program(
            r#"
            r(Y) @ "B" <- r(X) @ "A" @ "A", next(X, Y).
            next(0, 1).
            next(2, 3).
            r(X) @ Y $ true <-_true r(X) @ Y.
            "#,
        )
        .unwrap();
        peers.insert(b);
        let goal = parse_literal(r#"r(4) @ "A""#).unwrap();
        let jobs = (0..repeats)
            .map(|_| BatchJob::new(PeerId::new("B"), PeerId::new("A"), goal.clone()))
            .collect();
        (peers, jobs)
    }

    #[test]
    fn gem_batches_are_bit_identical_across_worker_counts() {
        // Fixpoint round order derives from peer names and session
        // sequence numbers, so cyclic workloads stay deterministic under
        // the scheduler exactly like acyclic ones.
        let (peers, jobs) = gem_batch(8);
        let gem_cfg = |workers| BatchConfig {
            workers,
            session: SessionConfig {
                gem: true,
                ..SessionConfig::default()
            },
            ..BatchConfig::default()
        };
        let baseline = negotiate_batch(&peers, &jobs, &gem_cfg(1), &Telemetry::disabled());
        assert_eq!(
            baseline.stats.successes, 8,
            "every cyclic job must converge via GEM"
        );
        let baseline: Vec<String> = baseline.outcomes.iter().map(full_key).collect();
        for workers in [2, 4, 8] {
            let run: Vec<String> =
                negotiate_batch(&peers, &jobs, &gem_cfg(workers), &Telemetry::disabled())
                    .outcomes
                    .iter()
                    .map(full_key)
                    .collect();
            assert_eq!(run, baseline, "gem divergence at {workers} workers");
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (peers, _) = bilateral_batch(1);
        let report = negotiate_batch(&peers, &[], &BatchConfig::default(), &Telemetry::disabled());
        assert!(report.outcomes.is_empty());
        assert_eq!(report.stats.jobs, 0);
    }
}
