//! Static policy analysis.
//!
//! Paper §6 asks for *formal guarantees that trust negotiations will
//! always terminate and will succeed when possible*. The run-time guards
//! (cycle detection, budgets) enforce termination dynamically; this module
//! provides the *static* counterpart: given a set of peers' policies, it
//! builds the **release-dependency graph** and reports, before any
//! negotiation runs:
//!
//! * **deadlock cycles** — credentials whose release policies depend on
//!   each other circularly, so no safe disclosure sequence can unlock
//!   them (the negotiations of E11 fail at run time; the lint finds the
//!   same rings statically);
//! * **unreleasable credentials** — signed rules with no licensing rule at
//!   all (default-private forever: only useful locally);
//! * **unsafe rules** — head variables not bound by the body (their
//!   derivations can never produce ground answers);
//! * **unknown authorities** — `@ A` arguments naming peers that do not
//!   exist in the peer set (queries to them can never be answered);
//! * **unknown issuers** — `signedBy` issuers missing from the key
//!   registry (their credentials can never be verified).
//!
//! The lint is necessarily approximate (release contexts are arbitrary
//! queries), but it is *sound for the credential-dependency fragment* the
//! generators produce: every deadlock ring reported is a real one, and
//! the property tests cross-check the cycle report against the unlock
//! fixpoint's ground truth.

use crate::peer::NegotiationPeer;
use crate::session::PeerMap;
use peertrust_core::{Literal, PeerId, Rule, Sym};
use std::collections::{HashMap, HashSet};

/// One finding from the static analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Finding {
    /// A cycle in the release-dependency graph: each entry is
    /// (owner, credential predicate) and depends on the next (cyclically).
    DeadlockCycle(Vec<(PeerId, Sym)>),
    /// A credential (signed ground fact) with no licensing rule whose
    /// head covers it — it can never be disclosed.
    Unreleasable { owner: PeerId, rule: Rule },
    /// A rule whose head variables are not all bound by its body.
    UnsafeRule { owner: PeerId, rule: Rule },
    /// An authority argument naming a peer that does not exist.
    UnknownAuthority {
        owner: PeerId,
        authority: PeerId,
        rule: Rule,
    },
    /// A `signedBy` issuer not present in the key registry.
    UnknownIssuer {
        owner: PeerId,
        issuer: PeerId,
        rule: Rule,
    },
}

impl Finding {
    /// Severity: deadlocks and unknown issuers break negotiations; the
    /// rest degrade them.
    pub fn severity(&self) -> &'static str {
        match self {
            Finding::DeadlockCycle(_) | Finding::UnknownIssuer { .. } => "error",
            Finding::Unreleasable { .. }
            | Finding::UnsafeRule { .. }
            | Finding::UnknownAuthority { .. } => "warning",
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Finding::DeadlockCycle(ring) => {
                write!(f, "deadlock cycle: ")?;
                for (i, (peer, pred)) in ring.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{peer}:{pred}")?;
                }
                write!(f, " -> {}:{}", ring[0].0, ring[0].1)
            }
            Finding::Unreleasable { owner, rule } => {
                write!(f, "{owner}: credential can never be released: {rule}")
            }
            Finding::UnsafeRule { owner, rule } => {
                write!(f, "{owner}: unsafe rule (unbound head variables): {rule}")
            }
            Finding::UnknownAuthority {
                owner,
                authority,
                rule,
            } => {
                write!(f, "{owner}: unknown authority {authority} in: {rule}")
            }
            Finding::UnknownIssuer {
                owner,
                issuer,
                rule,
            } => {
                write!(f, "{owner}: unknown issuer {issuer} in: {rule}")
            }
        }
    }
}

/// The complete report.
#[derive(Clone, Debug, Default)]
pub struct AnalysisReport {
    pub findings: Vec<Finding>,
}

impl AnalysisReport {
    pub fn errors(&self) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity() == "error")
            .collect()
    }

    pub fn warnings(&self) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity() == "warning")
            .collect()
    }

    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Analyze every peer's policies.
///
/// `known_issuers` is the set of issuers registered with the simulated CA
/// (pass the names used with `KeyRegistry::register_derived`); peer names
/// themselves always count as known.
pub fn analyze(peers: &PeerMap, known_issuers: &[PeerId]) -> AnalysisReport {
    let mut findings = Vec::new();
    let peer_ids: HashSet<PeerId> = peers.ids().into_iter().collect();
    let issuer_set: HashSet<PeerId> = known_issuers
        .iter()
        .copied()
        .chain(peer_ids.iter().copied())
        .collect();

    for id in peers.ids() {
        let peer = peers.get(id).expect("listed peer exists");
        findings.extend(per_peer_findings(peer, &peer_ids, &issuer_set));
    }
    findings.extend(deadlock_cycles(peers));

    AnalysisReport { findings }
}

fn per_peer_findings(
    peer: &NegotiationPeer,
    peer_ids: &HashSet<PeerId>,
    issuers: &HashSet<PeerId>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for stored in peer.kb.iter() {
        let rule = stored.rule.as_ref();

        // Unsafe rules: head variables must occur in the body (facts with
        // variables are inherently unsafe unless ground).
        if !rule.head.is_ground() {
            let mut head_vars = Vec::new();
            rule.head.collect_vars(&mut head_vars);
            let mut body_vars = Vec::new();
            for b in &rule.body {
                b.collect_vars(&mut body_vars);
            }
            // Release-pattern rules (`p $ ctx <- p`) bind head vars via the
            // identical body literal; generic check covers them.
            if head_vars.iter().any(|v| !body_vars.contains(v)) {
                out.push(Finding::UnsafeRule {
                    owner: peer.id,
                    rule: rule.clone(),
                });
            }
        }

        // Unknown authorities (ground ones only; variables bind at run
        // time).
        for lit in std::iter::once(&rule.head).chain(rule.body.iter()) {
            for auth in &lit.authority {
                if let Some(p) = auth.as_peer() {
                    if !peer_ids.contains(&p) && !issuers.contains(&p) {
                        out.push(Finding::UnknownAuthority {
                            owner: peer.id,
                            authority: p,
                            rule: rule.clone(),
                        });
                    }
                }
            }
        }

        // Unknown issuers.
        for issuer in rule.issuers() {
            if !issuers.contains(&issuer) {
                out.push(Finding::UnknownIssuer {
                    owner: peer.id,
                    issuer,
                    rule: rule.clone(),
                });
            }
        }

        // Unreleasable credentials: no rule in this KB licenses the head
        // (a non-default head context on any rule with a compatible head).
        // Only ground signed facts are checked — signed rules with bodies
        // (delegations, cached policy rules) ride along with the answers
        // they support under certified-proof licensing, so they need no
        // license of their own.
        if rule.is_credential() && peer.signed_rule(stored.id).is_some() {
            let licensed = peer.kb.iter().any(|other| {
                let o = other.rule.as_ref();
                if o.effective_head_context().is_default_private() {
                    return false;
                }
                // Head shapes must be compatible (same predicate, arity;
                // authority chains may differ by the self-closure).
                o.head.pred == rule.head.pred && o.head.args.len() == rule.head.args.len()
            });
            if !licensed {
                out.push(Finding::Unreleasable {
                    owner: peer.id,
                    rule: rule.clone(),
                });
            }
        }
    }
    out
}

/// Build the credential release-dependency graph and report its cycles.
///
/// Node: (owner, credential predicate). Edge A -> B when A's release
/// context mentions predicate B (held by any peer). Cycles whose every
/// node lacks an alternative unconditional license are deadlocks; we
/// report elementary cycles found by DFS (each cycle once, rotated to its
/// smallest node).
fn deadlock_cycles(peers: &PeerMap) -> Vec<Finding> {
    type Node = (PeerId, Sym);
    let mut deps: HashMap<Node, HashSet<Node>> = HashMap::new();
    let mut unconditional: HashSet<Node> = HashSet::new();
    let mut owner_of: HashMap<Sym, Vec<PeerId>> = HashMap::new();

    // Which peer holds which signed credential predicates?
    for id in peers.ids() {
        let peer = peers.get(id).expect("peer exists");
        for (_, sr) in peer.disclosable_signed_rules() {
            owner_of.entry(sr.rule.head.pred).or_default().push(id);
        }
    }

    for id in peers.ids() {
        let peer = peers.get(id).expect("peer exists");
        for (_, sr) in peer.disclosable_signed_rules() {
            let node: Node = (id, sr.rule.head.pred);
            // Find licensing rules for this credential.
            let mut any_license = false;
            for stored in peer.kb.iter() {
                let rule = stored.rule.as_ref();
                if rule.head.pred != sr.rule.head.pred {
                    continue;
                }
                let ctx = rule.effective_head_context();
                if ctx.is_default_private() {
                    continue;
                }
                any_license = true;
                if ctx.is_public() {
                    unconditional.insert(node);
                    continue;
                }
                for goal in &ctx.goals {
                    if goal.is_builtin() {
                        continue;
                    }
                    for owner in owner_of.get(&goal.pred).into_iter().flatten() {
                        deps.entry(node).or_default().insert((*owner, goal.pred));
                    }
                }
            }
            if !any_license {
                // Covered by the Unreleasable finding; not part of the
                // unlock graph.
                deps.entry(node).or_default();
            }
        }
    }

    // Fixpoint unlock: nodes with an unconditional license, then nodes all
    // of whose deps are unlocked. Whatever remains locked and lies on a
    // cycle is a deadlock.
    let mut unlocked: HashSet<Node> = unconditional.clone();
    loop {
        let mut changed = false;
        for (node, d) in &deps {
            if !unlocked.contains(node) && d.iter().all(|n| unlocked.contains(n)) {
                unlocked.insert(*node);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Among still-locked nodes, find elementary cycles via DFS.
    let locked: Vec<Node> = {
        let mut v: Vec<Node> = deps
            .keys()
            .filter(|n| !unlocked.contains(*n))
            .copied()
            .collect();
        v.sort();
        v
    };
    let mut cycles: Vec<Vec<Node>> = Vec::new();
    let mut seen_cycles: HashSet<Vec<Node>> = HashSet::new();
    for start in &locked {
        let mut stack = vec![*start];
        let mut on_stack: HashSet<Node> = [*start].into_iter().collect();
        dfs_cycles(
            *start,
            &deps,
            &unlocked,
            &mut stack,
            &mut on_stack,
            &mut cycles,
            &mut seen_cycles,
        );
    }

    cycles.into_iter().map(Finding::DeadlockCycle).collect()
}

#[allow(clippy::too_many_arguments)]
fn dfs_cycles(
    node: (PeerId, Sym),
    deps: &HashMap<(PeerId, Sym), HashSet<(PeerId, Sym)>>,
    unlocked: &HashSet<(PeerId, Sym)>,
    stack: &mut Vec<(PeerId, Sym)>,
    on_stack: &mut HashSet<(PeerId, Sym)>,
    cycles: &mut Vec<Vec<(PeerId, Sym)>>,
    seen: &mut HashSet<Vec<(PeerId, Sym)>>,
) {
    if cycles.len() >= 64 {
        return; // report cap
    }
    let Some(nexts) = deps.get(&node) else { return };
    let mut nexts: Vec<_> = nexts.iter().copied().collect();
    nexts.sort();
    for next in nexts {
        if unlocked.contains(&next) {
            continue;
        }
        if let Some(pos) = stack.iter().position(|n| *n == next) {
            // Found a cycle: canonicalize by rotating to the minimum node.
            let mut ring: Vec<_> = stack[pos..].to_vec();
            let min_idx = ring
                .iter()
                .enumerate()
                .min_by_key(|(_, n)| **n)
                .map(|(i, _)| i)
                .unwrap_or(0);
            ring.rotate_left(min_idx);
            if seen.insert(ring.clone()) {
                cycles.push(ring);
            }
            continue;
        }
        stack.push(next);
        on_stack.insert(next);
        dfs_cycles(next, deps, unlocked, stack, on_stack, cycles, seen);
        stack.pop();
        on_stack.remove(&next);
    }
}

/// Convenience: lint a peer map and render the report as text lines.
pub fn lint_report(peers: &PeerMap, known_issuers: &[PeerId]) -> Vec<String> {
    analyze(peers, known_issuers)
        .findings
        .iter()
        .map(|f| format!("{}: {}", f.severity(), f))
        .collect()
}

/// A literal helper for tests: does any finding mention this predicate?
pub fn mentions(report: &AnalysisReport, pred: &str) -> bool {
    let sym = Sym::new(pred);
    report.findings.iter().any(|f| match f {
        Finding::DeadlockCycle(ring) => ring.iter().any(|(_, p)| *p == sym),
        Finding::Unreleasable { rule, .. }
        | Finding::UnsafeRule { rule, .. }
        | Finding::UnknownAuthority { rule, .. }
        | Finding::UnknownIssuer { rule, .. } => rule.head.pred == sym,
    })
}

/// Quiet the unused-import warning: Literal is used in doc positions.
#[allow(unused)]
fn _lit(_: &Literal) {}

#[cfg(test)]
mod tests {
    use super::*;
    use peertrust_crypto::KeyRegistry;

    fn registry() -> KeyRegistry {
        let r = KeyRegistry::new();
        r.register_derived(PeerId::new("CA"), 1);
        r
    }

    fn known() -> Vec<PeerId> {
        vec![PeerId::new("CA")]
    }

    #[test]
    fn clean_policies_produce_no_findings() {
        let reg = registry();
        let mut peers = PeerMap::new();
        let mut a = NegotiationPeer::new("A", reg.clone());
        a.load_program(
            r#"
            cred("A") @ "CA" signedBy ["CA"].
            cred(X) @ Y $ true <-_true cred(X) @ Y.
            resource(X) $ true <- cred(X) @ "CA" @ X.
            "#,
        )
        .unwrap();
        peers.insert(a);
        let report = analyze(&peers, &known());
        assert!(report.is_clean(), "{:#?}", report.findings);
    }

    #[test]
    fn detects_deadlock_ring() {
        let reg = registry();
        let mut peers = PeerMap::new();
        let mut a = NegotiationPeer::new("A", reg.clone());
        a.load_program(
            r#"
            credA("A") @ "CA" signedBy ["CA"].
            credA(X) @ Y $ credB(Requester) @ "CA" @ Requester <-_true credA(X) @ Y.
            "#,
        )
        .unwrap();
        peers.insert(a);
        let mut b = NegotiationPeer::new("B", reg);
        b.load_program(
            r#"
            credB("B") @ "CA" signedBy ["CA"].
            credB(X) @ Y $ credA(Requester) @ "CA" @ Requester <-_true credB(X) @ Y.
            "#,
        )
        .unwrap();
        peers.insert(b);

        let report = analyze(&peers, &known());
        let cycles: Vec<_> = report
            .findings
            .iter()
            .filter(|f| matches!(f, Finding::DeadlockCycle(_)))
            .collect();
        assert_eq!(cycles.len(), 1, "{:#?}", report.findings);
        assert!(mentions(&report, "credA") && mentions(&report, "credB"));
        assert_eq!(cycles[0].severity(), "error");
    }

    #[test]
    fn unlockable_chain_is_not_a_deadlock() {
        // credA needs credB; credB is public: no cycle, everything unlocks.
        let reg = registry();
        let mut peers = PeerMap::new();
        let mut a = NegotiationPeer::new("A", reg.clone());
        a.load_program(
            r#"
            credA("A") @ "CA" signedBy ["CA"].
            credA(X) @ Y $ credB(Requester) @ "CA" @ Requester <-_true credA(X) @ Y.
            "#,
        )
        .unwrap();
        peers.insert(a);
        let mut b = NegotiationPeer::new("B", reg);
        b.load_program(
            r#"
            credB("B") @ "CA" signedBy ["CA"].
            credB(X) @ Y $ true <-_true credB(X) @ Y.
            "#,
        )
        .unwrap();
        peers.insert(b);

        let report = analyze(&peers, &known());
        assert!(
            !report
                .findings
                .iter()
                .any(|f| matches!(f, Finding::DeadlockCycle(_))),
            "{:#?}",
            report.findings
        );
    }

    #[test]
    fn detects_unreleasable_credential() {
        let reg = registry();
        let mut peers = PeerMap::new();
        let mut a = NegotiationPeer::new("A", reg);
        a.load_program(r#"secret("A") @ "CA" signedBy ["CA"]."#)
            .unwrap();
        peers.insert(a);
        let report = analyze(&peers, &known());
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::Unreleasable { .. })));
        assert_eq!(report.warnings().len(), report.findings.len());
    }

    #[test]
    fn detects_unsafe_rule() {
        let reg = registry();
        let mut peers = PeerMap::new();
        let mut a = NegotiationPeer::new("A", reg);
        a.load_program("broken(X, Y) <- base(X). base(1).").unwrap();
        peers.insert(a);
        let report = analyze(&peers, &known());
        assert!(
            report
                .findings
                .iter()
                .any(|f| matches!(f, Finding::UnsafeRule { .. })),
            "{:#?}",
            report.findings
        );
    }

    #[test]
    fn detects_unknown_authority_and_issuer() {
        let reg = registry();
        reg.register_derived(PeerId::new("GhostCA"), 9); // registered so minting works
        let mut peers = PeerMap::new();
        let mut a = NegotiationPeer::new("A", reg);
        a.load_program(
            r#"
            p(X) <- q(X) @ "NoSuchPeer".
            cred("A") @ "GhostCA" signedBy ["GhostCA"].
            cred(X) @ Y $ true <-_true cred(X) @ Y.
            "#,
        )
        .unwrap();
        peers.insert(a);
        // GhostCA deliberately NOT in the known-issuer list.
        let report = analyze(&peers, &known());
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::UnknownAuthority { authority, .. }
                              if *authority == PeerId::new("NoSuchPeer"))));
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::UnknownIssuer { issuer, .. }
                              if *issuer == PeerId::new("GhostCA"))));
    }

    #[test]
    fn lint_report_renders_severities() {
        let reg = registry();
        let mut peers = PeerMap::new();
        let mut a = NegotiationPeer::new("A", reg);
        a.load_program(r#"secret("A") @ "CA" signedBy ["CA"]."#)
            .unwrap();
        peers.insert(a);
        let lines = lint_report(&peers, &known());
        assert!(lines.iter().any(|l| l.starts_with("warning:")), "{lines:?}");
    }

    #[test]
    fn longer_deadlock_rings_are_found() {
        // Ring of 4 across two peers.
        let reg = registry();
        let mut peers = PeerMap::new();
        let mut a = NegotiationPeer::new("A", reg.clone());
        let mut b = NegotiationPeer::new("B", reg);
        for i in 0..4 {
            let next = (i + 1) % 4;
            let (peer, owner) = if i % 2 == 0 {
                (&mut a, "A")
            } else {
                (&mut b, "B")
            };
            peer.load_program(&format!(
                r#"
                c{i}("{owner}") @ "CA" signedBy ["CA"].
                c{i}(X) @ Y $ c{next}(Requester) @ "CA" @ Requester <-_true c{i}(X) @ Y.
                "#
            ))
            .unwrap();
        }
        peers.insert(a);
        peers.insert(b);
        let report = analyze(&peers, &known());
        let ring = report
            .findings
            .iter()
            .find_map(|f| match f {
                Finding::DeadlockCycle(r) => Some(r),
                _ => None,
            })
            .expect("ring found");
        assert_eq!(ring.len(), 4, "{ring:?}");
    }
}
