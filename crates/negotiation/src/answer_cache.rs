//! Remote-answer caching for negotiations.
//!
//! The engine's answer table (`peertrust_engine::table`) memoizes *local*
//! derivations; this module memoizes the expensive step the paper's
//! scenarios repeat most — full inter-peer query round-trips. Two layers:
//!
//! * **Per-session** (inside `Session`, on by default via
//!   [`crate::SessionConfig::cache_remote_answers`]): within one
//!   negotiation, a repeat of an already-answered `(requester, responder,
//!   canonical goal)` query returns the previously accepted answers
//!   without touching the network. Credential pushes are not repeated —
//!   the requester already holds the rules from the first exchange.
//! * **Cross-negotiation** ([`RemoteAnswerCache`], opt-in via
//!   `negotiate_cached`): a shared cache that survives negotiations, with
//!   a TTL in network ticks and invalidation on disclosure-set change
//!   (the responder's knowledge base growing means its answer set may
//!   have grown too). Only answers released under a **public** context
//!   ever enter this cache: a context-guarded release was licensed for
//!   one specific requester at one specific point of a negotiation, and
//!   replaying it outside that exchange would bypass the release policy.
//!
//! Both layers cache only *non-empty* answer sets. Disclosure sets grow
//! monotonically, so a query that failed once may succeed later — caching
//! failures would freeze a negotiation's progress.

use parking_lot::Mutex;
use peertrust_core::{Literal, PeerId};
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: who asked, who answered, and the canonical (variant-normal)
/// form of the query. The requester is part of the key because release
/// policies bind `Requester` — different requesters legitimately receive
/// different answer sets for the same goal.
pub type CacheKey = (PeerId, PeerId, Literal);

/// Usage counters, exported into the telemetry registry by the session.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found no (valid) entry.
    pub misses: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Entries dropped because the responder's disclosure set changed.
    pub invalidated: u64,
    /// Entries dropped by the TTL.
    pub expired: u64,
}

struct Entry {
    answers: Vec<Literal>,
    inserted_at: u64,
    /// Responder KB size at insert time — the disclosure-set fingerprint.
    /// KBs are insert-only, so a changed length means new rules arrived.
    responder_kb_len: usize,
}

/// Cross-negotiation remote-answer cache. Share one instance across
/// `negotiate_cached` calls over the same `PeerMap`/network.
pub struct RemoteAnswerCache {
    /// `None` = no expiry; `Some(t)` = entries older than `t` ticks lapse.
    ttl_ticks: Option<u64>,
    entries: HashMap<CacheKey, Entry>,
    stats: CacheStats,
}

impl RemoteAnswerCache {
    /// A cache whose entries never expire by age (disclosure-set
    /// invalidation still applies).
    pub fn new() -> RemoteAnswerCache {
        RemoteAnswerCache {
            ttl_ticks: None,
            entries: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// A cache whose entries lapse `ttl_ticks` network ticks after
    /// insertion.
    pub fn with_ttl(ttl_ticks: u64) -> RemoteAnswerCache {
        RemoteAnswerCache {
            ttl_ticks: Some(ttl_ticks),
            ..RemoteAnswerCache::new()
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop every entry (keeps the stats).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Cached answers for `(requester, responder, canonical)`, checking
    /// freshness against the current tick and the responder's current KB
    /// size. Stale entries are evicted on the spot.
    pub fn lookup(
        &mut self,
        requester: PeerId,
        responder: PeerId,
        canonical: &Literal,
        now: u64,
        responder_kb_len: usize,
    ) -> Option<Vec<Literal>> {
        let key = (requester, responder, canonical.clone());
        let Some(entry) = self.entries.get(&key) else {
            self.stats.misses += 1;
            return None;
        };
        if entry.responder_kb_len != responder_kb_len {
            self.entries.remove(&key);
            self.stats.invalidated += 1;
            self.stats.misses += 1;
            return None;
        }
        if let Some(ttl) = self.ttl_ticks {
            if now.saturating_sub(entry.inserted_at) > ttl {
                self.entries.remove(&key);
                self.stats.expired += 1;
                self.stats.misses += 1;
                return None;
            }
        }
        self.stats.hits += 1;
        Some(self.entries[&key].answers.clone())
    }

    /// Record a fully public, verified answer set. Callers must ensure
    /// every answer was released under a public context — guarded answers
    /// never cross negotiations (see the module docs).
    pub fn insert(
        &mut self,
        requester: PeerId,
        responder: PeerId,
        canonical: Literal,
        answers: Vec<Literal>,
        now: u64,
        responder_kb_len: usize,
    ) {
        if answers.is_empty() {
            return;
        }
        self.stats.inserts += 1;
        self.entries.insert(
            (requester, responder, canonical),
            Entry {
                answers,
                inserted_at: now,
                responder_kb_len,
            },
        );
    }
}

impl Default for RemoteAnswerCache {
    fn default() -> Self {
        RemoteAnswerCache::new()
    }
}

/// A [`RemoteAnswerCache`] shareable between negotiation sessions running
/// on different worker threads (the batch scheduler's warm-cache mode).
///
/// One mutex around the whole cache, not sharding: a session touches the
/// cross-negotiation cache only at remote-query boundaries (a handful of
/// times per negotiation, between network round-trips that dwarf the
/// critical section), so contention here is negligible and the simple
/// lock keeps hit/miss accounting exactly as sequential runs report it.
#[derive(Clone, Default)]
pub struct SharedRemoteAnswerCache {
    inner: Arc<Mutex<RemoteAnswerCache>>,
}

impl SharedRemoteAnswerCache {
    /// An empty cache with no TTL.
    pub fn new() -> SharedRemoteAnswerCache {
        SharedRemoteAnswerCache::default()
    }

    /// Wrap an existing (possibly pre-warmed or TTL-configured) cache.
    pub fn from_cache(cache: RemoteAnswerCache) -> SharedRemoteAnswerCache {
        SharedRemoteAnswerCache {
            inner: Arc::new(Mutex::new(cache)),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats()
    }

    /// Drop every entry (keeps the stats).
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// See [`RemoteAnswerCache::lookup`].
    pub fn lookup(
        &self,
        requester: PeerId,
        responder: PeerId,
        canonical: &Literal,
        now: u64,
        responder_kb_len: usize,
    ) -> Option<Vec<Literal>> {
        self.inner
            .lock()
            .lookup(requester, responder, canonical, now, responder_kb_len)
    }

    /// See [`RemoteAnswerCache::insert`].
    pub fn insert(
        &self,
        requester: PeerId,
        responder: PeerId,
        canonical: Literal,
        answers: Vec<Literal>,
        now: u64,
        responder_kb_len: usize,
    ) {
        self.inner.lock().insert(
            requester,
            responder,
            canonical,
            answers,
            now,
            responder_kb_len,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peertrust_core::Term;

    fn lit(n: i64) -> Literal {
        Literal::new("p", vec![Term::int(n)])
    }

    fn peers() -> (PeerId, PeerId) {
        (PeerId::new("alice"), PeerId::new("bob"))
    }

    #[test]
    fn hit_after_insert() {
        let (a, b) = peers();
        let mut c = RemoteAnswerCache::new();
        assert!(c.lookup(a, b, &lit(0), 0, 5).is_none());
        c.insert(a, b, lit(0), vec![lit(1)], 0, 5);
        assert_eq!(c.lookup(a, b, &lit(0), 100, 5).unwrap(), vec![lit(1)]);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn requester_is_part_of_the_key() {
        let (a, b) = peers();
        let mut c = RemoteAnswerCache::new();
        c.insert(a, b, lit(0), vec![lit(1)], 0, 5);
        assert!(c.lookup(PeerId::new("carol"), b, &lit(0), 0, 5).is_none());
    }

    #[test]
    fn kb_growth_invalidates() {
        let (a, b) = peers();
        let mut c = RemoteAnswerCache::new();
        c.insert(a, b, lit(0), vec![lit(1)], 0, 5);
        // Responder learned a new rule since: entry evicted.
        assert!(c.lookup(a, b, &lit(0), 1, 6).is_none());
        assert_eq!(c.stats().invalidated, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn ttl_expires_entries() {
        let (a, b) = peers();
        let mut c = RemoteAnswerCache::with_ttl(10);
        c.insert(a, b, lit(0), vec![lit(1)], 100, 5);
        assert!(c.lookup(a, b, &lit(0), 110, 5).is_some());
        assert!(c.lookup(a, b, &lit(0), 111, 5).is_none());
        assert_eq!(c.stats().expired, 1);
    }

    #[test]
    fn shared_cache_is_one_cache_across_clones() {
        let (a, b) = peers();
        let shared = SharedRemoteAnswerCache::new();
        let other = shared.clone();
        shared.insert(a, b, lit(0), vec![lit(1)], 0, 5);
        assert_eq!(other.lookup(a, b, &lit(0), 0, 5).unwrap(), vec![lit(1)]);
        assert_eq!(shared.stats().hits, 1);
        assert_eq!(other.len(), 1);
    }

    #[test]
    fn shared_cache_concurrent_inserts_and_lookups() {
        let shared = SharedRemoteAnswerCache::new();
        std::thread::scope(|scope| {
            for t in 0..8i64 {
                let shared = shared.clone();
                scope.spawn(move || {
                    let (a, b) = peers();
                    for i in 0..16 {
                        let g = lit(t * 100 + i);
                        shared.insert(a, b, g.clone(), vec![lit(1)], 0, 5);
                        assert!(shared.lookup(a, b, &g, 0, 5).is_some());
                    }
                });
            }
        });
        assert_eq!(shared.len(), 8 * 16);
        assert_eq!(shared.stats().inserts, 8 * 16);
        assert_eq!(shared.stats().hits, 8 * 16);
    }

    /// Multi-threaded stress over one shared cache with both staleness
    /// guards live: phase 1 populates under KB length 5 and tick 0, then
    /// a "KB mutation" (responder length 6) and a TTL overrun happen,
    /// and phase 2 hammers the same keys from many threads. No thread
    /// may ever read a stale answer — every phase-2 lookup must either
    /// miss (evicting the stale entry) or return the value re-inserted
    /// under the new fingerprint.
    #[test]
    fn shared_cache_never_serves_stale_answers_under_concurrency() {
        const THREADS: i64 = 8;
        const KEYS: i64 = 16;
        let (a, b) = peers();
        let shared = SharedRemoteAnswerCache::from_cache(RemoteAnswerCache::with_ttl(10));

        // Phase 1: populate. Even keys will go stale via KB growth, odd
        // keys via TTL (inserted at tick 0, re-read at tick 100).
        for k in 0..KEYS {
            shared.insert(a, b, lit(k), vec![lit(-1)], 0, 5);
        }
        assert_eq!(shared.len(), KEYS as usize);

        // Phase 2: the responder's KB grew to 6 and the clock jumped past
        // the TTL. Every thread revalidates every key and re-inserts the
        // fresh answer; whatever interleaving happens, a hit must carry
        // the fresh value.
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let shared = shared.clone();
                scope.spawn(move || {
                    for k in 0..KEYS {
                        let g = lit(k);
                        match shared.lookup(a, b, &g, 100, 6) {
                            None => shared.insert(a, b, g, vec![lit(t)], 100, 6),
                            Some(answers) => {
                                assert_ne!(
                                    answers,
                                    vec![lit(-1)],
                                    "stale pre-mutation answer served for key {k}"
                                );
                            }
                        }
                    }
                });
            }
        });

        // Every stale entry was evicted exactly once, by whichever guard
        // fired first for its key (the KB check precedes the TTL check).
        let stats = shared.stats();
        assert_eq!(stats.invalidated + stats.expired, KEYS as u64);
        assert_eq!(stats.invalidated, KEYS as u64, "kb check fires first");
        // And the re-populated cache now serves only fresh answers.
        assert_eq!(shared.len(), KEYS as usize);
        for k in 0..KEYS {
            let answers = shared.lookup(a, b, &lit(k), 100, 6).expect("fresh entry");
            assert_ne!(answers, vec![lit(-1)]);
        }
    }

    /// TTL expiry and fingerprint invalidation keep working when the
    /// mutation happens *between* concurrent readers: half the threads
    /// read with the old KB length, half with the new one. Old-length
    /// readers may hit the old value (still valid for that fingerprint)
    /// or miss after a new-length reader evicted it — but a new-length
    /// reader must never see the old value.
    #[test]
    fn concurrent_fingerprint_invalidation_is_monotone() {
        const PAIRS: i64 = 4;
        let (a, b) = peers();
        let shared = SharedRemoteAnswerCache::new();
        for k in 0..PAIRS {
            shared.insert(a, b, lit(k), vec![lit(-1)], 0, 5);
        }
        std::thread::scope(|scope| {
            for t in 0..PAIRS * 2 {
                let shared = shared.clone();
                scope.spawn(move || {
                    let k = t % PAIRS;
                    if t < PAIRS {
                        // Old-fingerprint reader: any hit is the old value.
                        if let Some(answers) = shared.lookup(a, b, &lit(k), 0, 5) {
                            assert_eq!(answers, vec![lit(-1)]);
                        }
                    } else {
                        // New-fingerprint reader: the old value is stale.
                        match shared.lookup(a, b, &lit(k), 0, 6) {
                            None => shared.insert(a, b, lit(k), vec![lit(k)], 0, 6),
                            Some(answers) => assert_eq!(answers, vec![lit(k)]),
                        }
                    }
                });
            }
        });
        // After the dust settles every surviving entry carries the new
        // fingerprint's answer.
        for k in 0..PAIRS {
            if let Some(answers) = shared.lookup(a, b, &lit(k), 0, 6) {
                assert_eq!(answers, vec![lit(k)]);
            }
        }
    }

    #[test]
    fn empty_answer_sets_are_never_cached() {
        let (a, b) = peers();
        let mut c = RemoteAnswerCache::new();
        c.insert(a, b, lit(0), Vec::new(), 0, 5);
        assert!(c.is_empty());
        assert_eq!(c.stats().inserts, 0);
    }
}
