//! Global string interner and the symbols built on it.
//!
//! Every identifier in a PeerTrust program — predicate names, atoms, quoted
//! strings, variable names, peer names — is interned into a [`Sym`], a
//! 4-byte index into a process-global table. Interning makes term
//! comparison, hashing and unification O(1) on names, which matters because
//! the inference engine compares predicate symbols on every resolution step.
//!
//! The interner deliberately leaks the interned strings: a symbol table for
//! a policy workload is small (thousands of entries) and giving out
//! `&'static str` keeps every downstream type `Copy`-friendly and
//! lifetime-free.
//!
//! The table is sharded 16 ways by an FxHash of the string, with one
//! read-write lock per shard, so concurrent solver threads interning
//! distinct names rarely contend and a writer only stalls readers of its
//! own shard. A symbol's shard is recoverable from its id (the low 4
//! bits), so [`Sym::as_str`] locks exactly one shard too.

use crate::hash::{FxBuildHasher, FxHasher};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::hash::Hasher;
use std::sync::OnceLock;

/// An interned string. Cheap to copy, compare and hash.
///
/// Construct with [`Sym::new`] (or the `From<&str>` impl); recover the text
/// with [`Sym::as_str`].
///
/// ```
/// use peertrust_core::symbol::Sym;
/// let a = Sym::new("student");
/// let b = Sym::new("student");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "student");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

/// Shard count; must be a power of two (ids store the shard in the low
/// `SHARD_BITS` bits).
const SHARD_BITS: u32 = 4;
const SHARDS: usize = 1 << SHARD_BITS;

#[derive(Default)]
struct Shard {
    map: HashMap<&'static str, u32, FxBuildHasher>,
    strings: Vec<&'static str>,
}

fn shards() -> &'static [RwLock<Shard>; SHARDS] {
    static SHARDS_TABLE: OnceLock<[RwLock<Shard>; SHARDS]> = OnceLock::new();
    SHARDS_TABLE.get_or_init(|| std::array::from_fn(|_| RwLock::new(Shard::default())))
}

fn shard_of(s: &str) -> usize {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    // The map inside the shard uses the same hash; take the *high* bits
    // for shard selection so shard-mates don't collide within the map.
    (h.finish() >> (64 - SHARD_BITS)) as usize
}

impl Sym {
    /// Intern `s`, returning its symbol. Idempotent: all threads racing
    /// on the same string get the same id.
    pub fn new(s: &str) -> Sym {
        let shard_idx = shard_of(s);
        let shard = &shards()[shard_idx];
        // Fast path: already interned (read lock on one shard only).
        {
            let sh = shard.read();
            if let Some(&id) = sh.map.get(s) {
                return Sym(id);
            }
        }
        let mut sh = shard.write();
        // Re-check under the write lock (another thread may have interned it).
        if let Some(&id) = sh.map.get(s) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let local = u32::try_from(sh.strings.len())
            .ok()
            .filter(|l| l.leading_zeros() >= SHARD_BITS)
            .expect("interner overflow");
        let id = (local << SHARD_BITS) | shard_idx as u32;
        sh.strings.push(leaked);
        sh.map.insert(leaked, id);
        Sym(id)
    }

    /// The interned text (read lock on the symbol's own shard).
    pub fn as_str(self) -> &'static str {
        let shard = &shards()[(self.0 & (SHARDS as u32 - 1)) as usize];
        shard.read().strings[(self.0 >> SHARD_BITS) as usize]
    }

    /// Raw index, useful as a dense map key or a deterministic seed.
    /// Encodes the shard in the low bits; unique per symbol but not
    /// contiguous.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::new(&s)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?})", self.as_str())
    }
}

/// The identity of a peer in the network — an interned peer name such as
/// `"E-Learn"`, `"Alice"` or `"UIUC Registrar"`.
///
/// The paper treats peer names as opaque distinguished names; we follow
/// suit. A `PeerId` shows up as the value of `Authority` arguments, the
/// `Requester`/`Self` pseudo-variables, and message endpoints.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(pub Sym);

impl PeerId {
    pub fn new(name: &str) -> PeerId {
        PeerId(Sym::new(name))
    }

    pub fn name(self) -> &'static str {
        self.0.as_str()
    }
}

impl From<&str> for PeerId {
    fn from(s: &str) -> PeerId {
        PeerId::new(s)
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Debug for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PeerId({:?})", self.name())
    }
}

/// Well-known symbols used throughout the system.
pub mod well_known {
    use super::Sym;

    /// The `Requester` pseudo-variable: bound at disclosure time to the peer
    /// the literal/rule would be sent to (paper §3.1).
    pub fn requester() -> Sym {
        Sym::new("Requester")
    }

    /// The `Self` pseudo-variable: bound to the local peer's distinguished
    /// name (paper §3.1).
    pub fn self_() -> Sym {
        Sym::new("Self")
    }

    /// Equality builtin predicate `=`.
    pub fn eq() -> Sym {
        Sym::new("=")
    }

    /// The reserved `true` context/goal.
    pub fn true_() -> Sym {
        Sym::new("true")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Sym::new("foo");
        let b = Sym::new("foo");
        let c = Sym::new("bar");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "foo");
        assert_eq!(c.as_str(), "bar");
    }

    #[test]
    fn empty_and_unicode_strings_intern() {
        let e = Sym::new("");
        assert_eq!(e.as_str(), "");
        let u = Sym::new("Universität");
        assert_eq!(u.as_str(), "Universität");
    }

    #[test]
    fn peer_id_display() {
        let p = PeerId::new("E-Learn");
        assert_eq!(p.to_string(), "E-Learn");
        assert_eq!(p.name(), "E-Learn");
    }

    #[test]
    fn symbols_are_ordered_consistently() {
        let a = Sym::new("zzz-order-a");
        let b = Sym::new("zzz-order-b");
        // Ordering is by intern index, not lexicographic; it only needs to be
        // a consistent total order.
        assert_eq!(a.cmp(&b), a.cmp(&b));
        assert_ne!(a, b);
    }

    #[test]
    fn concurrent_interning_yields_same_symbol() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Sym::new("concurrent-key").index()))
            .collect();
        let ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn concurrent_interning_of_many_strings_round_trips() {
        // 8 threads × 64 strings, every thread interning the same set in
        // a different order: ids must agree across threads and every id
        // must read back its text (exercises all shards and the
        // write-lock re-check under real contention).
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..64u32)
                        .map(|i| {
                            let i = (i + t * 7) % 64;
                            let name = format!("stress-sym-{i}");
                            let sym = Sym::new(&name);
                            assert_eq!(sym.as_str(), name);
                            (i, sym.index())
                        })
                        .collect::<std::collections::BTreeMap<u32, u32>>()
                })
            })
            .collect();
        let maps: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for m in &maps[1..] {
            assert_eq!(m, &maps[0], "intern ids diverged between threads");
        }
    }

    #[test]
    fn ids_recover_their_shard() {
        let s = Sym::new("shard-recovery-probe");
        assert_eq!(
            (s.index() & (SHARDS as u32 - 1)) as usize,
            shard_of("shard-recovery-probe")
        );
    }

    #[test]
    fn well_known_symbols() {
        assert_eq!(well_known::requester().as_str(), "Requester");
        assert_eq!(well_known::self_().as_str(), "Self");
        assert_eq!(well_known::eq().as_str(), "=");
        assert_eq!(well_known::true_().as_str(), "true");
    }
}
