//! Trail-based destructive binding store — the solver's hot-path
//! alternative to cloning a [`Subst`] at every choice point.
//!
//! ## Why a trail
//!
//! SLD resolution explores alternatives: try a clause, and on failure (or
//! after exhausting its answers) undo its bindings and try the next one.
//! The textbook-naive implementation clones the whole substitution per
//! branch, making backtracking O(|all bindings|). The WAM discipline
//! implemented here makes it O(|bindings made on the failed branch|):
//! bindings are written destructively into one shared store, every write
//! is recorded on an *undo trail*, and a choice point is just a
//! [`Checkpoint`] — the trail length at branch entry. [`Bindings::rollback`]
//! pops trail entries back to the mark, unbinding exactly the variables
//! the abandoned branch bound.
//!
//! ## Slots vs. named variables
//!
//! The store is split by a version watermark `base`, fixed at
//! construction:
//!
//! * versions `> base` are **slot variables** — allocated during this
//!   derivation by [`crate::rule::Rule::rename_apart_indexed`] from a
//!   monotone counter, so each version is globally unique and maps to a
//!   dense index `version - base - 1` into a `Vec<Option<Term>>`. Binding
//!   and lookup are an array index, no hashing.
//! * versions `<= base` are **named variables** — query variables,
//!   canonical table-key variables and anything else that predates the
//!   derivation. They live in an [`FxHashMap`], which is fine: there are
//!   a handful of them per query, versus thousands of slot variables.
//!
//! The triangular [`Subst`] remains the boundary type (proofs, answer
//! tables, negotiation messages); [`Bindings::project`] converts at solve
//! exit.

use crate::hash::FxHashMap;
use crate::heap::{HeapMark, HeapStats, TermHeap};
use crate::literal::Literal;
use crate::subst::Subst;
use crate::term::{Term, Var};
use crate::unify::UnifyOptions;
use std::fmt;

/// A mark into the undo trail; obtained from [`Bindings::checkpoint`]
/// and consumed by [`Bindings::rollback`]. Plain data: taking one is
/// O(1) and allocation-free.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Checkpoint(usize);

/// Memo for [`Bindings::apply_memo`]: variable → fully resolved form
/// (`None` = unbound / unchanged). Sound only while the underlying
/// store is frozen — build a fresh cache after any bind or rollback.
#[derive(Default)]
pub struct ResolveCache {
    map: FxHashMap<Var, Option<Term>>,
}

/// One undo record: which variable the next rollback must unbind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TrailEntry {
    /// A slot variable, by dense index into `slots`.
    Slot(u32),
    /// A named (pre-derivation) variable.
    Named(Var),
}

/// Counters for the `engine.trail.*` telemetry metrics. Monotone over
/// the life of the store; [`Bindings::take_stats`] drains them.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct TrailStats {
    /// Slot-variable bindings written (dense-index path).
    pub slot_binds: u64,
    /// Named-variable bindings written (hash-map path).
    pub named_binds: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Trail entries undone across all rollbacks.
    pub undone: u64,
    /// High-water mark of the trail length.
    pub peak_trail: u64,
    /// High-water mark of the slot vector length.
    pub peak_slots: u64,
}

/// The trail-based binding store. See the module docs for the model.
#[derive(Clone, Debug, Default)]
pub struct Bindings {
    /// Version watermark: versions above this are dense slots.
    base: u32,
    /// Slot bindings; index = `version - base - 1`.
    slots: Vec<Option<Term>>,
    /// Bindings for pre-derivation (named) variables.
    named: FxHashMap<Var, Term>,
    /// Undo log, one entry per binding ever written and not yet undone.
    trail: Vec<TrailEntry>,
    /// Bump-allocated assembly scratch for hot-path goal construction
    /// (see [`TermHeap`]). Transient: cells never survive past the goal
    /// build that pushed them, so checkpoints and rollbacks ignore it.
    heap: TermHeap,
    stats: TrailStats,
}

impl Bindings {
    /// An empty store whose slot region starts above `base`. The caller
    /// (the solver) must pick `base` at least as large as every variable
    /// version that exists *before* the derivation starts — query
    /// variables, canonical table-key variables — and allocate all
    /// in-derivation versions above it from one monotone counter.
    pub fn new(base: u32) -> Bindings {
        Bindings {
            base,
            ..Bindings::default()
        }
    }

    /// The slot watermark this store was built with.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of live bindings (slots and named).
    pub fn len(&self) -> usize {
        self.trail.len()
    }

    pub fn is_empty(&self) -> bool {
        self.trail.is_empty()
    }

    /// Mark the current trail position. O(1).
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint(self.trail.len())
    }

    /// Undo every binding made since `cp`, restoring the store to its
    /// state at [`Bindings::checkpoint`] time. O(bindings undone).
    pub fn rollback(&mut self, cp: Checkpoint) {
        debug_assert!(cp.0 <= self.trail.len(), "rollback past the trail head");
        self.stats.rollbacks += 1;
        while self.trail.len() > cp.0 {
            match self.trail.pop().expect("trail underflow") {
                TrailEntry::Slot(i) => self.slots[i as usize] = None,
                TrailEntry::Named(v) => {
                    self.named.remove(&v);
                }
            }
            self.stats.undone += 1;
        }
    }

    /// Bind `v` to `t`, recording the write on the trail. Callers (the
    /// unifier) must ensure `v` is unbound; checked in debug builds.
    pub fn bind(&mut self, v: Var, t: Term) {
        if v.version > self.base {
            let idx = (v.version - self.base - 1) as usize;
            if idx >= self.slots.len() {
                self.slots.resize(idx + 1, None);
                self.stats.peak_slots = self.stats.peak_slots.max(self.slots.len() as u64);
            }
            debug_assert!(self.slots[idx].is_none(), "rebinding slot {v:?}");
            self.slots[idx] = Some(t);
            self.trail.push(TrailEntry::Slot(idx as u32));
            self.stats.slot_binds += 1;
        } else {
            let prev = self.named.insert(v, t);
            debug_assert!(prev.is_none(), "rebinding {v:?}");
            self.trail.push(TrailEntry::Named(v));
            self.stats.named_binds += 1;
        }
        self.stats.peak_trail = self.stats.peak_trail.max(self.trail.len() as u64);
    }

    /// Raw lookup without chain dereferencing.
    pub fn lookup(&self, v: &Var) -> Option<&Term> {
        if v.version > self.base {
            self.slots
                .get((v.version - self.base - 1) as usize)?
                .as_ref()
        } else {
            self.named.get(v)
        }
    }

    /// Dereference `t` one level at a time until it is either a
    /// non-variable term or an unbound variable; does not descend into
    /// compound terms. Same contract as [`Subst::walk`].
    pub fn walk<'a>(&'a self, mut t: &'a Term) -> &'a Term {
        while let Term::Var(v) = t {
            match self.lookup(v) {
                Some(next) => t = next,
                None => break,
            }
        }
        t
    }

    /// Fully resolve `t`, replacing every bound variable (recursively)
    /// by its binding. Unchanged subterms — all ground subterms in
    /// particular — are shared with the input (`Arc` bump), not rebuilt.
    pub fn apply(&self, t: &Term) -> Term {
        if self.trail.is_empty() {
            return t.clone();
        }
        self.resolve_opt(t).unwrap_or_else(|| t.clone())
    }

    /// Copy-on-write resolution: `None` means `t` is unchanged under the
    /// current bindings (keep the original, no allocation).
    fn resolve_opt(&self, t: &Term) -> Option<Term> {
        match t {
            Term::Atom(_) | Term::Str(_) | Term::Int(_) => None,
            Term::Var(_) => {
                let w = self.walk(t);
                if std::ptr::eq(w, t) {
                    return None; // unbound: walk returned the input itself
                }
                Some(self.resolve_opt(w).unwrap_or_else(|| w.clone()))
            }
            Term::Compound(f, args) => {
                let mut rebuilt: Option<Vec<Term>> = None;
                for (i, a) in args.iter().enumerate() {
                    match self.resolve_opt(a) {
                        Some(changed) => rebuilt
                            .get_or_insert_with(|| args[..i].to_vec())
                            .push(changed),
                        None => {
                            if let Some(v) = rebuilt.as_mut() {
                                v.push(a.clone());
                            }
                        }
                    }
                }
                rebuilt.map(|v| Term::Compound(*f, v.into()))
            }
        }
    }

    /// Apply to every argument and authority of a literal, with the same
    /// sharing discipline as [`Bindings::apply`].
    pub fn apply_literal(&self, l: &Literal) -> Literal {
        if self.trail.is_empty() || l.is_ground() {
            return l.clone();
        }
        Literal {
            pred: l.pred,
            args: l.args.iter().map(|t| self.apply(t)).collect(),
            authority: l.authority.iter().map(|t| self.apply(t)).collect(),
        }
    }

    /// [`Bindings::apply`] with a memo over a *frozen* store: every
    /// variable resolved while the cache is live — chain intermediates
    /// included — is resolved at most once. Deep binding chains (the
    /// transitive-closure pattern: `Z0 -> Z1 -> ... -> Zk -> value`)
    /// make the uncached resolver quadratic across a proof tree; the
    /// cache makes each chain link amortized O(1). The caller must not
    /// bind or roll back between uses of the same cache.
    pub fn apply_memo(&self, t: &Term, cache: &mut ResolveCache) -> Term {
        if self.trail.is_empty() {
            return t.clone();
        }
        self.resolve_memo_opt(t, cache).unwrap_or_else(|| t.clone())
    }

    /// Copy-on-write memoized resolution: `None` means unchanged under
    /// the current bindings. The cache stores the same `Option` per
    /// variable, so "unbound" is remembered as cheaply as a hit.
    fn resolve_memo_opt(&self, t: &Term, cache: &mut ResolveCache) -> Option<Term> {
        match t {
            Term::Atom(_) | Term::Str(_) | Term::Int(_) => None,
            Term::Var(v) => {
                if let Some(hit) = cache.map.get(v) {
                    return hit.clone();
                }
                let res = self.lookup(v).map(|next| {
                    // Clone breaks the borrow on `self` so the recursion
                    // can take `cache` mutably; bindings are Arc-backed,
                    // so this is a pointer bump for compounds.
                    let next = next.clone();
                    self.resolve_memo_opt(&next, cache).unwrap_or(next)
                });
                cache.map.insert(*v, res.clone());
                res
            }
            Term::Compound(f, args) => {
                let mut rebuilt: Option<Vec<Term>> = None;
                for (i, a) in args.iter().enumerate() {
                    match self.resolve_memo_opt(a, cache) {
                        Some(changed) => rebuilt
                            .get_or_insert_with(|| args[..i].to_vec())
                            .push(changed),
                        None => {
                            if let Some(v) = rebuilt.as_mut() {
                                v.push(a.clone());
                            }
                        }
                    }
                }
                rebuilt.map(|v| Term::Compound(*f, v.into()))
            }
        }
    }

    /// [`Bindings::apply_literal`] through the memo cache.
    pub fn apply_literal_memo(&self, l: &Literal, cache: &mut ResolveCache) -> Literal {
        self.apply_literal_memo_opt(l, cache)
            .unwrap_or_else(|| l.clone())
    }

    /// Copy-on-write [`Bindings::apply_literal_memo`]: `None` means the
    /// literal is unchanged under the current bindings — the caller keeps
    /// (or shares) the original with no rebuild. This is what lets a
    /// proof tree whose goals are already fully resolved — every reused
    /// tabled answer — pass through solution capture allocation-free.
    pub fn apply_literal_memo_opt(&self, l: &Literal, cache: &mut ResolveCache) -> Option<Literal> {
        if self.trail.is_empty() || l.is_ground() {
            return None;
        }
        let resolve_all = |ts: &[Term], cache: &mut ResolveCache| -> Option<Vec<Term>> {
            let mut rebuilt: Option<Vec<Term>> = None;
            for (i, t) in ts.iter().enumerate() {
                match self.resolve_memo_opt(t, cache) {
                    Some(changed) => rebuilt
                        .get_or_insert_with(|| ts[..i].to_vec())
                        .push(changed),
                    None => {
                        if let Some(v) = rebuilt.as_mut() {
                            v.push(t.clone());
                        }
                    }
                }
            }
            rebuilt
        };
        let args = resolve_all(&l.args, cache);
        let authority = resolve_all(&l.authority, cache);
        if args.is_none() && authority.is_none() {
            return None;
        }
        Some(Literal {
            pred: l.pred,
            args: args.unwrap_or_else(|| l.args.clone()),
            authority: authority.unwrap_or_else(|| l.authority.clone()),
        })
    }

    /// Fused standardize-apart + resolution: equivalent to
    /// `self.apply(&offset_term(t, offset))` in a single pass. This is
    /// what a compiled `PutTerm` instruction executes — the frame-relative
    /// clause term is shifted *and* resolved against the store without
    /// ever materializing the intermediate renamed term. Ground subterms
    /// are shared with the compiled clause (`Arc` bump, no rebuild).
    pub fn apply_offset(&self, t: &Term, offset: u32) -> Term {
        self.apply_offset_opt(t, offset)
            .unwrap_or_else(|| t.clone())
    }

    /// Copy-on-write core of [`Bindings::apply_offset`]: `None` means `t`
    /// is ground (keep the original, no allocation).
    fn apply_offset_opt(&self, t: &Term, offset: u32) -> Option<Term> {
        match t {
            Term::Atom(_) | Term::Str(_) | Term::Int(_) => None,
            Term::Var(v) => {
                let rv = Var::versioned(v.name, v.version + offset);
                match self.lookup(&rv) {
                    Some(bound) => {
                        // Clone breaks the borrow on `self` (an `Arc`
                        // bump for compounds) so resolution can recurse.
                        let bound = bound.clone();
                        Some(self.resolve_opt(&bound).unwrap_or(bound))
                    }
                    None => Some(Term::Var(rv)),
                }
            }
            Term::Compound(f, args) => {
                let mut rebuilt: Option<Vec<Term>> = None;
                for (i, a) in args.iter().enumerate() {
                    match self.apply_offset_opt(a, offset) {
                        Some(changed) => rebuilt
                            .get_or_insert_with(|| args[..i].to_vec())
                            .push(changed),
                        None => {
                            if let Some(v) = rebuilt.as_mut() {
                                v.push(a.clone());
                            }
                        }
                    }
                }
                rebuilt.map(|v| Term::Compound(*f, v.into()))
            }
        }
    }

    /// Current top of the assembly heap. See [`TermHeap`].
    pub fn heap_mark(&self) -> HeapMark {
        self.heap.mark()
    }

    /// Push one assembled term cell onto the heap.
    pub fn heap_push(&mut self, t: Term) {
        self.heap.push(t);
    }

    /// Freeze the cells above `mark` into two boundary blocks (arguments,
    /// authority chain) split at relative position `at`, resetting the
    /// heap to the mark.
    pub fn heap_take_split(&mut self, mark: HeapMark, at: usize) -> (Vec<Term>, Vec<Term>) {
        self.heap.take_split(mark, at)
    }

    /// Abandon the cells above `mark` (failed build).
    pub fn heap_truncate(&mut self, mark: HeapMark) {
        self.heap.truncate(mark);
    }

    /// Drain the heap telemetry counters accumulated since the last call.
    pub fn take_heap_stats(&mut self) -> HeapStats {
        self.heap.take_stats()
    }

    /// Read the heap telemetry counters without resetting them.
    pub fn heap_stats(&self) -> HeapStats {
        self.heap.stats()
    }

    /// Project onto `vars` as a triangular [`Subst`] — the conversion
    /// back to the boundary type at solve exit. Fully resolves each
    /// variable, drops identity bindings.
    pub fn project(&self, vars: &[Var]) -> Subst {
        let mut out = Subst::new();
        for v in vars {
            let t = Term::Var(*v);
            let resolved = self.apply(&t);
            if resolved != t {
                out.bind(*v, resolved);
            }
        }
        out
    }

    /// Drain the telemetry counters accumulated since the last call.
    pub fn take_stats(&mut self) -> TrailStats {
        std::mem::take(&mut self.stats)
    }

    /// Read the telemetry counters without resetting them.
    pub fn stats(&self) -> TrailStats {
        self.stats
    }
}

/// Logical-state equality: same watermark, same live bindings, same
/// trail. Slot-vector capacity that rollback left behind (trailing
/// unbound slots) and telemetry counters are not part of the state.
impl PartialEq for Bindings {
    fn eq(&self, other: &Bindings) -> bool {
        let live = |s: &Bindings| {
            s.slots
                .iter()
                .rposition(Option::is_some)
                .map_or(0, |i| i + 1)
        };
        self.base == other.base
            && self.trail == other.trail
            && self.slots[..live(self)] == other.slots[..live(other)]
            && self.named == other.named
    }
}

impl Eq for Bindings {}

impl fmt::Display for Bindings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        let mut first = true;
        for (i, t) in self.slots.iter().enumerate() {
            if let Some(t) = t {
                if !first {
                    f.write_str(", ")?;
                }
                write!(f, "_s{} -> {t}", i as u64 + u64::from(self.base) + 1)?;
                first = false;
            }
        }
        let mut named: Vec<_> = self.named.iter().collect();
        named.sort_by_key(|(v, _)| **v);
        for (v, t) in named {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{v} -> {t}")?;
            first = false;
        }
        f.write_str("}")
    }
}

/// Unify `a` and `b` destructively against `bs`, with the default
/// occurs-check. On failure the store is rolled back to its entry state
/// — unlike the [`Subst`] unifier, no partial bindings leak out, so
/// callers need neither clone nor checkpoint around a single call.
pub fn unify_in(a: &Term, b: &Term, bs: &mut Bindings) -> bool {
    unify_opts_in(a, b, bs, UnifyOptions::default())
}

/// [`unify_in`] with explicit options.
pub fn unify_opts_in(a: &Term, b: &Term, bs: &mut Bindings, opts: UnifyOptions) -> bool {
    let cp = bs.checkpoint();
    if unify_raw(a, b, bs, opts) {
        true
    } else {
        bs.rollback(cp);
        false
    }
}

/// Unify two literals destructively: predicates, arities, arguments and
/// authority chains must all match (authority chains positionally, equal
/// length). Rolls back to the entry state on failure.
pub fn unify_literals_in(a: &Literal, b: &Literal, bs: &mut Bindings) -> bool {
    if a.pred != b.pred || a.args.len() != b.args.len() || a.authority.len() != b.authority.len() {
        return false;
    }
    let opts = UnifyOptions::default();
    let cp = bs.checkpoint();
    let ok = a
        .args
        .iter()
        .zip(&b.args)
        .all(|(x, y)| unify_raw(x, y, bs, opts))
        && a.authority
            .iter()
            .zip(&b.authority)
            .all(|(x, y)| unify_raw(x, y, bs, opts));
    if !ok {
        bs.rollback(cp);
    }
    ok
}

/// The destructive unification core; may leave partial bindings behind
/// on failure (the public wrappers roll back).
fn unify_raw(a: &Term, b: &Term, bs: &mut Bindings, opts: UnifyOptions) -> bool {
    match (bs.walk(a), bs.walk(b)) {
        (Term::Var(x), Term::Var(y)) if x == y => true,
        (Term::Var(x), t) | (t, Term::Var(x)) => {
            let x = *x;
            let t = t.clone();
            if opts.occurs_check && occurs_resolved_in(&x, &t, bs) {
                return false;
            }
            bs.bind(x, t);
            true
        }
        (Term::Atom(x), Term::Atom(y)) => x == y,
        (Term::Str(x), Term::Str(y)) => x == y,
        (Term::Int(x), Term::Int(y)) => x == y,
        (Term::Compound(f, xs), Term::Compound(g, ys)) => {
            if f != g || xs.len() != ys.len() {
                return false;
            }
            let (xs, ys) = (xs.clone(), ys.clone());
            xs.iter()
                .zip(ys.iter())
                .all(|(x, y)| unify_raw(x, y, bs, opts))
        }
        _ => false,
    }
}

/// Occurs check through the store: does `v` occur in `t` once all bound
/// variables in `t` are dereferenced?
fn occurs_resolved_in(v: &Var, t: &Term, bs: &Bindings) -> bool {
    match bs.walk(t) {
        Term::Var(w) => w == v,
        Term::Atom(_) | Term::Str(_) | Term::Int(_) => false,
        Term::Compound(_, args) => args.iter().any(|a| occurs_resolved_in(v, a, bs)),
    }
}

/// Rename every variable in `t` by adding `offset` to its version,
/// sharing unchanged (ground) subterms with the input. This is the whole
/// of standardize-apart for a *compiled* clause: the compiler numbers a
/// clause's variables 1..=n once, and each use shifts them above the
/// solver's monotone counter instead of walking the term per use.
pub fn offset_term(t: &Term, offset: u32) -> Term {
    offset_term_opt(t, offset).unwrap_or_else(|| t.clone())
}

/// Copy-on-write core of [`offset_term`]: `None` means `t` is ground
/// (keep the original, no allocation).
fn offset_term_opt(t: &Term, offset: u32) -> Option<Term> {
    match t {
        Term::Var(v) => Some(Term::Var(Var::versioned(v.name, v.version + offset))),
        Term::Atom(_) | Term::Str(_) | Term::Int(_) => None,
        Term::Compound(f, args) => {
            let mut rebuilt: Option<Vec<Term>> = None;
            for (i, a) in args.iter().enumerate() {
                match offset_term_opt(a, offset) {
                    Some(changed) => rebuilt
                        .get_or_insert_with(|| args[..i].to_vec())
                        .push(changed),
                    None => {
                        if let Some(v) = rebuilt.as_mut() {
                            v.push(a.clone());
                        }
                    }
                }
            }
            rebuilt.map(|v| Term::Compound(*f, v.into()))
        }
    }
}

/// Unify a *ground* clause-side term `c` against a runtime goal term
/// `g`, comparing in place: the goal side is walked one level at a time
/// and compared structurally — no goal subterm is ever cloned just to be
/// looked at (the old path through [`unify_offset_in`] detached an `Arc`
/// argument block per compound level on both sides). The only clone is
/// the `Arc`-bump of `c` itself when the goal side is an unbound
/// variable and must be bound to it. No occurs check is needed — `c` has
/// no variables to cycle through. Rolls back on failure.
///
/// Equivalent to `unify_opts_in(c, g, bs, opts)` for ground `c`; callers
/// must guarantee groundness (checked in debug builds).
pub fn unify_ground_in(c: &Term, g: &Term, bs: &mut Bindings) -> bool {
    let cp = bs.checkpoint();
    if unify_ground_raw(c, g, bs) {
        true
    } else {
        bs.rollback(cp);
        false
    }
}

/// Destructive core of [`unify_ground_in`]; may leave partial bindings
/// on failure.
fn unify_ground_raw(c: &Term, g: &Term, bs: &mut Bindings) -> bool {
    debug_assert!(c.is_ground(), "unify_ground_raw on non-ground {c}");
    let gw = bs.walk(g);
    if let Term::Var(y) = gw {
        let y = *y;
        bs.bind(y, c.clone());
        return true;
    }
    if std::ptr::eq(gw, g) {
        // The goal term was not a bound variable: its borrow is the
        // caller's, independent of the store, so compare in place.
        ground_cmp_walked(c, g, bs)
    } else {
        // Walked into the store: detach one level (`Arc` bump for a
        // compound) to release the borrow before recursing.
        let gw = gw.clone();
        ground_cmp_walked(c, &gw, bs)
    }
}

/// Compare `c` against an already-walked, non-variable `g`; goal
/// *subterms* may still be (possibly bound) variables.
fn ground_cmp_walked(c: &Term, g: &Term, bs: &mut Bindings) -> bool {
    match (c, g) {
        (Term::Atom(x), Term::Atom(y)) => x == y,
        (Term::Str(x), Term::Str(y)) => x == y,
        (Term::Int(x), Term::Int(y)) => x == y,
        (Term::Compound(cf, cargs), Term::Compound(gf, gargs)) => {
            cf == gf
                && cargs.len() == gargs.len()
                && cargs
                    .iter()
                    .zip(gargs.iter())
                    .all(|(x, y)| unify_ground_raw(x, y, bs))
        }
        _ => false,
    }
}

/// Unify a *clause-side* term `c` — whose variables are frame-relative
/// and stand for `Var { name, version: version + offset }` — against a
/// runtime goal term `g`, without ever materializing the renamed clause
/// term (the renaming happens lazily, variable by variable, and ground
/// clause subterms unify structurally with zero allocation). Rolls the
/// store back to its entry state on failure, like [`unify_opts_in`].
///
/// Equivalent to `unify_opts_in(&offset_term(c, offset), g, bs, opts)`.
pub fn unify_offset_in(
    c: &Term,
    offset: u32,
    g: &Term,
    bs: &mut Bindings,
    opts: UnifyOptions,
) -> bool {
    let cp = bs.checkpoint();
    if unify_offset_raw(c, offset, g, bs, opts) {
        true
    } else {
        bs.rollback(cp);
        false
    }
}

/// Destructive core of [`unify_offset_in`]; may leave partial bindings
/// on failure.
fn unify_offset_raw(
    c: &Term,
    offset: u32,
    g: &Term,
    bs: &mut Bindings,
    opts: UnifyOptions,
) -> bool {
    match c {
        Term::Var(v) => {
            let rv = Var::versioned(v.name, v.version + offset);
            if let Some(bound) = bs.lookup(&rv) {
                // The frame slot was filled by an earlier instruction of
                // this head match; from here it is ordinary unification.
                let bound = bound.clone();
                return unify_raw(&bound, g, bs, opts);
            }
            match bs.walk(g) {
                Term::Var(y) if *y == rv => true,
                gw => {
                    let gw = gw.clone();
                    if opts.occurs_check && occurs_resolved_in(&rv, &gw, bs) {
                        return false;
                    }
                    bs.bind(rv, gw);
                    true
                }
            }
        }
        Term::Atom(_) | Term::Str(_) | Term::Int(_) => match bs.walk(g) {
            Term::Var(y) => {
                let y = *y;
                bs.bind(y, c.clone());
                true
            }
            gw => gw == c,
        },
        Term::Compound(f, cargs) => match bs.walk(g) {
            Term::Var(y) => {
                let y = *y;
                let inst = offset_term(c, offset);
                if opts.occurs_check && occurs_resolved_in(&y, &inst, bs) {
                    return false;
                }
                bs.bind(y, inst);
                true
            }
            Term::Compound(gf, gargs) => {
                if gf != f || gargs.len() != cargs.len() {
                    return false;
                }
                let (cargs, gargs) = (cargs.clone(), gargs.clone());
                cargs
                    .iter()
                    .zip(gargs.iter())
                    .all(|(x, y)| unify_offset_raw(x, offset, y, bs, opts))
            }
            _ => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Term {
        Term::var(name)
    }

    fn slot(name: &str, version: u32) -> Var {
        Var::versioned(name, version)
    }

    #[test]
    fn slot_and_named_bindings_roundtrip() {
        let mut bs = Bindings::new(10);
        // Version 0: named path. Version 11: slot path.
        bs.bind(Var::new("Q"), Term::int(1));
        bs.bind(slot("X", 11), Term::int(2));
        assert_eq!(bs.lookup(&Var::new("Q")), Some(&Term::int(1)));
        assert_eq!(bs.lookup(&slot("X", 11)), Some(&Term::int(2)));
        assert_eq!(bs.len(), 2);
        let st = bs.stats();
        assert_eq!((st.slot_binds, st.named_binds), (1, 1));
    }

    #[test]
    fn rollback_restores_entry_state() {
        let mut bs = Bindings::new(0);
        bs.bind(slot("A", 1), Term::int(1));
        let before = bs.clone();
        let cp = bs.checkpoint();
        bs.bind(slot("B", 2), Term::int(2));
        bs.bind(Var::new("Q"), Term::atom("a"));
        assert_ne!(bs, before);
        bs.rollback(cp);
        assert_eq!(bs, before);
        assert_eq!(bs.lookup(&slot("B", 2)), None);
        assert_eq!(bs.lookup(&Var::new("Q")), None);
        assert_eq!(bs.lookup(&slot("A", 1)), Some(&Term::int(1)));
    }

    #[test]
    fn unify_failure_leaves_no_partial_bindings() {
        let mut bs = Bindings::new(0);
        // f(X, 1) vs f(2, 2): X binds to 2, then 1 vs 2 fails — the
        // X binding must be rolled back.
        let a = Term::compound("f", vec![v("X"), Term::int(1)]);
        let b = Term::compound("f", vec![Term::int(2), Term::int(2)]);
        assert!(!unify_in(&a, &b, &mut bs));
        assert!(bs.is_empty());
        assert_eq!(bs.lookup(&Var::new("X")), None);
    }

    #[test]
    fn unify_literals_in_rolls_back_authority_failures() {
        let mut bs = Bindings::new(0);
        let a = Literal::new("p", vec![v("X")]).at(Term::str("A"));
        let b = Literal::new("p", vec![Term::int(1)]).at(Term::str("B"));
        assert!(!unify_literals_in(&a, &b, &mut bs));
        assert!(bs.is_empty());
    }

    #[test]
    fn occurs_check_matches_subst_unifier() {
        let mut bs = Bindings::new(0);
        let t = Term::compound("f", vec![v("X")]);
        assert!(!unify_in(&v("X"), &t, &mut bs));
        assert!(bs.is_empty());
        assert!(unify_opts_in(
            &v("X"),
            &t,
            &mut bs,
            UnifyOptions {
                occurs_check: false
            }
        ));
    }

    #[test]
    fn apply_shares_unchanged_subterms() {
        let mut bs = Bindings::new(0);
        let ground = Term::compound("g", vec![Term::int(1), Term::int(2)]);
        let t = Term::compound("f", vec![v("X"), ground.clone()]);
        bs.bind(Var::new("X"), Term::int(9));
        let applied = bs.apply(&t);
        assert_eq!(
            applied,
            Term::compound("f", vec![Term::int(9), ground.clone()])
        );
        // The ground subterm is the same allocation, not a rebuild.
        match (&applied, &t) {
            (Term::Compound(_, xs), Term::Compound(_, ys)) => match (&xs[1], &ys[1]) {
                (Term::Compound(_, a), Term::Compound(_, b)) => {
                    assert!(std::sync::Arc::ptr_eq(a, b));
                }
                _ => panic!("expected compounds"),
            },
            _ => panic!("expected compounds"),
        }
    }

    #[test]
    fn project_resolves_chains_to_subst() {
        let mut bs = Bindings::new(0);
        assert!(unify_in(&v("X"), &v("Y"), &mut bs));
        assert!(unify_in(&v("Y"), &Term::int(7), &mut bs));
        let s = bs.project(&[Var::new("X"), Var::new("Z")]);
        assert_eq!(s.apply(&v("X")), Term::int(7));
        assert_eq!(s.lookup(&Var::new("Z")), None);
    }

    #[test]
    fn offset_term_shifts_vars_and_shares_ground() {
        let ground = Term::compound("g", vec![Term::int(1)]);
        let t = Term::compound("f", vec![Term::Var(slot("X", 1)), ground.clone()]);
        let shifted = offset_term(&t, 10);
        assert_eq!(
            shifted,
            Term::compound("f", vec![Term::Var(slot("X", 11)), ground.clone()])
        );
        match (&shifted, &t) {
            (Term::Compound(_, xs), Term::Compound(_, ys)) => match (&xs[1], &ys[1]) {
                (Term::Compound(_, a), Term::Compound(_, b)) => {
                    assert!(std::sync::Arc::ptr_eq(a, b), "ground subterm shared");
                }
                _ => panic!("expected compounds"),
            },
            _ => panic!("expected compounds"),
        }
        // A fully ground term is shared outright.
        assert_eq!(offset_term(&ground, 10), ground);
    }

    #[test]
    fn offset_unify_matches_materialized_renaming() {
        // For a spread of clause/goal shapes, unify_offset_in must agree
        // with renaming the clause term eagerly and using unify_in —
        // both in verdict and in resulting goal-variable bindings.
        let clause_terms = [
            Term::Var(slot("X", 1)),
            Term::atom("a"),
            Term::compound("f", vec![Term::Var(slot("X", 1)), Term::Var(slot("X", 1))]),
            Term::compound("f", vec![Term::Var(slot("X", 1)), Term::int(2)]),
            Term::compound("f", vec![Term::atom("a")]),
        ];
        let goal_terms = [
            v("G"),
            Term::atom("a"),
            Term::atom("b"),
            Term::compound("f", vec![Term::int(2), Term::int(2)]),
            Term::compound("f", vec![v("G"), v("G")]),
            Term::compound("f", vec![v("G"), v("H")]),
        ];
        for c in &clause_terms {
            for g in &goal_terms {
                let mut lazy = Bindings::new(0);
                let ok_lazy = unify_offset_in(c, 100, g, &mut lazy, UnifyOptions::default());
                let mut eager = Bindings::new(0);
                let renamed = offset_term(c, 100);
                let ok_eager = unify_in(&renamed, g, &mut eager);
                assert_eq!(ok_lazy, ok_eager, "verdict for {c} vs {g}");
                if ok_lazy {
                    for name in ["G", "H"] {
                        let t = Term::var(name);
                        assert_eq!(
                            lazy.apply(&t),
                            eager.apply(&t),
                            "binding of {name} for {c} vs {g}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn offset_unify_occurs_check() {
        // clause p(X, f(X)) vs goal p(Y, Y) must fail the occurs check.
        let mut bs = Bindings::new(0);
        let x = Term::Var(slot("X", 1));
        assert!(unify_offset_in(
            &x,
            10,
            &v("Y"),
            &mut bs,
            UnifyOptions::default()
        ));
        let fx = Term::compound("f", vec![x]);
        assert!(!unify_offset_in(
            &fx,
            10,
            &v("Y"),
            &mut bs,
            UnifyOptions::default()
        ));
    }

    #[test]
    fn offset_unify_rolls_back_on_failure() {
        let mut bs = Bindings::new(0);
        let c = Term::compound("f", vec![Term::Var(slot("X", 1)), Term::int(1)]);
        let g = Term::compound("f", vec![Term::int(2), Term::int(9)]);
        assert!(!unify_offset_in(
            &c,
            10,
            &g,
            &mut bs,
            UnifyOptions::default()
        ));
        assert!(bs.is_empty());
    }

    #[test]
    fn ground_unify_matches_general_unifier() {
        // unify_ground_in (the GetConst executor) must agree with the
        // general unifier in both verdict and resulting bindings for
        // every ground-clause-term/goal-term pairing.
        let consts = [
            Term::atom("a"),
            Term::str("a"),
            Term::int(7),
            Term::compound("f", vec![Term::int(1), Term::atom("a")]),
            Term::compound("f", vec![Term::compound("g", vec![Term::int(2)])]),
        ];
        let goals = [
            v("G"),
            Term::atom("a"),
            Term::str("a"),
            Term::int(7),
            Term::int(8),
            Term::compound("f", vec![Term::int(1), Term::atom("a")]),
            Term::compound("f", vec![v("G"), v("H")]),
            Term::compound("f", vec![v("G"), v("G")]),
            Term::compound("f", vec![Term::compound("g", vec![v("G")])]),
        ];
        for c in &consts {
            for g in &goals {
                let mut fast = Bindings::new(0);
                let ok_fast = unify_ground_in(c, g, &mut fast);
                let mut general = Bindings::new(0);
                let ok_general = unify_in(c, g, &mut general);
                assert_eq!(ok_fast, ok_general, "verdict for {c} vs {g}");
                if ok_fast {
                    for name in ["G", "H"] {
                        let t = Term::var(name);
                        assert_eq!(
                            fast.apply(&t),
                            general.apply(&t),
                            "binding of {name} for {c} vs {g}"
                        );
                    }
                } else {
                    assert!(fast.is_empty(), "rolled back for {c} vs {g}");
                }
            }
        }
    }

    #[test]
    fn ground_unify_binds_through_chains() {
        // G -> H (unbound); matching against a constant must bind the
        // chain end, exactly like the general unifier.
        let mut bs = Bindings::new(0);
        bs.bind(Var::new("G"), v("H"));
        let c = Term::compound("f", vec![Term::int(3)]);
        assert!(unify_ground_in(&c, &v("G"), &mut bs));
        assert_eq!(bs.apply(&v("H")), c);
    }

    #[test]
    fn apply_offset_fuses_rename_and_resolve() {
        // apply_offset(t, k) is the one-pass equivalent of
        // apply(&offset_term(t, k)) — the PutTerm executor relies on it.
        let mut bs = Bindings::new(0);
        bs.bind(slot("X", 11), Term::int(5));
        bs.bind(slot("Y", 12), v("G"));
        let shapes = [
            Term::atom("a"),
            Term::Var(slot("X", 1)),
            Term::Var(slot("Y", 2)),
            Term::Var(slot("Z", 3)),
            Term::compound(
                "f",
                vec![
                    Term::Var(slot("X", 1)),
                    Term::compound("g", vec![Term::Var(slot("Y", 2)), Term::int(9)]),
                    Term::Var(slot("Z", 3)),
                ],
            ),
            Term::compound("f", vec![Term::int(1), Term::atom("a")]),
        ];
        for t in &shapes {
            assert_eq!(
                bs.apply_offset(t, 10),
                bs.apply(&offset_term(t, 10)),
                "fused apply for {t}"
            );
        }
        // Ground subtrees are shared, not rebuilt.
        let ground = Term::compound("g", vec![Term::int(1)]);
        if let (Term::Compound(_, a), Term::Compound(_, b)) =
            (&bs.apply_offset(&ground, 10), &ground)
        {
            assert!(std::sync::Arc::ptr_eq(a, b), "ground args shared");
        } else {
            panic!("expected compounds");
        }
    }

    #[test]
    fn apply_literal_memo_opt_reports_unchanged() {
        let mut bs = Bindings::new(0);
        let lit = Literal::new("p", vec![v("G"), Term::int(1)]);
        let mut cache = ResolveCache::default();
        // No bindings at all: always unchanged.
        assert!(bs.apply_literal_memo_opt(&lit, &mut cache).is_none());
        bs.bind(Var::new("G"), Term::int(2));
        let resolved = bs.apply_literal_memo_opt(&lit, &mut cache);
        assert_eq!(
            resolved,
            Some(Literal::new("p", vec![Term::int(2), Term::int(1)]))
        );
        // Ground literal: unchanged even with a non-empty trail.
        let ground = Literal::new("p", vec![Term::int(3)]);
        assert!(bs.apply_literal_memo_opt(&ground, &mut cache).is_none());
    }

    #[test]
    fn heap_accessors_round_trip_through_bindings() {
        let mut bs = Bindings::new(0);
        let mark = bs.heap_mark();
        bs.heap_push(Term::int(1));
        bs.heap_push(Term::int(2));
        bs.heap_push(Term::str("Auth"));
        let (args, auth) = bs.heap_take_split(mark, 2);
        assert_eq!(args, vec![Term::int(1), Term::int(2)]);
        assert_eq!(auth, vec![Term::str("Auth")]);
        let mark2 = bs.heap_mark();
        bs.heap_push(Term::int(9));
        bs.heap_truncate(mark2);
        let st = bs.take_heap_stats();
        assert_eq!(st.cells, 4);
        assert_eq!(st.resets, 2);
        assert_eq!(bs.heap_stats(), HeapStats::default());
    }

    #[test]
    fn display_lists_bindings() {
        let mut bs = Bindings::new(0);
        bs.bind(Var::new("Q"), Term::int(3));
        assert_eq!(bs.to_string(), "{Q -> 3}");
    }
}
