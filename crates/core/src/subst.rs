//! Substitutions: finite maps from variables to terms.
//!
//! The engine uses *triangular* substitutions — bindings may map a variable
//! to a term containing further bound variables, and [`Subst::walk`]
//! dereferences chains lazily. [`Subst::apply`] resolves a term fully.

use crate::context::Context;
use crate::hash::FxHashMap;
use crate::literal::Literal;
use crate::term::{Term, Var};
use std::fmt;

/// A substitution (set of variable bindings).
///
/// Keyed with [`FxHashMap`]: variables hash a `(Sym, u32)` pair, for
/// which the multiply-rotate hash is several times cheaper than SipHash
/// and needs no DoS resistance (keys come from local policies).
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Subst {
    map: FxHashMap<Var, Term>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Subst {
        Subst::default()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bind `v` to `t`. Callers (the unifier) must ensure `v` is unbound and
    /// the binding is acyclic; this is checked in debug builds.
    pub fn bind(&mut self, v: Var, t: Term) {
        debug_assert!(!self.map.contains_key(&v), "rebinding {v:?}");
        self.map.insert(v, t);
    }

    /// Raw lookup without chain dereferencing.
    pub fn lookup(&self, v: &Var) -> Option<&Term> {
        self.map.get(v)
    }

    /// Dereference `t` one level at a time until it is either a non-variable
    /// term or an unbound variable. Does not descend into compound terms.
    pub fn walk<'a>(&'a self, mut t: &'a Term) -> &'a Term {
        while let Term::Var(v) = t {
            match self.map.get(v) {
                Some(next) => t = next,
                None => break,
            }
        }
        t
    }

    /// Fully apply the substitution, producing a term with every bound
    /// variable replaced (recursively) by its binding.
    ///
    /// Fast paths: the empty substitution cannot change anything, so the
    /// term is cloned without walking it (this runs under every
    /// resolution step, where fresh-goal substitutions are often empty);
    /// and subterms the substitution leaves untouched — every ground
    /// subterm in particular — are shared with the input (`Arc` bump)
    /// instead of being rebuilt.
    pub fn apply(&self, t: &Term) -> Term {
        if self.map.is_empty() {
            return t.clone();
        }
        self.resolve_opt(t).unwrap_or_else(|| t.clone())
    }

    /// Copy-on-write core of [`Subst::apply`]: `None` means the term is
    /// unchanged under this substitution (the caller keeps the original,
    /// no allocation), `Some(t')` is the rewritten term. A compound
    /// reallocates only when at least one argument actually changed.
    fn resolve_opt(&self, t: &Term) -> Option<Term> {
        match t {
            Term::Atom(_) | Term::Str(_) | Term::Int(_) => None,
            Term::Var(_) => {
                let w = self.walk(t);
                if std::ptr::eq(w, t) {
                    return None; // unbound: walk returned the input itself
                }
                Some(self.resolve_opt(w).unwrap_or_else(|| w.clone()))
            }
            Term::Compound(f, args) => {
                let mut rebuilt: Option<Vec<Term>> = None;
                for (i, a) in args.iter().enumerate() {
                    match self.resolve_opt(a) {
                        Some(changed) => rebuilt
                            .get_or_insert_with(|| args[..i].to_vec())
                            .push(changed),
                        None => {
                            if let Some(v) = rebuilt.as_mut() {
                                v.push(a.clone());
                            }
                        }
                    }
                }
                rebuilt.map(|v| Term::Compound(*f, v.into()))
            }
        }
    }

    /// Apply to every argument and authority of a literal.
    ///
    /// Fast paths: an empty substitution or a ground literal (no
    /// variables anywhere, the common case for facts and credential
    /// instances) is an early clone with no per-argument recursion.
    pub fn apply_literal(&self, l: &Literal) -> Literal {
        if self.map.is_empty() || l.is_ground() {
            return l.clone();
        }
        Literal {
            pred: l.pred,
            args: l.args.iter().map(|t| self.apply(t)).collect(),
            authority: l.authority.iter().map(|t| self.apply(t)).collect(),
        }
    }

    /// Apply to a whole context.
    pub fn apply_context(&self, c: &Context) -> Context {
        c.apply(self)
    }

    /// Iterate over `(var, term)` bindings in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Term)> {
        self.map.iter()
    }

    /// Restrict to the given variables — used to present query answers
    /// without internal renamings.
    pub fn project(&self, vars: &[Var]) -> Subst {
        let mut out = Subst::new();
        for v in vars {
            let resolved = self.apply(&Term::Var(*v));
            if resolved != Term::Var(*v) {
                out.map.insert(*v, resolved);
            }
        }
        out
    }
}

impl fmt::Display for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<_> = self.map.iter().collect();
        entries.sort_by_key(|(v, _)| **v);
        f.write_str("{")?;
        for (i, (v, t)) in entries.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v} -> {t}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Var {
        Var::new(name)
    }

    #[test]
    fn walk_follows_chains() {
        let mut s = Subst::new();
        s.bind(v("X"), Term::var("Y"));
        s.bind(v("Y"), Term::int(3));
        assert_eq!(s.walk(&Term::var("X")), &Term::int(3));
        // Unbound variables walk to themselves.
        assert_eq!(s.walk(&Term::var("Z")), &Term::var("Z"));
    }

    #[test]
    fn apply_descends_into_compounds() {
        let mut s = Subst::new();
        s.bind(v("X"), Term::int(1));
        let t = Term::compound(
            "f",
            vec![Term::var("X"), Term::compound("g", vec![Term::var("X")])],
        );
        assert_eq!(
            s.apply(&t),
            Term::compound(
                "f",
                vec![Term::int(1), Term::compound("g", vec![Term::int(1)])]
            )
        );
    }

    #[test]
    fn apply_literal_covers_authority() {
        let mut s = Subst::new();
        s.bind(v("A"), Term::str("UIUC"));
        let l = Literal::new("student", vec![Term::var("X")]).at(Term::var("A"));
        let applied = s.apply_literal(&l);
        assert_eq!(applied.to_string(), "student(X) @ \"UIUC\"");
    }

    #[test]
    fn project_keeps_only_requested_vars() {
        let mut s = Subst::new();
        s.bind(v("X"), Term::var("Tmp"));
        s.bind(v("Tmp"), Term::int(9));
        let p = s.project(&[v("X")]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.apply(&Term::var("X")), Term::int(9));
        assert_eq!(p.lookup(&v("Tmp")), None);
    }

    #[test]
    fn project_drops_identity_bindings() {
        let s = Subst::new();
        let p = s.project(&[v("X")]);
        assert!(p.is_empty());
    }

    #[test]
    fn empty_subst_applies_as_identity() {
        let s = Subst::new();
        let t = Term::compound("f", vec![Term::var("X"), Term::int(1)]);
        assert_eq!(s.apply(&t), t);
        let l = Literal::new("p", vec![Term::var("X")]).at(Term::var("A"));
        assert_eq!(s.apply_literal(&l), l);
    }

    #[test]
    fn ground_literal_applies_as_identity_even_with_bindings() {
        let mut s = Subst::new();
        s.bind(v("X"), Term::int(1));
        let l = Literal::new("cred", vec![Term::str("alice")]).at(Term::str("CA"));
        assert_eq!(s.apply_literal(&l), l);
        // A non-ground literal with the same shape still gets rewritten.
        let open = Literal::new("cred", vec![Term::var("X")]).at(Term::str("CA"));
        assert_eq!(
            s.apply_literal(&open),
            Literal::new("cred", vec![Term::int(1)]).at(Term::str("CA"))
        );
    }

    #[test]
    fn display_is_sorted_and_readable() {
        let mut s = Subst::new();
        s.bind(v("B"), Term::int(2));
        s.bind(v("A"), Term::int(1));
        assert_eq!(s.to_string(), "{A -> 1, B -> 2}");
    }
}
