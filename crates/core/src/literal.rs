//! Literals with authority chains.
//!
//! A PeerTrust literal is `p(t1, ..., tn) @ A1 @ A2 @ ... @ Ak` (paper
//! §3.1). The authority chain is evaluated *outermost first*: the literal
//! `student(X) @ "UIUC" @ X` means "ask peer `X` for the statement
//! `student(X) @ "UIUC"`", i.e. the last authority in program order is the
//! peer contacted first, and each step peels one authority off the end.
//!
//! We store the chain in *program order* (the order the `@`s appear), so
//! `authority.last()` is the peer to contact and `strip_outer_authority`
//! removes it.
//!
//! Builtin comparisons (`=`, `<`, `<=`, `>`, `>=`, `!=`) are represented as
//! ordinary binary literals with reserved predicate symbols; the engine
//! recognizes and evaluates them natively.

use crate::symbol::{PeerId, Sym};
use crate::term::{Term, Var};
use std::fmt;

/// The reserved predicate names the engine evaluates as builtins.
pub const BUILTIN_PREDICATES: &[&str] = &["=", "!=", "<", "<=", ">", ">="];

/// A (positive) literal: predicate, arguments, and authority chain.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Literal {
    /// Predicate symbol, e.g. `student`.
    pub pred: Sym,
    /// Argument terms.
    pub args: Vec<Term>,
    /// Authority chain in program order; empty means "evaluated at `Self`".
    /// `student(X) @ "UIUC" @ X` has `authority = ["UIUC", X]` and the peer
    /// to contact is `X` (the last element).
    pub authority: Vec<Term>,
}

impl Literal {
    /// Build a literal with no authority chain.
    pub fn new(pred: impl Into<Sym>, args: Vec<Term>) -> Literal {
        Literal {
            pred: pred.into(),
            args,
            authority: Vec::new(),
        }
    }

    /// Append one authority to the chain (builder style). Successive calls
    /// mirror successive `@`s in the paper syntax:
    /// `Literal::new(...).at(uiuc).at(x)` is `lit @ uiuc @ x`.
    pub fn at(mut self, authority: Term) -> Literal {
        self.authority.push(authority);
        self
    }

    /// A builtin equality literal `a = b`.
    pub fn eq(a: Term, b: Term) -> Literal {
        Literal::new("=", vec![a, b])
    }

    /// A builtin comparison literal, e.g. `cmp("<", price, 2000)`.
    pub fn cmp(op: &str, a: Term, b: Term) -> Literal {
        debug_assert!(BUILTIN_PREDICATES.contains(&op), "unknown builtin {op}");
        Literal::new(op, vec![a, b])
    }

    /// The reserved `true` literal (used as the trivially satisfied context).
    pub fn truth() -> Literal {
        Literal::new("true", vec![])
    }

    /// Is this a builtin comparison the engine evaluates natively?
    pub fn is_builtin(&self) -> bool {
        BUILTIN_PREDICATES.contains(&self.pred.as_str()) || self.pred.as_str() == "true"
    }

    /// Predicate/arity pair used for knowledge-base indexing.
    pub fn functor(&self) -> (Sym, usize) {
        (self.pred, self.args.len())
    }

    /// Is the literal fully ground (arguments and authorities)?
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(Term::is_ground) && self.authority.iter().all(Term::is_ground)
    }

    /// The peer this literal should be evaluated at next: the *last*
    /// authority in program order (outermost evaluation first, paper §3.1),
    /// if it is a ground peer name.
    pub fn eval_peer(&self) -> Option<PeerId> {
        self.authority.last().and_then(Term::as_peer)
    }

    /// Remove the outermost authority (the one evaluated first), returning
    /// the literal the contacted peer is asked to establish.
    /// `student(X)@"UIUC"@X → student(X)@"UIUC"` (sent to peer `X`).
    pub fn strip_outer_authority(&self) -> Literal {
        let mut l = self.clone();
        l.authority.pop();
        l
    }

    /// Collect every variable in arguments and authority chain.
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        for t in &self.args {
            t.collect_vars(out);
        }
        for t in &self.authority {
            t.collect_vars(out);
        }
    }

    /// All distinct variables, in first-occurrence order.
    pub fn vars(&self) -> Vec<Var> {
        let mut all = Vec::new();
        self.collect_vars(&mut all);
        let mut seen = Vec::new();
        for v in all {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen
    }

    /// Rewrite every variable with `f` (standardize-apart support).
    pub fn map_vars(&self, f: &mut impl FnMut(Var) -> Term) -> Literal {
        Literal {
            pred: self.pred,
            args: self.args.iter().map(|t| t.map_vars(f)).collect(),
            authority: self.authority.iter().map(|t| t.map_vars(f)).collect(),
        }
    }

    /// Total symbol count (size budget input).
    pub fn size(&self) -> usize {
        1 + self.args.iter().map(Term::size).sum::<usize>()
            + self.authority.iter().map(Term::size).sum::<usize>()
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Builtin comparisons print infix, like the paper's `Price < 2000`.
        if self.args.len() == 2 && BUILTIN_PREDICATES.contains(&self.pred.as_str()) {
            write!(f, "{} {} {}", self.args[0], self.pred, self.args[1])?;
        } else if self.args.is_empty() {
            write!(f, "{}", self.pred)?;
        } else {
            write!(f, "{}(", self.pred)?;
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
        }
        for auth in &self.authority {
            write!(f, " @ {auth}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_plain_literal() {
        let l = Literal::new("student", vec![Term::str("Alice")]);
        assert_eq!(l.to_string(), "student(\"Alice\")");
    }

    #[test]
    fn display_with_authority_chain() {
        let l = Literal::new("student", vec![Term::var("X")])
            .at(Term::str("UIUC"))
            .at(Term::var("X"));
        assert_eq!(l.to_string(), "student(X) @ \"UIUC\" @ X");
    }

    #[test]
    fn display_builtin_infix() {
        let l = Literal::cmp("<", Term::var("Price"), Term::int(2000));
        assert_eq!(l.to_string(), "Price < 2000");
    }

    #[test]
    fn display_zero_arity() {
        let l = Literal::truth();
        assert_eq!(l.to_string(), "true");
    }

    #[test]
    fn eval_peer_is_last_authority() {
        let l = Literal::new("student", vec![Term::str("Alice")])
            .at(Term::str("UIUC"))
            .at(Term::str("Alice"));
        assert_eq!(l.eval_peer(), Some(PeerId::new("Alice")));
        let stripped = l.strip_outer_authority();
        assert_eq!(stripped.eval_peer(), Some(PeerId::new("UIUC")));
        assert_eq!(stripped.strip_outer_authority().eval_peer(), None);
    }

    #[test]
    fn eval_peer_none_when_variable() {
        let l = Literal::new("p", vec![]).at(Term::var("A"));
        assert_eq!(l.eval_peer(), None);
    }

    #[test]
    fn vars_dedup_in_order() {
        let l = Literal::new("p", vec![Term::var("X"), Term::var("Y")]).at(Term::var("X"));
        let names: Vec<_> = l.vars().iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["X", "Y"]);
    }

    #[test]
    fn groundness_includes_authority() {
        let l = Literal::new("p", vec![Term::int(1)]).at(Term::var("A"));
        assert!(!l.is_ground());
        let g = Literal::new("p", vec![Term::int(1)]).at(Term::str("A"));
        assert!(g.is_ground());
    }

    #[test]
    fn builtins_recognized() {
        assert!(Literal::eq(Term::int(1), Term::int(1)).is_builtin());
        assert!(Literal::cmp(">=", Term::int(2), Term::int(1)).is_builtin());
        assert!(Literal::truth().is_builtin());
        assert!(!Literal::new("student", vec![]).is_builtin());
    }

    #[test]
    fn functor_pairs_pred_and_arity() {
        let l = Literal::new("p", vec![Term::int(1), Term::int(2)]);
        assert_eq!(l.functor(), (Sym::new("p"), 2));
    }
}
