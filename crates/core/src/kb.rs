//! Per-peer knowledge bases.
//!
//! Each peer stores its *local* rules (rules it defined, including its
//! policies) plus *cached foreign* rules — signed rules received from other
//! peers during earlier interactions (paper §3.1: "A peer may also have
//! copies of rules defined by other peers"). Rules are indexed by
//! predicate/arity for fast clause selection during resolution.
//!
//! # Copy-on-write layout
//!
//! A KB is split into an immutable **base segment** behind an `Arc` plus a
//! small mutable **overlay segment**. [`KnowledgeBase::freeze`] folds the
//! overlay into the base; after that, `clone` is an `Arc` bump plus a copy
//! of the (empty) overlay — O(1) instead of O(KB). This is what makes
//! per-job session startup in the batch scheduler and the open-loop
//! serving driver clone-free: thousands of concurrent sessions share one
//! frozen rule store and each grows only its own overlay (disclosures
//! received during that negotiation). The KB is append-only, overlay
//! clause ids are globally numbered, and the overlay's running digest is
//! seeded from the base's final hasher state, so candidate order, rule
//! ids and every historical prefix fingerprint are byte-identical to the
//! unsplit representation.

use crate::literal::Literal;
use crate::rule::{Rule, RuleId};
use crate::symbol::{PeerId, Sym};
use crate::term::{IndexKey, Term};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A cheap content identity for a KB prefix: rule count plus an
/// order-sensitive digest of the rules. Two KBs with equal fingerprints
/// hold syntactically identical rule sequences (up to hash collision);
/// compiled artifacts store the fingerprint of the prefix they were built
/// from and refuse to serve a KB that no longer starts with it.
///
/// KBs are append-only (rules are never removed or edited in place), so a
/// *prefix* fingerprint match means every compiled clause is still live —
/// later appended rules just aren't compiled yet.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct KbFingerprint {
    /// Number of rules covered by the digest.
    pub rules: usize,
    /// Order-sensitive digest of those rules.
    pub digest: u64,
}

/// Where a rule in a knowledge base came from.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RuleOrigin {
    /// Defined by the owning peer itself.
    Local,
    /// Received (already signature-verified) from another peer.
    Received(PeerId),
}

/// A rule together with its provenance.
#[derive(Clone, Debug)]
pub struct StoredRule {
    pub id: RuleId,
    pub rule: Arc<Rule>,
    pub origin: RuleOrigin,
}

/// One contiguous run of rules with its clause indexes. Clause ids stored
/// in the index buckets are *global* (offset by any preceding base
/// segment), so base and overlay buckets concatenate without fixups.
#[derive(Clone, Default, Debug)]
struct KbSegment {
    rules: Vec<StoredRule>,
    index: HashMap<(Sym, usize), Vec<usize>>,
    /// (functor, first-arg key) -> clause ids with that ground first arg.
    first_arg: HashMap<(Sym, usize, IndexKey), Vec<usize>>,
    /// functor -> clause ids whose first head arg is a variable (or arity 0).
    var_headed: HashMap<(Sym, usize), Vec<usize>>,
    /// Distinct predicates *first defined in this segment*, kept sorted
    /// incrementally on insert so [`KnowledgeBase::predicates`] never
    /// re-collects and re-sorts the whole index (callers poll it per
    /// negotiation round).
    sorted_predicates: Vec<(Sym, usize)>,
    /// Running order-sensitive digest over all rules up to and including
    /// this segment, advanced on insert. An overlay's hasher starts as a
    /// clone of the frozen base's final state, so the global digest
    /// stream is unbroken across [`KnowledgeBase::freeze`].
    running_digest: crate::hash::FxHasher,
    /// `prefix_digests[k]` is the digest of the global prefix ending at
    /// this segment's rule `k`, so [`KnowledgeBase::prefix_fingerprint`]
    /// is O(1) instead of re-hashing the prefix per call (compiled-lane
    /// fit checks run it per solve).
    prefix_digests: Vec<u64>,
}

/// One peer's rule store, indexed by head predicate/arity with
/// first-argument refinement (classic Prolog clause indexing): a goal
/// whose first argument is a ground constant only visits clauses whose
/// first head argument is that constant or a variable.
///
/// See the module docs for the base/overlay copy-on-write split.
#[derive(Default, Debug)]
pub struct KnowledgeBase {
    /// Immutable shared segment produced by [`KnowledgeBase::freeze`].
    base: Option<Arc<KbSegment>>,
    /// Rules appended since the last freeze (or since creation).
    overlay: KbSegment,
}

/// Process-wide count of KB clones that had to deep-copy an unshared rule
/// store (no frozen base, non-empty overlay). Frozen KBs clone by `Arc`
/// bump and are *not* counted. Single-workload drivers (quickbench) gate
/// on deltas of this; concurrent test binaries should prefer the
/// structural [`KnowledgeBase::shares_base_with`] check instead.
static DEEP_CLONES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl Clone for KnowledgeBase {
    fn clone(&self) -> KnowledgeBase {
        if self.base.is_none() && !self.overlay.rules.is_empty() {
            DEEP_CLONES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        KnowledgeBase {
            base: self.base.clone(),
            overlay: self.overlay.clone(),
        }
    }
}

impl KnowledgeBase {
    pub fn new() -> KnowledgeBase {
        KnowledgeBase::default()
    }

    /// Process-wide number of whole-KB deep clones so far (clones of KBs
    /// with no frozen base). After a workload freezes its peer maps, the
    /// delta across its hot path should be zero.
    pub fn deep_clone_count() -> u64 {
        DEEP_CLONES.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Rules in the frozen base segment (0 if never frozen).
    fn base_len(&self) -> usize {
        self.base.as_ref().map_or(0, |b| b.rules.len())
    }

    /// Number of stored rules.
    pub fn len(&self) -> usize {
        self.base_len() + self.overlay.rules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of rules in the shared frozen base segment (0 when the KB
    /// has never been [frozen](KnowledgeBase::freeze)).
    pub fn frozen_len(&self) -> usize {
        self.base_len()
    }

    /// Do `self` and `other` share the same frozen base segment (one
    /// allocation, not two copies)? The serving driver uses this as a
    /// deterministic structural check that per-job clones were O(overlay).
    pub fn shares_base_with(&self, other: &KnowledgeBase) -> bool {
        match (&self.base, &other.base) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Fold the overlay into the frozen base. Afterwards the overlay is
    /// empty and `clone` shares the base by `Arc` — O(1) regardless of KB
    /// size. Rule ids, candidate order, iteration order and every
    /// historical prefix fingerprint are unchanged (tested). Idempotent;
    /// freezing an already-frozen KB with an empty overlay is a no-op.
    pub fn freeze(&mut self) {
        if self.overlay.rules.is_empty() && self.base.is_some() {
            return;
        }
        let overlay = std::mem::take(&mut self.overlay);
        let merged = match self.base.take() {
            None => overlay,
            Some(base) => {
                // Sole owner: reuse the allocation; otherwise copy once
                // (freeze-after-share is a cold path by construction).
                let mut m = Arc::try_unwrap(base).unwrap_or_else(|arc| (*arc).clone());
                m.rules.extend(overlay.rules);
                m.prefix_digests.extend(overlay.prefix_digests);
                m.running_digest = overlay.running_digest;
                // Overlay buckets hold global ids greater than every base
                // id, so appending keeps each bucket ascending.
                for (k, v) in overlay.index {
                    m.index.entry(k).or_default().extend(v);
                }
                for (k, v) in overlay.first_arg {
                    m.first_arg.entry(k).or_default().extend(v);
                }
                for (k, v) in overlay.var_headed {
                    m.var_headed.entry(k).or_default().extend(v);
                }
                if !overlay.sorted_predicates.is_empty() {
                    m.sorted_predicates =
                        merge_sorted_keys(&m.sorted_predicates, &overlay.sorted_predicates);
                }
                m
            }
        };
        // The fresh overlay continues the global digest stream from the
        // merged segment's final hasher state.
        self.overlay.running_digest = merged.running_digest.clone();
        self.base = Some(Arc::new(merged));
    }

    /// Add a locally defined rule.
    pub fn add_local(&mut self, rule: Rule) -> RuleId {
        self.add(rule, RuleOrigin::Local)
    }

    /// Add a rule received from `from` (signature verification is the
    /// caller's job — see `peertrust-crypto`).
    pub fn add_received(&mut self, rule: Rule, from: PeerId) -> RuleId {
        self.add(rule, RuleOrigin::Received(from))
    }

    fn add(&mut self, rule: Rule, origin: RuleOrigin) -> RuleId {
        use std::hash::{Hash, Hasher};
        let idx = self.len(); // global clause id
        let id = RuleId(u32::try_from(idx).expect("kb overflow"));
        let key = rule.head.functor();
        // Advance the running digest exactly as a fresh hasher fed the
        // whole prefix would (Arc<Rule> hashes as its pointee), so every
        // historical prefix fingerprint stays byte-identical.
        rule.hash(&mut self.overlay.running_digest);
        self.overlay
            .prefix_digests
            .push(self.overlay.running_digest.finish());
        match rule.head.args.first().and_then(Term::index_key) {
            Some(k) => self
                .overlay
                .first_arg
                .entry((key.0, key.1, k))
                .or_default()
                .push(idx),
            None => self.overlay.var_headed.entry(key).or_default().push(idx),
        }
        self.overlay.rules.push(StoredRule {
            id,
            rule: Arc::new(rule),
            origin,
        });
        let known_in_base = self
            .base
            .as_ref()
            .is_some_and(|b| b.index.contains_key(&key));
        let bucket = self.overlay.index.entry(key).or_default();
        if bucket.is_empty() && !known_in_base {
            // New predicate: keep the cached enumeration list sorted with
            // one binary-search insert instead of a full sort per query.
            if let Err(pos) = self.overlay.sorted_predicates.binary_search(&key) {
                self.overlay.sorted_predicates.insert(pos, key);
            }
        }
        bucket.push(idx);
        id
    }

    /// The rule at global clause id `idx` (caller guarantees in range).
    fn stored(&self, idx: usize) -> &StoredRule {
        match &self.base {
            Some(b) if idx < b.rules.len() => &b.rules[idx],
            Some(b) => &self.overlay.rules[idx - b.rules.len()],
            None => &self.overlay.rules[idx],
        }
    }

    /// Does the KB already contain a syntactically identical rule? Used to
    /// deduplicate credentials pushed repeatedly during a negotiation.
    pub fn contains(&self, rule: &Rule) -> bool {
        let key = rule.head.functor();
        let hit = |seg: &KbSegment| {
            seg.index
                .get(&key)
                .is_some_and(|ids| ids.iter().any(|&i| *self.stored(i).rule == *rule))
        };
        self.base.as_deref().is_some_and(hit) || hit(&self.overlay)
    }

    /// Add a received rule only if not already present; returns whether it
    /// was inserted.
    pub fn add_received_dedup(&mut self, rule: Rule, from: PeerId) -> bool {
        if self.contains(&rule) {
            false
        } else {
            self.add_received(rule, from);
            true
        }
    }

    /// Clause-id bucket for `key` in each segment, as a pair of ascending
    /// slices whose concatenation is ascending (base ids < overlay ids).
    fn index_buckets(&self, key: &(Sym, usize)) -> (&[usize], &[usize]) {
        let base = self
            .base
            .as_deref()
            .and_then(|b| b.index.get(key))
            .map_or(&[][..], Vec::as_slice);
        let over = self.overlay.index.get(key).map_or(&[][..], Vec::as_slice);
        (base, over)
    }

    /// All rules whose head could match `goal` (same predicate and arity).
    /// Authority chains are *not* filtered here; the engine unifies them.
    pub fn candidates(&self, goal: &Literal) -> impl Iterator<Item = &StoredRule> {
        let key = goal.functor();
        // First-argument refinement: a ground constant first argument
        // narrows the scan to exact-key clauses plus variable-headed ones,
        // merged back into clause (insertion) order so resolution order is
        // unchanged. Every bucket is a base slice chained with an overlay
        // slice (ids ascend across the seam); the merge only allocates
        // when *both* the exact and variable buckets are non-empty — every
        // other shape iterates the index slices in place. This sits on the
        // hottest engine path (one call per goal selection).
        let ids = match goal.args.first().and_then(Term::index_key) {
            Some(k) => {
                let fa_key = (key.0, key.1, k);
                let exact_base = self
                    .base
                    .as_deref()
                    .and_then(|b| b.first_arg.get(&fa_key))
                    .map_or(&[][..], Vec::as_slice);
                let exact_over = self
                    .overlay
                    .first_arg
                    .get(&fa_key)
                    .map_or(&[][..], Vec::as_slice);
                let vars_base = self
                    .base
                    .as_deref()
                    .and_then(|b| b.var_headed.get(&key))
                    .map_or(&[][..], Vec::as_slice);
                let vars_over = self
                    .overlay
                    .var_headed
                    .get(&key)
                    .map_or(&[][..], Vec::as_slice);
                let no_exact = exact_base.is_empty() && exact_over.is_empty();
                let no_vars = vars_base.is_empty() && vars_over.is_empty();
                match (no_exact, no_vars) {
                    (true, _) => CandidateIds::Chained(vars_base.iter().chain(vars_over)),
                    (false, true) => CandidateIds::Chained(exact_base.iter().chain(exact_over)),
                    (false, false) => CandidateIds::Owned(
                        merge_ordered((exact_base, exact_over), (vars_base, vars_over)).into_iter(),
                    ),
                }
            }
            None => {
                let (base, over) = self.index_buckets(&key);
                CandidateIds::Chained(base.iter().chain(over))
            }
        };
        ids.map(move |i| self.stored(i))
    }

    /// Iterate over every stored rule, in insertion (global id) order.
    pub fn iter(&self) -> impl Iterator<Item = &StoredRule> {
        self.base
            .as_deref()
            .map_or(&[][..], |b| b.rules.as_slice())
            .iter()
            .chain(self.overlay.rules.iter())
    }

    /// Fetch by id.
    pub fn get(&self, id: RuleId) -> Option<&StoredRule> {
        let idx = id.0 as usize;
        if idx < self.len() {
            Some(self.stored(idx))
        } else {
            None
        }
    }

    /// Iterate over the signed bodyless ground rules — the peer's
    /// credentials (candidates for disclosure during negotiation).
    pub fn credentials(&self) -> impl Iterator<Item = &StoredRule> {
        self.iter().filter(|r| r.rule.is_credential())
    }

    /// Iterate over locally defined rules only.
    pub fn local_rules(&self) -> impl Iterator<Item = &StoredRule> {
        self.iter().filter(|r| r.origin == RuleOrigin::Local)
    }

    /// Distinct predicates (with arity) defined in this KB, in sorted
    /// order. Served from per-segment lists maintained on insert (disjoint
    /// by construction), not recollected from the index per call.
    pub fn predicates(&self) -> Vec<(Sym, usize)> {
        match self.base.as_deref() {
            None => self.overlay.sorted_predicates.clone(),
            Some(b) if self.overlay.sorted_predicates.is_empty() => b.sorted_predicates.clone(),
            Some(b) => merge_sorted_keys(&b.sorted_predicates, &self.overlay.sorted_predicates),
        }
    }

    /// Fingerprint of the whole KB. O(1): the digest is maintained
    /// incrementally on insert, so per-solve fit checks in
    /// `peertrust-engine`'s `compile` module cost a single array read.
    pub fn fingerprint(&self) -> KbFingerprint {
        self.prefix_fingerprint(self.len())
            .expect("full-length prefix always exists")
    }

    /// Fingerprint of the first `rules` rules, or `None` if the KB is
    /// shorter than that. A compiled artifact built from an earlier
    /// snapshot of this KB is still valid iff the snapshot's fingerprint
    /// equals `prefix_fingerprint(snapshot.rules)` — appended rules never
    /// invalidate compiled clauses, only rewriting history does (which
    /// the append-only API makes impossible, but a *different* KB handed
    /// to the same solver must be detected).
    pub fn prefix_fingerprint(&self, rules: usize) -> Option<KbFingerprint> {
        use std::hash::Hasher;
        // O(1): served from the digests maintained in `add` (the overlay's
        // digests already cover the global prefix — its hasher continued
        // from the base's final state), so the compiled lane can
        // re-validate its fit on every solve for free.
        let digest = match rules.checked_sub(1) {
            None => crate::hash::FxHasher::default().finish(),
            Some(i) => {
                let base_len = self.base_len();
                if i < base_len {
                    self.base.as_ref()?.prefix_digests[i]
                } else {
                    *self.overlay.prefix_digests.get(i - base_len)?
                }
            }
        };
        Some(KbFingerprint { rules, digest })
    }
}

/// Clause ids from borrowed index slices (base chained with overlay, no
/// allocation) or an owned merge of the exact and variable buckets.
enum CandidateIds<'a> {
    Chained(std::iter::Chain<std::slice::Iter<'a, usize>, std::slice::Iter<'a, usize>>),
    Owned(std::vec::IntoIter<usize>),
}

impl Iterator for CandidateIds<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            CandidateIds::Chained(it) => it.next().copied(),
            CandidateIds::Owned(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            CandidateIds::Chained(it) => it.size_hint(),
            CandidateIds::Owned(it) => it.size_hint(),
        }
    }
}

/// Merge the exact-key and variable-headed buckets — each a pair of
/// ascending slices whose concatenation is ascending — back into one
/// ascending (insertion-order) clause-id list.
fn merge_ordered(exact: (&[usize], &[usize]), vars: (&[usize], &[usize])) -> Vec<usize> {
    let mut merged =
        Vec::with_capacity(exact.0.len() + exact.1.len() + vars.0.len() + vars.1.len());
    let mut e = exact.0.iter().chain(exact.1).peekable();
    let mut v = vars.0.iter().chain(vars.1).peekable();
    loop {
        match (e.peek(), v.peek()) {
            (Some(&&a), Some(&&b)) => {
                if a < b {
                    merged.push(a);
                    e.next();
                } else {
                    merged.push(b);
                    v.next();
                }
            }
            (Some(&&a), None) => {
                merged.push(a);
                e.next();
            }
            (None, Some(&&b)) => {
                merged.push(b);
                v.next();
            }
            (None, None) => break,
        }
    }
    merged
}

/// Merge two sorted, disjoint predicate lists into one sorted list.
fn merge_sorted_keys(a: &[(Sym, usize)], b: &[(Sym, usize)]) -> Vec<(Sym, usize)> {
    let mut merged = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            merged.push(a[i]);
            i += 1;
        } else {
            merged.push(b[j]);
            j += 1;
        }
    }
    merged.extend_from_slice(&a[i..]);
    merged.extend_from_slice(&b[j..]);
    merged
}

impl fmt::Display for KnowledgeBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in self.iter() {
            writeln!(f, "{}", r.rule)?;
        }
        Ok(())
    }
}

impl FromIterator<Rule> for KnowledgeBase {
    fn from_iter<T: IntoIterator<Item = Rule>>(iter: T) -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        for r in iter {
            kb.add_local(r);
        }
        kb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn fact(pred: &str, arg: &str) -> Rule {
        Rule::fact(Literal::new(pred, vec![Term::atom(arg)]))
    }

    #[test]
    fn add_and_lookup_by_functor() {
        let mut kb = KnowledgeBase::new();
        kb.add_local(fact("freeCourse", "cs101"));
        kb.add_local(fact("freeCourse", "cs102"));
        kb.add_local(fact("price", "cs411"));

        let goal = Literal::new("freeCourse", vec![Term::var("C")]);
        assert_eq!(kb.candidates(&goal).count(), 2);
        let goal2 = Literal::new("price", vec![Term::var("C")]);
        assert_eq!(kb.candidates(&goal2).count(), 1);
        let goal3 = Literal::new("missing", vec![Term::var("C")]);
        assert_eq!(kb.candidates(&goal3).count(), 0);
    }

    #[test]
    fn arity_distinguishes_candidates() {
        let mut kb = KnowledgeBase::new();
        kb.add_local(Rule::fact(Literal::new("p", vec![Term::int(1)])));
        kb.add_local(Rule::fact(Literal::new(
            "p",
            vec![Term::int(1), Term::int(2)],
        )));
        let unary = Literal::new("p", vec![Term::var("X")]);
        assert_eq!(kb.candidates(&unary).count(), 1);
    }

    #[test]
    fn provenance_tracked() {
        let mut kb = KnowledgeBase::new();
        kb.add_local(fact("a", "x"));
        kb.add_received(fact("b", "y"), PeerId::new("UIUC"));
        assert_eq!(kb.local_rules().count(), 1);
        assert_eq!(kb.len(), 2);
        let received = kb
            .iter()
            .find(|r| r.origin == RuleOrigin::Received(PeerId::new("UIUC")))
            .unwrap();
        assert_eq!(received.rule.head.pred.as_str(), "b");
    }

    #[test]
    fn dedup_insertion() {
        let mut kb = KnowledgeBase::new();
        let cred = Rule::fact(Literal::new("student", vec![Term::str("Alice")])).signed_by("UIUC");
        assert!(kb.add_received_dedup(cred.clone(), PeerId::new("Alice")));
        assert!(!kb.add_received_dedup(cred, PeerId::new("Alice")));
        assert_eq!(kb.len(), 1);
    }

    #[test]
    fn credentials_filters_signed_ground_facts() {
        let mut kb = KnowledgeBase::new();
        kb.add_local(fact("plain", "x")); // unsigned
        kb.add_local(
            Rule::fact(Literal::new("student", vec![Term::str("Alice")])).signed_by("UIUC"),
        );
        kb.add_local(
            Rule::horn(
                Literal::new("d", vec![Term::var("X")]),
                vec![Literal::new("e", vec![Term::var("X")])],
            )
            .signed_by("UIUC"),
        ); // signed but not a fact
        assert_eq!(kb.credentials().count(), 1);
    }

    #[test]
    fn get_by_id_roundtrips() {
        let mut kb = KnowledgeBase::new();
        let id = kb.add_local(fact("a", "x"));
        assert_eq!(kb.get(id).unwrap().rule.head.pred.as_str(), "a");
        assert!(kb.get(RuleId(99)).is_none());
    }

    #[test]
    fn from_iterator_builds_local_kb() {
        let kb: KnowledgeBase = vec![fact("a", "x"), fact("b", "y")].into_iter().collect();
        assert_eq!(kb.len(), 2);
        assert_eq!(kb.local_rules().count(), 2);
    }

    #[test]
    fn predicates_sorted_unique() {
        let mut kb = KnowledgeBase::new();
        kb.add_local(fact("b", "x"));
        kb.add_local(fact("a", "y"));
        kb.add_local(fact("a", "z"));
        let preds = kb.predicates();
        assert_eq!(preds.len(), 2);
    }

    #[test]
    fn predicate_enumeration_is_insertion_order_independent() {
        // The cached sorted list must enumerate identically no matter
        // what order predicates were first inserted in.
        let names = ["delta", "alpha", "echo", "bravo", "charlie"];
        let mut forward = KnowledgeBase::new();
        for n in names {
            forward.add_local(fact(n, "x"));
        }
        let mut backward = KnowledgeBase::new();
        for n in names.iter().rev() {
            backward.add_local(fact(n, "x"));
            backward.add_local(fact(n, "y")); // duplicates must not re-insert
        }
        assert_eq!(forward.predicates(), backward.predicates());
        let mut expected = forward.predicates();
        expected.sort();
        assert_eq!(forward.predicates(), expected, "list is sorted");
    }

    /// Build the same KB twice: once flat, once frozen at every step of
    /// `freeze_at`. Used to pin freeze() as observationally invisible.
    fn flat_and_frozen(names: &[&str], freeze_at: &[usize]) -> (KnowledgeBase, KnowledgeBase) {
        let mut flat = KnowledgeBase::new();
        let mut cow = KnowledgeBase::new();
        for (i, n) in names.iter().enumerate() {
            if freeze_at.contains(&i) {
                cow.freeze();
            }
            flat.add_local(fact(n, "x"));
            cow.add_local(fact(n, "x"));
        }
        (flat, cow)
    }

    #[test]
    fn freeze_is_observationally_invisible() {
        let names = ["p", "q", "p", "r", "q", "s"];
        let (flat, mut cow) = flat_and_frozen(&names, &[0, 2, 3, 5]);
        cow.freeze();
        cow.freeze(); // idempotent
        assert_eq!(cow.frozen_len(), names.len());
        assert_eq!(flat.len(), cow.len());
        assert_eq!(flat.fingerprint(), cow.fingerprint());
        for n in 0..=names.len() {
            assert_eq!(flat.prefix_fingerprint(n), cow.prefix_fingerprint(n));
        }
        assert_eq!(flat.prefix_fingerprint(99), None);
        assert_eq!(cow.prefix_fingerprint(99), None);
        assert_eq!(flat.predicates(), cow.predicates());
        assert_eq!(flat.to_string(), cow.to_string());
        for n in ["p", "q", "r", "s", "missing"] {
            let goal = Literal::new(n, vec![Term::atom("x")]);
            let a: Vec<u32> = flat.candidates(&goal).map(|r| r.id.0).collect();
            let b: Vec<u32> = cow.candidates(&goal).map(|r| r.id.0).collect();
            assert_eq!(a, b, "candidates for {n}");
        }
        for i in 0..names.len() as u32 {
            assert_eq!(
                flat.get(RuleId(i)).unwrap().rule,
                cow.get(RuleId(i)).unwrap().rule
            );
        }
        assert!(cow.contains(&fact("r", "x")));
        assert!(!cow.contains(&fact("r", "y")));
    }

    #[test]
    fn appends_after_freeze_continue_the_digest_stream() {
        let (mut flat, mut cow) = flat_and_frozen(&["p", "q"], &[]);
        cow.freeze();
        flat.add_local(fact("r", "x"));
        cow.add_local(fact("r", "x"));
        assert_eq!(flat.fingerprint(), cow.fingerprint());
        assert_eq!(flat.prefix_fingerprint(2), cow.prefix_fingerprint(2));
        // Dedup must see both segments.
        assert!(!cow.add_received_dedup(fact("p", "x"), PeerId::new("A")));
        assert!(cow.add_received_dedup(fact("z", "x"), PeerId::new("A")));
    }

    #[test]
    fn clones_of_frozen_kbs_share_the_base() {
        let mut kb = KnowledgeBase::new();
        for n in ["p", "q", "r"] {
            kb.add_local(fact(n, "x"));
        }
        let unshared = kb.clone();
        assert!(!unshared.shares_base_with(&kb), "no base before freeze");
        kb.freeze();
        let before = KnowledgeBase::deep_clone_count();
        let shared = kb.clone();
        assert!(shared.shares_base_with(&kb));
        assert_eq!(
            KnowledgeBase::deep_clone_count(),
            before,
            "frozen clone is not a deep clone"
        );
        // Appends to the clone's overlay do not disturb the original.
        let mut grown = kb.clone();
        grown.add_local(fact("s", "x"));
        assert_eq!(grown.len(), 4);
        assert_eq!(kb.len(), 3);
        assert!(grown.shares_base_with(&kb));
    }

    #[test]
    fn deep_clone_counter_counts_unshared_clones() {
        let mut kb = KnowledgeBase::new();
        kb.add_local(fact("p", "x"));
        let before = KnowledgeBase::deep_clone_count();
        let _c = kb.clone();
        assert!(
            KnowledgeBase::deep_clone_count() > before,
            "unfrozen non-empty clone must count"
        );
    }
}

#[cfg(test)]
mod first_arg_tests {
    use super::*;
    use crate::term::Term;

    #[test]
    fn ground_first_arg_narrows_candidates() {
        let mut kb = KnowledgeBase::new();
        for i in 0..100 {
            kb.add_local(Rule::fact(Literal::new(
                "fact",
                vec![Term::int(i), Term::int(i * 2)],
            )));
        }
        // A variable-headed rule matches any first argument.
        kb.add_local(Rule::horn(
            Literal::new("fact", vec![Term::var("X"), Term::var("Y")]),
            vec![Literal::new(
                "derived",
                vec![Term::var("X"), Term::var("Y")],
            )],
        ));

        let goal = Literal::new("fact", vec![Term::int(42), Term::var("Y")]);
        let hits: Vec<_> = kb.candidates(&goal).collect();
        assert_eq!(hits.len(), 2, "exact fact + variable-headed rule");

        let open_goal = Literal::new("fact", vec![Term::var("A"), Term::var("B")]);
        assert_eq!(kb.candidates(&open_goal).count(), 101);
    }

    #[test]
    fn candidate_order_matches_insertion_order() {
        let mut kb = KnowledgeBase::new();
        kb.add_local(Rule::fact(Literal::new("p", vec![Term::var("X")]))); // id 0
        kb.add_local(Rule::fact(Literal::new("p", vec![Term::atom("a")]))); // id 1
        kb.add_local(Rule::fact(Literal::new("p", vec![Term::var("Y")]))); // id 2
        kb.add_local(Rule::fact(Literal::new("p", vec![Term::atom("a")]))); // id 3
        let goal = Literal::new("p", vec![Term::atom("a")]);
        let ids: Vec<u32> = kb.candidates(&goal).map(|sr| sr.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3], "merged in clause order");
    }

    #[test]
    fn candidate_order_is_preserved_across_the_freeze_seam() {
        // Exact/variable clauses interleave across the base/overlay
        // boundary; the 4-way merge must still yield insertion order.
        let mut kb = KnowledgeBase::new();
        kb.add_local(Rule::fact(Literal::new("p", vec![Term::var("X")]))); // id 0
        kb.add_local(Rule::fact(Literal::new("p", vec![Term::atom("a")]))); // id 1
        kb.freeze();
        kb.add_local(Rule::fact(Literal::new("p", vec![Term::var("Y")]))); // id 2
        kb.add_local(Rule::fact(Literal::new("p", vec![Term::atom("a")]))); // id 3
        let goal = Literal::new("p", vec![Term::atom("a")]);
        let ids: Vec<u32> = kb.candidates(&goal).map(|sr| sr.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3], "merged across the seam");
        // One-sided shapes chain without allocating.
        let var_goal = Literal::new("p", vec![Term::var("Z")]);
        assert_eq!(kb.candidates(&var_goal).count(), 4);
    }

    #[test]
    fn different_constant_kinds_do_not_collide() {
        let mut kb = KnowledgeBase::new();
        kb.add_local(Rule::fact(Literal::new("p", vec![Term::atom("x")])));
        kb.add_local(Rule::fact(Literal::new("p", vec![Term::str("x")])));
        kb.add_local(Rule::fact(Literal::new("p", vec![Term::int(1)])));
        kb.add_local(Rule::fact(Literal::new(
            "p",
            vec![Term::compound("x", vec![Term::int(1)])],
        )));
        assert_eq!(
            kb.candidates(&Literal::new("p", vec![Term::atom("x")]))
                .count(),
            1
        );
        assert_eq!(
            kb.candidates(&Literal::new("p", vec![Term::str("x")]))
                .count(),
            1
        );
        assert_eq!(
            kb.candidates(&Literal::new("p", vec![Term::int(1)]))
                .count(),
            1
        );
        // Compound goals match by functor (over-approximation refined by
        // unification later).
        assert_eq!(
            kb.candidates(&Literal::new(
                "p",
                vec![Term::compound("x", vec![Term::int(2)])]
            ))
            .count(),
            1
        );
    }

    #[test]
    fn fingerprint_detects_divergence_and_tolerates_appends() {
        let mk = |n: &str| Rule::fact(Literal::new(n, vec![Term::atom("x")]));
        let mut a = KnowledgeBase::new();
        a.add_local(mk("p"));
        a.add_local(mk("q"));
        let snap = a.fingerprint();
        assert_eq!(snap.rules, 2);

        // Appending keeps the prefix fingerprint stable.
        a.add_local(mk("r"));
        assert_eq!(a.prefix_fingerprint(snap.rules), Some(snap));
        assert_ne!(a.fingerprint(), snap);

        // A different KB with the same length diverges.
        let mut b = KnowledgeBase::new();
        b.add_local(mk("p"));
        b.add_local(mk("DIFFERENT"));
        assert_ne!(b.prefix_fingerprint(2), Some(snap));

        // Same rules in the same order agree.
        let mut c = KnowledgeBase::new();
        c.add_local(mk("p"));
        c.add_local(mk("q"));
        assert_eq!(c.fingerprint(), snap);

        // A prefix longer than the KB does not exist.
        assert_eq!(c.prefix_fingerprint(3), None);

        // Freezing does not disturb any of the above.
        c.freeze();
        assert_eq!(c.fingerprint(), snap);
        assert_eq!(c.prefix_fingerprint(3), None);
    }

    #[test]
    fn incremental_prefix_digests_match_fresh_rehash() {
        // The O(1) fingerprints served from `prefix_digests` must be
        // byte-identical to hashing the prefix from scratch — compiled
        // artifacts persist these digests across KB growth.
        use std::hash::{Hash, Hasher};
        let mk = |n: &str| Rule::fact(Literal::new(n, vec![Term::atom("x")]));
        let mut kb = KnowledgeBase::new();
        for (i, n) in ["p", "q", "r", "s"].into_iter().enumerate() {
            if i == 2 {
                kb.freeze(); // digests must be seamless across the split
            }
            kb.add_local(mk(n));
        }
        for rules in 0..=4 {
            let mut h = crate::hash::FxHasher::default();
            for sr in kb.iter().take(rules) {
                sr.rule.hash(&mut h);
            }
            assert_eq!(
                kb.prefix_fingerprint(rules),
                Some(KbFingerprint {
                    rules,
                    digest: h.finish()
                })
            );
        }
        assert_eq!(kb.prefix_fingerprint(5), None);
    }

    #[test]
    fn zero_arity_predicates_use_var_bucket() {
        let mut kb = KnowledgeBase::new();
        kb.add_local(Rule::fact(Literal::new("ready", vec![])));
        assert_eq!(kb.candidates(&Literal::new("ready", vec![])).count(), 1);
    }
}
