//! Per-peer knowledge bases.
//!
//! Each peer stores its *local* rules (rules it defined, including its
//! policies) plus *cached foreign* rules — signed rules received from other
//! peers during earlier interactions (paper §3.1: "A peer may also have
//! copies of rules defined by other peers"). Rules are indexed by
//! predicate/arity for fast clause selection during resolution.

use crate::literal::Literal;
use crate::rule::{Rule, RuleId};
use crate::symbol::{PeerId, Sym};
use crate::term::{IndexKey, Term};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A cheap content identity for a KB prefix: rule count plus an
/// order-sensitive digest of the rules. Two KBs with equal fingerprints
/// hold syntactically identical rule sequences (up to hash collision);
/// compiled artifacts store the fingerprint of the prefix they were built
/// from and refuse to serve a KB that no longer starts with it.
///
/// KBs are append-only (rules are never removed or edited in place), so a
/// *prefix* fingerprint match means every compiled clause is still live —
/// later appended rules just aren't compiled yet.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct KbFingerprint {
    /// Number of rules covered by the digest.
    pub rules: usize,
    /// Order-sensitive digest of those rules.
    pub digest: u64,
}

/// Where a rule in a knowledge base came from.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RuleOrigin {
    /// Defined by the owning peer itself.
    Local,
    /// Received (already signature-verified) from another peer.
    Received(PeerId),
}

/// A rule together with its provenance.
#[derive(Clone, Debug)]
pub struct StoredRule {
    pub id: RuleId,
    pub rule: Arc<Rule>,
    pub origin: RuleOrigin,
}

/// One peer's rule store, indexed by head predicate/arity with
/// first-argument refinement (classic Prolog clause indexing): a goal
/// whose first argument is a ground constant only visits clauses whose
/// first head argument is that constant or a variable.
#[derive(Clone, Default, Debug)]
pub struct KnowledgeBase {
    rules: Vec<StoredRule>,
    index: HashMap<(Sym, usize), Vec<usize>>,
    /// (functor, first-arg key) -> clause ids with that ground first arg.
    first_arg: HashMap<(Sym, usize, IndexKey), Vec<usize>>,
    /// functor -> clause ids whose first head arg is a variable (or arity 0).
    var_headed: HashMap<(Sym, usize), Vec<usize>>,
    /// Distinct predicates, kept sorted incrementally on insert so
    /// [`KnowledgeBase::predicates`] never re-collects and re-sorts the
    /// whole index (callers poll it per negotiation round).
    sorted_predicates: Vec<(Sym, usize)>,
    /// Running order-sensitive digest over all rules, advanced on insert.
    running_digest: crate::hash::FxHasher,
    /// `prefix_digests[n-1]` is the digest of the first `n` rules, so
    /// [`KnowledgeBase::prefix_fingerprint`] is O(1) instead of re-hashing
    /// the prefix per call (compiled-lane fit checks run it per solve).
    prefix_digests: Vec<u64>,
}

impl KnowledgeBase {
    pub fn new() -> KnowledgeBase {
        KnowledgeBase::default()
    }

    /// Number of stored rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Add a locally defined rule.
    pub fn add_local(&mut self, rule: Rule) -> RuleId {
        self.add(rule, RuleOrigin::Local)
    }

    /// Add a rule received from `from` (signature verification is the
    /// caller's job — see `peertrust-crypto`).
    pub fn add_received(&mut self, rule: Rule, from: PeerId) -> RuleId {
        self.add(rule, RuleOrigin::Received(from))
    }

    fn add(&mut self, rule: Rule, origin: RuleOrigin) -> RuleId {
        use std::hash::{Hash, Hasher};
        let id = RuleId(u32::try_from(self.rules.len()).expect("kb overflow"));
        let key = rule.head.functor();
        let idx = self.rules.len();
        // Advance the running digest exactly as a fresh hasher fed the
        // whole prefix would (Arc<Rule> hashes as its pointee), so every
        // historical prefix fingerprint stays byte-identical.
        rule.hash(&mut self.running_digest);
        self.prefix_digests.push(self.running_digest.finish());
        match rule.head.args.first().and_then(Term::index_key) {
            Some(k) => self
                .first_arg
                .entry((key.0, key.1, k))
                .or_default()
                .push(idx),
            None => self.var_headed.entry(key).or_default().push(idx),
        }
        self.rules.push(StoredRule {
            id,
            rule: Arc::new(rule),
            origin,
        });
        let bucket = self.index.entry(key).or_default();
        if bucket.is_empty() {
            // New predicate: keep the cached enumeration list sorted with
            // one binary-search insert instead of a full sort per query.
            if let Err(pos) = self.sorted_predicates.binary_search(&key) {
                self.sorted_predicates.insert(pos, key);
            }
        }
        bucket.push(idx);
        id
    }

    /// Does the KB already contain a syntactically identical rule? Used to
    /// deduplicate credentials pushed repeatedly during a negotiation.
    pub fn contains(&self, rule: &Rule) -> bool {
        self.index
            .get(&rule.head.functor())
            .is_some_and(|ids| ids.iter().any(|&i| *self.rules[i].rule == *rule))
    }

    /// Add a received rule only if not already present; returns whether it
    /// was inserted.
    pub fn add_received_dedup(&mut self, rule: Rule, from: PeerId) -> bool {
        if self.contains(&rule) {
            false
        } else {
            self.add_received(rule, from);
            true
        }
    }

    /// All rules whose head could match `goal` (same predicate and arity).
    /// Authority chains are *not* filtered here; the engine unifies them.
    pub fn candidates(&self, goal: &Literal) -> impl Iterator<Item = &StoredRule> {
        let key = goal.functor();
        // First-argument refinement: a ground constant first argument
        // narrows the scan to exact-key clauses plus variable-headed ones,
        // merged back into clause (insertion) order so resolution order is
        // unchanged. The merge only allocates when *both* buckets are
        // non-empty; every other shape iterates the index slice in place —
        // this sits on the hottest engine path (one call per goal
        // selection).
        let ids = match goal.args.first().and_then(Term::index_key) {
            Some(k) => {
                let exact = self
                    .first_arg
                    .get(&(key.0, key.1, k))
                    .map(Vec::as_slice)
                    .unwrap_or(&[]);
                let vars = self.var_headed.get(&key).map(Vec::as_slice).unwrap_or(&[]);
                match (exact.is_empty(), vars.is_empty()) {
                    (true, _) => CandidateIds::Borrowed(vars.iter()),
                    (false, true) => CandidateIds::Borrowed(exact.iter()),
                    (false, false) => CandidateIds::Owned(merge_ordered(exact, vars).into_iter()),
                }
            }
            None => CandidateIds::Borrowed(
                self.index
                    .get(&key)
                    .map(Vec::as_slice)
                    .unwrap_or(&[])
                    .iter(),
            ),
        };
        ids.map(move |i| &self.rules[i])
    }

    /// Iterate over every stored rule.
    pub fn iter(&self) -> impl Iterator<Item = &StoredRule> {
        self.rules.iter()
    }

    /// Fetch by id.
    pub fn get(&self, id: RuleId) -> Option<&StoredRule> {
        self.rules.get(id.0 as usize)
    }

    /// Iterate over the signed bodyless ground rules — the peer's
    /// credentials (candidates for disclosure during negotiation).
    pub fn credentials(&self) -> impl Iterator<Item = &StoredRule> {
        self.rules.iter().filter(|r| r.rule.is_credential())
    }

    /// Iterate over locally defined rules only.
    pub fn local_rules(&self) -> impl Iterator<Item = &StoredRule> {
        self.rules.iter().filter(|r| r.origin == RuleOrigin::Local)
    }

    /// Distinct predicates (with arity) defined in this KB, in sorted
    /// order. O(1): served from a list maintained on insert, not
    /// recollected from the index per call.
    pub fn predicates(&self) -> Vec<(Sym, usize)> {
        self.sorted_predicates.clone()
    }

    /// Fingerprint of the whole KB. O(1): the digest is maintained
    /// incrementally on insert, so per-solve fit checks in
    /// `peertrust-engine`'s `compile` module cost a single array read.
    pub fn fingerprint(&self) -> KbFingerprint {
        self.prefix_fingerprint(self.rules.len())
            .expect("full-length prefix always exists")
    }

    /// Fingerprint of the first `rules` rules, or `None` if the KB is
    /// shorter than that. A compiled artifact built from an earlier
    /// snapshot of this KB is still valid iff the snapshot's fingerprint
    /// equals `prefix_fingerprint(snapshot.rules)` — appended rules never
    /// invalidate compiled clauses, only rewriting history does (which
    /// the append-only API makes impossible, but a *different* KB handed
    /// to the same solver must be detected).
    pub fn prefix_fingerprint(&self, rules: usize) -> Option<KbFingerprint> {
        use std::hash::Hasher;
        // O(1): served from the digests maintained in `add`, so the
        // compiled lane can re-validate its fit on every solve for free.
        let digest = match rules.checked_sub(1) {
            None => crate::hash::FxHasher::default().finish(),
            Some(i) => *self.prefix_digests.get(i)?,
        };
        Some(KbFingerprint { rules, digest })
    }
}

/// Clause ids from either a borrowed index slice (no allocation) or an
/// owned merge of two buckets.
enum CandidateIds<'a> {
    Borrowed(std::slice::Iter<'a, usize>),
    Owned(std::vec::IntoIter<usize>),
}

impl Iterator for CandidateIds<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            CandidateIds::Borrowed(it) => it.next().copied(),
            CandidateIds::Owned(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            CandidateIds::Borrowed(it) => it.size_hint(),
            CandidateIds::Owned(it) => it.size_hint(),
        }
    }
}

/// Merge two ascending clause-id lists, preserving insertion order.
fn merge_ordered(exact: &[usize], vars: &[usize]) -> Vec<usize> {
    let mut merged = Vec::with_capacity(exact.len() + vars.len());
    let (mut i, mut j) = (0, 0);
    while i < exact.len() || j < vars.len() {
        match (exact.get(i), vars.get(j)) {
            (Some(&a), Some(&b)) => {
                if a < b {
                    merged.push(a);
                    i += 1;
                } else {
                    merged.push(b);
                    j += 1;
                }
            }
            (Some(&a), None) => {
                merged.push(a);
                i += 1;
            }
            (None, Some(&b)) => {
                merged.push(b);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    merged
}

impl fmt::Display for KnowledgeBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{}", r.rule)?;
        }
        Ok(())
    }
}

impl FromIterator<Rule> for KnowledgeBase {
    fn from_iter<T: IntoIterator<Item = Rule>>(iter: T) -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        for r in iter {
            kb.add_local(r);
        }
        kb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn fact(pred: &str, arg: &str) -> Rule {
        Rule::fact(Literal::new(pred, vec![Term::atom(arg)]))
    }

    #[test]
    fn add_and_lookup_by_functor() {
        let mut kb = KnowledgeBase::new();
        kb.add_local(fact("freeCourse", "cs101"));
        kb.add_local(fact("freeCourse", "cs102"));
        kb.add_local(fact("price", "cs411"));

        let goal = Literal::new("freeCourse", vec![Term::var("C")]);
        assert_eq!(kb.candidates(&goal).count(), 2);
        let goal2 = Literal::new("price", vec![Term::var("C")]);
        assert_eq!(kb.candidates(&goal2).count(), 1);
        let goal3 = Literal::new("missing", vec![Term::var("C")]);
        assert_eq!(kb.candidates(&goal3).count(), 0);
    }

    #[test]
    fn arity_distinguishes_candidates() {
        let mut kb = KnowledgeBase::new();
        kb.add_local(Rule::fact(Literal::new("p", vec![Term::int(1)])));
        kb.add_local(Rule::fact(Literal::new(
            "p",
            vec![Term::int(1), Term::int(2)],
        )));
        let unary = Literal::new("p", vec![Term::var("X")]);
        assert_eq!(kb.candidates(&unary).count(), 1);
    }

    #[test]
    fn provenance_tracked() {
        let mut kb = KnowledgeBase::new();
        kb.add_local(fact("a", "x"));
        kb.add_received(fact("b", "y"), PeerId::new("UIUC"));
        assert_eq!(kb.local_rules().count(), 1);
        assert_eq!(kb.len(), 2);
        let received = kb
            .iter()
            .find(|r| r.origin == RuleOrigin::Received(PeerId::new("UIUC")))
            .unwrap();
        assert_eq!(received.rule.head.pred.as_str(), "b");
    }

    #[test]
    fn dedup_insertion() {
        let mut kb = KnowledgeBase::new();
        let cred = Rule::fact(Literal::new("student", vec![Term::str("Alice")])).signed_by("UIUC");
        assert!(kb.add_received_dedup(cred.clone(), PeerId::new("Alice")));
        assert!(!kb.add_received_dedup(cred, PeerId::new("Alice")));
        assert_eq!(kb.len(), 1);
    }

    #[test]
    fn credentials_filters_signed_ground_facts() {
        let mut kb = KnowledgeBase::new();
        kb.add_local(fact("plain", "x")); // unsigned
        kb.add_local(
            Rule::fact(Literal::new("student", vec![Term::str("Alice")])).signed_by("UIUC"),
        );
        kb.add_local(
            Rule::horn(
                Literal::new("d", vec![Term::var("X")]),
                vec![Literal::new("e", vec![Term::var("X")])],
            )
            .signed_by("UIUC"),
        ); // signed but not a fact
        assert_eq!(kb.credentials().count(), 1);
    }

    #[test]
    fn get_by_id_roundtrips() {
        let mut kb = KnowledgeBase::new();
        let id = kb.add_local(fact("a", "x"));
        assert_eq!(kb.get(id).unwrap().rule.head.pred.as_str(), "a");
        assert!(kb.get(RuleId(99)).is_none());
    }

    #[test]
    fn from_iterator_builds_local_kb() {
        let kb: KnowledgeBase = vec![fact("a", "x"), fact("b", "y")].into_iter().collect();
        assert_eq!(kb.len(), 2);
        assert_eq!(kb.local_rules().count(), 2);
    }

    #[test]
    fn predicates_sorted_unique() {
        let mut kb = KnowledgeBase::new();
        kb.add_local(fact("b", "x"));
        kb.add_local(fact("a", "y"));
        kb.add_local(fact("a", "z"));
        let preds = kb.predicates();
        assert_eq!(preds.len(), 2);
    }

    #[test]
    fn predicate_enumeration_is_insertion_order_independent() {
        // The cached sorted list must enumerate identically no matter
        // what order predicates were first inserted in.
        let names = ["delta", "alpha", "echo", "bravo", "charlie"];
        let mut forward = KnowledgeBase::new();
        for n in names {
            forward.add_local(fact(n, "x"));
        }
        let mut backward = KnowledgeBase::new();
        for n in names.iter().rev() {
            backward.add_local(fact(n, "x"));
            backward.add_local(fact(n, "y")); // duplicates must not re-insert
        }
        assert_eq!(forward.predicates(), backward.predicates());
        let mut expected = forward.predicates();
        expected.sort();
        assert_eq!(forward.predicates(), expected, "list is sorted");
    }
}

#[cfg(test)]
mod first_arg_tests {
    use super::*;
    use crate::term::Term;

    #[test]
    fn ground_first_arg_narrows_candidates() {
        let mut kb = KnowledgeBase::new();
        for i in 0..100 {
            kb.add_local(Rule::fact(Literal::new(
                "fact",
                vec![Term::int(i), Term::int(i * 2)],
            )));
        }
        // A variable-headed rule matches any first argument.
        kb.add_local(Rule::horn(
            Literal::new("fact", vec![Term::var("X"), Term::var("Y")]),
            vec![Literal::new(
                "derived",
                vec![Term::var("X"), Term::var("Y")],
            )],
        ));

        let goal = Literal::new("fact", vec![Term::int(42), Term::var("Y")]);
        let hits: Vec<_> = kb.candidates(&goal).collect();
        assert_eq!(hits.len(), 2, "exact fact + variable-headed rule");

        let open_goal = Literal::new("fact", vec![Term::var("A"), Term::var("B")]);
        assert_eq!(kb.candidates(&open_goal).count(), 101);
    }

    #[test]
    fn candidate_order_matches_insertion_order() {
        let mut kb = KnowledgeBase::new();
        kb.add_local(Rule::fact(Literal::new("p", vec![Term::var("X")]))); // id 0
        kb.add_local(Rule::fact(Literal::new("p", vec![Term::atom("a")]))); // id 1
        kb.add_local(Rule::fact(Literal::new("p", vec![Term::var("Y")]))); // id 2
        kb.add_local(Rule::fact(Literal::new("p", vec![Term::atom("a")]))); // id 3
        let goal = Literal::new("p", vec![Term::atom("a")]);
        let ids: Vec<u32> = kb.candidates(&goal).map(|sr| sr.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3], "merged in clause order");
    }

    #[test]
    fn different_constant_kinds_do_not_collide() {
        let mut kb = KnowledgeBase::new();
        kb.add_local(Rule::fact(Literal::new("p", vec![Term::atom("x")])));
        kb.add_local(Rule::fact(Literal::new("p", vec![Term::str("x")])));
        kb.add_local(Rule::fact(Literal::new("p", vec![Term::int(1)])));
        kb.add_local(Rule::fact(Literal::new(
            "p",
            vec![Term::compound("x", vec![Term::int(1)])],
        )));
        assert_eq!(
            kb.candidates(&Literal::new("p", vec![Term::atom("x")]))
                .count(),
            1
        );
        assert_eq!(
            kb.candidates(&Literal::new("p", vec![Term::str("x")]))
                .count(),
            1
        );
        assert_eq!(
            kb.candidates(&Literal::new("p", vec![Term::int(1)]))
                .count(),
            1
        );
        // Compound goals match by functor (over-approximation refined by
        // unification later).
        assert_eq!(
            kb.candidates(&Literal::new(
                "p",
                vec![Term::compound("x", vec![Term::int(2)])]
            ))
            .count(),
            1
        );
    }

    #[test]
    fn fingerprint_detects_divergence_and_tolerates_appends() {
        let mk = |n: &str| Rule::fact(Literal::new(n, vec![Term::atom("x")]));
        let mut a = KnowledgeBase::new();
        a.add_local(mk("p"));
        a.add_local(mk("q"));
        let snap = a.fingerprint();
        assert_eq!(snap.rules, 2);

        // Appending keeps the prefix fingerprint stable.
        a.add_local(mk("r"));
        assert_eq!(a.prefix_fingerprint(snap.rules), Some(snap));
        assert_ne!(a.fingerprint(), snap);

        // A different KB with the same length diverges.
        let mut b = KnowledgeBase::new();
        b.add_local(mk("p"));
        b.add_local(mk("DIFFERENT"));
        assert_ne!(b.prefix_fingerprint(2), Some(snap));

        // Same rules in the same order agree.
        let mut c = KnowledgeBase::new();
        c.add_local(mk("p"));
        c.add_local(mk("q"));
        assert_eq!(c.fingerprint(), snap);

        // A prefix longer than the KB does not exist.
        assert_eq!(c.prefix_fingerprint(3), None);
    }

    #[test]
    fn incremental_prefix_digests_match_fresh_rehash() {
        // The O(1) fingerprints served from `prefix_digests` must be
        // byte-identical to hashing the prefix from scratch — compiled
        // artifacts persist these digests across KB growth.
        use std::hash::{Hash, Hasher};
        let mk = |n: &str| Rule::fact(Literal::new(n, vec![Term::atom("x")]));
        let mut kb = KnowledgeBase::new();
        for n in ["p", "q", "r", "s"] {
            kb.add_local(mk(n));
        }
        for rules in 0..=4 {
            let mut h = crate::hash::FxHasher::default();
            for sr in kb.iter().take(rules) {
                sr.rule.hash(&mut h);
            }
            assert_eq!(
                kb.prefix_fingerprint(rules),
                Some(KbFingerprint {
                    rules,
                    digest: h.finish()
                })
            );
        }
        assert_eq!(kb.prefix_fingerprint(5), None);
    }

    #[test]
    fn zero_arity_predicates_use_var_bucket() {
        let mut kb = KnowledgeBase::new();
        kb.add_local(Rule::fact(Literal::new("ready", vec![])));
        assert_eq!(kb.candidates(&Literal::new("ready", vec![])).count(), 1);
    }
}
