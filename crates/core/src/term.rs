//! First-order terms.
//!
//! PeerTrust terms are standard logic-programming terms: variables, atoms
//! (lower-case identifiers such as `cs101`), quoted strings (peer and person
//! names such as `"UIUC"`), integers (prices), and compound terms
//! (a function symbol applied to argument terms).
//!
//! Variables carry a *version* used by standardize-apart renaming: version 0
//! is a source-program variable; the engine bumps versions when it copies a
//! rule into a derivation so that distinct rule instances never share
//! variables.

use crate::symbol::{well_known, PeerId, Sym};
use std::fmt;
use std::sync::Arc;

/// A logic variable: a display name plus a renaming version.
///
/// Two variables are the same iff both name and version match. Parsers
/// produce version 0; `Rule::rename_apart` produces fresh versions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var {
    pub name: Sym,
    pub version: u32,
}

impl Var {
    pub fn new(name: impl Into<Sym>) -> Var {
        Var {
            name: name.into(),
            version: 0,
        }
    }

    pub fn versioned(name: impl Into<Sym>, version: u32) -> Var {
        Var {
            name: name.into(),
            version,
        }
    }

    /// Is this the `Requester` pseudo-variable (any version)?
    pub fn is_requester(&self) -> bool {
        self.name == well_known::requester()
    }

    /// Is this the `Self` pseudo-variable (any version)?
    pub fn is_self(&self) -> bool {
        self.name == well_known::self_()
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.version == 0 {
            write!(f, "{}", self.name)
        } else {
            write!(f, "{}_{}", self.name, self.version)
        }
    }
}

/// The shape of a ground(-enough) term for first-argument clause
/// indexing: what a switch-on-constant dispatch can discriminate on
/// without unifying. Compound terms key on their functor only — argument
/// disagreement is left to unification (an over-approximation, never a
/// miss). Variables have no key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IndexKey {
    Atom(Sym),
    Str(Sym),
    Int(i64),
    Functor(Sym),
}

/// A first-order term.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Term {
    /// A logic variable, e.g. `Course`, `X`.
    Var(Var),
    /// An unquoted constant, e.g. `cs101`, `purchaseApproved`.
    Atom(Sym),
    /// A quoted string constant, e.g. `"UIUC"`, `"Alice"`.
    Str(Sym),
    /// An integer constant, e.g. `2000`.
    Int(i64),
    /// A compound term `f(t1, ..., tn)` with n >= 1.
    ///
    /// The argument list is reference-counted (`Arc`, so terms stay
    /// `Send`): cloning a compound — which the solver does on every
    /// binding, answer and proof node — bumps a counter instead of
    /// deep-copying the subtree, and ground subterms are structurally
    /// shared between a rule and every instance derived from it.
    Compound(Sym, Arc<[Term]>),
}

impl Term {
    /// Convenience constructor for a variable term.
    pub fn var(name: impl Into<Sym>) -> Term {
        Term::Var(Var::new(name))
    }

    /// Convenience constructor for an atom term.
    pub fn atom(name: impl Into<Sym>) -> Term {
        Term::Atom(name.into())
    }

    /// Convenience constructor for a string term.
    pub fn str(s: impl Into<Sym>) -> Term {
        Term::Str(s.into())
    }

    /// Convenience constructor for an integer term.
    pub fn int(i: i64) -> Term {
        Term::Int(i)
    }

    /// Convenience constructor for a compound term.
    pub fn compound(functor: impl Into<Sym>, args: Vec<Term>) -> Term {
        Term::Compound(functor.into(), args.into())
    }

    /// A string term holding a peer's distinguished name.
    pub fn peer(p: PeerId) -> Term {
        Term::Str(p.0)
    }

    /// The `Requester` pseudo-variable.
    pub fn requester() -> Term {
        Term::Var(Var::new(well_known::requester()))
    }

    /// The `Self` pseudo-variable.
    pub fn self_() -> Term {
        Term::Var(Var::new(well_known::self_()))
    }

    /// Is this term free of variables?
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Atom(_) | Term::Str(_) | Term::Int(_) => true,
            Term::Compound(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// If this term is a ground peer name (string or atom), its `PeerId`.
    pub fn as_peer(&self) -> Option<PeerId> {
        match self {
            Term::Str(s) | Term::Atom(s) => Some(PeerId(*s)),
            _ => None,
        }
    }

    /// Collect every variable occurring in the term into `out`
    /// (with duplicates; callers dedup if needed).
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Term::Var(v) => out.push(*v),
            Term::Atom(_) | Term::Str(_) | Term::Int(_) => {}
            Term::Compound(_, args) => {
                for a in args.iter() {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// Does variable `v` occur anywhere in this term?
    pub fn occurs(&self, v: &Var) -> bool {
        match self {
            Term::Var(w) => w == v,
            Term::Atom(_) | Term::Str(_) | Term::Int(_) => false,
            Term::Compound(_, args) => args.iter().any(|a| a.occurs(v)),
        }
    }

    /// Number of symbols in the term (for depth/size budgets).
    pub fn size(&self) -> usize {
        match self {
            Term::Var(_) | Term::Atom(_) | Term::Str(_) | Term::Int(_) => 1,
            Term::Compound(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
        }
    }

    /// The first-argument index key of this term, or `None` for a
    /// variable. Shared by the interpreted KB index and the compiled
    /// dispatch tables so both narrow candidate sets identically.
    pub fn index_key(&self) -> Option<IndexKey> {
        match self {
            Term::Atom(s) => Some(IndexKey::Atom(*s)),
            Term::Str(s) => Some(IndexKey::Str(*s)),
            Term::Int(i) => Some(IndexKey::Int(*i)),
            Term::Compound(f, _) => Some(IndexKey::Functor(*f)),
            Term::Var(_) => None,
        }
    }

    /// Rewrite every variable with `f`. Used for standardize-apart renaming.
    pub fn map_vars(&self, f: &mut impl FnMut(Var) -> Term) -> Term {
        match self {
            Term::Var(v) => f(*v),
            Term::Atom(_) | Term::Str(_) | Term::Int(_) => self.clone(),
            Term::Compound(functor, args) => {
                Term::Compound(*functor, args.iter().map(|a| a.map_vars(f)).collect())
            }
        }
    }
}

impl From<PeerId> for Term {
    fn from(p: PeerId) -> Term {
        Term::peer(p)
    }
}

impl From<i64> for Term {
    fn from(i: i64) -> Term {
        Term::Int(i)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Atom(s) => write!(f, "{s}"),
            Term::Str(s) => write!(f, "\"{s}\""),
            Term::Int(i) => write!(f, "{i}"),
            Term::Compound(functor, args) => {
                write!(f, "{functor}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_syntax() {
        assert_eq!(Term::var("Course").to_string(), "Course");
        assert_eq!(Term::atom("cs101").to_string(), "cs101");
        assert_eq!(Term::str("UIUC").to_string(), "\"UIUC\"");
        assert_eq!(Term::int(2000).to_string(), "2000");
        assert_eq!(
            Term::compound("pair", vec![Term::int(1), Term::var("X")]).to_string(),
            "pair(1, X)"
        );
    }

    #[test]
    fn renamed_variable_display() {
        let v = Var::versioned("X", 3);
        assert_eq!(v.to_string(), "X_3");
    }

    #[test]
    fn atom_and_string_are_distinct() {
        assert_ne!(Term::atom("cs101"), Term::str("cs101"));
    }

    #[test]
    fn groundness() {
        assert!(Term::atom("a").is_ground());
        assert!(Term::int(1).is_ground());
        assert!(!Term::var("X").is_ground());
        assert!(Term::compound("f", vec![Term::int(1)]).is_ground());
        assert!(!Term::compound("f", vec![Term::var("X")]).is_ground());
    }

    #[test]
    fn occurs_check_finds_nested_vars() {
        let x = Var::new("X");
        let t = Term::compound("f", vec![Term::compound("g", vec![Term::Var(x)])]);
        assert!(t.occurs(&x));
        assert!(!t.occurs(&Var::new("Y")));
    }

    #[test]
    fn collect_vars_reports_duplicates_in_order() {
        let t = Term::compound("f", vec![Term::var("X"), Term::var("Y"), Term::var("X")]);
        let mut vars = Vec::new();
        t.collect_vars(&mut vars);
        let names: Vec<_> = vars.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["X", "Y", "X"]);
    }

    #[test]
    fn size_counts_symbols() {
        assert_eq!(Term::int(7).size(), 1);
        let t = Term::compound(
            "f",
            vec![Term::int(1), Term::compound("g", vec![Term::var("X")])],
        );
        assert_eq!(t.size(), 4);
    }

    #[test]
    fn pseudo_variable_predicates() {
        assert!(Var::new("Requester").is_requester());
        assert!(Var::new("Self").is_self());
        assert!(!Var::new("X").is_requester());
        // Renamed pseudo-variables still count.
        assert!(Var::versioned("Requester", 5).is_requester());
    }

    #[test]
    fn map_vars_renames() {
        let t = Term::compound("f", vec![Term::var("X"), Term::atom("a")]);
        let renamed = t.map_vars(&mut |v| Term::Var(Var::versioned(v.name, v.version + 1)));
        assert_eq!(
            renamed,
            Term::compound(
                "f",
                vec![Term::Var(Var::versioned("X", 1)), Term::atom("a")]
            )
        );
    }

    #[test]
    fn as_peer_on_names() {
        assert_eq!(Term::str("UIUC").as_peer(), Some(PeerId::new("UIUC")));
        assert_eq!(Term::atom("uiuc").as_peer(), Some(PeerId::new("uiuc")));
        assert_eq!(Term::int(1).as_peer(), None);
        assert_eq!(Term::var("X").as_peer(), None);
    }
}
