//! Serde support for the core data model.
//!
//! Interned symbols serialize as their text (re-interned on
//! deserialization), so serialized policies are portable across processes
//! — the basis for the wire codec in `peertrust-net` and for exporting
//! knowledge bases, traces and experiment reports.

use crate::context::Context;
use crate::literal::Literal;
use crate::rule::Rule;
use crate::symbol::{PeerId, Sym};
use crate::term::{Term, Var};
use serde::de::Deserializer;
use serde::ser::Serializer;
use serde::{Deserialize, Serialize};

impl Serialize for Sym {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl<'de> Deserialize<'de> for Sym {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Sym, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(Sym::new(&s))
    }
}

impl Serialize for PeerId {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.name())
    }
}

impl<'de> Deserialize<'de> for PeerId {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<PeerId, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(PeerId::new(&s))
    }
}

/// Mirror types with derived impls, converted to and from the interned
/// originals. Keeping the mirrors private preserves the public types'
/// exact memory layout and semantics.
#[derive(Serialize, Deserialize)]
struct VarMirror {
    name: Sym,
    version: u32,
}

impl Serialize for Var {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        VarMirror {
            name: self.name,
            version: self.version,
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Var {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Var, D::Error> {
        let m = VarMirror::deserialize(deserializer)?;
        Ok(Var {
            name: m.name,
            version: m.version,
        })
    }
}

#[derive(Serialize, Deserialize)]
enum TermMirror {
    Var(Var),
    Atom(Sym),
    Str(Sym),
    Int(i64),
    Compound(Sym, Vec<Term>),
}

impl Serialize for Term {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let m = match self {
            Term::Var(v) => TermMirror::Var(*v),
            Term::Atom(s) => TermMirror::Atom(*s),
            Term::Str(s) => TermMirror::Str(*s),
            Term::Int(i) => TermMirror::Int(*i),
            Term::Compound(f, args) => TermMirror::Compound(*f, args.to_vec()),
        };
        m.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Term {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Term, D::Error> {
        Ok(match TermMirror::deserialize(deserializer)? {
            TermMirror::Var(v) => Term::Var(v),
            TermMirror::Atom(s) => Term::Atom(s),
            TermMirror::Str(s) => Term::Str(s),
            TermMirror::Int(i) => Term::Int(i),
            TermMirror::Compound(f, args) => Term::Compound(f, args.into()),
        })
    }
}

#[derive(Serialize, Deserialize)]
struct LiteralMirror {
    pred: Sym,
    args: Vec<Term>,
    authority: Vec<Term>,
}

impl Serialize for Literal {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        LiteralMirror {
            pred: self.pred,
            args: self.args.clone(),
            authority: self.authority.clone(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Literal {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Literal, D::Error> {
        let m = LiteralMirror::deserialize(deserializer)?;
        Ok(Literal {
            pred: m.pred,
            args: m.args,
            authority: m.authority,
        })
    }
}

impl Serialize for Context {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.goals.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Context {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Context, D::Error> {
        let goals = Vec::<Literal>::deserialize(deserializer)?;
        Ok(Context { goals })
    }
}

#[derive(Serialize, Deserialize)]
struct RuleMirror {
    head: Literal,
    head_context: Option<Context>,
    rule_context: Option<Context>,
    body: Vec<Literal>,
    signed_by: Vec<Sym>,
}

impl Serialize for Rule {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        RuleMirror {
            head: self.head.clone(),
            head_context: self.head_context.clone(),
            rule_context: self.rule_context.clone(),
            body: self.body.clone(),
            signed_by: self.signed_by.clone(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Rule {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Rule, D::Error> {
        let m = RuleMirror::deserialize(deserializer)?;
        Ok(Rule {
            head: m.head,
            head_context: m.head_context,
            rule_context: m.rule_context,
            body: m.body,
            signed_by: m.signed_by,
        })
    }
}

/// A second wire format, independent of serde: rules as canonical text.
/// Useful for human-auditable exports; the parser round-trip tests
/// guarantee fidelity.
pub fn rule_to_text(rule: &Rule) -> String {
    rule.to_string()
}

/// Guard against silently deserializing garbage: a deserialized rule must
/// print and re-parse identically (checked in tests, exposed for fuzzing).
pub fn check_roundtrip(rule: &Rule) -> bool {
    // Delegated to the Display/PartialEq pair; parsing lives in the parser
    // crate, so here we only check self-consistency of the mirrors.
    let json = match serde_json::to_string(rule) {
        Ok(j) => j,
        Err(_) => return false,
    };
    match serde_json::from_str::<Rule>(&json) {
        Ok(back) => back == *rule,
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::literal::Literal;
    use crate::rule::Rule;
    use crate::term::Term;

    fn sample_rule() -> Rule {
        Rule::horn(
            Literal::new("student", vec![Term::var("X")]).at(Term::str("UIUC")),
            vec![Literal::new("student", vec![Term::var("X")]).at(Term::str("Registrar"))],
        )
        .with_head_context(Context::goals(vec![Literal::new(
            "member",
            vec![Term::requester()],
        )
        .at(Term::str("BBB"))]))
        .signed_by("UIUC")
    }

    #[test]
    fn sym_roundtrips_as_string() {
        let s = Sym::new("student");
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, "\"student\"");
        let back: Sym = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn term_roundtrips() {
        let t = Term::compound(
            "f",
            vec![
                Term::var("X"),
                Term::int(-3),
                Term::str("a b"),
                Term::atom("c"),
            ],
        );
        let json = serde_json::to_string(&t).unwrap();
        let back: Term = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn literal_with_authority_roundtrips() {
        let l = Literal::new("student", vec![Term::str("Alice")])
            .at(Term::str("UIUC"))
            .at(Term::var("X"));
        let back: Literal = serde_json::from_str(&serde_json::to_string(&l).unwrap()).unwrap();
        assert_eq!(back, l);
    }

    #[test]
    fn full_rule_roundtrips() {
        let r = sample_rule();
        assert!(check_roundtrip(&r));
        let back: Rule = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(back, r);
        assert_eq!(rule_to_text(&back), rule_to_text(&r));
    }

    #[test]
    fn versioned_vars_roundtrip() {
        let r = sample_rule().rename_apart(7);
        let back: Rule = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn peer_id_roundtrips() {
        let p = PeerId::new("E-Learn");
        let back: PeerId = serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
        assert_eq!(back, p);
    }
}
