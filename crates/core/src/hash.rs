//! FxHash: the rustc-internal multiply-rotate hash, shared by every hot
//! map in the workspace.
//!
//! SipHash (the `std` default) buys DoS resistance we do not need — keys
//! here are interned symbols, small integers and variables derived from
//! policies we loaded ourselves, not attacker-controlled network input —
//! and costs 3-5x more per hash on the short keys the engine uses. The
//! interner always used Fx internally; this module promotes it to a
//! public building block so [`crate::subst::Subst`],
//! [`crate::bindings::Bindings`] and the engine's tables can share one
//! implementation.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher (identical to rustc's `FxHasher` byte loop).
///
/// `Clone` lets long-lived running digests (e.g. the knowledge base's
/// incremental prefix fingerprints) snapshot their state cheaply.
#[derive(Default, Clone, Debug)]
pub struct FxHasher(u64);

const SEED: u64 = 0x517c_c1b7_2722_0a95;

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ u64::from(b)).wrapping_mul(SEED);
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.0 = (self.0.rotate_left(5) ^ u64::from(n)).wrapping_mul(SEED);
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(SEED);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_insert_and_get() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn integer_fast_paths_agree_with_byte_loop() {
        // write_u32 must hash like one 4-byte-wide mix, deterministically.
        let mut a = FxHasher::default();
        a.write_u32(0xdead_beef);
        let mut b = FxHasher::default();
        b.write_u32(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write_u32(0xdead_bee0);
        assert_ne!(a.finish(), c.finish());
    }
}
