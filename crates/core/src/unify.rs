//! Robinson unification over triangular substitutions.
//!
//! [`unify`] extends a substitution so that two terms become equal, or
//! reports failure without corrupting the substitution's prior bindings
//! (callers clone before speculative unification; the engine does this per
//! resolution branch). The occurs check is on by default — policy programs
//! are small enough that its cost is negligible, and it keeps the semantics
//! honest — but can be disabled via [`UnifyOptions`] for benchmarking its
//! cost (experiment E8 ablation).

use crate::literal::Literal;
use crate::subst::Subst;
use crate::term::{Term, Var};

/// Tuning knobs for unification.
#[derive(Clone, Copy, Debug)]
pub struct UnifyOptions {
    /// Reject bindings `X -> t` where `X` occurs in `t`. Default `true`.
    pub occurs_check: bool,
}

impl Default for UnifyOptions {
    fn default() -> Self {
        UnifyOptions { occurs_check: true }
    }
}

/// Unify `a` and `b` under `s`, extending `s` in place on success.
///
/// On failure `s` may contain bindings added before the failing sub-pair
/// was reached; callers that need rollback should clone first. Returns
/// `true` iff a unifier was found.
pub fn unify(a: &Term, b: &Term, s: &mut Subst) -> bool {
    unify_opts(a, b, s, UnifyOptions::default())
}

/// [`unify`] with explicit options.
///
/// Allocation discipline: constants and mismatches allocate nothing; a
/// variable binding clones the bound-to term (an `Arc` bump for
/// compounds); descending into compounds bumps the two argument-list
/// `Arc`s instead of deep-copying them.
pub fn unify_opts(a: &Term, b: &Term, s: &mut Subst, opts: UnifyOptions) -> bool {
    match (s.walk(a), s.walk(b)) {
        (Term::Var(x), Term::Var(y)) if x == y => true,
        (Term::Var(x), t) | (t, Term::Var(x)) => {
            let x = *x;
            let t = t.clone();
            if opts.occurs_check && occurs_resolved(&x, &t, s) {
                return false;
            }
            s.bind(x, t);
            true
        }
        (Term::Atom(x), Term::Atom(y)) => x == y,
        (Term::Str(x), Term::Str(y)) => x == y,
        (Term::Int(x), Term::Int(y)) => x == y,
        (Term::Compound(f, xs), Term::Compound(g, ys)) => {
            if f != g || xs.len() != ys.len() {
                return false;
            }
            let (xs, ys) = (xs.clone(), ys.clone());
            xs.iter()
                .zip(ys.iter())
                .all(|(x, y)| unify_opts(x, y, s, opts))
        }
        _ => false,
    }
}

/// Occurs check through the substitution: does `v` occur in `t` once all
/// bound variables in `t` are dereferenced?
fn occurs_resolved(v: &Var, t: &Term, s: &Subst) -> bool {
    match s.walk(t) {
        Term::Var(w) => w == v,
        Term::Atom(_) | Term::Str(_) | Term::Int(_) => false,
        Term::Compound(_, args) => args.iter().any(|a| occurs_resolved(v, a, s)),
    }
}

/// Unify two literals: predicates, arities, arguments, and authority chains
/// must all match. Authority chains unify positionally and must have equal
/// length — `p @ A` never unifies with `p @ A @ B`, because they denote
/// different delegation structures.
pub fn unify_literals(a: &Literal, b: &Literal, s: &mut Subst) -> bool {
    if a.pred != b.pred || a.args.len() != b.args.len() || a.authority.len() != b.authority.len() {
        return false;
    }
    a.args.iter().zip(&b.args).all(|(x, y)| unify(x, y, s))
        && a.authority
            .iter()
            .zip(&b.authority)
            .all(|(x, y)| unify(x, y, s))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Term {
        Term::var(name)
    }

    #[test]
    fn unify_identical_constants() {
        let mut s = Subst::new();
        assert!(unify(&Term::int(3), &Term::int(3), &mut s));
        assert!(s.is_empty());
        assert!(!unify(&Term::int(3), &Term::int(4), &mut s));
    }

    #[test]
    fn atom_never_unifies_with_string() {
        let mut s = Subst::new();
        assert!(!unify(&Term::atom("cs101"), &Term::str("cs101"), &mut s));
    }

    #[test]
    fn variable_binds_to_constant_either_side() {
        let mut s = Subst::new();
        assert!(unify(&v("X"), &Term::int(1), &mut s));
        assert_eq!(s.apply(&v("X")), Term::int(1));

        let mut s2 = Subst::new();
        assert!(unify(&Term::int(1), &v("X"), &mut s2));
        assert_eq!(s2.apply(&v("X")), Term::int(1));
    }

    #[test]
    fn variable_variable_aliasing() {
        let mut s = Subst::new();
        assert!(unify(&v("X"), &v("Y"), &mut s));
        assert!(unify(&v("Y"), &Term::atom("a"), &mut s));
        assert_eq!(s.apply(&v("X")), Term::atom("a"));
    }

    #[test]
    fn self_unification_adds_no_binding() {
        let mut s = Subst::new();
        assert!(unify(&v("X"), &v("X"), &mut s));
        assert!(s.is_empty());
    }

    #[test]
    fn compound_unification_binds_recursively() {
        let mut s = Subst::new();
        let a = Term::compound("f", vec![v("X"), Term::int(2)]);
        let b = Term::compound("f", vec![Term::int(1), v("Y")]);
        assert!(unify(&a, &b, &mut s));
        assert_eq!(s.apply(&a), s.apply(&b));
        assert_eq!(s.apply(&v("X")), Term::int(1));
        assert_eq!(s.apply(&v("Y")), Term::int(2));
    }

    #[test]
    fn functor_or_arity_mismatch_fails() {
        let mut s = Subst::new();
        let a = Term::compound("f", vec![Term::int(1)]);
        assert!(!unify(&a, &Term::compound("g", vec![Term::int(1)]), &mut s));
        assert!(!unify(
            &a,
            &Term::compound("f", vec![Term::int(1), Term::int(2)]),
            &mut s
        ));
    }

    #[test]
    fn occurs_check_rejects_cyclic_binding() {
        let mut s = Subst::new();
        let t = Term::compound("f", vec![v("X")]);
        assert!(!unify(&v("X"), &t, &mut s));
    }

    #[test]
    fn occurs_check_through_bindings() {
        // X = f(Y), then Y = X must fail with occurs check on.
        let mut s = Subst::new();
        assert!(unify(&v("X"), &Term::compound("f", vec![v("Y")]), &mut s));
        assert!(!unify(&v("Y"), &v("X"), &mut s) || s.apply(&v("Y")) != s.apply(&v("X")));
    }

    #[test]
    fn occurs_check_can_be_disabled() {
        let mut s = Subst::new();
        let t = Term::compound("f", vec![v("X")]);
        assert!(unify_opts(
            &v("X"),
            &t,
            &mut s,
            UnifyOptions {
                occurs_check: false
            }
        ));
    }

    #[test]
    fn literal_unification_requires_matching_authority_depth() {
        let mut s = Subst::new();
        let a = Literal::new("student", vec![v("X")]).at(Term::str("UIUC"));
        let b = Literal::new("student", vec![Term::str("Alice")]).at(Term::str("UIUC"));
        assert!(unify_literals(&a, &b, &mut s));
        assert_eq!(s.apply(&v("X")), Term::str("Alice"));

        let c = Literal::new("student", vec![Term::str("Alice")])
            .at(Term::str("UIUC"))
            .at(Term::str("Alice"));
        let mut s2 = Subst::new();
        assert!(!unify_literals(&a, &c, &mut s2));
    }

    #[test]
    fn literal_unification_binds_authority_vars() {
        let mut s = Subst::new();
        let a = Literal::new("student", vec![v("X")]).at(v("U"));
        let b = Literal::new("student", vec![Term::str("Alice")]).at(Term::str("UIUC"));
        assert!(unify_literals(&a, &b, &mut s));
        assert_eq!(s.apply(&v("U")), Term::str("UIUC"));
    }

    #[test]
    fn unifier_is_most_general_on_simple_case() {
        // unify(f(X, Y), f(Y, Z)): mgu maps X~Y~Z to one class; applying it
        // to both terms yields syntactically equal terms.
        let mut s = Subst::new();
        let a = Term::compound("f", vec![v("X"), v("Y")]);
        let b = Term::compound("f", vec![v("Y"), v("Z")]);
        assert!(unify(&a, &b, &mut s));
        assert_eq!(s.apply(&a), s.apply(&b));
    }
}
