//! # peertrust-core
//!
//! Core data model for **PeerTrust** distributed logic programs (DLPs), the
//! policy and trust-negotiation language of
//! *"PeerTrust: Automated Trust Negotiation for Peers on the Semantic Web"*
//! (Nejdl, Olmedilla, Winslett, 2004).
//!
//! A PeerTrust program is a set of definite Horn clauses extended with three
//! constructs (paper §3.1):
//!
//! * **Authority arguments** — `lit @ Authority` delegates evaluation of a
//!   literal to another peer. Authorities nest: `student(X) @ "UIUC" @ X`
//!   asks peer `X` to produce UIUC's statement about `X`'s student status.
//!   See [`literal::Literal::authority`].
//! * **Context guards** — `lit $ ctx` and `head <-_ctx body` attach *release
//!   policies*: the literal/rule may only be sent to a peer for which `ctx`
//!   is derivable, with the pseudo-variables `Requester` and `Self` bound at
//!   disclosure time. See [`context::Context`].
//! * **Signed rules** — `rule signedBy ["UIUC"]` marks a rule as carrying the
//!   issuer's digital signature, modelling credentials and delegations. The
//!   signature bytes themselves live in `peertrust-crypto`; here we track the
//!   issuer chain (see [`rule::Rule::signed_by`]).
//!
//! This crate provides terms, literals, contexts, rules, knowledge bases,
//! substitutions and unification. Inference lives in `peertrust-engine`,
//! parsing in `peertrust-parser`, and the negotiation runtime in
//! `peertrust-negotiation`.
//!
//! ## Example
//!
//! ```
//! use peertrust_core::prelude::*;
//!
//! // student("Alice") @ "UIUC"
//! let lit = Literal::new("student", vec![Term::str("Alice")])
//!     .at(Term::str("UIUC"));
//! assert_eq!(lit.to_string(), "student(\"Alice\") @ \"UIUC\"");
//! ```

pub mod bindings;
pub mod context;
pub mod hash;
pub mod heap;
pub mod kb;
pub mod literal;
pub mod rule;
pub mod serde_impl;
pub mod subst;
pub mod symbol;
pub mod term;
pub mod unify;

/// Convenient re-exports of the types used by nearly every client.
pub mod prelude {
    pub use crate::bindings::{
        offset_term, unify_ground_in, unify_in, unify_literals_in, unify_offset_in, unify_opts_in,
        Bindings, Checkpoint, ResolveCache, TrailStats,
    };
    pub use crate::context::Context;
    pub use crate::hash::{FxBuildHasher, FxHashMap, FxHashSet};
    pub use crate::heap::{HeapMark, HeapStats, TermHeap};
    pub use crate::kb::{KbFingerprint, KnowledgeBase, RuleOrigin};
    pub use crate::literal::Literal;
    pub use crate::rule::{Rule, RuleId};
    pub use crate::subst::Subst;
    pub use crate::symbol::{PeerId, Sym};
    pub use crate::term::{IndexKey, Term, Var};
    pub use crate::unify::{unify, unify_literals, unify_opts, UnifyOptions};
}

pub use prelude::*;
