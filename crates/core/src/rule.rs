//! Rules (definite Horn clauses with PeerTrust extensions).
//!
//! The general shape (paper §3.1) is:
//!
//! ```text
//! head [@ auth...] [$ head_ctx] <-[_rule_ctx] body1, ..., bodyn [signedBy [I1, ...]].
//! ```
//!
//! * `head_ctx` (written `$ ctx` after the head) is the release policy for
//!   the *derived literal*: who may the head be disclosed to.
//! * `rule_ctx` (the subscript on the arrow) is the release policy for the
//!   *rule itself*: who may see this rule's definition. UniPro policy
//!   protection is built from this.
//! * `signed_by` lists the issuers whose signatures the rule carries;
//!   a signed bodyless rule is a *credential* (e.g. Alice's student ID),
//!   a signed rule with a body is a *delegation* (e.g. UIUC delegating
//!   student certification to its registrar).
//!
//! Facts are rules with an empty body.

use crate::context::Context;
use crate::literal::Literal;
use crate::symbol::{PeerId, Sym};
use crate::term::{Term, Var};
use std::fmt;

/// Identifies a rule within one peer's knowledge base.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RuleId(pub u32);

/// A PeerTrust rule.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Rule {
    /// Head literal (may carry an authority chain, e.g. the delegation
    /// `student(X) @ "UIUC" <- signedBy ["UIUC"] student(X) @ "UIUC Registrar"`).
    pub head: Literal,
    /// Release policy for the derived head literal (`$ ctx`). `None` means
    /// the paper's default applies (private: `Requester = Self`).
    pub head_context: Option<Context>,
    /// Release policy for the rule itself (`<-_ctx`). `None` means default
    /// private.
    pub rule_context: Option<Context>,
    /// Body literals (empty for facts).
    pub body: Vec<Literal>,
    /// Issuers whose signatures this rule carries, e.g. `["UIUC"]`.
    /// Empty for ordinary local rules.
    pub signed_by: Vec<Sym>,
}

impl Rule {
    /// A fact (bodyless rule) with default contexts.
    pub fn fact(head: Literal) -> Rule {
        Rule {
            head,
            head_context: None,
            rule_context: None,
            body: Vec::new(),
            signed_by: Vec::new(),
        }
    }

    /// A rule `head <- body` with default contexts.
    pub fn horn(head: Literal, body: Vec<Literal>) -> Rule {
        Rule {
            head,
            head_context: None,
            rule_context: None,
            body,
            signed_by: Vec::new(),
        }
    }

    /// Set the head release policy (`$ ctx`), builder style.
    pub fn with_head_context(mut self, ctx: Context) -> Rule {
        self.head_context = Some(ctx);
        self
    }

    /// Set the rule release policy (`<-_ctx`), builder style.
    pub fn with_rule_context(mut self, ctx: Context) -> Rule {
        self.rule_context = Some(ctx);
        self
    }

    /// Mark the rule as signed by `issuer`, builder style.
    pub fn signed_by(mut self, issuer: impl Into<Sym>) -> Rule {
        self.signed_by.push(issuer.into());
        self
    }

    /// Is this a fact (empty body)?
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// Does the rule carry at least one signature (i.e. is it a credential
    /// or signed delegation)?
    pub fn is_signed(&self) -> bool {
        !self.signed_by.is_empty()
    }

    /// A signed bodyless rule whose head is ground is a *credential* in the
    /// paper's sense (e.g. `student("Alice") @ "UIUC" signedBy ["UIUC"]`).
    pub fn is_credential(&self) -> bool {
        self.is_signed() && self.is_fact() && self.head.is_ground()
    }

    /// The effective release policy for the head literal: the explicit
    /// `$` context or the paper's private default.
    pub fn effective_head_context(&self) -> Context {
        self.head_context.clone().unwrap_or_default()
    }

    /// The effective release policy for the rule itself.
    pub fn effective_rule_context(&self) -> Context {
        self.rule_context.clone().unwrap_or_default()
    }

    /// All distinct variables in the rule, first-occurrence order
    /// (head, then contexts, then body).
    pub fn vars(&self) -> Vec<Var> {
        let mut all = Vec::new();
        self.head.collect_vars(&mut all);
        if let Some(c) = &self.head_context {
            c.collect_vars(&mut all);
        }
        if let Some(c) = &self.rule_context {
            c.collect_vars(&mut all);
        }
        for b in &self.body {
            b.collect_vars(&mut all);
        }
        let mut seen = Vec::new();
        for v in all {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen
    }

    /// Produce a copy with every variable renamed to the given fresh
    /// version — "standardize apart". The engine allocates `version` from a
    /// monotone counter so rule instances in one derivation never collide.
    pub fn rename_apart(&self, version: u32) -> Rule {
        let mut rename = |v: Var| Term::Var(Var::versioned(v.name, version));
        Rule {
            head: self.head.map_vars(&mut rename),
            head_context: self.head_context.as_ref().map(|c| c.map_vars(&mut rename)),
            rule_context: self.rule_context.as_ref().map(|c| c.map_vars(&mut rename)),
            body: self.body.iter().map(|b| b.map_vars(&mut rename)).collect(),
            signed_by: self.signed_by.clone(),
        }
    }

    /// Standardize apart with *per-variable* fresh versions: every
    /// distinct variable in the rule gets its own version drawn from
    /// `next_version` (pre-incremented, so the first variable receives
    /// `next_version + 1`).
    ///
    /// Unlike [`Rule::rename_apart`], which stamps one shared version on
    /// every variable, this gives each variable a globally unique `u32`
    /// — exactly what the trail-based binding store needs to address
    /// variables as dense slot indices (`version - base - 1`) instead of
    /// hashing them. Display names are preserved, so the
    /// `Requester`/`Self` pseudo-variable checks still work on renamed
    /// instances.
    pub fn rename_apart_indexed(&self, next_version: &mut u32) -> Rule {
        // Rules have a handful of variables; a linear assoc list beats a
        // hash map at this size and allocates once.
        let mut assigned: Vec<(Var, u32)> = Vec::new();
        let mut rename = |v: Var| {
            let version = match assigned.iter().find(|(w, _)| *w == v) {
                Some((_, ver)) => *ver,
                None => {
                    *next_version += 1;
                    assigned.push((v, *next_version));
                    *next_version
                }
            };
            Term::Var(Var::versioned(v.name, version))
        };
        Rule {
            head: self.head.map_vars(&mut rename),
            head_context: self.head_context.as_ref().map(|c| c.map_vars(&mut rename)),
            rule_context: self.rule_context.as_ref().map(|c| c.map_vars(&mut rename)),
            body: self.body.iter().map(|b| b.map_vars(&mut rename)).collect(),
            signed_by: self.signed_by.clone(),
        }
    }

    /// Strip contexts, as done when a rule is sent to another peer
    /// (paper §3.1: "we will strip the contexts from literals and rules when
    /// they are sent to another peer").
    pub fn strip_contexts(&self) -> Rule {
        Rule {
            head: self.head.clone(),
            head_context: None,
            rule_context: None,
            body: self.body.clone(),
            signed_by: self.signed_by.clone(),
        }
    }

    /// The issuers as peer ids.
    pub fn issuers(&self) -> Vec<PeerId> {
        self.signed_by.iter().map(|s| PeerId(*s)).collect()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if let Some(c) = &self.head_context {
            write!(f, " $ {c}")?;
        }
        if self.body.is_empty() && self.rule_context.is_none() && self.signed_by.is_empty() {
            return write!(f, ".");
        }
        if !self.body.is_empty() || self.rule_context.is_some() {
            write!(f, " <-")?;
            if let Some(c) = &self.rule_context {
                write!(f, "_({c})")?;
            }
            for (i, b) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, " {b}")?;
            }
        }
        if !self.signed_by.is_empty() {
            write!(f, " signedBy [")?;
            for (i, s) in self.signed_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "\"{s}\"")?;
            }
            write!(f, "]")?;
        }
        write!(f, ".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn student_alice() -> Literal {
        Literal::new("student", vec![Term::str("Alice")]).at(Term::str("UIUC"))
    }

    #[test]
    fn fact_display() {
        let r = Rule::fact(student_alice());
        assert_eq!(r.to_string(), "student(\"Alice\") @ \"UIUC\".");
        assert!(r.is_fact());
        assert!(!r.is_signed());
    }

    #[test]
    fn credential_display_and_predicates() {
        let r = Rule::fact(student_alice()).signed_by("UIUC");
        assert_eq!(
            r.to_string(),
            "student(\"Alice\") @ \"UIUC\" signedBy [\"UIUC\"]."
        );
        assert!(r.is_credential());
        assert_eq!(r.issuers(), vec![PeerId::new("UIUC")]);
    }

    #[test]
    fn nonground_signed_fact_is_not_credential() {
        let r = Rule::fact(Literal::new("student", vec![Term::var("X")])).signed_by("UIUC");
        assert!(!r.is_credential());
    }

    #[test]
    fn horn_rule_display() {
        let r = Rule::horn(
            Literal::new("preferred", vec![Term::var("X")]),
            vec![Literal::new("student", vec![Term::var("X")]).at(Term::str("UIUC"))],
        );
        assert_eq!(r.to_string(), "preferred(X) <- student(X) @ \"UIUC\".");
    }

    #[test]
    fn full_rule_display_with_contexts_and_signature() {
        // E-Learn's free-enrollment policy from §3.1.
        let r = Rule::horn(
            Literal::new("freeEnroll", vec![Term::var("Course"), Term::requester()]),
            vec![
                Literal::new("policeOfficer", vec![Term::requester()])
                    .at(Term::str("CSP"))
                    .at(Term::requester()),
                Literal::new("spanishCourse", vec![Term::var("Course")]),
            ],
        )
        .with_head_context(Context::public());
        assert_eq!(
            r.to_string(),
            "freeEnroll(Course, Requester) $ true <- policeOfficer(Requester) @ \"CSP\" @ Requester, spanishCourse(Course)."
        );

        let d = Rule::horn(
            Literal::new("student", vec![Term::var("X")]).at(Term::str("UIUC")),
            vec![Literal::new("student", vec![Term::var("X")]).at(Term::str("UIUC Registrar"))],
        )
        .signed_by("UIUC");
        assert_eq!(
            d.to_string(),
            "student(X) @ \"UIUC\" <- student(X) @ \"UIUC Registrar\" signedBy [\"UIUC\"]."
        );
    }

    #[test]
    fn default_contexts_are_private() {
        let r = Rule::fact(student_alice());
        assert!(r.effective_head_context().is_default_private());
        assert!(r.effective_rule_context().is_default_private());
        let pub_r = r.with_head_context(Context::public());
        assert!(pub_r.effective_head_context().is_public());
    }

    #[test]
    fn rename_apart_keeps_rule_shape_and_changes_vars() {
        let r = Rule::horn(
            Literal::new("p", vec![Term::var("X")]),
            vec![Literal::new("q", vec![Term::var("X"), Term::var("Y")])],
        );
        let r2 = r.rename_apart(7);
        assert_eq!(r2.head.to_string(), "p(X_7)");
        assert_eq!(r2.body[0].to_string(), "q(X_7, Y_7)");
        // Original untouched.
        assert_eq!(r.head.to_string(), "p(X)");
    }

    #[test]
    fn rename_apart_covers_contexts() {
        let r = Rule::fact(Literal::new("p", vec![Term::var("X")])).with_head_context(
            Context::goals(vec![Literal::new("member", vec![Term::var("X")])]),
        );
        let r2 = r.rename_apart(3);
        assert_eq!(r2.head_context.unwrap().goals[0].to_string(), "member(X_3)");
    }

    #[test]
    fn vars_deduplicated_across_sections() {
        let r = Rule::horn(
            Literal::new("p", vec![Term::var("X")]),
            vec![Literal::new("q", vec![Term::var("X"), Term::var("Y")])],
        );
        let names: Vec<_> = r.vars().iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["X", "Y"]);
    }

    #[test]
    fn strip_contexts_removes_both() {
        let r = Rule::fact(student_alice())
            .with_head_context(Context::public())
            .with_rule_context(Context::public());
        let s = r.strip_contexts();
        assert!(s.head_context.is_none());
        assert!(s.rule_context.is_none());
        assert_eq!(s.head, r.head);
    }
}
