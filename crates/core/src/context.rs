//! Release-policy contexts.
//!
//! A *context* (paper §3.1) guards the disclosure of a literal or rule:
//! `lit @ Authority $ ctx` may only be sent to a peer `P` if `ctx` is
//! derivable with the pseudo-variable `Requester` bound to `P` and `Self`
//! bound to the local peer. Rules carry contexts as `head <-_ctx body`.
//!
//! The default context, when none is written, is `Requester = Self`: the
//! item can never be sent to another peer. The context `true` makes an item
//! publicly releasable. General contexts are conjunctions of literals, which
//! may themselves carry authority chains — e.g. Alice's release policy for
//! her student credential:
//!
//! ```text
//! student(X) @ Y $ member(Requester) @ "BBB" @ Requester <-_true student(X) @ Y
//! ```
//!
//! requires the requester to prove BBB membership itself.

use crate::literal::Literal;
use crate::subst::Subst;
use crate::symbol::PeerId;
use crate::term::{Term, Var};
use std::fmt;

/// A conjunction of context literals guarding disclosure.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Context {
    /// The conjunction; empty means `true` (publicly releasable).
    pub goals: Vec<Literal>,
}

impl Context {
    /// The trivially satisfied context `true`: releasable to anyone.
    pub fn public() -> Context {
        Context { goals: Vec::new() }
    }

    /// The default context `Requester = Self`: never released to another
    /// peer (paper §3.1 — "If no context is specified ... the default
    /// context 'Requester = Self' applies").
    pub fn default_private() -> Context {
        Context {
            goals: vec![Literal::eq(Term::requester(), Term::self_())],
        }
    }

    /// A context requiring `Requester` to equal the given peer — the form
    /// used by UIUC's delegation rule
    /// (`student(X) $ Requester = "UIUC Registrar" <- ...`).
    pub fn requester_is(peer: PeerId) -> Context {
        Context {
            goals: vec![Literal::eq(Term::requester(), Term::peer(peer))],
        }
    }

    /// A context that is the conjunction of the given literals.
    pub fn goals(goals: Vec<Literal>) -> Context {
        // Normalize: a sole `true` literal is the public context.
        let goals = goals
            .into_iter()
            .filter(|g| g.pred.as_str() != "true")
            .collect();
        Context { goals }
    }

    /// Is this the public (`true`) context?
    pub fn is_public(&self) -> bool {
        self.goals.is_empty()
    }

    /// Syntactically, is this exactly the default `Requester = Self` guard?
    pub fn is_default_private(&self) -> bool {
        self == &Context::default_private()
    }

    /// Instantiate the pseudo-variables: bind every `Requester` variable to
    /// `requester` and every `Self` variable to `self_peer`, returning the
    /// concrete goals a release-policy check must derive.
    pub fn instantiate(&self, requester: PeerId, self_peer: PeerId) -> Vec<Literal> {
        let mut bind = |v: Var| -> Term {
            if v.is_requester() {
                Term::peer(requester)
            } else if v.is_self() {
                Term::peer(self_peer)
            } else {
                Term::Var(v)
            }
        };
        self.goals.iter().map(|g| g.map_vars(&mut bind)).collect()
    }

    /// Apply a substitution to every goal (used when the guarded rule's
    /// variables were bound during matching).
    pub fn apply(&self, s: &Subst) -> Context {
        Context {
            goals: self.goals.iter().map(|g| s.apply_literal(g)).collect(),
        }
    }

    /// Rewrite every variable with `f` (standardize-apart support).
    pub fn map_vars(&self, f: &mut impl FnMut(Var) -> Term) -> Context {
        Context {
            goals: self.goals.iter().map(|g| g.map_vars(f)).collect(),
        }
    }

    /// Collect variables from all goals.
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        for g in &self.goals {
            g.collect_vars(out);
        }
    }
}

impl Default for Context {
    /// The *default* default is private, matching the paper's semantics.
    fn default() -> Context {
        Context::default_private()
    }
}

impl fmt::Display for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.goals.is_empty() {
            return f.write_str("true");
        }
        for (i, g) in self.goals.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_context_displays_true() {
        assert_eq!(Context::public().to_string(), "true");
        assert!(Context::public().is_public());
    }

    #[test]
    fn default_private_is_requester_eq_self() {
        let c = Context::default_private();
        assert_eq!(c.to_string(), "Requester = Self");
        assert!(c.is_default_private());
        assert!(!c.is_public());
    }

    #[test]
    fn goals_normalizes_true_away() {
        let c = Context::goals(vec![Literal::truth()]);
        assert!(c.is_public());
        let c2 = Context::goals(vec![Literal::truth(), Literal::new("p", vec![])]);
        assert_eq!(c2.goals.len(), 1);
    }

    #[test]
    fn instantiate_binds_pseudo_variables() {
        let c = Context::default_private();
        let goals = c.instantiate(PeerId::new("eOrg"), PeerId::new("Alice"));
        assert_eq!(goals.len(), 1);
        assert_eq!(goals[0].to_string(), "\"eOrg\" = \"Alice\"");
    }

    #[test]
    fn instantiate_leaves_other_vars_free() {
        let c = Context::goals(vec![Literal::new(
            "member",
            vec![Term::requester(), Term::var("Org")],
        )]);
        let goals = c.instantiate(PeerId::new("eOrg"), PeerId::new("Alice"));
        assert_eq!(goals[0].to_string(), "member(\"eOrg\", Org)");
    }

    #[test]
    fn instantiate_reaches_authority_chain() {
        // member(Requester) @ "BBB" @ Requester — both occurrences bind.
        let c = Context::goals(vec![Literal::new("member", vec![Term::requester()])
            .at(Term::str("BBB"))
            .at(Term::requester())]);
        let goals = c.instantiate(PeerId::new("E-Learn"), PeerId::new("Alice"));
        assert_eq!(
            goals[0].to_string(),
            "member(\"E-Learn\") @ \"BBB\" @ \"E-Learn\""
        );
    }

    #[test]
    fn requester_is_builds_equality_guard() {
        let c = Context::requester_is(PeerId::new("UIUC Registrar"));
        assert_eq!(c.to_string(), "Requester = \"UIUC Registrar\"");
        let ok = c.instantiate(PeerId::new("UIUC Registrar"), PeerId::new("UIUC"));
        assert_eq!(ok[0].to_string(), "\"UIUC Registrar\" = \"UIUC Registrar\"");
    }

    #[test]
    fn display_conjunction() {
        let c = Context::goals(vec![
            Literal::new("p", vec![Term::requester()]),
            Literal::cmp("<", Term::var("X"), Term::int(5)),
        ]);
        assert_eq!(c.to_string(), "p(Requester), X < 5");
    }
}
