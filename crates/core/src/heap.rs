//! A bump-allocated term heap: the assembly scratch behind hot-path
//! goal construction.
//!
//! The WAM builds structures on a *heap* — a bump region that grows as
//! instructions emit cells and is trimmed wholesale when the machine
//! backtracks. This module is that idea scaled to the engine's
//! representation: [`TermHeap`] is a capacity-retaining region of
//! [`Term`] cells owned by [`crate::Bindings`]. Compiled body
//! instructions (`Put*` in `peertrust-engine`) push one cell per emitted
//! argument; when the goal literal is complete the cells are frozen into
//! the boundary representation (a `Vec<Term>` argument block, with any
//! compound arguments carrying `Arc<[Term]>` as everywhere else) and the
//! region is reset to its mark.
//!
//! Two properties matter:
//!
//! * **No growth churn.** The region keeps its capacity across goals, so
//!   steady-state assembly never reallocates — the only allocation per
//!   built goal is the exact-size boundary block itself, instead of a
//!   grow-as-you-go `Vec` per literal per selection.
//! * **Trivial unwinding.** Cells never outlive the goal build that
//!   pushed them: `take`/`truncate` runs before the solver explores the
//!   goal, so trail checkpoints and rollbacks (the PR 5 mechanism) never
//!   have to know the heap exists. A rollback that abandons a branch
//!   abandons only *frozen* literals, which are ordinary owned values.
//!
//! The `cells`/`bytes`/`resets` counters surface as
//! `engine.heap.{cells,bytes,resets}` telemetry.

use crate::term::Term;

/// Counters for the `engine.heap.*` telemetry metrics. Monotone over the
/// life of the heap; [`TermHeap::take_stats`] drains them.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct HeapStats {
    /// Term cells pushed into the bump region.
    pub cells: u64,
    /// Bytes those cells occupy (`cells * size_of::<Term>()`).
    pub bytes: u64,
    /// Region resets (one per frozen goal / abandoned build).
    pub resets: u64,
}

/// A mark into the bump region; see [`TermHeap::mark`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HeapMark(usize);

/// The bump-allocated term-cell region. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct TermHeap {
    cells: Vec<Term>,
    stats: HeapStats,
}

impl TermHeap {
    pub fn new() -> TermHeap {
        TermHeap::default()
    }

    /// Current top of the region. O(1), allocation-free.
    pub fn mark(&self) -> HeapMark {
        HeapMark(self.cells.len())
    }

    /// Number of live cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Push one term cell onto the region.
    pub fn push(&mut self, t: Term) {
        self.stats.cells += 1;
        self.stats.bytes += std::mem::size_of::<Term>() as u64;
        self.cells.push(t);
    }

    /// The cells above `mark`, in push order.
    pub fn above(&self, mark: HeapMark) -> &[Term] {
        &self.cells[mark.0..]
    }

    /// Freeze the cells above `mark` into an owned boundary block and
    /// reset the region to the mark. The region keeps its capacity.
    pub fn take(&mut self, mark: HeapMark) -> Vec<Term> {
        self.stats.resets += 1;
        self.cells.split_off(mark.0)
    }

    /// Split the cells above `mark` into two boundary blocks at relative
    /// position `at` (argument block, authority block) and reset the
    /// region to the mark. One reset, two exact-size allocations.
    pub fn take_split(&mut self, mark: HeapMark, at: usize) -> (Vec<Term>, Vec<Term>) {
        self.stats.resets += 1;
        let auth = self.cells.split_off(mark.0 + at);
        let args = self.cells.split_off(mark.0);
        (args, auth)
    }

    /// Abandon the cells above `mark` without freezing them.
    pub fn truncate(&mut self, mark: HeapMark) {
        if self.cells.len() > mark.0 {
            self.stats.resets += 1;
            self.cells.truncate(mark.0);
        }
    }

    /// Drain the telemetry counters accumulated since the last call.
    pub fn take_stats(&mut self) -> HeapStats {
        std::mem::take(&mut self.stats)
    }

    /// Read the telemetry counters without resetting them.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_take_roundtrip_resets_to_mark() {
        let mut h = TermHeap::new();
        h.push(Term::int(0)); // below the mark: must survive
        let mark = h.mark();
        h.push(Term::int(1));
        h.push(Term::atom("a"));
        assert_eq!(h.above(mark), &[Term::int(1), Term::atom("a")]);
        let taken = h.take(mark);
        assert_eq!(taken, vec![Term::int(1), Term::atom("a")]);
        assert_eq!(h.len(), 1);
        let st = h.stats();
        assert_eq!(st.cells, 3);
        assert_eq!(st.bytes, 3 * std::mem::size_of::<Term>() as u64);
        assert_eq!(st.resets, 1);
    }

    #[test]
    fn take_split_partitions_args_and_authority() {
        let mut h = TermHeap::new();
        let mark = h.mark();
        h.push(Term::int(1));
        h.push(Term::int(2));
        h.push(Term::str("Auth"));
        let (args, auth) = h.take_split(mark, 2);
        assert_eq!(args, vec![Term::int(1), Term::int(2)]);
        assert_eq!(auth, vec![Term::str("Auth")]);
        assert!(h.is_empty());
        assert_eq!(h.stats().resets, 1);
    }

    #[test]
    fn truncate_abandons_without_freezing() {
        let mut h = TermHeap::new();
        let mark = h.mark();
        h.push(Term::int(1));
        h.truncate(mark);
        assert!(h.is_empty());
        assert_eq!(h.stats().resets, 1);
        // Truncating at the top is not a reset (nothing was abandoned).
        h.truncate(h.mark());
        assert_eq!(h.stats().resets, 1);
    }

    #[test]
    fn capacity_is_retained_across_resets() {
        let mut h = TermHeap::new();
        for _ in 0..3 {
            let mark = h.mark();
            for i in 0..64 {
                h.push(Term::int(i));
            }
            let _ = h.take(mark);
        }
        assert_eq!(h.stats().cells, 192);
        assert_eq!(h.stats().resets, 3);
    }
}
