//! Property-based tests for the trail-based [`Bindings`] store: parity
//! with the persistent [`Subst`] path (success/failure and resolved
//! terms, with and without the occurs check), rollback restoring the
//! store byte-for-byte, and `walk` termination on long triangular chains.

use peertrust_core::prelude::*;
use proptest::prelude::*;

/// Arbitrary terms over a small universe. Version-0 variables exercise a
/// `base = 0` store's named map; versions 1..4 exercise the dense slot
/// path. Slot variables are identified by version alone (the solver
/// allocates each from a monotone counter), so the generator gives every
/// slot version a single name.
fn arb_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (0u32..4).prop_map(|i| Term::var(format!("V{i}").as_str())),
        (1u32..5).prop_map(|ver| Term::Var(Var::versioned("S", ver))),
        (0u32..4).prop_map(|i| Term::atom(format!("a{i}").as_str())),
        (-3i64..4).prop_map(Term::int),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        (0u32..3, prop::collection::vec(inner, 1..3))
            .prop_map(|(f, args)| Term::compound(format!("f{f}").as_str(), args))
    })
}

fn arb_pairs() -> impl Strategy<Value = Vec<(Term, Term)>> {
    prop::collection::vec((arb_term(), arb_term()), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Running a sequence of unifications through the trail store and
    /// through cloned substitutions gives the same success/failure at
    /// every step — occurs-check rejections included — and resolves
    /// every term identically afterwards. (The occurs check stays on:
    /// with it off, cyclic bindings make resolution diverge in *both*
    /// implementations, so there is nothing meaningful to compare.)
    #[test]
    fn unify_in_matches_subst_unify(pairs in arb_pairs()) {
        let opts = UnifyOptions { occurs_check: true };
        let mut bs = Bindings::new(0);
        let mut s = Subst::new();
        for (a, b) in &pairs {
            let ok_new = unify_opts_in(a, b, &mut bs, opts);
            // The Subst contract allows partial bindings on failure, so
            // mirror the engine's old discipline: clone, try, commit on
            // success only.
            let mut s2 = s.clone();
            let ok_old = unify_opts(a, b, &mut s2, opts);
            prop_assert_eq!(ok_new, ok_old, "success diverges on {} = {}", a, b);
            if ok_old {
                s = s2;
            }
        }
        for (a, b) in &pairs {
            prop_assert_eq!(bs.apply(a), s.apply(a));
            prop_assert_eq!(bs.apply(b), s.apply(b));
        }
    }

    /// `rollback` restores the store to exactly the state captured by the
    /// checkpoint, no matter what a branch bound in between.
    #[test]
    fn rollback_restores_checkpoint_state(
        prefix in arb_pairs(),
        branch in arb_pairs(),
    ) {
        let mut bs = Bindings::new(0);
        for (a, b) in &prefix {
            let _ = unify_in(a, b, &mut bs);
        }
        let snapshot = bs.clone();
        let cp = bs.checkpoint();
        for (a, b) in &branch {
            let _ = unify_in(a, b, &mut bs);
        }
        bs.rollback(cp);
        prop_assert_eq!(&bs, &snapshot, "rollback failed to restore the store");
        // And the restored store still behaves like the snapshot.
        for (a, _) in &prefix {
            prop_assert_eq!(bs.apply(a), snapshot.apply(a));
        }
    }

    /// Binding chains of arbitrary depth resolve without blowing up:
    /// `walk` follows var-to-var links one hop at a time and `apply`
    /// flattens the whole chain.
    #[test]
    fn walk_terminates_on_long_triangular_chains(n in 1u32..600) {
        // V_1 -> V_2 -> ... -> V_n -> 42, built newest-first so every
        // lookup has to chase the full chain.
        let mut bs = Bindings::new(0);
        let mut s = Subst::new();
        bs.bind(Var::versioned("V", n), Term::int(42));
        s.bind(Var::versioned("V", n), Term::int(42));
        for i in (1..n).rev() {
            bs.bind(Var::versioned("V", i), Term::Var(Var::versioned("V", i + 1)));
            s.bind(Var::versioned("V", i), Term::Var(Var::versioned("V", i + 1)));
        }
        let head = Term::Var(Var::versioned("V", 1));
        prop_assert_eq!(bs.apply(&head), Term::int(42));
        prop_assert_eq!(s.apply(&head), Term::int(42));
        // walk stops at the first non-variable (or unbound variable).
        prop_assert_eq!(bs.walk(&head), &Term::int(42));
    }
}
