//! Property-based tests for terms, substitutions and unification.

use peertrust_core::prelude::*;
use proptest::prelude::*;

/// Strategy for arbitrary terms over a small symbol universe (small enough
/// that collisions — and therefore successful unifications — are common).
fn arb_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (0u32..4).prop_map(|i| Term::var(format!("V{i}").as_str())),
        (0u32..4).prop_map(|i| Term::atom(format!("a{i}").as_str())),
        (0u32..3).prop_map(|i| Term::str(format!("s{i}").as_str())),
        (-3i64..4).prop_map(Term::int),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        (0u32..3, prop::collection::vec(inner, 1..3))
            .prop_map(|(f, args)| Term::compound(format!("f{f}").as_str(), args))
    })
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    (
        0u32..3,
        prop::collection::vec(arb_term(), 0..3),
        prop::collection::vec(arb_term(), 0..2),
    )
        .prop_map(|(p, args, auth)| {
            let mut lit = Literal::new(format!("p{p}").as_str(), args);
            for a in auth {
                lit = lit.at(a);
            }
            lit
        })
}

/// Canonical form: variables renamed to `_N{i}` in first-occurrence order,
/// so two terms are variants iff their canonical forms are equal.
fn canonical(t: &Term) -> Term {
    let mut seen: Vec<Var> = Vec::new();
    t.map_vars(&mut |v| {
        let idx = match seen.iter().position(|w| *w == v) {
            Some(i) => i,
            None => {
                seen.push(v);
                seen.len() - 1
            }
        };
        Term::var(format!("_N{idx}").as_str())
    })
}

proptest! {
    /// A successful unifier makes the two terms syntactically equal.
    #[test]
    fn unifier_equates_terms(a in arb_term(), b in arb_term()) {
        let mut s = Subst::new();
        if unify(&a, &b, &mut s) {
            prop_assert_eq!(s.apply(&a), s.apply(&b));
        }
    }

    /// Unification is symmetric in success, and the two unifiers produce
    /// results equal up to variable renaming (unifiers for `f(V0)` vs
    /// `f(V1)` may pick either variable as the representative).
    #[test]
    fn unification_is_symmetric(a in arb_term(), b in arb_term()) {
        let mut s1 = Subst::new();
        let mut s2 = Subst::new();
        let r1 = unify(&a, &b, &mut s1);
        let r2 = unify(&b, &a, &mut s2);
        prop_assert_eq!(r1, r2);
        if r1 {
            prop_assert_eq!(canonical(&s1.apply(&a)), canonical(&s2.apply(&a)));
            prop_assert_eq!(canonical(&s1.apply(&b)), canonical(&s2.apply(&b)));
        }
    }

    /// Every term unifies with itself without new bindings on ground
    /// terms, and always unifies.
    #[test]
    fn self_unification_succeeds(a in arb_term()) {
        let mut s = Subst::new();
        prop_assert!(unify(&a, &a.clone(), &mut s));
        if a.is_ground() {
            prop_assert!(s.is_empty());
        }
    }

    /// Applying a substitution is idempotent: s(s(t)) = s(t).
    #[test]
    fn substitution_application_idempotent(a in arb_term(), b in arb_term()) {
        let mut s = Subst::new();
        if unify(&a, &b, &mut s) {
            let once = s.apply(&a);
            let twice = s.apply(&once);
            prop_assert_eq!(once, twice);
        }
    }

    /// A fresh variable unifies with anything not containing it.
    #[test]
    fn fresh_variable_unifies(t in arb_term()) {
        let fresh = Term::var("Fresh_unique");
        let mut s = Subst::new();
        let expected = !t.occurs(&Var::new("Fresh_unique")) || t == fresh;
        prop_assert_eq!(unify(&fresh, &t, &mut s), expected);
    }

    /// The unifier never binds a variable to a term containing it
    /// (occurs check soundness): applying the final substitution
    /// terminates and reaches a fixpoint.
    #[test]
    fn no_cyclic_bindings(a in arb_term(), b in arb_term()) {
        let mut s = Subst::new();
        if unify(&a, &b, &mut s) {
            // apply() would overflow the stack on a cyclic binding; the
            // idempotence check doubles as a cycle check.
            let r = s.apply(&a);
            prop_assert_eq!(s.apply(&r), r);
        }
    }

    /// Ground terms unify iff they are equal.
    #[test]
    fn ground_unification_is_equality(a in arb_term(), b in arb_term()) {
        prop_assume!(a.is_ground() && b.is_ground());
        let mut s = Subst::new();
        prop_assert_eq!(unify(&a, &b, &mut s), a == b);
        prop_assert!(s.is_empty());
    }

    /// Literal unification requires equal predicate, arity and authority
    /// depth; success equates the literals.
    #[test]
    fn literal_unification_equates(a in arb_literal(), b in arb_literal()) {
        let mut s = Subst::new();
        if unify_literals(&a, &b, &mut s) {
            prop_assert_eq!(a.pred, b.pred);
            prop_assert_eq!(a.args.len(), b.args.len());
            prop_assert_eq!(a.authority.len(), b.authority.len());
            prop_assert_eq!(s.apply_literal(&a), s.apply_literal(&b));
        }
    }

    /// Renaming apart never changes rule shape, and renamed rules share no
    /// variables with the original.
    #[test]
    fn rename_apart_disjoint(head in arb_literal(), body in prop::collection::vec(arb_literal(), 0..3)) {
        let rule = Rule::horn(head, body);
        let renamed = rule.rename_apart(1);
        prop_assert_eq!(rule.body.len(), renamed.body.len());
        let mut orig_vars = rule.vars();
        let renamed_vars = renamed.vars();
        orig_vars.retain(|v| renamed_vars.contains(v));
        prop_assert!(orig_vars.is_empty(), "shared vars: {orig_vars:?}");
    }

    /// `project` never invents bindings for unrequested variables.
    #[test]
    fn project_restricts(a in arb_term(), b in arb_term()) {
        let mut s = Subst::new();
        if unify(&a, &b, &mut s) {
            let mut vars = Vec::new();
            a.collect_vars(&mut vars);
            let p = s.project(&vars);
            for (v, _) in p.iter() {
                prop_assert!(vars.contains(v));
            }
        }
    }
}
