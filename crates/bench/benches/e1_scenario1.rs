//! E1: Scenario 1 (Alice & E-Learn, paper §4.1) — end-to-end negotiation
//! latency under both strategies, cold (fresh peers) and warm (credentials
//! cached from a previous run).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use peertrust_negotiation::Strategy;
use peertrust_scenarios::Scenario1;

fn bench_scenario1(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_scenario1");
    group.sample_size(20);

    for strategy in Strategy::ALL {
        group.bench_function(format!("cold/{strategy}"), |b| {
            b.iter_batched(
                Scenario1::build,
                |mut s| {
                    let out = s.run(strategy);
                    assert!(out.success);
                    out.messages
                },
                BatchSize::SmallInput,
            )
        });
    }

    group.bench_function("warm/parsimonious", |b| {
        b.iter_batched(
            || {
                let mut s = Scenario1::build();
                assert!(s.run(Strategy::Parsimonious).success);
                s
            },
            |mut s| {
                let out = s.run(Strategy::Parsimonious);
                assert!(out.success);
                out.messages
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_scenario1);
criterion_main!(benches);
