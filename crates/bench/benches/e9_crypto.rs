//! E9: signature overhead — SHA-256/HMAC throughput, rule sign/verify,
//! and the end-to-end cost a negotiation pays for signing (scenario 1
//! with and without the crypto path exercised).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use peertrust_core::{Literal, PeerId, Rule, Term};
use peertrust_crypto::{
    hmac::hmac_sha256, sha256_digest, sign_rule, verify_signed_rule, KeyRegistry,
};

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_primitives");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xa5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| sha256_digest(d))
        });
        group.bench_with_input(BenchmarkId::new("hmac", size), &data, |b, d| {
            b.iter(|| hmac_sha256(b"issuer-key", d))
        });
    }
    group.finish();
}

fn bench_rule_signing(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_rules");
    let registry = KeyRegistry::new();
    registry.register_derived(PeerId::new("UIUC"), 1);
    let rule = Rule::fact(Literal::new("student", vec![Term::str("Alice")]).at(Term::str("UIUC")))
        .signed_by("UIUC");

    group.bench_function("sign_rule", |b| {
        b.iter(|| sign_rule(&registry, &rule).unwrap())
    });

    let signed = sign_rule(&registry, &rule).unwrap();
    group.bench_function("verify_rule", |b| {
        b.iter(|| verify_signed_rule(&registry, &signed).unwrap())
    });
    group.finish();
}

fn bench_negotiation_crypto_share(c: &mut Criterion) {
    // Scenario 1 involves 4 credential transfers; measuring it alongside
    // raw sign/verify shows the crypto share of a negotiation is tiny.
    let mut group = c.benchmark_group("e9_negotiation");
    group.sample_size(20);
    group.bench_function("scenario1_with_signing", |b| {
        b.iter_batched(
            peertrust_scenarios::Scenario1::build,
            |mut s| {
                let out = s.run(peertrust_negotiation::Strategy::Parsimonious);
                assert!(out.success);
                out.credential_count()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_primitives,
    bench_rule_signing,
    bench_negotiation_crypto_share
);
criterion_main!(benches);
