//! E5: completeness/decision cost — how long each strategy takes to
//! *decide* random (possibly unsatisfiable) instances. The eager strategy
//! is complete, so its outcome doubles as ground truth; the bench sweeps
//! mixed satisfiable/unsatisfiable populations.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use peertrust_negotiation::Strategy;
use peertrust_net::{NegotiationId, SimNetwork};
use peertrust_scenarios::{random_policies, RandomPolicyConfig};

fn bench_interop(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_interop");
    group.sample_size(10);

    for n in [8usize, 16, 32] {
        for strategy in Strategy::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("decide/{}", strategy.name()), n),
                &n,
                |b, &n| {
                    b.iter_batched(
                        || {
                            // Cyclic graphs: a mix of sat and unsat.
                            (0..4u64)
                                .map(|seed| {
                                    random_policies(RandomPolicyConfig {
                                        creds_per_side: n,
                                        max_deps: 2,
                                        public_prob: 0.2,
                                        allow_cycles: true,
                                        seed,
                                        ..RandomPolicyConfig::default()
                                    })
                                })
                                .collect::<Vec<_>>()
                        },
                        |mut ws| {
                            let mut decided = 0u32;
                            for w in &mut ws {
                                let mut net = SimNetwork::new(1);
                                let out = strategy.run(
                                    &mut w.peers,
                                    &mut net,
                                    NegotiationId(1),
                                    w.requester,
                                    w.responder,
                                    w.goal.clone(),
                                );
                                // Eager must match ground truth exactly.
                                if strategy == Strategy::Eager {
                                    assert_eq!(out.success, w.satisfiable);
                                }
                                decided += 1;
                            }
                            decided
                        },
                        BatchSize::SmallInput,
                    )
                },
            );
        }
    }

    group.finish();
}

criterion_group!(benches, bench_interop);
criterion_main!(benches);
