//! E17: GEM distributed tabling on cyclic delegation meshes.
//!
//! The classical driver refuses every workload here with CycleDetected,
//! so there is no classical lane to compare against — instead the bench
//! tracks the GEM fixpoint's cost along two axes:
//!
//! - **ring size**: more peers in the strongly connected component means
//!   more edges to re-evaluate per round;
//! - **laps**: more laps means more fixpoint rounds before the tables
//!   stabilise.
//!
//! The single-chord variant adds an SCC-merge on top of the ring. A
//! batched group runs the mesh through the scheduler, matching the
//! `e17_gem_mesh` quickbench scenario.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use peertrust_negotiation::{negotiate, negotiate_batch, BatchConfig, BatchJob, SessionConfig};
use peertrust_net::{NegotiationId, SimNetwork};
use peertrust_scenarios::delegation_mesh;
use peertrust_telemetry::Telemetry;

fn gem_config() -> SessionConfig {
    SessionConfig {
        gem: true,
        gem_max_rounds: 32,
        ..SessionConfig::default()
    }
}

/// One GEM negotiation over a freshly built mesh; returns success.
fn run_mesh(n: usize, laps: usize, chords: bool) -> bool {
    let mut w = delegation_mesh(n, laps, chords);
    let mut net = SimNetwork::new(17);
    let requester = w.peer_ids[1];
    let out = negotiate(
        &mut w.peers,
        &mut net,
        gem_config(),
        NegotiationId(1),
        requester,
        w.responder,
        w.goal.clone(),
    );
    out.success
}

/// Fixpoint cost vs ring size at a fixed two laps.
fn bench_ring_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_ring");
    group.sample_size(10);
    for n in [2usize, 3, 4, 5] {
        group.bench_with_input(BenchmarkId::new("peers", n), &n, |b, &n| {
            b.iter(|| assert!(run_mesh(n, 2, false)))
        });
    }
    // The chord forces two overlapping loops to merge into one SCC.
    group.bench_function(BenchmarkId::new("peers_chord", 4), |b| {
        b.iter(|| assert!(run_mesh(4, 2, true)))
    });
    group.finish();
}

/// Fixpoint cost vs lap count at a fixed three-peer ring.
fn bench_laps(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_laps");
    group.sample_size(10);
    for laps in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::new("laps", laps), &laps, |b, &laps| {
            b.iter(|| assert!(run_mesh(3, laps, false)))
        });
    }
    group.finish();
}

/// The quickbench `e17_gem_mesh` workload through the batch scheduler.
fn bench_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_batch");
    group.sample_size(10);
    let mesh = delegation_mesh(3, 2, false);
    let jobs: Vec<BatchJob> = (0..4)
        .map(|_| BatchJob::new(mesh.peer_ids[1], mesh.responder, mesh.goal.clone()))
        .collect();
    group.throughput(Throughput::Elements(jobs.len() as u64));
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let cfg = BatchConfig {
                        workers,
                        session: gem_config(),
                        ..BatchConfig::default()
                    };
                    let rep = negotiate_batch(&mesh.peers, &jobs, &cfg, &Telemetry::disabled());
                    assert_eq!(rep.stats.successes, jobs.len());
                    rep.stats.negotiations_per_sec
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ring_size, bench_laps, bench_batched);
criterion_main!(benches);
