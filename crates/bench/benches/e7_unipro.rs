//! E7: UniPro policy-protection overhead — disclosing a policy guarded by
//! a chain of nested policy guards of growing depth, plus the raw
//! disclosure check.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use peertrust_core::{PeerId, Sym};
use peertrust_crypto::KeyRegistry;
use peertrust_negotiation::{request_policy, unlock_policy_chain, NegotiationPeer, PeerMap};
use peertrust_net::{NegotiationId, SimNetwork};

/// Build an owner with `depth` nested policy guards:
/// `policy{i}` is guarded by `policy{i+1}(Requester)`; `policy{depth}` is
/// public; each `policy{i}`'s body derives from the next. The requester
/// holds the credential that satisfies the innermost guard.
fn nested_policies(depth: usize) -> (PeerMap, PeerId, PeerId) {
    let registry = KeyRegistry::new();
    registry.register_derived(PeerId::new("CA"), 1);
    let mut owner = NegotiationPeer::new("Owner", registry.clone());
    for i in 0..depth {
        let next = i + 1;
        owner
            .load_program(&format!(
                r#"policy{i}(R) <-_(policy{next}(R)) policy{next}(R)."#
            ))
            .unwrap();
    }
    owner
        .load_program(&format!(r#"policy{depth}(R) <-_true unlocked{depth}(R)."#))
        .unwrap();
    // Every guard body is derivable for the requester.
    for i in 0..=depth {
        owner
            .load_program(&format!(r#"unlocked{i}("Requester-Peer")."#))
            .unwrap();
    }
    let mut peers = PeerMap::new();
    peers.insert(owner);
    peers.insert(NegotiationPeer::new("Requester-Peer", registry));
    (peers, PeerId::new("Requester-Peer"), PeerId::new("Owner"))
}

fn bench_unipro(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_unipro");
    group.sample_size(20);

    for depth in [0usize, 1, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("single_request", depth),
            &depth,
            |b, &depth| {
                b.iter_batched(
                    || nested_policies(depth),
                    |(mut peers, requester, owner)| {
                        let mut net = SimNetwork::new(1);
                        request_policy(
                            &mut peers,
                            &mut net,
                            NegotiationId(1),
                            requester,
                            owner,
                            Sym::new("policy0"),
                        )
                        .rules
                        .len()
                    },
                    BatchSize::SmallInput,
                )
            },
        );

        group.bench_with_input(
            BenchmarkId::new("unlock_chain", depth),
            &depth,
            |b, &depth| {
                b.iter_batched(
                    || nested_policies(depth),
                    |(mut peers, requester, owner)| {
                        let mut net = SimNetwork::new(1);
                        unlock_policy_chain(
                            &mut peers,
                            &mut net,
                            NegotiationId(1),
                            requester,
                            owner,
                            Sym::new("policy0"),
                            depth + 2,
                        )
                        .len()
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_unipro);
criterion_main!(benches);
