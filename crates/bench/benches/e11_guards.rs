//! E11: termination-guard overhead — how quickly cyclic (deadlocked)
//! policy graphs are rejected, and what the ancestor loop check costs on
//! recursive-but-terminating programs.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use peertrust_core::{KnowledgeBase, Literal, PeerId, Rule, Term};
use peertrust_crypto::KeyRegistry;
use peertrust_engine::{EngineConfig, Solver};
use peertrust_negotiation::{negotiate, NegotiationPeer, PeerMap, SessionConfig};
use peertrust_net::{NegotiationId, SimNetwork};

/// Two peers whose release policies form one big cycle of length `k` —
/// no safe sequence exists; the run must fail finitely.
fn deadlock_cycle(k: usize) -> (PeerMap, Literal) {
    let registry = KeyRegistry::new();
    registry.register_derived(PeerId::new("CA"), 1);
    let mut a = NegotiationPeer::new("A", registry.clone());
    let mut b = NegotiationPeer::new("B", registry.clone());
    for i in 0..k {
        let next = (i + 1) % k;
        let (peer, owner) = if i % 2 == 0 {
            (&mut a, "A")
        } else {
            (&mut b, "B")
        };
        peer.load_program(&format!(
            r#"
            cred{i}("{owner}") @ "CA" signedBy ["CA"].
            cred{i}(X) @ Y $ cred{next}(Requester) @ "CA" @ Requester <-_true cred{i}(X) @ Y.
            "#
        ))
        .unwrap();
    }
    // The resource needs B's cred1, whose release cycles through the
    // whole ring (k must be even so ownership alternates consistently).
    a.load_program(r#"resource(X) $ true <- cred1(X) @ "CA" @ X."#)
        .unwrap();
    let mut peers = PeerMap::new();
    peers.insert(a);
    peers.insert(b);
    (peers, Literal::new("resource", vec![Term::str("B")]))
}

fn bench_cycle_rejection(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_guards");
    group.sample_size(10);

    for k in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("deadlock_reject", k), &k, |b, &k| {
            b.iter_batched(
                || deadlock_cycle(k),
                |(mut peers, goal)| {
                    let mut net = SimNetwork::new(1);
                    let out = negotiate(
                        &mut peers,
                        &mut net,
                        SessionConfig::default(),
                        NegotiationId(1),
                        PeerId::new("B"),
                        PeerId::new("A"),
                        goal,
                    );
                    assert!(!out.success);
                    out.messages
                },
                BatchSize::SmallInput,
            )
        });
    }

    // Loop-check overhead ablation on a terminating recursive program.
    for (name, check) in [("ancestor_check_on", true), ("ancestor_check_off", false)] {
        group.bench_function(format!("closure/{name}"), |b| {
            b.iter_batched(
                || {
                    let mut kb = KnowledgeBase::new();
                    kb.add_local(Rule::horn(
                        Literal::new("reach", vec![Term::var("X"), Term::var("Y")]),
                        vec![Literal::new("edge", vec![Term::var("X"), Term::var("Y")])],
                    ));
                    kb.add_local(Rule::horn(
                        Literal::new("reach", vec![Term::var("X"), Term::var("Z")]),
                        vec![
                            Literal::new("edge", vec![Term::var("X"), Term::var("Y")]),
                            Literal::new("reach", vec![Term::var("Y"), Term::var("Z")]),
                        ],
                    ));
                    for i in 0..24i64 {
                        kb.add_local(Rule::fact(Literal::new(
                            "edge",
                            vec![Term::int(i), Term::int(i + 1)],
                        )));
                    }
                    kb
                },
                |kb| {
                    let mut solver =
                        Solver::new(&kb, PeerId::new("self")).with_config(EngineConfig {
                            ancestor_loop_check: check,
                            max_solutions: usize::MAX,
                            max_depth: 512,
                            ..EngineConfig::default()
                        });
                    let goals = [Literal::new("reach", vec![Term::int(0), Term::var("W")])];
                    solver.solve(&goals).len()
                },
                BatchSize::SmallInput,
            )
        });
    }

    group.finish();
}

criterion_group!(benches, bench_cycle_rejection);
criterion_main!(benches);
