//! E14: parallel negotiation throughput — negotiations/sec of the batch
//! scheduler at 1/2/4/8 workers on the scenario-generator grid, cold vs
//! warm shared remote-answer cache, plus the single-threaded overhead
//! check for the concurrent answer table (`TableHandle::Concurrent` vs
//! the `Rc<RefCell<_>>` baseline on the same warm workload).
//!
//! Scaling caveat: wall-clock speedup at >1 workers requires real cores;
//! on a single-core host the worker counts measure scheduling overhead
//! only. The per-worker utilization series exported by the batch driver
//! (`negotiation.throughput.*`) tells the two situations apart.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use peertrust_core::{KnowledgeBase, Literal, PeerId, Rule, Term};
use peertrust_engine::{AnswerTable, ConcurrentTable, EngineConfig, SharedTable, Solver};
use peertrust_negotiation::{negotiate_batch, BatchConfig, SharedRemoteAnswerCache};
use peertrust_scenarios::throughput_grid;
use peertrust_telemetry::Telemetry;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

const CLIENTS: usize = 8;
const REPEATS: usize = 4;
const DEPTH: usize = 3;

fn batch_config(workers: usize, cache: Option<SharedRemoteAnswerCache>) -> BatchConfig {
    BatchConfig {
        workers,
        shared_cache: cache,
        ..BatchConfig::default()
    }
}

/// Negotiations/sec at each worker count, no shared cache (the fully
/// deterministic regime).
fn bench_batch_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_batch");
    group.sample_size(10);
    let w = throughput_grid(CLIENTS, REPEATS, DEPTH);
    group.throughput(Throughput::Elements(w.jobs.len() as u64));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("uncached", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let report = negotiate_batch(
                        &w.peers,
                        &w.jobs,
                        &batch_config(workers, None),
                        &Telemetry::disabled(),
                    );
                    assert_eq!(report.stats.successes, w.jobs.len());
                    report.stats.negotiations_per_sec
                })
            },
        );
    }
    group.finish();
}

/// Cold vs warm shared cache at a fixed worker count: cold rebuilds the
/// cache every run, warm reuses one cache pre-populated by a full pass.
fn bench_batch_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_cache");
    group.sample_size(10);
    let w = throughput_grid(CLIENTS, REPEATS, DEPTH);
    group.throughput(Throughput::Elements(w.jobs.len() as u64));
    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("cold_cache", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let cache = SharedRemoteAnswerCache::new();
                    let report = negotiate_batch(
                        &w.peers,
                        &w.jobs,
                        &batch_config(workers, Some(cache)),
                        &Telemetry::disabled(),
                    );
                    assert_eq!(report.stats.successes, w.jobs.len());
                    report.stats.negotiations_per_sec
                })
            },
        );
        let warm = SharedRemoteAnswerCache::new();
        negotiate_batch(
            &w.peers,
            &w.jobs,
            &batch_config(workers, Some(warm.clone())),
            &Telemetry::disabled(),
        );
        group.bench_with_input(
            BenchmarkId::new("warm_cache", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let report = negotiate_batch(
                        &w.peers,
                        &w.jobs,
                        &batch_config(workers, Some(warm.clone())),
                        &Telemetry::disabled(),
                    );
                    assert_eq!(report.stats.successes, w.jobs.len());
                    report.stats.negotiations_per_sec
                })
            },
        );
    }
    group.finish();
}

fn closure_kb(n: usize) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.add_local(Rule::horn(
        Literal::new("reach", vec![Term::var("X"), Term::var("Y")]),
        vec![Literal::new("edge", vec![Term::var("X"), Term::var("Y")])],
    ));
    kb.add_local(Rule::horn(
        Literal::new("reach", vec![Term::var("X"), Term::var("Z")]),
        vec![
            Literal::new("edge", vec![Term::var("X"), Term::var("Y")]),
            Literal::new("reach", vec![Term::var("Y"), Term::var("Z")]),
        ],
    ));
    for i in 0..n {
        kb.add_local(Rule::fact(Literal::new(
            "edge",
            vec![Term::int(i as i64), Term::int(i as i64 + 1)],
        )));
    }
    kb
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        max_solutions: usize::MAX,
        max_depth: 4096,
        tabling: true,
        ..EngineConfig::default()
    }
}

/// Single-threaded handle-overhead check: the same warm tabled solve
/// through the `Rc<RefCell<_>>` table and through the sharded concurrent
/// table. The two series should be indistinguishable — the concurrent
/// table's read-lock probe is the only extra cost on a hit.
fn bench_table_handles(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_table");
    group.sample_size(20);
    for n in [64usize, 256] {
        let kb = closure_kb(n);
        let goal = [Literal::new("reach", vec![Term::int(0), Term::var("W")])];

        let local: SharedTable = Rc::new(RefCell::new(AnswerTable::new()));
        {
            let mut warmer = Solver::new(&kb, PeerId::new("self"))
                .with_config(engine_config())
                .with_table(local.clone());
            assert_eq!(warmer.solve(&goal).len(), n);
        }
        group.bench_with_input(BenchmarkId::new("local_warm", n), &kb, |b, kb| {
            b.iter(|| {
                let mut solver = Solver::new(kb, PeerId::new("self"))
                    .with_config(engine_config())
                    .with_table(local.clone());
                let count = solver.solve(&goal).len();
                assert_eq!(count, n);
                count
            })
        });

        let shared = Arc::new(ConcurrentTable::new());
        {
            let mut warmer = Solver::new(&kb, PeerId::new("self"))
                .with_config(engine_config())
                .with_concurrent_table(shared.clone());
            assert_eq!(warmer.solve(&goal).len(), n);
        }
        group.bench_with_input(BenchmarkId::new("concurrent_warm", n), &kb, |b, kb| {
            b.iter(|| {
                let mut solver = Solver::new(kb, PeerId::new("self"))
                    .with_config(engine_config())
                    .with_concurrent_table(shared.clone());
                let count = solver.solve(&goal).len();
                assert_eq!(count, n);
                count
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_workers,
    bench_batch_cache,
    bench_table_handles
);
criterion_main!(benches);
