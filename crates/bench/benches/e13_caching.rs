//! E13: the caching hierarchy — SLD tabling (cold vs warm answer tables)
//! at the engine layer, and the remote-answer cache (uncached vs
//! session-cached vs warm cross-negotiation) at the negotiation layer, on
//! the paper scenarios and the chain-depth workload.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use peertrust_core::{KnowledgeBase, Literal, PeerId, Rule, Term};
use peertrust_engine::{AnswerTable, EngineConfig, SharedTable, Solver};
use peertrust_negotiation::{negotiate, negotiate_cached, RemoteAnswerCache, SessionConfig};
use peertrust_net::{NegotiationId, SimNetwork};
use peertrust_scenarios::{chain, delegation_chain, Scenario1, Scenario2, Variant2, Workload};
use peertrust_telemetry::Telemetry;
use std::cell::RefCell;
use std::rc::Rc;

fn closure_kb(n: usize) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.add_local(Rule::horn(
        Literal::new("reach", vec![Term::var("X"), Term::var("Y")]),
        vec![Literal::new("edge", vec![Term::var("X"), Term::var("Y")])],
    ));
    kb.add_local(Rule::horn(
        Literal::new("reach", vec![Term::var("X"), Term::var("Z")]),
        vec![
            Literal::new("edge", vec![Term::var("X"), Term::var("Y")]),
            Literal::new("reach", vec![Term::var("Y"), Term::var("Z")]),
        ],
    ));
    for i in 0..n {
        kb.add_local(Rule::fact(Literal::new(
            "edge",
            vec![Term::int(i as i64), Term::int(i as i64 + 1)],
        )));
    }
    kb
}

fn engine_config(tabling: bool) -> EngineConfig {
    EngineConfig {
        max_solutions: usize::MAX,
        max_depth: 4096,
        tabling,
        ..EngineConfig::default()
    }
}

fn bench_solver_tabling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_solver");
    group.sample_size(20);
    for n in [64usize, 256] {
        let kb = closure_kb(n);
        let goal = [Literal::new("reach", vec![Term::int(0), Term::var("W")])];

        group.bench_with_input(BenchmarkId::new("untabled", n), &kb, |b, kb| {
            b.iter(|| {
                let mut solver =
                    Solver::new(kb, PeerId::new("self")).with_config(engine_config(false));
                let count = solver.solve(&goal).len();
                assert_eq!(count, n);
                count
            })
        });

        // Cold: every iteration builds its table from scratch.
        group.bench_with_input(BenchmarkId::new("tabled_cold", n), &kb, |b, kb| {
            b.iter(|| {
                let mut solver =
                    Solver::new(kb, PeerId::new("self")).with_config(engine_config(true));
                let count = solver.solve(&goal).len();
                assert_eq!(count, n);
                count
            })
        });

        // Warm: one shared answer table, pre-populated once; the measured
        // solves answer the top-level variant straight from the table.
        let table: SharedTable = Rc::new(RefCell::new(AnswerTable::new()));
        {
            let mut warmer = Solver::new(&kb, PeerId::new("self"))
                .with_config(engine_config(true))
                .with_table(table.clone());
            assert_eq!(warmer.solve(&goal).len(), n);
        }
        group.bench_with_input(BenchmarkId::new("tabled_warm", n), &kb, |b, kb| {
            b.iter(|| {
                let mut solver = Solver::new(kb, PeerId::new("self"))
                    .with_config(engine_config(true))
                    .with_table(table.clone());
                let count = solver.solve(&goal).len();
                assert_eq!(count, n);
                count
            })
        });
    }
    group.finish();
}

fn session_config(cache: bool) -> SessionConfig {
    SessionConfig {
        cache_remote_answers: cache,
        ..SessionConfig::default()
    }
}

fn run_scenario1(cfg: SessionConfig) -> u64 {
    let mut s = Scenario1::build();
    let mut net = SimNetwork::new(0xE1);
    let out = negotiate(
        &mut s.peers,
        &mut net,
        cfg,
        NegotiationId(1),
        PeerId::new("Alice"),
        PeerId::new("E-Learn"),
        Scenario1::goal(),
    );
    assert!(out.success);
    out.messages
}

fn run_scenario2(cfg: SessionConfig) -> u64 {
    let mut s = Scenario2::build(Variant2::Base);
    let mut net = SimNetwork::new(0xE2);
    let out = negotiate(
        &mut s.peers,
        &mut net,
        cfg,
        NegotiationId(2),
        PeerId::new("Bob"),
        PeerId::new("E-Learn"),
        Scenario2::paid_goal(1000),
    );
    assert!(out.success);
    out.messages
}

fn run_workload(w: &mut Workload, cfg: SessionConfig, nid: u64) -> u64 {
    let mut net = SimNetwork::new(nid);
    let out = negotiate(
        &mut w.peers,
        &mut net,
        cfg,
        NegotiationId(nid),
        w.requester,
        w.responder,
        w.goal.clone(),
    );
    assert!(out.success);
    out.messages
}

fn bench_negotiation_caching(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_negotiation");
    group.sample_size(20);

    for (scenario, runner) in [
        ("scenario1", run_scenario1 as fn(SessionConfig) -> u64),
        ("scenario2", run_scenario2 as fn(SessionConfig) -> u64),
    ] {
        group.bench_function(format!("{scenario}/uncached"), |b| {
            b.iter(|| runner(session_config(false)))
        });
        group.bench_function(format!("{scenario}/session_cache"), |b| {
            b.iter(|| runner(session_config(true)))
        });
    }

    for depth in [4usize, 12] {
        for (name, cached) in [("uncached", false), ("session_cache", true)] {
            group.bench_with_input(BenchmarkId::new(format!("chain/{name}"), depth), &depth, {
                move |b, &depth| {
                    b.iter_batched(
                        move || chain(depth),
                        |mut w| run_workload(&mut w, session_config(cached), 1),
                        BatchSize::SmallInput,
                    )
                }
            });
        }
    }

    // Cross-negotiation cache on the delegation chain (E6's warm repeat):
    // all release policies there are public, so the authorities' answers
    // are eligible for the shared cache and the repeat negotiation skips
    // the chain-discovery round-trips entirely.
    let depth = 8usize;
    group.bench_function("delegation_warm/no_cross_cache", |b| {
        b.iter_batched(
            || {
                let mut w = delegation_chain(depth);
                run_workload(&mut w, session_config(true), 1);
                w
            },
            |mut w| run_workload(&mut w, session_config(true), 2),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("delegation_warm/cross_cache", |b| {
        b.iter_batched(
            || {
                let mut w = delegation_chain(depth);
                let mut cache = RemoteAnswerCache::new();
                let mut net = SimNetwork::new(1);
                let out = negotiate_cached(
                    &mut w.peers,
                    &mut net,
                    session_config(true),
                    NegotiationId(1),
                    w.requester,
                    w.responder,
                    w.goal.clone(),
                    &mut cache,
                    &Telemetry::disabled(),
                );
                assert!(out.success);
                (w, cache)
            },
            |(mut w, mut cache)| {
                let mut net = SimNetwork::new(2);
                let out = negotiate_cached(
                    &mut w.peers,
                    &mut net,
                    session_config(true),
                    NegotiationId(2),
                    w.requester,
                    w.responder,
                    w.goal.clone(),
                    &mut cache,
                    &Telemetry::disabled(),
                );
                assert!(out.success);
                out.messages
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_solver_tabling, bench_negotiation_caching);
criterion_main!(benches);
