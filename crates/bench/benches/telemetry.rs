//! Telemetry overhead: the scenario-1 negotiation with the pipeline
//! disabled, attached to a no-op recorder, attached to a ring buffer, and
//! streaming JSONL to an in-memory sink. The disabled and no-op rows bound
//! the cost of the `enabled()` gates; ring vs JSONL bound the cost of
//! actually keeping the events. The tracing row adds full causal-trace
//! reconstruction plus the Chrome export on top of the ring, bounding
//! what `--out-dir` artifact generation costs per negotiation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use peertrust_negotiation::Strategy;
use peertrust_scenarios::Scenario1;
use peertrust_telemetry::{to_chrome_json, JsonlWriter, NoopRecorder, Telemetry, Trace};

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(20);

    group.bench_function("disabled", |b| {
        b.iter_batched(
            Scenario1::build,
            |mut s| {
                let out = s.run_traced(Strategy::Parsimonious, &Telemetry::disabled());
                assert!(out.success);
                out.messages
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("noop-recorder", |b| {
        b.iter_batched(
            Scenario1::build,
            |mut s| {
                let t = Telemetry::with_recorder(Box::new(NoopRecorder));
                let out = s.run_traced(Strategy::Parsimonious, &t);
                assert!(out.success);
                out.messages
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("ring-buffer", |b| {
        b.iter_batched(
            Scenario1::build,
            |mut s| {
                let (t, ring) = Telemetry::ring(65536);
                let out = s.run_traced(Strategy::Parsimonious, &t);
                assert!(out.success);
                assert!(!ring.events().is_empty());
                out.messages
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("tracing", |b| {
        b.iter_batched(
            Scenario1::build,
            |mut s| {
                let (t, ring) = Telemetry::ring(65536);
                let out = s.run_traced(Strategy::Parsimonious, &t);
                assert!(out.success);
                let traces = Trace::from_events(&ring.events());
                assert_eq!(traces.len(), 1);
                traces[0].validate().expect("well-formed trace");
                let cp = traces[0].critical_path();
                assert_eq!(
                    cp.solve_ticks + cp.net_wait_ticks + cp.backoff_ticks,
                    cp.total_ticks
                );
                to_chrome_json(&traces).len()
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("jsonl-writer", |b| {
        b.iter_batched(
            Scenario1::build,
            |mut s| {
                let sink: Vec<u8> = Vec::with_capacity(1 << 20);
                let t = Telemetry::with_recorder(Box::new(JsonlWriter::new(sink)));
                let out = s.run_traced(Strategy::Parsimonious, &t);
                assert!(out.success);
                out.messages
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
