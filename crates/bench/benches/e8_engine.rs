//! E8: engine micro-costs — unification, SLD query throughput over
//! growing fact bases, transitive closure, forward-chaining saturation,
//! and the occurs-check ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use peertrust_core::{unify_opts, KnowledgeBase, Literal, PeerId, Rule, Subst, Term, UnifyOptions};
use peertrust_engine::{saturate, EngineConfig, ForwardConfig, Solver};

fn deep_term(depth: usize, leaf: Term) -> Term {
    let mut t = leaf;
    for _ in 0..depth {
        t = Term::compound("f", vec![t]);
    }
    t
}

fn bench_unification(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_unify");
    for depth in [4usize, 16, 64] {
        let a = deep_term(depth, Term::var("X"));
        let b = deep_term(depth, Term::int(1));
        for (name, occurs) in [("occurs_on", true), ("occurs_off", false)] {
            group.bench_with_input(
                BenchmarkId::new(name, depth),
                &(a.clone(), b.clone()),
                |bench, (a, b)| {
                    bench.iter(|| {
                        let mut s = Subst::new();
                        assert!(unify_opts(
                            a,
                            b,
                            &mut s,
                            UnifyOptions {
                                occurs_check: occurs
                            }
                        ));
                        s.len()
                    })
                },
            );
        }
    }
    group.finish();
}

fn facts_kb(n: usize) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    for i in 0..n {
        kb.add_local(Rule::fact(Literal::new(
            "fact",
            vec![Term::int(i as i64), Term::int((i * 7 % 101) as i64)],
        )));
    }
    kb.add_local(Rule::horn(
        Literal::new("pair", vec![Term::var("X"), Term::var("Y")]),
        vec![
            Literal::new("fact", vec![Term::var("X"), Term::var("Y")]),
            Literal::cmp("<", Term::var("Y"), Term::int(50)),
        ],
    ));
    kb
}

fn bench_sld(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_sld");
    group.sample_size(20);
    for n in [100usize, 1_000, 10_000] {
        let kb = facts_kb(n);
        group.bench_with_input(BenchmarkId::new("enumerate", n), &kb, |b, kb| {
            b.iter(|| {
                let mut solver = Solver::new(kb, PeerId::new("self")).with_config(EngineConfig {
                    max_solutions: usize::MAX,
                    ..EngineConfig::default()
                });
                let goals = [Literal::new("pair", vec![Term::var("A"), Term::var("B")])];
                solver.solve(&goals).len()
            })
        });
        group.bench_with_input(BenchmarkId::new("ground_lookup", n), &kb, |b, kb| {
            b.iter(|| {
                let mut solver = Solver::new(kb, PeerId::new("self"));
                let goals = [Literal::new(
                    "fact",
                    vec![Term::int((n / 2) as i64), Term::var("B")],
                )];
                solver.solve(&goals).len()
            })
        });
    }

    // Transitive closure on a chain graph.
    for n in [32usize, 128] {
        group.bench_with_input(BenchmarkId::new("closure_chain", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut kb = KnowledgeBase::new();
                    kb.add_local(Rule::horn(
                        Literal::new("reach", vec![Term::var("X"), Term::var("Y")]),
                        vec![Literal::new("edge", vec![Term::var("X"), Term::var("Y")])],
                    ));
                    kb.add_local(Rule::horn(
                        Literal::new("reach", vec![Term::var("X"), Term::var("Z")]),
                        vec![
                            Literal::new("edge", vec![Term::var("X"), Term::var("Y")]),
                            Literal::new("reach", vec![Term::var("Y"), Term::var("Z")]),
                        ],
                    ));
                    for i in 0..n {
                        kb.add_local(Rule::fact(Literal::new(
                            "edge",
                            vec![Term::int(i as i64), Term::int(i as i64 + 1)],
                        )));
                    }
                    kb
                },
                |kb| {
                    let mut solver =
                        Solver::new(&kb, PeerId::new("self")).with_config(EngineConfig {
                            max_solutions: usize::MAX,
                            max_depth: 4096,
                            ..EngineConfig::default()
                        });
                    let goals = [Literal::new("reach", vec![Term::int(0), Term::var("W")])];
                    solver.solve(&goals).len()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_forward");
    group.sample_size(10);
    for n in [16usize, 64] {
        group.bench_with_input(BenchmarkId::new("closure_chain", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut kb = KnowledgeBase::new();
                    kb.add_local(Rule::horn(
                        Literal::new("reach", vec![Term::var("X"), Term::var("Y")]),
                        vec![Literal::new("edge", vec![Term::var("X"), Term::var("Y")])],
                    ));
                    kb.add_local(Rule::horn(
                        Literal::new("reach", vec![Term::var("X"), Term::var("Z")]),
                        vec![
                            Literal::new("edge", vec![Term::var("X"), Term::var("Y")]),
                            Literal::new("reach", vec![Term::var("Y"), Term::var("Z")]),
                        ],
                    ));
                    for i in 0..n {
                        kb.add_local(Rule::fact(Literal::new(
                            "edge",
                            vec![Term::int(i as i64), Term::int(i as i64 + 1)],
                        )));
                    }
                    kb
                },
                |kb| {
                    saturate(&kb, PeerId::new("self"), ForwardConfig::default())
                        .facts
                        .len()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_unification, bench_sld, bench_forward);
criterion_main!(benches);
