//! E15: negotiation resilience under deterministic fault injection — the
//! batch scheduler on the E14 grid, swept over drop rates × retry
//! budgets. Measures throughput degradation as the fault lane sheds
//! load, and asserts the convergence bar in-line: with the default retry
//! budget, every scenario at drop ≤ 0.2 reaches 100% of the fault-free
//! success count; with retries disabled, loss shows up as failed (but
//! cleanly terminated) sessions.
//!
//! The fault plans are seeded, so every sample of every benchmark runs
//! the identical fault schedule — criterion's variance here measures the
//! machine, not the faults.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use peertrust_negotiation::{negotiate_batch, BatchConfig};
use peertrust_scenarios::resilience_grid;
use peertrust_telemetry::Telemetry;

const CLIENTS: usize = 4;
const REPEATS: usize = 3;
const DEPTH: usize = 2;
const FAULT_SEED: u64 = 15;

const DROP_RATES: &[f64] = &[0.0, 0.05, 0.2];
const RETRY_BUDGETS: &[u32] = &[0, 4];

/// Throughput of the resilient batch at every grid point, with the
/// convergence bar asserted on the retry-enabled cells.
fn bench_resilience_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_resilience");
    group.sample_size(10);
    let (w, points) = resilience_grid(
        CLIENTS,
        REPEATS,
        DEPTH,
        FAULT_SEED,
        DROP_RATES,
        RETRY_BUDGETS,
    );
    group.throughput(Throughput::Elements(w.jobs.len() as u64));

    let clean = negotiate_batch(
        &w.peers,
        &w.jobs,
        &BatchConfig::default(),
        &Telemetry::disabled(),
    );
    assert_eq!(clean.stats.successes, w.jobs.len());

    for point in &points {
        let cfg = BatchConfig {
            workers: 2,
            faults: Some(point.faults.clone()),
            ..BatchConfig::default()
        };
        // The E15 acceptance bar, checked once up front: a retry budget
        // recovers 100% of the fault-free successes at drop ≤ 0.2.
        let report = negotiate_batch(&w.peers, &w.jobs, &cfg, &Telemetry::disabled());
        if point.max_retries > 0 {
            assert_eq!(
                report.stats.successes, clean.stats.successes,
                "{}: retries must recover the fault-free success count",
                point.label
            );
            assert_eq!(report.stats.converged, report.stats.jobs, "{}", point.label);
        } else if point.drop_rate > 0.0 {
            // No budget: loss must surface as terminated failures, not
            // hangs (the bench itself would time out on a hang).
            assert!(report.stats.converged <= report.stats.jobs);
        }
        group.bench_with_input(BenchmarkId::new("batch", &point.label), &cfg, |b, cfg| {
            b.iter(|| {
                let report = negotiate_batch(&w.peers, &w.jobs, cfg, &Telemetry::disabled());
                assert_eq!(report.outcomes.len(), w.jobs.len());
                report.stats.negotiations_per_sec
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_resilience_grid);
criterion_main!(benches);
