//! E12: substrate micro-costs — RDF parsing/import, super-peer routing
//! lookups, wire-codec framing, and access-token redemption vs full
//! renegotiation.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use peertrust_core::{PeerId, Sym};
use peertrust_crypto::{KeyRegistry, RevocationList};
use peertrust_negotiation::{
    issue_ticket, negotiate, redeem_ticket, NegotiationPeer, PeerMap, SessionConfig,
};
use peertrust_net::{encode_frame, NegotiationId, SimNetwork, SuperPeerNetwork};
use peertrust_parser::parse_literal;
use peertrust_rdf::{import_metadata, parse_ntriples, TripleStore};

fn catalog(n: usize) -> String {
    let mut s = String::new();
    for i in 0..n {
        s.push_str(&format!(
            "<http://e/courses/c{i}> <http://e/terms#price> \"{}\" .\n",
            (i * 37) % 3000
        ));
        s.push_str(&format!(
            "<http://e/courses/c{i}> <http://purl.org/dc/terms/title> \"Course {i}\" .\n"
        ));
    }
    s
}

fn bench_rdf(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_rdf");
    for n in [100usize, 1_000, 10_000] {
        let doc = catalog(n);
        group.throughput(Throughput::Bytes(doc.len() as u64));
        group.bench_with_input(BenchmarkId::new("parse", n), &doc, |b, doc| {
            b.iter(|| parse_ntriples(doc).unwrap().len())
        });
        let triples = parse_ntriples(&doc).unwrap();
        group.bench_with_input(BenchmarkId::new("import", n), &triples, |b, triples| {
            b.iter_batched(
                || triples.clone().into_iter().collect::<TripleStore>(),
                |store| {
                    let mut kb = peertrust_core::KnowledgeBase::new();
                    import_metadata(&store, &mut kb).unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_routing");
    for (sps, providers) in [(4usize, 100usize), (16, 1_000)] {
        let mut net = SuperPeerNetwork::new((0..sps).map(|i| PeerId::new(&format!("SP{i}"))));
        for p in 0..providers {
            let leaf = PeerId::new(&format!("prov{p}"));
            net.attach(leaf, PeerId::new(&format!("SP{}", p % sps)));
            net.advertise(leaf, Sym::new(&format!("svc{}", p % 50)));
        }
        let asker = PeerId::new("prov0");
        group.bench_function(format!("lookup/sps{sps}_prov{providers}"), |b| {
            b.iter(|| net.lookup(asker, Sym::new("svc42"), true).providers.len())
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_codec");
    let registry = KeyRegistry::new();
    registry.register_derived(PeerId::new("UIUC"), 1);
    let rule = peertrust_core::Rule::fact(
        peertrust_core::Literal::new("student", vec![peertrust_core::Term::str("Alice")])
            .at(peertrust_core::Term::str("UIUC")),
    )
    .signed_by("UIUC");
    let signed = peertrust_crypto::sign_rule(&registry, &rule).unwrap();
    let msg = peertrust_net::Message {
        id: peertrust_net::MessageId(1),
        negotiation: NegotiationId(1),
        from: PeerId::new("Alice"),
        to: PeerId::new("E-Learn"),
        payload: peertrust_net::Payload::CredentialPush {
            rules: vec![signed],
        },
        hops: 0,
        trace: peertrust_net::TraceContext::NONE,
    };
    group.bench_function("encode_frame", |b| {
        b.iter(|| encode_frame(&msg).unwrap().len())
    });
    let frame = encode_frame(&msg).unwrap();
    group.bench_function("decode_frame", |b| {
        b.iter_batched(
            || bytes::BytesMut::from(&frame[..]),
            |mut buf| peertrust_net::decode_frame(&mut buf).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_tickets(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_tickets");
    group.sample_size(20);

    let build = || {
        let registry = KeyRegistry::new();
        registry.register_derived(PeerId::new("UIUC"), 1);
        registry.register_derived(PeerId::new("Server"), 2);
        let mut peers = PeerMap::new();
        let mut server = NegotiationPeer::new("Server", registry.clone());
        server
            .load_program(r#"resource(X) $ true <- student(X) @ "UIUC" @ X."#)
            .unwrap();
        peers.insert(server);
        let mut alice = NegotiationPeer::new("Alice", registry);
        alice
            .load_program(
                r#"
                student("Alice") @ "UIUC" signedBy ["UIUC"].
                student(X) @ Y $ true <-_true student(X) @ Y.
                "#,
            )
            .unwrap();
        peers.insert(alice);
        peers
    };

    group.bench_function("renegotiate_each_visit", |b| {
        b.iter_batched(
            build,
            |mut peers| {
                let mut net = SimNetwork::new(1);
                let out = negotiate(
                    &mut peers,
                    &mut net,
                    SessionConfig::default(),
                    NegotiationId(1),
                    PeerId::new("Alice"),
                    PeerId::new("Server"),
                    parse_literal(r#"resource("Alice")"#).unwrap(),
                );
                assert!(out.success);
                out.messages
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("redeem_token_visit", |b| {
        b.iter_batched(
            || {
                let mut peers = build();
                let mut net = SimNetwork::new(1);
                let out = negotiate(
                    &mut peers,
                    &mut net,
                    SessionConfig::default(),
                    NegotiationId(1),
                    PeerId::new("Alice"),
                    PeerId::new("Server"),
                    parse_literal(r#"resource("Alice")"#).unwrap(),
                );
                let ticket = issue_ticket(
                    peers.get(PeerId::new("Server")).unwrap(),
                    &out,
                    1,
                    1_000_000,
                )
                .unwrap();
                let resource = out.granted[0].clone();
                (peers, ticket, resource)
            },
            |(peers, ticket, resource)| {
                let server = peers.get(PeerId::new("Server")).unwrap();
                let crl = RevocationList::new();
                redeem_ticket(server, &crl, &ticket, PeerId::new("Alice"), &resource, 5).unwrap();
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_rdf,
    bench_routing,
    bench_codec,
    bench_tickets
);
criterion_main!(benches);
