//! E10: scalability in peer count — one server, n clients, each running an
//! independent bilateral negotiation on a shared network; plus the broker
//! (star) topology variant where every authority lookup goes through a
//! hub.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use peertrust_core::PeerId;
use peertrust_negotiation::{negotiate, SessionConfig};
use peertrust_net::{NegotiationId, SimNetwork};
use peertrust_scenarios::fleet;

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_peers");
    group.sample_size(10);

    for n in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("mesh_fleet", n), &n, |b, &n| {
            b.iter_batched(
                || fleet(n),
                |(mut peers, _reg, goals)| {
                    let mut net = SimNetwork::new(1);
                    let mut ok = 0;
                    for (i, (client, goal)) in goals.iter().enumerate() {
                        let out = negotiate(
                            &mut peers,
                            &mut net,
                            SessionConfig::default(),
                            NegotiationId(i as u64),
                            *client,
                            PeerId::new("Server"),
                            goal.clone(),
                        );
                        assert!(out.success);
                        ok += 1;
                    }
                    ok
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
