//! E3: negotiation cost vs release-policy chain depth — the scaling
//! experiment behind the messages/disclosures tables in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use peertrust_bench::{run_workload, with_big_stack};
use peertrust_negotiation::Strategy;
use peertrust_scenarios::chain;

fn bench_chain_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_chain_depth");
    group.sample_size(10);

    for depth in [1usize, 2, 4, 8, 16, 32] {
        for strategy in Strategy::ALL {
            group.bench_with_input(
                BenchmarkId::new(strategy.name(), depth),
                &depth,
                |b, &depth| {
                    b.iter_batched(
                        || chain(depth),
                        move |mut w| {
                            // Deep chains need a big stack for the DFS
                            // driver; keep the thread spawn outside the
                            // hottest path only for shallow depths.
                            if depth <= 8 {
                                run_workload(&mut w, strategy).messages
                            } else {
                                with_big_stack(move || run_workload(&mut w, strategy).messages)
                            }
                        },
                        BatchSize::SmallInput,
                    )
                },
            );
        }
    }

    group.finish();
}

criterion_group!(benches, bench_chain_depth);
criterion_main!(benches);
