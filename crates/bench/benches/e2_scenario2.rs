//! E2: Scenario 2 (Bob & learning services, paper §4.2) — free enrollment,
//! pay-per-use with VISA card disclosure, the revocation-check variant,
//! and run-time authority instantiation (authority DB and broker).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use peertrust_negotiation::Strategy;
use peertrust_scenarios::{Scenario2, Variant2};

fn bench_scenario2(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_scenario2");
    group.sample_size(20);

    group.bench_function("free_course", |b| {
        b.iter_batched(
            || Scenario2::build(Variant2::Base),
            |mut s| {
                let out = s.run(Strategy::Parsimonious, Scenario2::free_goal());
                assert!(out.success);
                out.messages
            },
            BatchSize::SmallInput,
        )
    });

    for (name, variant) in [
        ("paid_base", Variant2::Base),
        ("paid_revocation", Variant2::RevocationCheck),
        ("paid_authority_db", Variant2::AuthorityDb),
        ("paid_broker", Variant2::Broker),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || Scenario2::build(variant),
                |mut s| {
                    let out = s.run(Strategy::Parsimonious, Scenario2::paid_goal(1000));
                    assert!(out.success);
                    out.messages
                },
                BatchSize::SmallInput,
            )
        });
    }

    group.finish();
}

criterion_group!(benches, bench_scenario2);
criterion_main!(benches);
