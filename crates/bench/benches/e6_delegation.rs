//! E6: credential-chain discovery cost vs delegation depth — cold (the
//! whole chain is fetched across the network) and warm (chain cached from
//! a previous negotiation).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use peertrust_bench::{run_workload, with_big_stack};
use peertrust_negotiation::Strategy;
use peertrust_scenarios::delegation_chain;

fn bench_delegation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_delegation");
    group.sample_size(10);

    for depth in [1usize, 2, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("cold", depth), &depth, |b, &depth| {
            b.iter_batched(
                || delegation_chain(depth),
                move |mut w| {
                    if depth <= 8 {
                        run_workload(&mut w, Strategy::Parsimonious).messages
                    } else {
                        with_big_stack(move || {
                            run_workload(&mut w, Strategy::Parsimonious).messages
                        })
                    }
                },
                BatchSize::SmallInput,
            )
        });

        group.bench_with_input(BenchmarkId::new("warm", depth), &depth, |b, &depth| {
            b.iter_batched(
                || {
                    // Prime the caches with one full (big-stack) run.
                    with_big_stack(move || {
                        let mut w = delegation_chain(depth);
                        assert!(run_workload(&mut w, Strategy::Parsimonious).success);
                        w
                    })
                },
                move |mut w| run_workload(&mut w, Strategy::Parsimonious).messages,
                BatchSize::SmallInput,
            )
        });
    }

    group.finish();
}

criterion_group!(benches, bench_delegation);
criterion_main!(benches);
