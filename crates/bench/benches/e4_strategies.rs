//! E4: eager vs parsimonious on random bipartite policy graphs of growing
//! size — wall time here; the disclosure/message trade-off tables come
//! from the `experiments` binary.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use peertrust_bench::run_workload;
use peertrust_negotiation::Strategy;
use peertrust_scenarios::{random_policies, RandomPolicyConfig};

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_strategies");
    group.sample_size(10);

    for n in [8usize, 16, 32, 64] {
        for strategy in Strategy::ALL {
            group.bench_with_input(BenchmarkId::new(strategy.name(), n), &n, |b, &n| {
                b.iter_batched(
                    || {
                        random_policies(RandomPolicyConfig {
                            creds_per_side: n,
                            max_deps: 2,
                            public_prob: 0.3,
                            allow_cycles: false, // always satisfiable
                            seed: n as u64,
                            ..RandomPolicyConfig::default()
                        })
                    },
                    |mut w| run_workload(&mut w, strategy).messages,
                    BatchSize::SmallInput,
                )
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
