//! # peertrust-bench
//!
//! Shared helpers for the experiment harness. Each experiment from
//! EXPERIMENTS.md has a Criterion bench (`benches/e*.rs`) measuring wall
//! time, plus deterministic counters (messages, bytes, disclosures,
//! rounds) produced by the `experiments` binary, which prints the tables
//! recorded in EXPERIMENTS.md.

use peertrust_core::{Literal, PeerId};
use peertrust_negotiation::{NegotiationOutcome, PeerMap, Strategy};
use peertrust_net::{NegotiationId, SimNetwork};
use peertrust_scenarios::Workload;

/// Run one negotiation on a fresh seeded network; panics on unexpected
/// failure when `expect_success` is set (benchmarks should not silently
/// measure failing runs).
pub fn run_negotiation(
    peers: &mut PeerMap,
    requester: PeerId,
    responder: PeerId,
    goal: Literal,
    strategy: Strategy,
    expect_success: bool,
) -> NegotiationOutcome {
    let mut net = SimNetwork::new(7);
    let out = strategy.run(
        peers,
        &mut net,
        NegotiationId(1),
        requester,
        responder,
        goal,
    );
    if expect_success {
        assert!(out.success, "negotiation failed: {:#?}", out.refusals);
    }
    out
}

/// Run a generated workload once.
pub fn run_workload(w: &mut Workload, strategy: Strategy) -> NegotiationOutcome {
    let requester = w.requester;
    let responder = w.responder;
    let goal = w.goal.clone();
    let expect = w.satisfiable;
    run_negotiation(&mut w.peers, requester, responder, goal, strategy, expect)
}

/// Run `f` on a thread with a large stack (deep-chain workloads recurse
/// proportionally to chain depth).
pub fn with_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(256 << 20)
        .spawn(f)
        .expect("spawn big-stack thread")
        .join()
        .expect("big-stack thread panicked")
}

/// One row of an experiment table (serialized into EXPERIMENTS.md).
#[derive(Debug, Clone, serde::Serialize)]
pub struct Row {
    pub experiment: &'static str,
    pub config: String,
    pub strategy: String,
    pub success: bool,
    pub messages: u64,
    pub bytes: u64,
    pub queries: u64,
    pub credentials: usize,
    pub rounds: u64,
    pub ticks: u64,
}

impl Row {
    pub fn from_outcome(
        experiment: &'static str,
        config: impl Into<String>,
        strategy: &str,
        out: &NegotiationOutcome,
    ) -> Row {
        Row {
            experiment,
            config: config.into(),
            strategy: strategy.to_string(),
            success: out.success,
            messages: out.messages,
            bytes: out.bytes,
            queries: out.queries,
            credentials: out.credential_count(),
            rounds: out.rounds,
            ticks: out.elapsed_ticks,
        }
    }

    pub fn header() -> String {
        format!(
            "{:<4} | {:<28} | {:<12} | {:>3} | {:>6} | {:>8} | {:>7} | {:>5} | {:>6} | {:>6}",
            "exp",
            "config",
            "strategy",
            "ok",
            "msgs",
            "bytes",
            "queries",
            "creds",
            "rounds",
            "ticks"
        )
    }
}

impl std::fmt::Display for Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<4} | {:<28} | {:<12} | {:>3} | {:>6} | {:>8} | {:>7} | {:>5} | {:>6} | {:>6}",
            self.experiment,
            self.config,
            self.strategy,
            if self.success { "yes" } else { "no" },
            self.messages,
            self.bytes,
            self.queries,
            self.credentials,
            self.rounds,
            self.ticks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peertrust_scenarios::chain;

    #[test]
    fn run_workload_executes_chain() {
        let mut w = chain(3);
        let out = run_workload(&mut w, Strategy::Parsimonious);
        assert!(out.success);
        let row = Row::from_outcome("E3", "depth=3", "parsimonious", &out);
        assert!(row.to_string().contains("E3"));
        assert!(Row::header().contains("msgs"));
    }

    #[test]
    fn big_stack_helper_runs_closures() {
        let v = with_big_stack(|| 41 + 1);
        assert_eq!(v, 42);
    }
}
