//! Regenerates every experiment table in EXPERIMENTS.md.
//!
//! Unlike the Criterion benches (wall time), this binary reports the
//! *deterministic* metrics — messages, bytes, queries, disclosures,
//! rounds, simulated ticks — that the experiment write-ups quote. Run:
//!
//! ```text
//! cargo run --release -p peertrust-bench --bin experiments
//! ```
//!
//! Pass `--json` to also dump machine-readable rows. Every run also
//! re-executes the two paper scenarios under an instrumented telemetry
//! pipeline and writes the metrics registry to `target/metrics.json`
//! alongside a per-negotiation `target/timeline.jsonl` (override the
//! directory with `--out-dir <dir>`).

use peertrust_bench::{run_negotiation, run_workload, with_big_stack, Row};
use peertrust_core::{KnowledgeBase, Literal, PeerId, Rule, Sym, Term};
use peertrust_negotiation::{
    request_policy, verify_safe_sequence, NegotiationPeer, PeerMap, Strategy,
};
use peertrust_net::{NegotiationId, SimNetwork};
use peertrust_scenarios::{
    chain, delegation_chain, delegation_mesh, fleet, random_policies, Ablation1, Ablation2,
    RandomPolicyConfig, Scenario1, Scenario2, Variant2,
};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let args: Vec<String> = std::env::args().collect();
    let out_dir = args
        .iter()
        .position(|a| a == "--out-dir")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        // Generated artifacts live under target/ so a default run never
        // dirties the repository root.
        .unwrap_or_else(|| std::path::PathBuf::from("target"));
    let mut rows: Vec<Row> = Vec::new();

    e1(&mut rows);
    e2(&mut rows);
    e3(&mut rows);
    e4_e5(&mut rows);
    e6(&mut rows);
    e7(&mut rows);
    e10(&mut rows);
    e11(&mut rows);
    e17(&mut rows);
    e18();

    println!("\n{}", Row::header());
    println!("{}", "-".repeat(120));
    for row in &rows {
        println!("{row}");
    }

    if json {
        println!("\n{}", serde_json::to_string_pretty(&rows).unwrap());
    }

    telemetry_export(&out_dir);
}

/// Re-run the instrumented paper scenarios and export the metrics registry
/// (`metrics.json`) plus the chronological event stream (`timeline.jsonl`)
/// into `out_dir`.
fn telemetry_export(out_dir: &std::path::Path) {
    use peertrust_telemetry::{Telemetry, Timeline, Trace};

    println!("\n== Telemetry export (instrumented E1/E2) ==");
    // Large enough that nothing is evicted: trace reconstruction needs
    // the complete event stream, and a ring that drops the oldest events
    // would silently truncate the earliest spans.
    let (telemetry, ring) = Telemetry::ring(1 << 20);

    let mut s1 = Scenario1::build();
    let out1 = s1.run_traced(Strategy::Parsimonious, &telemetry);
    assert!(out1.success);
    let mut s2 = Scenario2::build(Variant2::Base);
    let out2 = s2.run_traced(
        Strategy::Parsimonious,
        Scenario2::paid_goal(1000),
        &telemetry,
    );
    assert!(out2.success);

    // E13: exercise both caching layers so their counters are in the
    // export — a tabled transitive-closure solve (engine.table.*) and a
    // warm repeat of the E6 delegation chain through the shared
    // remote-answer cache (negotiation.cache.*).
    let mut kb = KnowledgeBase::new();
    kb.add_local(Rule::horn(
        Literal::new("reach", vec![Term::var("X"), Term::var("Y")]),
        vec![Literal::new("edge", vec![Term::var("X"), Term::var("Y")])],
    ));
    kb.add_local(Rule::horn(
        Literal::new("reach", vec![Term::var("X"), Term::var("Z")]),
        vec![
            Literal::new("edge", vec![Term::var("X"), Term::var("Y")]),
            Literal::new("reach", vec![Term::var("Y"), Term::var("Z")]),
        ],
    ));
    for i in 0..32i64 {
        kb.add_local(Rule::fact(Literal::new(
            "edge",
            vec![Term::int(i), Term::int(i + 1)],
        )));
    }
    let mut solver = peertrust_engine::Solver::new(&kb, PeerId::new("exporter"))
        .with_config(peertrust_engine::EngineConfig {
            tabling: true,
            max_solutions: usize::MAX,
            max_depth: 4096,
            ..Default::default()
        })
        .with_telemetry(telemetry.clone());
    let reach = solver.solve(&[Literal::new("reach", vec![Term::int(0), Term::var("W")])]);
    assert_eq!(reach.len(), 32);

    // The same solve through the WAM-lite compiled lane, so the compiled
    // execution counters (engine.compiled.*, engine.heap.*) are live in
    // the export.
    let compiled = std::sync::Arc::new(peertrust_engine::CompiledKb::compile(&kb));
    let mut csolver = peertrust_engine::Solver::new(&kb, PeerId::new("exporter"))
        .with_config(peertrust_engine::EngineConfig {
            max_solutions: usize::MAX,
            max_depth: 4096,
            ..Default::default()
        })
        .with_compiled(compiled)
        .with_telemetry(telemetry.clone());
    let reach_c = csolver.solve(&[Literal::new("reach", vec![Term::int(0), Term::var("W")])]);
    assert_eq!(reach_c.len(), 32);

    let mut w = delegation_chain(4);
    let mut cache = peertrust_negotiation::RemoteAnswerCache::new();
    for nid in [3u64, 4] {
        let mut net = SimNetwork::new(nid).with_telemetry(telemetry.clone());
        let out = peertrust_negotiation::negotiate_cached(
            &mut w.peers,
            &mut net,
            peertrust_negotiation::SessionConfig::default(),
            NegotiationId(nid),
            w.requester,
            w.responder,
            w.goal.clone(),
            &mut cache,
            &telemetry,
        );
        assert!(out.success, "delegation repeat {nid}");
    }
    let cache_stats = cache.stats();
    println!(
        "  remote-answer cache: {} hits / {} misses / {} inserts",
        cache_stats.hits, cache_stats.misses, cache_stats.inserts
    );

    // E17: one cyclic mesh through the GEM fixpoint plus the same mesh
    // under the classical driver, so the negotiation.gem.* counters and
    // the per-reason negotiation.refusal.* counters (cycle_detected
    // among them) are live in the export.
    {
        let mut w = delegation_mesh(3, 2, false);
        let requester = w.peer_ids[1];
        let mut net = SimNetwork::new(17).with_telemetry(telemetry.clone());
        let out = peertrust_negotiation::negotiate_traced(
            &mut w.peers,
            &mut net,
            peertrust_negotiation::SessionConfig {
                gem: true,
                gem_max_rounds: 32,
                ..Default::default()
            },
            NegotiationId(17),
            requester,
            w.responder,
            w.goal.clone(),
            &telemetry,
        );
        assert!(out.success, "gem mesh export");

        let mut w = delegation_mesh(3, 2, false);
        let requester = w.peer_ids[1];
        let mut net = SimNetwork::new(18).with_telemetry(telemetry.clone());
        let refused = peertrust_negotiation::negotiate_traced(
            &mut w.peers,
            &mut net,
            peertrust_negotiation::SessionConfig::default(),
            NegotiationId(18),
            requester,
            w.responder,
            w.goal.clone(),
            &telemetry,
        );
        assert!(!refused.success, "classical mesh export");
    }

    // E15 (part 1): one resilient negotiation over a lossy,
    // telemetry-attached network, so the export carries a trace with
    // retries, backoff spans and `net.fault` annotations. Run *before*
    // the batches: batch jobs reuse negotiation ids starting at 1, and
    // the causal-trace snapshot below keys traces by negotiation id.
    let rep = {
        use peertrust_net::{FaultPlan, LinkFaults};
        let budget = peertrust_negotiation::ResilienceConfig {
            max_retries: 8,
            query_deadline_ticks: 256,
            ..peertrust_negotiation::ResilienceConfig::default()
        };
        let mut w15 = chain(2);
        let mut net = SimNetwork::new(15)
            .with_telemetry(telemetry.clone())
            .with_faults(FaultPlan::uniform(15, LinkFaults::lossy(0.2)));
        let (out, rep) = peertrust_negotiation::negotiate_resilient(
            &mut w15.peers,
            &mut net,
            peertrust_negotiation::SessionConfig::default(),
            budget,
            NegotiationId(15),
            w15.requester,
            w15.responder,
            w15.goal.clone(),
            &telemetry,
        );
        assert!(out.success && rep.converged, "resilient chain export");
        rep
    };

    // Snapshot the stream for causal-trace reconstruction while every
    // negotiation id recorded so far (1, 2, 3, 4, 15, 17, 18) is still
    // unique.
    let trace_events = ring.events();

    // E14: one batch over the throughput grid through the scheduler so the
    // negotiation.throughput.* series (sessions, sessions_per_sec, worker
    // busy/utilization, shared-cache deltas) land in the export.
    let grid = peertrust_scenarios::throughput_grid(4, 2, 2);
    let batch_cfg = peertrust_negotiation::BatchConfig {
        workers: 2,
        shared_cache: Some(peertrust_negotiation::SharedRemoteAnswerCache::new()),
        ..peertrust_negotiation::BatchConfig::default()
    };
    let report =
        peertrust_negotiation::negotiate_batch(&grid.peers, &grid.jobs, &batch_cfg, &telemetry);
    assert_eq!(report.stats.successes, grid.jobs.len(), "batch export");
    println!(
        "  batch throughput: {} sessions, {} workers, {:.0} negotiations/sec, {:.0}% utilization",
        report.stats.jobs,
        report.stats.workers,
        report.stats.negotiations_per_sec,
        report.stats.utilization_pct
    );

    // E15 (part 2): a faulty batch through the scheduler adds the
    // `negotiation.resilience.*` series to the export.
    {
        let (grid15, points) = peertrust_scenarios::resilience_grid(2, 2, 2, 15, &[0.2], &[4]);
        let point = &points[0];
        let faulty_cfg = peertrust_negotiation::BatchConfig {
            workers: 2,
            faults: Some(point.faults.clone()),
            ..peertrust_negotiation::BatchConfig::default()
        };
        let report = peertrust_negotiation::negotiate_batch(
            &grid15.peers,
            &grid15.jobs,
            &faulty_cfg,
            &telemetry,
        );
        assert_eq!(
            report.stats.converged, report.stats.jobs,
            "resilience export"
        );
        println!(
            "  resilience ({}): {}/{} sessions converged, {} retries, {} timeouts, {} duplicates suppressed",
            point.label,
            report.stats.converged,
            report.stats.jobs,
            report.stats.resilience.retries + rep.stats.retries,
            report.stats.resilience.timeouts + rep.stats.timeouts,
            report.stats.resilience.duplicates_suppressed + rep.stats.duplicates_suppressed,
        );
    }

    // E18: an open-loop serving run over the Zipf workload, overloaded
    // enough to shed, so the negotiation.serve.* counters and the
    // wait/service/latency quantile sketches are live in the export.
    {
        let w = peertrust_scenarios::serving_workload(4, 2, 64, 1.1, 18);
        let serve_cfg = peertrust_negotiation::ServeConfig {
            mean_interarrival_ticks: 4.0,
            servers: 2,
            queue_cap: 4,
            deadline_ticks: 128,
            workers: 2,
            ..peertrust_negotiation::ServeConfig::default()
        };
        let report =
            peertrust_negotiation::serve_open_loop(&w.peers, &w.jobs, &serve_cfg, &telemetry);
        assert_eq!(
            report.stats.base_clones, 0,
            "serving export must be clone-free"
        );
        println!(
            "  serving: {} offered, {} admitted, {} shed, p99 latency {} ticks",
            report.stats.offered,
            report.stats.admitted,
            report.stats.shed_queue_full + report.stats.shed_deadline,
            report.stats.latency.p99,
        );
    }

    std::fs::create_dir_all(out_dir).expect("create output dir");
    let metrics = telemetry.metrics().expect("telemetry enabled").to_json();
    let metrics_path = out_dir.join("metrics.json");
    std::fs::write(&metrics_path, &metrics).expect("write metrics.json");

    let events = ring.events();
    let timelines = Timeline::from_events(&events);
    let dump: String = timelines.iter().map(Timeline::to_jsonl).collect();
    let timeline_path = out_dir.join("timeline.jsonl");
    std::fs::write(&timeline_path, &dump).expect("write timeline.jsonl");

    for tl in &timelines {
        println!(
            "  negotiation {}: {} spans, {} events",
            tl.negotiation,
            tl.spans.len(),
            tl.events.len()
        );
    }

    // Cross-peer causal traces: reconstruct the span DAG from the
    // pre-batch snapshot, print each trace's critical path, and export
    // the whole set as Chrome trace-event JSON (load `trace.json` in
    // Perfetto / chrome://tracing to see per-peer lanes).
    let traces = Trace::from_events(&trace_events);
    for trace in &traces {
        if let Err(e) = trace.validate() {
            panic!("trace {} is malformed: {e}", trace.id);
        }
        let cp = trace.critical_path();
        for line in peertrust_telemetry::critical_path_summary(&cp).lines() {
            println!("  {line}");
        }
    }
    let chrome = peertrust_telemetry::to_chrome_json(&traces);
    let trace_path = out_dir.join("trace.json");
    std::fs::write(&trace_path, &chrome).expect("write trace.json");

    println!(
        "  artifacts: {} ({} bytes), {} ({} bytes), {} ({} bytes, {} traces)",
        metrics_path.display(),
        metrics.len(),
        timeline_path.display(),
        dump.len(),
        trace_path.display(),
        chrome.len(),
        traces.len(),
    );
}

fn e1(rows: &mut Vec<Row>) {
    println!("== E1: Scenario 1 (Alice & E-Learn) ==");
    for strategy in Strategy::ALL {
        let mut s = Scenario1::build();
        let out = s.run(strategy);
        assert!(out.success);
        verify_safe_sequence(&out).unwrap();
        rows.push(Row::from_outcome("E1", "full", strategy.name(), &out));
    }
    // Warm cache.
    let mut s = Scenario1::build();
    let _ = s.run(Strategy::Parsimonious);
    let warm = s.run(Strategy::Parsimonious);
    rows.push(Row::from_outcome("E1", "warm-cache", "parsimonious", &warm));
    // Ablations.
    for ablation in Ablation1::ALL.into_iter().skip(1) {
        let mut s = Scenario1::build_ablated(ablation);
        let out = s.run(Strategy::Parsimonious);
        assert!(!out.success);
        rows.push(Row::from_outcome(
            "E1",
            format!("{ablation:?}"),
            "parsimonious",
            &out,
        ));
    }
}

fn e2(rows: &mut Vec<Row>) {
    println!("== E2: Scenario 2 (Bob & learning services) ==");
    let mut s = Scenario2::build(Variant2::Base);
    let free = s.run(Strategy::Parsimonious, Scenario2::free_goal());
    assert!(free.success);
    rows.push(Row::from_outcome(
        "E2",
        "free-course",
        "parsimonious",
        &free,
    ));

    for (name, variant) in [
        ("paid-base", Variant2::Base),
        ("paid-revocation", Variant2::RevocationCheck),
        ("paid-authority-db", Variant2::AuthorityDb),
        ("paid-broker", Variant2::Broker),
    ] {
        let mut s = Scenario2::build(variant);
        let out = s.run(Strategy::Parsimonious, Scenario2::paid_goal(1000));
        assert!(out.success);
        rows.push(Row::from_outcome("E2", name, "parsimonious", &out));
    }

    for (name, variant, ablation, goal_price) in [
        (
            "revoked-card",
            Variant2::RevocationCheck,
            Ablation2::CardRevoked,
            1000,
        ),
        (
            "price-too-high",
            Variant2::Base,
            Ablation2::PriceTooHigh,
            2500,
        ),
        (
            "merchant-unauth",
            Variant2::Base,
            Ablation2::MerchantNotAuthorized,
            1000,
        ),
    ] {
        let mut s = Scenario2::build_ablated(variant, ablation);
        let out = s.run(Strategy::Parsimonious, Scenario2::paid_goal(goal_price));
        assert!(!out.success);
        rows.push(Row::from_outcome("E2", name, "parsimonious", &out));
    }

    let mut s = Scenario2::build_ablated(Variant2::Base, Ablation2::IbmNotElenaMember);
    let free = s.run(Strategy::Parsimonious, Scenario2::free_goal());
    assert!(!free.success);
    rows.push(Row::from_outcome(
        "E2",
        "non-member-free",
        "parsimonious",
        &free,
    ));
    let mut s = Scenario2::build_ablated(Variant2::Base, Ablation2::IbmNotElenaMember);
    let paid = s.run(Strategy::Parsimonious, Scenario2::paid_goal(1000));
    assert!(paid.success);
    rows.push(Row::from_outcome(
        "E2",
        "non-member-paid",
        "parsimonious",
        &paid,
    ));
}

fn e3(rows: &mut Vec<Row>) {
    println!("== E3: chain depth sweep ==");
    for depth in [1usize, 2, 4, 8, 16, 32, 48] {
        for strategy in Strategy::ALL {
            let out = with_big_stack(move || {
                let mut w = chain(depth);
                run_workload(&mut w, strategy)
            });
            assert!(out.success);
            assert_eq!(out.credential_count(), depth);
            rows.push(Row::from_outcome(
                "E3",
                format!("depth={depth}"),
                strategy.name(),
                &out,
            ));
        }
    }
}

fn e4_e5(rows: &mut Vec<Row>) {
    println!("== E4/E5: random policy graphs, strategy comparison ==");
    for n in [8usize, 16, 32] {
        for seed in 0..3u64 {
            let cfg = RandomPolicyConfig {
                creds_per_side: n,
                max_deps: 2,
                public_prob: 0.25,
                allow_cycles: true,
                seed,
                ..RandomPolicyConfig::default()
            };
            let truth = random_policies(cfg).satisfiable;
            for strategy in Strategy::ALL {
                let mut w = random_policies(cfg);
                let out = with_big_stack(move || run_workload(&mut w, strategy));
                if strategy == Strategy::Eager {
                    assert_eq!(out.success, truth, "eager completeness");
                }
                verify_safe_sequence(&out).unwrap();
                rows.push(Row::from_outcome(
                    "E4",
                    format!("n={n} seed={seed} {}", if truth { "sat" } else { "unsat" }),
                    strategy.name(),
                    &out,
                ));
            }
        }
    }
}

fn e6(rows: &mut Vec<Row>) {
    println!("== E6: delegation chain discovery ==");
    for depth in [1usize, 2, 4, 8, 16, 32] {
        let (cold, warm) = with_big_stack(move || {
            let mut w = delegation_chain(depth);
            let cold = run_workload(&mut w, Strategy::Parsimonious);
            let warm = run_workload(&mut w, Strategy::Parsimonious);
            (cold, warm)
        });
        assert!(cold.success && warm.success);
        rows.push(Row::from_outcome(
            "E6",
            format!("depth={depth} cold"),
            "parsimonious",
            &cold,
        ));
        rows.push(Row::from_outcome(
            "E6",
            format!("depth={depth} warm"),
            "parsimonious",
            &warm,
        ));
    }
}

fn e7(_rows: &mut Vec<Row>) {
    println!("== E7: UniPro policy protection ==");
    // Nested guards: policy{i} guarded by policy{i+1}, last public.
    for depth in [0usize, 2, 4, 8] {
        let registry = peertrust_crypto::KeyRegistry::new();
        registry.register_derived(PeerId::new("CA"), 1);
        let mut owner = NegotiationPeer::new("Owner", registry.clone());
        for i in 0..depth {
            let next = i + 1;
            owner
                .load_program(&format!(
                    r#"policy{i}(R) <-_(policy{next}(R)) policy{next}(R)."#
                ))
                .unwrap();
        }
        owner
            .load_program(&format!(r#"policy{depth}(R) <-_true unlocked{depth}(R)."#))
            .unwrap();
        for i in 0..=depth {
            owner
                .load_program(&format!(r#"unlocked{i}("Asker")."#))
                .unwrap();
        }
        let mut peers = PeerMap::new();
        peers.insert(owner);
        peers.insert(NegotiationPeer::new("Asker", registry));

        let mut net = SimNetwork::new(1);
        let res = request_policy(
            &mut peers,
            &mut net,
            NegotiationId(1),
            PeerId::new("Asker"),
            PeerId::new("Owner"),
            Sym::new("policy0"),
        );
        println!(
            "  guard nesting {depth}: disclosed={} messages={}",
            res.rules.len(),
            res.messages
        );
    }
}

fn e10(rows: &mut Vec<Row>) {
    println!("== E10: peer-count scaling ==");
    for n in [4usize, 16, 64, 128] {
        let (mut peers, _reg, goals) = fleet(n);
        let mut net = SimNetwork::new(1);
        let mut total_msgs = 0u64;
        let t0 = std::time::Instant::now();
        for (i, (client, goal)) in goals.iter().enumerate() {
            let out = peertrust_negotiation::negotiate(
                &mut peers,
                &mut net,
                peertrust_negotiation::SessionConfig::default(),
                NegotiationId(i as u64),
                *client,
                PeerId::new("Server"),
                goal.clone(),
            );
            assert!(out.success);
            total_msgs += out.messages;
        }
        println!(
            "  clients={n}: total messages={} wall={:?} (messages/client={})",
            total_msgs,
            t0.elapsed(),
            total_msgs / n as u64
        );
    }
    // One representative row for the table.
    let (mut peers, _reg, goals) = fleet(8);
    let (client, goal) = goals[0].clone();
    let out = run_negotiation(
        &mut peers,
        client,
        PeerId::new("Server"),
        goal,
        Strategy::Parsimonious,
        true,
    );
    rows.push(Row::from_outcome(
        "E10",
        "fleet client (n=8)",
        "parsimonious",
        &out,
    ));
}

fn e17(rows: &mut Vec<Row>) {
    println!("== E17: cyclic delegation meshes via GEM tabling ==");
    for (n, laps, chords) in [
        (2usize, 2usize, false),
        (3, 2, false),
        (3, 3, false),
        (4, 2, true),
        (5, 2, true),
    ] {
        let label = format!(
            "mesh n={n} laps={laps}{}",
            if chords { " chord" } else { "" }
        );
        // GEM lane: the fixpoint converges with zero cycle refusals.
        let mut w = delegation_mesh(n, laps, chords);
        let mut net = SimNetwork::new(17);
        let requester = w.peer_ids[1];
        let out = peertrust_negotiation::negotiate(
            &mut w.peers,
            &mut net,
            peertrust_negotiation::SessionConfig {
                gem: true,
                gem_max_rounds: 32,
                ..Default::default()
            },
            NegotiationId(1),
            requester,
            w.responder,
            w.goal.clone(),
        );
        assert!(out.success, "{label}: gem lane must converge");
        assert!(
            !out.refusals
                .iter()
                .any(|r| r.reason == peertrust_negotiation::RefusalReason::CycleDetected),
            "{label}: gem lane must not refuse on cycles"
        );
        rows.push(Row::from_outcome("E17", label.clone(), "gem", &out));

        // Classical lane: the same workload needs more than one lap of
        // unrolling, so the variant check refuses it.
        let mut w = delegation_mesh(n, laps, chords);
        let mut net = SimNetwork::new(17);
        let classical = peertrust_negotiation::negotiate(
            &mut w.peers,
            &mut net,
            peertrust_negotiation::SessionConfig::default(),
            NegotiationId(1),
            requester,
            w.responder,
            w.goal.clone(),
        );
        assert!(!classical.success, "{label}: classical lane must refuse");
        rows.push(Row::from_outcome("E17", label, "classical", &classical));
    }
}

/// E18: open-loop serving with admission control. Sweeps the offered
/// rate across saturation over the Zipf workload and reports shed rates
/// and tick-exact latency percentiles. Deterministic end to end (seeded
/// arrivals, seeded popularity, virtual-time admission), so the printed
/// table is identical on every run.
fn e18() {
    use peertrust_negotiation::{serve_open_loop, ServeConfig};
    use peertrust_telemetry::Telemetry;

    println!("== E18: open-loop serving (Zipf popularity, Poisson arrivals) ==");
    let w = peertrust_scenarios::serving_workload(8, 2, 512, 1.1, 18);
    let hot: usize = w.popularity.iter().take(2).sum();
    println!(
        "  workload: 512 arrivals over 8 resources, zipf s=1.1 (top-2 resources take {}%)",
        hot * 100 / 512
    );
    println!(
        "  {:<22} | {:>8} | {:>10} | {:>12} | {:>14} | {:>20}",
        "offered", "admitted", "shed(full)", "shed(late)", "wait p50/p99", "latency p50/p99/p999"
    );
    for mean in [16.0, 8.0, 4.0, 2.0] {
        let cfg = ServeConfig {
            mean_interarrival_ticks: mean,
            servers: 2,
            queue_cap: 8,
            deadline_ticks: 96,
            workers: 4,
            arrival_seed: 18,
            ..ServeConfig::default()
        };
        let report = serve_open_loop(&w.peers, &w.jobs, &cfg, &Telemetry::disabled());
        let s = &report.stats;
        assert_eq!(s.base_clones, 0, "serving must stay clone-free");
        assert!(s.max_queue_depth <= cfg.queue_cap);
        println!(
            "  1 per {mean:>4.0} ticks       | {:>8} | {:>10} | {:>12} | {:>6}/{:<7} | {:>6}/{}/{} ticks",
            s.admitted,
            s.shed_queue_full,
            s.shed_deadline,
            s.wait.p50,
            s.wait.p99,
            s.latency.p50,
            s.latency.p99,
            s.latency.p999,
        );
    }
}

fn e11(rows: &mut Vec<Row>) {
    println!("== E11: cyclic-policy rejection ==");
    for k in [2usize, 4, 8, 16] {
        let registry = peertrust_crypto::KeyRegistry::new();
        registry.register_derived(PeerId::new("CA"), 1);
        let mut a = NegotiationPeer::new("A", registry.clone());
        let mut b = NegotiationPeer::new("B", registry.clone());
        for i in 0..k {
            let next = (i + 1) % k;
            let (peer, owner) = if i % 2 == 0 {
                (&mut a, "A")
            } else {
                (&mut b, "B")
            };
            peer.load_program(&format!(
                r#"
                cred{i}("{owner}") @ "CA" signedBy ["CA"].
                cred{i}(X) @ Y $ cred{next}(Requester) @ "CA" @ Requester <-_true cred{i}(X) @ Y.
                "#
            ))
            .unwrap();
        }
        a.load_program(r#"resource(X) $ true <- cred1(X) @ "CA" @ X."#)
            .unwrap();
        let mut peers = PeerMap::new();
        peers.insert(a);
        peers.insert(b);

        let mut net = SimNetwork::new(1);
        let out = peertrust_negotiation::negotiate(
            &mut peers,
            &mut net,
            peertrust_negotiation::SessionConfig::default(),
            NegotiationId(1),
            PeerId::new("B"),
            PeerId::new("A"),
            peertrust_parser::parse_literal(r#"resource("B")"#).unwrap(),
        );
        assert!(!out.success, "cycle must be rejected");
        rows.push(Row::from_outcome(
            "E11",
            format!("deadlock ring k={k}"),
            "parsimonious",
            &out,
        ));
    }
}
