//! Criterion-free smoke benchmark for the solver hot path.
//!
//! Runs a handful of e8/e13/e14 scenarios a fixed number of times with
//! `std::time::Instant`, reports the median wall time per scenario, and
//! writes the result as JSON (default `target/BENCH_PR7.json`). This is
//! what `cargo xtask bench --quick` invokes in CI: fast enough to run on
//! every push, deterministic in workload shape, and comparable against
//! the committed baselines (`BENCH_BASELINE_PR5.json`,
//! `BENCH_BASELINE_PR7.json`).
//!
//! Usage:
//!   quickbench [--quick] [--lane interpreted|compiled|both]
//!              [--out PATH] [--baseline PATH] [--baseline-pr7 PATH]
//!
//! `--quick` lowers iteration counts for CI smoke runs. `--lane` selects
//! which scenario lane runs (default `both`): the interpreted lane is
//! the historical PR5 scenario set; the compiled lane re-runs the
//! deep-chain and tabled workloads through the WAM-lite compiled KB
//! (compilation happens outside the timed region — the artifact is
//! `Arc`-shared per iteration, which is exactly how negotiation peers
//! consume it).
//!
//! Gates, applied after measurement:
//! - `--baseline` (PR5 format): fail if interpreted `e8_deep_chain_cold`
//!   regressed >25%; additionally fail if both the legacy and compiled
//!   scenarios ran and `e8_deep_chain_compiled` is not at least 2x faster
//!   than the *same-run* `e8_deep_chain_legacy` median (the clone-based
//!   PR5-era interpreter). Using the same-run reference keeps the gate
//!   immune to machine-wide slowdowns (CI throttling inflates both lanes
//!   equally); the historical PR5 constant is printed for context.
//! - `--baseline-pr7`: fail if a *cold* scenario (e8/e13, either lane)
//!   present in both the fresh run and the PR7 baseline regressed >25%;
//!   warm/batch/legacy deltas are reported informationally.

use peertrust_core::{KnowledgeBase, Literal, PeerId, Rule, Term};
use peertrust_engine::{AnswerTable, CompiledKb, EngineConfig, RefSolver, SharedTable, Solver};
use peertrust_negotiation::{negotiate_batch, BatchConfig};
use peertrust_scenarios::throughput_grid;
use peertrust_telemetry::Telemetry;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

/// Linear `reach`/`edge` closure KB: the e8/e13 deep-chain workload.
fn closure_kb(n: usize) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.add_local(Rule::horn(
        Literal::new("reach", vec![Term::var("X"), Term::var("Y")]),
        vec![Literal::new("edge", vec![Term::var("X"), Term::var("Y")])],
    ));
    kb.add_local(Rule::horn(
        Literal::new("reach", vec![Term::var("X"), Term::var("Z")]),
        vec![
            Literal::new("edge", vec![Term::var("X"), Term::var("Y")]),
            Literal::new("reach", vec![Term::var("Y"), Term::var("Z")]),
        ],
    ));
    for i in 0..n {
        kb.add_local(Rule::fact(Literal::new(
            "edge",
            vec![Term::int(i as i64), Term::int(i as i64 + 1)],
        )));
    }
    kb
}

fn engine_config(tabling: bool) -> EngineConfig {
    EngineConfig {
        max_solutions: usize::MAX,
        max_depth: 4096,
        tabling,
        ..EngineConfig::default()
    }
}

/// Median wall time in nanoseconds over `iters` runs of `f`. The closure
/// returns a checksum that is asserted against `expect` so the work
/// cannot be optimized away and the scenario stays self-validating.
fn median_ns<F: FnMut() -> usize>(iters: usize, expect: usize, mut f: F) -> u128 {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        let got = f();
        samples.push(t.elapsed().as_nanos());
        assert_eq!(got, expect, "scenario checksum mismatch");
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Report {
    entries: Vec<(&'static str, u128, usize)>,
}

impl Report {
    fn record(
        &mut self,
        name: &'static str,
        iters: usize,
        expect: usize,
        f: impl FnMut() -> usize,
    ) {
        let ns = median_ns(iters, expect, f);
        println!("{name:<28} median {:>12} ns  ({iters} iters)", ns);
        self.entries.push((name, ns, iters));
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"peertrust-quickbench-v1\",\n");
        out.push_str("  \"scenarios\": {\n");
        for (i, (name, ns, iters)) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            out.push_str(&format!(
                "    \"{name}\": {{ \"median_ns\": {ns}, \"iters\": {iters} }}{comma}\n"
            ));
        }
        out.push_str("  }\n}\n");
        out
    }

    fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|(n, _, _)| *n).collect()
    }
}

/// Pull `"<scenario>": { "median_ns": N` out of a quickbench JSON file
/// without a full parser (the format is our own, written above).
fn read_median(json: &str, scenario: &str) -> Option<u128> {
    let key = format!("\"{scenario}\"");
    let at = json.find(&key)?;
    let rest = &json[at..];
    let m = rest.find("\"median_ns\":")?;
    let tail = rest[m + "\"median_ns\":".len()..].trim_start();
    let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_val = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = arg_val("--out").unwrap_or_else(|| "target/BENCH_PR7.json".to_string());
    let baseline_path = arg_val("--baseline");
    let baseline_pr7_path = arg_val("--baseline-pr7");
    let lane = arg_val("--lane").unwrap_or_else(|| "both".to_string());
    let (run_interp, run_compiled) = match lane.as_str() {
        "interpreted" => (true, false),
        "compiled" => (false, true),
        "both" => (true, true),
        other => {
            eprintln!("unknown --lane {other}: expected interpreted|compiled|both");
            std::process::exit(2);
        }
    };

    let (deep_iters, table_iters, batch_iters) = if quick { (7, 7, 3) } else { (21, 21, 5) };

    let mut report = Report {
        entries: Vec::new(),
    };

    let deep = closure_kb(128);
    let deep_goal = [Literal::new("reach", vec![Term::int(0), Term::var("W")])];
    let tbl_kb = closure_kb(64);
    let tbl_goal = [Literal::new("reach", vec![Term::int(0), Term::var("W")])];

    if run_interp {
        // e8: deep-chain cold solve, no tabling — the interpreted
        // clause-scan hot path, measured against PR5's trail rewrite.
        report.record("e8_deep_chain_cold", deep_iters, 128, || {
            let mut solver =
                Solver::new(&deep, PeerId::new("self")).with_config(engine_config(false));
            solver.solve(&deep_goal).len()
        });

        // The same workload through the clone-per-branch reference
        // interpreter (the pre-trail algorithm, kept in-tree). The ratio
        // legacy/trail is a machine-independent speedup figure: both
        // numbers come from the same process on the same hardware.
        report.record("e8_deep_chain_legacy", deep_iters, 128, || {
            let mut solver =
                RefSolver::new(&deep, PeerId::new("self")).with_config(engine_config(false));
            solver.solve(&deep_goal).len()
        });

        // e13: tabled cold solve — table built from scratch each iteration.
        report.record("e13_tabled_cold", table_iters, 64, || {
            let mut solver =
                Solver::new(&tbl_kb, PeerId::new("self")).with_config(engine_config(true));
            solver.solve(&tbl_goal).len()
        });

        // e13: warm table — answers served from a pre-populated shared table.
        let table: SharedTable = Rc::new(RefCell::new(AnswerTable::new()));
        {
            let mut warmer = Solver::new(&tbl_kb, PeerId::new("self"))
                .with_config(engine_config(true))
                .with_table(table.clone());
            assert_eq!(warmer.solve(&tbl_goal).len(), 64);
        }
        report.record("e13_tabled_warm", table_iters, 64, || {
            let mut solver = Solver::new(&tbl_kb, PeerId::new("self"))
                .with_config(engine_config(true))
                .with_table(table.clone());
            solver.solve(&tbl_goal).len()
        });

        // e14: small negotiation batch — ensures the end-to-end stack
        // (sessions, transport, scheduler) stays within noise.
        let grid = throughput_grid(4, 2, 4);
        report.record("e14_batch", batch_iters, 8, || {
            let cfg = BatchConfig {
                workers: 2,
                ..BatchConfig::default()
            };
            let rep = negotiate_batch(&grid.peers, &grid.jobs, &cfg, &Telemetry::disabled());
            rep.stats.successes
        });
    }

    if run_compiled {
        // Compiled lane: same workloads through the WAM-lite bytecode KB.
        // Compilation runs once, outside the timed region; each iteration
        // pays only an `Arc` clone — the same sharing pattern negotiation
        // peers use via `NegotiationPeer::compile_policies`.
        let deep_c = Arc::new(CompiledKb::compile(&deep));
        report.record("e8_deep_chain_compiled", deep_iters, 128, || {
            let mut solver = Solver::new(&deep, PeerId::new("self"))
                .with_config(engine_config(false))
                .with_compiled(deep_c.clone());
            solver.solve(&deep_goal).len()
        });

        let tbl_c = Arc::new(CompiledKb::compile(&tbl_kb));
        report.record("e13_compiled_cold", table_iters, 64, || {
            let mut solver = Solver::new(&tbl_kb, PeerId::new("self"))
                .with_config(engine_config(true))
                .with_compiled(tbl_c.clone());
            solver.solve(&tbl_goal).len()
        });

        let table: SharedTable = Rc::new(RefCell::new(AnswerTable::new()));
        {
            let mut warmer = Solver::new(&tbl_kb, PeerId::new("self"))
                .with_config(engine_config(true))
                .with_table(table.clone())
                .with_compiled(tbl_c.clone());
            assert_eq!(warmer.solve(&tbl_goal).len(), 64);
        }
        report.record("e13_compiled_warm", table_iters, 64, || {
            let mut solver = Solver::new(&tbl_kb, PeerId::new("self"))
                .with_config(engine_config(true))
                .with_table(table.clone())
                .with_compiled(tbl_c.clone());
            solver.solve(&tbl_goal).len()
        });

        // e14 with batch-level precompilation: the scheduler compiles
        // every peer's policies once before fanning jobs out.
        let grid = throughput_grid(4, 2, 4);
        report.record("e14_batch_compiled", batch_iters, 8, || {
            let cfg = BatchConfig {
                workers: 2,
                compile_policies: true,
                ..BatchConfig::default()
            };
            let rep = negotiate_batch(&grid.peers, &grid.jobs, &cfg, &Telemetry::disabled());
            rep.stats.successes
        });
    }

    let json = report.to_json();
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");

    if let (Some(trail), Some(legacy)) = (
        read_median(&json, "e8_deep_chain_cold"),
        read_median(&json, "e8_deep_chain_legacy"),
    ) {
        println!(
            "e8 deep-chain speedup: legacy {legacy} ns / trail {trail} ns = {:.2}x",
            legacy as f64 / trail as f64
        );
    }
    if let (Some(compiled), Some(interp)) = (
        read_median(&json, "e8_deep_chain_compiled"),
        read_median(&json, "e8_deep_chain_cold"),
    ) {
        println!(
            "e8 compiled speedup (same run): interpreted {interp} ns / compiled {compiled} ns = {:.2}x",
            interp as f64 / compiled as f64
        );
    }

    let mut failed = false;

    if let Some(bp) = baseline_path {
        let base =
            std::fs::read_to_string(&bp).unwrap_or_else(|e| panic!("read baseline {bp}: {e}"));
        let base_ns =
            read_median(&base, "e8_deep_chain_cold").expect("baseline missing e8_deep_chain_cold");
        if let Some(new_ns) = read_median(&json, "e8_deep_chain_cold") {
            let ratio = new_ns as f64 / base_ns as f64;
            println!(
                "e8_deep_chain_cold vs baseline: {new_ns} ns / {base_ns} ns = {ratio:.3}x baseline"
            );
            if ratio > 1.25 {
                eprintln!("FAIL: e8_deep_chain_cold regressed >25% vs {bp}");
                failed = true;
            } else {
                println!("OK: within the 25% regression budget");
            }
        }
        // The PR7 tentpole gate: compiled deep-chain must beat the
        // PR5-era clone-based interpreter by at least 2x. The reference
        // is the same-run `e8_deep_chain_legacy` median so the ratio is
        // immune to machine-wide slowdowns (a throttled CI box inflates
        // both medians equally); the historical PR5 constant is printed
        // for context. A compiled-only lane has no same-run reference,
        // so the gate arms only when both medians were measured.
        if let Some(compiled_ns) = read_median(&json, "e8_deep_chain_compiled") {
            let pr5 = base_ns as f64 / compiled_ns as f64;
            println!(
                "e8_deep_chain_compiled vs PR5 interpreted baseline: {base_ns} ns / {compiled_ns} ns = {pr5:.2}x (informational)"
            );
            if let Some(legacy_ns) = read_median(&json, "e8_deep_chain_legacy") {
                let speedup = legacy_ns as f64 / compiled_ns as f64;
                println!(
                    "e8_deep_chain_compiled vs same-run legacy interpreter: {legacy_ns} ns / {compiled_ns} ns = {speedup:.2}x"
                );
                if speedup < 2.0 {
                    eprintln!(
                        "FAIL: compiled e8 deep-chain is <2x the same-run legacy interpreter"
                    );
                    failed = true;
                } else {
                    println!("OK: compiled lane clears the 2x gate");
                }
            } else {
                println!(
                    "2x gate skipped: no same-run e8_deep_chain_legacy median (interpreted lane not run)"
                );
            }
        }
    }

    if let Some(bp7) = baseline_pr7_path {
        // The gated scenarios are the cold e8/e13 runs in each lane —
        // the tracked solver metrics, measured over full iteration
        // counts. Warm/batch/legacy medians are reported but not gated:
        // their lower iteration counts make a hard 25% bound flaky.
        const GATED: &[&str] = &[
            "e8_deep_chain_cold",
            "e13_tabled_cold",
            "e8_deep_chain_compiled",
            "e13_compiled_cold",
        ];
        let base =
            std::fs::read_to_string(&bp7).unwrap_or_else(|e| panic!("read baseline {bp7}: {e}"));
        for name in report.names() {
            let Some(base_ns) = read_median(&base, name) else {
                continue;
            };
            let new_ns = read_median(&json, name).expect("own median");
            let ratio = new_ns as f64 / base_ns as f64;
            let gated = GATED.contains(&name);
            println!(
                "{name} vs PR7 baseline: {new_ns} ns / {base_ns} ns = {ratio:.3}x{}",
                if gated { "" } else { " (informational)" }
            );
            if gated && ratio > 1.25 {
                eprintln!("FAIL: {name} regressed >25% vs {bp7}");
                failed = true;
            }
        }
        println!("PR7 baseline sweep complete");
    }

    if failed {
        std::process::exit(1);
    }
}
