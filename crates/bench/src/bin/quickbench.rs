//! Criterion-free smoke benchmark for the solver hot path.
//!
//! Runs a handful of e8/e13/e14 scenarios a fixed number of times with
//! `std::time::Instant`, reports the median wall time per scenario, and
//! writes the result as JSON (default `target/BENCH_PR5.json`). This is
//! what `cargo xtask bench --quick` invokes in CI: fast enough to run on
//! every push, deterministic in workload shape, and comparable against
//! the committed pre-PR baseline `BENCH_BASELINE_PR5.json`.
//!
//! Usage:
//!   quickbench [--quick] [--out PATH] [--baseline PATH]
//!
//! `--quick` lowers iteration counts for CI smoke runs. `--baseline`
//! compares the freshly measured `e8_deep_chain_cold` median against the
//! named baseline file and exits non-zero if it regressed by more than
//! 25%.

use peertrust_core::{KnowledgeBase, Literal, PeerId, Rule, Term};
use peertrust_engine::{AnswerTable, EngineConfig, RefSolver, SharedTable, Solver};
use peertrust_negotiation::{negotiate_batch, BatchConfig};
use peertrust_scenarios::throughput_grid;
use peertrust_telemetry::Telemetry;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

/// Linear `reach`/`edge` closure KB: the e8/e13 deep-chain workload.
fn closure_kb(n: usize) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.add_local(Rule::horn(
        Literal::new("reach", vec![Term::var("X"), Term::var("Y")]),
        vec![Literal::new("edge", vec![Term::var("X"), Term::var("Y")])],
    ));
    kb.add_local(Rule::horn(
        Literal::new("reach", vec![Term::var("X"), Term::var("Z")]),
        vec![
            Literal::new("edge", vec![Term::var("X"), Term::var("Y")]),
            Literal::new("reach", vec![Term::var("Y"), Term::var("Z")]),
        ],
    ));
    for i in 0..n {
        kb.add_local(Rule::fact(Literal::new(
            "edge",
            vec![Term::int(i as i64), Term::int(i as i64 + 1)],
        )));
    }
    kb
}

fn engine_config(tabling: bool) -> EngineConfig {
    EngineConfig {
        max_solutions: usize::MAX,
        max_depth: 4096,
        tabling,
        ..EngineConfig::default()
    }
}

/// Median wall time in nanoseconds over `iters` runs of `f`. The closure
/// returns a checksum that is asserted against `expect` so the work
/// cannot be optimized away and the scenario stays self-validating.
fn median_ns<F: FnMut() -> usize>(iters: usize, expect: usize, mut f: F) -> u128 {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        let got = f();
        samples.push(t.elapsed().as_nanos());
        assert_eq!(got, expect, "scenario checksum mismatch");
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Report {
    entries: Vec<(&'static str, u128, usize)>,
}

impl Report {
    fn record(
        &mut self,
        name: &'static str,
        iters: usize,
        expect: usize,
        f: impl FnMut() -> usize,
    ) {
        let ns = median_ns(iters, expect, f);
        println!("{name:<28} median {:>12} ns  ({iters} iters)", ns);
        self.entries.push((name, ns, iters));
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"peertrust-quickbench-v1\",\n");
        out.push_str("  \"scenarios\": {\n");
        for (i, (name, ns, iters)) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            out.push_str(&format!(
                "    \"{name}\": {{ \"median_ns\": {ns}, \"iters\": {iters} }}{comma}\n"
            ));
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// Pull `"<scenario>": { "median_ns": N` out of a quickbench JSON file
/// without a full parser (the format is our own, written above).
fn read_median(json: &str, scenario: &str) -> Option<u128> {
    let key = format!("\"{scenario}\"");
    let at = json.find(&key)?;
    let rest = &json[at..];
    let m = rest.find("\"median_ns\":")?;
    let tail = rest[m + "\"median_ns\":".len()..].trim_start();
    let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "target/BENCH_PR5.json".to_string());
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (deep_iters, table_iters, batch_iters) = if quick { (7, 7, 3) } else { (21, 21, 5) };

    let mut report = Report {
        entries: Vec::new(),
    };

    // e8: deep-chain cold solve, no tabling — the clone-per-choice-point
    // hot path this PR targets. Depth 128 ≥ the 64 the issue demands.
    let deep = closure_kb(128);
    let deep_goal = [Literal::new("reach", vec![Term::int(0), Term::var("W")])];
    report.record("e8_deep_chain_cold", deep_iters, 128, || {
        let mut solver = Solver::new(&deep, PeerId::new("self")).with_config(engine_config(false));
        solver.solve(&deep_goal).len()
    });

    // The same workload through the clone-per-branch reference
    // interpreter (the pre-trail algorithm, kept in-tree). The ratio
    // legacy/trail is a machine-independent speedup figure: both numbers
    // come from the same process on the same hardware.
    report.record("e8_deep_chain_legacy", deep_iters, 128, || {
        let mut solver =
            RefSolver::new(&deep, PeerId::new("self")).with_config(engine_config(false));
        solver.solve(&deep_goal).len()
    });

    // e13: tabled cold solve — table built from scratch each iteration.
    let tbl_kb = closure_kb(64);
    let tbl_goal = [Literal::new("reach", vec![Term::int(0), Term::var("W")])];
    report.record("e13_tabled_cold", table_iters, 64, || {
        let mut solver = Solver::new(&tbl_kb, PeerId::new("self")).with_config(engine_config(true));
        solver.solve(&tbl_goal).len()
    });

    // e13: warm table — answers served from a pre-populated shared table.
    let table: SharedTable = Rc::new(RefCell::new(AnswerTable::new()));
    {
        let mut warmer = Solver::new(&tbl_kb, PeerId::new("self"))
            .with_config(engine_config(true))
            .with_table(table.clone());
        assert_eq!(warmer.solve(&tbl_goal).len(), 64);
    }
    report.record("e13_tabled_warm", table_iters, 64, || {
        let mut solver = Solver::new(&tbl_kb, PeerId::new("self"))
            .with_config(engine_config(true))
            .with_table(table.clone());
        solver.solve(&tbl_goal).len()
    });

    // e14: small negotiation batch — ensures the end-to-end stack
    // (sessions, transport, scheduler) stays within noise.
    let grid = throughput_grid(4, 2, 4);
    report.record("e14_batch", batch_iters, 8, || {
        let cfg = BatchConfig {
            workers: 2,
            ..BatchConfig::default()
        };
        let rep = negotiate_batch(&grid.peers, &grid.jobs, &cfg, &Telemetry::disabled());
        rep.stats.successes
    });

    let json = report.to_json();
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");

    if let (Some(trail), Some(legacy)) = (
        read_median(&json, "e8_deep_chain_cold"),
        read_median(&json, "e8_deep_chain_legacy"),
    ) {
        println!(
            "e8 deep-chain speedup: legacy {legacy} ns / trail {trail} ns = {:.2}x",
            legacy as f64 / trail as f64
        );
    }

    if let Some(bp) = baseline_path {
        let base =
            std::fs::read_to_string(&bp).unwrap_or_else(|e| panic!("read baseline {bp}: {e}"));
        let base_ns =
            read_median(&base, "e8_deep_chain_cold").expect("baseline missing e8_deep_chain_cold");
        let new_ns = read_median(&json, "e8_deep_chain_cold").expect("own e8 median");
        let ratio = new_ns as f64 / base_ns as f64;
        println!(
            "e8_deep_chain_cold vs baseline: {new_ns} ns / {base_ns} ns = {ratio:.3}x baseline"
        );
        if ratio > 1.25 {
            eprintln!("FAIL: e8_deep_chain_cold regressed >25% vs {bp}");
            std::process::exit(1);
        }
        println!("OK: within the 25% regression budget");
    }
}
