//! Criterion-free smoke benchmark for the solver hot path.
//!
//! Runs a handful of e8/e13/e14 scenarios a fixed number of times with
//! `std::time::Instant`, reports the median wall time per scenario, and
//! writes the result as JSON (default `target/BENCH_PR8.json`). This is
//! what `cargo xtask bench --quick` invokes in CI: fast enough to run on
//! every push, deterministic in workload shape, and comparable against
//! the committed baselines (`BENCH_BASELINE_PR5.json`,
//! `BENCH_BASELINE_PR8.json`).
//!
//! Usage:
//!   quickbench [--quick] [--lane interpreted|compiled|both]
//!              [--out PATH] [--baseline PATH] [--baseline-pr8 PATH]
//!              [--baseline-pr9 PATH] [--baseline-pr10 PATH]
//!
//! `--quick` lowers iteration counts for CI smoke runs. `--lane` selects
//! which scenario lane runs (default `both`): the interpreted lane is
//! the historical PR5 scenario set; the compiled lane re-runs the
//! deep-chain and tabled workloads through the WAM-lite compiled KB
//! (compilation happens outside the timed region — the artifact is
//! `Arc`-shared per iteration, which is exactly how negotiation peers
//! consume it).
//!
//! Besides wall time, each cold solver scenario is replayed once to
//! collect its *deterministic* work counters — resolution steps and
//! term-heap cells. Wall-clock medians wobble with machine load; the
//! counters don't, so they are asserted **exactly** against the
//! baseline: any drift in the engine's allocation or search behaviour
//! fails loudly instead of hiding inside a 25% timing budget.
//!
//! Gates, applied after measurement:
//! - Same-run parity (both lanes): `e8_deep_chain_compiled` must not be
//!   slower than `e8_deep_chain_cold`, and `e13_compiled_cold` must not
//!   be slower than `e13_tabled_cold` — the full WAM lowering (PR 8)
//!   made the compiled lane the fast path, and it must stay that way.
//!   The 1.3x stretch target is reported per scenario. Same-run ratios
//!   are immune to machine-wide slowdowns (CI throttling inflates both
//!   lanes equally).
//! - `--baseline` (PR5 format): fail if interpreted `e8_deep_chain_cold`
//!   regressed >25%; the legacy (clone-per-branch) speedup is printed.
//! - `--baseline-pr8` / `--baseline-pr9` / `--baseline-pr10`: fail if a
//!   *cold* scenario (e8/e13, either lane) present in both the fresh run
//!   and the baseline regressed >25%; `e17_gem_mesh` and `e18_serving`
//!   (the open-loop serving engine, tracked since
//!   `BENCH_BASELINE_PR10.json`) are gated at a generous 3x;
//!   warm/batch/legacy deltas are reported informationally. Work
//!   counters present in both must match exactly — for e18 that pins the
//!   admission decisions (admitted/shed counts, queue peak, makespan,
//!   tick-exact wait/latency p99) and `base_clones == 0`, the clone-free
//!   startup guard.

use peertrust_core::{KnowledgeBase, Literal, PeerId, Rule, Term};
use peertrust_engine::{AnswerTable, CompiledKb, EngineConfig, RefSolver, SharedTable, Solver};
use peertrust_negotiation::{
    negotiate_batch, serve_open_loop, BatchConfig, BatchJob, ServeConfig, SessionConfig,
};
use peertrust_scenarios::{delegation_mesh, serving_workload, throughput_grid};
use peertrust_telemetry::Telemetry;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

/// Linear `reach`/`edge` closure KB: the e8/e13 deep-chain workload.
fn closure_kb(n: usize) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.add_local(Rule::horn(
        Literal::new("reach", vec![Term::var("X"), Term::var("Y")]),
        vec![Literal::new("edge", vec![Term::var("X"), Term::var("Y")])],
    ));
    kb.add_local(Rule::horn(
        Literal::new("reach", vec![Term::var("X"), Term::var("Z")]),
        vec![
            Literal::new("edge", vec![Term::var("X"), Term::var("Y")]),
            Literal::new("reach", vec![Term::var("Y"), Term::var("Z")]),
        ],
    ));
    for i in 0..n {
        kb.add_local(Rule::fact(Literal::new(
            "edge",
            vec![Term::int(i as i64), Term::int(i as i64 + 1)],
        )));
    }
    kb
}

fn engine_config(tabling: bool) -> EngineConfig {
    EngineConfig {
        max_solutions: usize::MAX,
        max_depth: 4096,
        tabling,
        ..EngineConfig::default()
    }
}

/// Median wall time in nanoseconds over `iters` runs of `f`. The closure
/// returns a checksum that is asserted against `expect` so the work
/// cannot be optimized away and the scenario stays self-validating.
fn median_ns<F: FnMut() -> usize>(iters: usize, expect: usize, mut f: F) -> u128 {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        let got = f();
        samples.push(t.elapsed().as_nanos());
        assert_eq!(got, expect, "scenario checksum mismatch");
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Paired (interleaved) medians for two closures solving the same
/// workload: each iteration times `a` then `b` back to back, so slow
/// machine-wide drift (thermal throttling, a noisy neighbour ramping up
/// mid-run) lands on both lanes equally. Block measurement — all of `a`,
/// then all of `b` — systematically biases whichever lane runs later;
/// the compiled-vs-interpreted parity gate needs the unbiased pairing.
/// Returns `(median_a, median_b, median_delta)` where `delta` is the
/// per-pair `a - b` in nanoseconds: the paired-difference statistic the
/// parity gate tests (`median_delta >= 0` ⇔ lane `b` is no slower than
/// lane `a` on adjacent identical runs). A noise spike lands on one lane
/// of one pair; the median over all pairs shrugs it off, where a
/// comparison of two independent medians would wobble.
fn paired_median_ns<A: FnMut() -> usize, B: FnMut() -> usize>(
    iters: usize,
    expect: usize,
    mut a: A,
    mut b: B,
) -> (u128, u128, i128) {
    let mut sa = Vec::with_capacity(iters);
    let mut sb = Vec::with_capacity(iters);
    let mut deltas = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        let got = a();
        let ns_a = t.elapsed().as_nanos();
        assert_eq!(got, expect, "scenario checksum mismatch (lane a)");
        let t = Instant::now();
        let got = b();
        let ns_b = t.elapsed().as_nanos();
        assert_eq!(got, expect, "scenario checksum mismatch (lane b)");
        sa.push(ns_a);
        sb.push(ns_b);
        deltas.push(ns_a as i128 - ns_b as i128);
    }
    sa.sort_unstable();
    sb.sort_unstable();
    deltas.sort_unstable();
    (sa[sa.len() / 2], sb[sb.len() / 2], deltas[deltas.len() / 2])
}

struct Report {
    entries: Vec<(&'static str, u128, usize)>,
    /// Deterministic work counters: `"<scenario>.<counter>"` -> value.
    /// Asserted exactly against the committed baseline — see module docs.
    counters: Vec<(String, u64)>,
    /// Interleaved parity pairs: `(interpreted, compiled, median of
    /// per-pair interpreted − compiled deltas in ns)`.
    pairs: Vec<(&'static str, &'static str, i128)>,
}

impl Report {
    fn record(
        &mut self,
        name: &'static str,
        iters: usize,
        expect: usize,
        f: impl FnMut() -> usize,
    ) {
        let ns = median_ns(iters, expect, f);
        println!("{name:<28} median {:>12} ns  ({iters} iters)", ns);
        self.entries.push((name, ns, iters));
    }

    /// Record an interleaved pair — see [`paired_median_ns`]. The
    /// median per-pair delta (`a - b`) feeds the parity gate.
    fn record_paired(
        &mut self,
        name_a: &'static str,
        name_b: &'static str,
        iters: usize,
        expect: usize,
        a: impl FnMut() -> usize,
        b: impl FnMut() -> usize,
    ) {
        let (ns_a, ns_b, delta) = paired_median_ns(iters, expect, a, b);
        println!("{name_a:<28} median {ns_a:>12} ns  ({iters} iters, paired)");
        println!("{name_b:<28} median {ns_b:>12} ns  ({iters} iters, paired)");
        self.entries.push((name_a, ns_a, iters));
        self.entries.push((name_b, ns_b, iters));
        self.pairs.push((name_a, name_b, delta));
    }

    /// Record one scenario's deterministic work counters from a replay's
    /// [`peertrust_engine::Stats`].
    fn count(&mut self, name: &str, stats: &peertrust_engine::Stats) {
        for (counter, value) in [
            ("steps", stats.steps),
            ("heap_cells", stats.heap_cells),
            ("body_instrs", stats.compiled_body_instrs),
        ] {
            self.count_value(name, counter, value);
        }
    }

    /// Record a single deterministic work counter.
    fn count_value(&mut self, name: &str, counter: &str, value: u64) {
        println!("{name:<28} {counter:<16} {value}");
        self.counters.push((format!("{name}.{counter}"), value));
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"peertrust-quickbench-v1\",\n");
        out.push_str("  \"scenarios\": {\n");
        for (i, (name, ns, iters)) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            out.push_str(&format!(
                "    \"{name}\": {{ \"median_ns\": {ns}, \"iters\": {iters} }}{comma}\n"
            ));
        }
        out.push_str("  },\n  \"counters\": {\n");
        for (i, (key, value)) in self.counters.iter().enumerate() {
            let comma = if i + 1 == self.counters.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!("    \"{key}\": {value}{comma}\n"));
        }
        out.push_str("  }\n}\n");
        out
    }

    fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|(n, _, _)| *n).collect()
    }
}

/// Pull `"<scenario>": { "median_ns": N` out of a quickbench JSON file
/// without a full parser (the format is our own, written above).
fn read_median(json: &str, scenario: &str) -> Option<u128> {
    let key = format!("\"{scenario}\"");
    let at = json.find(&key)?;
    let rest = &json[at..];
    let m = rest.find("\"median_ns\":")?;
    let tail = rest[m + "\"median_ns\":".len()..].trim_start();
    let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Pull a flat `"<key>": N` counter out of a quickbench JSON file. The
/// dotted counter keys never collide with scenario names.
fn read_counter(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)?;
    let tail = json[at + needle.len()..].trim_start();
    let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_val = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = arg_val("--out").unwrap_or_else(|| "target/BENCH_PR8.json".to_string());
    let baseline_path = arg_val("--baseline");
    let baseline_pr8_path = arg_val("--baseline-pr8");
    let baseline_pr9_path = arg_val("--baseline-pr9");
    let baseline_pr10_path = arg_val("--baseline-pr10");
    let lane = arg_val("--lane").unwrap_or_else(|| "both".to_string());
    let (run_interp, run_compiled) = match lane.as_str() {
        "interpreted" => (true, false),
        "compiled" => (false, true),
        "both" => (true, true),
        other => {
            eprintln!("unknown --lane {other}: expected interpreted|compiled|both");
            std::process::exit(2);
        }
    };

    // Cold-scenario counts stay high even under `--quick`: a cold solve
    // is ~10ms now, and the paired parity gate needs enough pairs for a
    // stable median-of-deltas. Only the batch scenarios are trimmed.
    let (deep_iters, table_iters, batch_iters) = if quick { (17, 17, 3) } else { (21, 21, 5) };

    let mut report = Report {
        entries: Vec::new(),
        counters: Vec::new(),
        pairs: Vec::new(),
    };

    let deep = closure_kb(128);
    let deep_goal = [Literal::new("reach", vec![Term::int(0), Term::var("W")])];
    let tbl_kb = closure_kb(64);
    let tbl_goal = [Literal::new("reach", vec![Term::int(0), Term::var("W")])];

    // Compiled artifacts are built once, outside every timed region; each
    // iteration pays only an `Arc` clone — the same sharing pattern
    // negotiation peers use via `NegotiationPeer::compile_policies`.
    let deep_c = run_compiled.then(|| Arc::new(CompiledKb::compile(&deep)));
    let tbl_c = run_compiled.then(|| Arc::new(CompiledKb::compile(&tbl_kb)));

    let e8_interp = || {
        let mut solver = Solver::new(&deep, PeerId::new("self")).with_config(engine_config(false));
        solver.solve(&deep_goal).len()
    };
    let e13_interp = || {
        let mut solver = Solver::new(&tbl_kb, PeerId::new("self")).with_config(engine_config(true));
        solver.solve(&tbl_goal).len()
    };
    let e8_compiled = |c: &Arc<CompiledKb>| {
        let mut solver = Solver::new(&deep, PeerId::new("self"))
            .with_config(engine_config(false))
            .with_compiled(c.clone());
        solver.solve(&deep_goal).len()
    };
    let e13_compiled = |c: &Arc<CompiledKb>| {
        let mut solver = Solver::new(&tbl_kb, PeerId::new("self"))
            .with_config(engine_config(true))
            .with_compiled(c.clone());
        solver.solve(&tbl_goal).len()
    };

    // Cold solver scenarios. With both lanes live these are the parity
    // pairs, measured interleaved; a solo lane measures blockwise.
    //
    // e8: deep-chain cold solve, no tabling — the raw clause-resolution
    // hot path. e13: tabled cold solve — the table is built from scratch
    // each iteration.
    match (run_interp, &deep_c) {
        (true, Some(c)) => {
            report.record_paired(
                "e8_deep_chain_cold",
                "e8_deep_chain_compiled",
                deep_iters,
                128,
                e8_interp,
                || e8_compiled(c),
            );
        }
        (true, None) => report.record("e8_deep_chain_cold", deep_iters, 128, e8_interp),
        (false, Some(c)) => {
            report.record("e8_deep_chain_compiled", deep_iters, 128, || e8_compiled(c))
        }
        (false, None) => {}
    }
    match (run_interp, &tbl_c) {
        (true, Some(c)) => {
            report.record_paired(
                "e13_tabled_cold",
                "e13_compiled_cold",
                table_iters,
                64,
                e13_interp,
                || e13_compiled(c),
            );
        }
        (true, None) => report.record("e13_tabled_cold", table_iters, 64, e13_interp),
        (false, Some(c)) => report.record("e13_compiled_cold", table_iters, 64, || e13_compiled(c)),
        (false, None) => {}
    }

    if run_interp {
        // The e8 workload through the clone-per-branch reference
        // interpreter (the pre-trail algorithm, kept in-tree). The ratio
        // legacy/trail is a machine-independent speedup figure: both
        // numbers come from the same process on the same hardware.
        report.record("e8_deep_chain_legacy", deep_iters, 128, || {
            let mut solver =
                RefSolver::new(&deep, PeerId::new("self")).with_config(engine_config(false));
            solver.solve(&deep_goal).len()
        });

        // Deterministic work counters for the cold interpreted scenarios.
        let mut replay = Solver::new(&deep, PeerId::new("self")).with_config(engine_config(false));
        assert_eq!(replay.solve(&deep_goal).len(), 128);
        report.count("e8_deep_chain_cold", &replay.stats());
        let mut replay = Solver::new(&tbl_kb, PeerId::new("self")).with_config(engine_config(true));
        assert_eq!(replay.solve(&tbl_goal).len(), 64);
        report.count("e13_tabled_cold", &replay.stats());

        // e13: warm table — answers served from a pre-populated shared table.
        let table: SharedTable = Rc::new(RefCell::new(AnswerTable::new()));
        {
            let mut warmer = Solver::new(&tbl_kb, PeerId::new("self"))
                .with_config(engine_config(true))
                .with_table(table.clone());
            assert_eq!(warmer.solve(&tbl_goal).len(), 64);
        }
        report.record("e13_tabled_warm", table_iters, 64, || {
            let mut solver = Solver::new(&tbl_kb, PeerId::new("self"))
                .with_config(engine_config(true))
                .with_table(table.clone());
            solver.solve(&tbl_goal).len()
        });

        // e14: small negotiation batch — ensures the end-to-end stack
        // (sessions, transport, scheduler) stays within noise.
        let grid = throughput_grid(4, 2, 4);
        report.record("e14_batch", batch_iters, 8, || {
            let cfg = BatchConfig {
                workers: 2,
                ..BatchConfig::default()
            };
            let rep = negotiate_batch(&grid.peers, &grid.jobs, &cfg, &Telemetry::disabled());
            rep.stats.successes
        });

        // e17: a cyclic delegation mesh batched through the GEM
        // distributed-tabling fixpoint — the classical driver refuses
        // this workload, so the scenario times the loop-resolution lane
        // end to end (loop closure, answer rounds, completion).
        let mesh = delegation_mesh(3, 2, false);
        let mesh_jobs: Vec<BatchJob> = (0..4)
            .map(|_| BatchJob::new(mesh.peer_ids[1], mesh.responder, mesh.goal.clone()))
            .collect();
        report.record("e17_gem_mesh", batch_iters, 4, || {
            let cfg = BatchConfig {
                workers: 2,
                session: SessionConfig {
                    gem: true,
                    gem_max_rounds: 32,
                    ..SessionConfig::default()
                },
                ..BatchConfig::default()
            };
            let rep = negotiate_batch(&mesh.peers, &mesh_jobs, &cfg, &Telemetry::disabled());
            rep.stats.successes
        });

        // e18: the open-loop serving engine over the Zipf workload at an
        // offered rate past saturation — times clone-free session
        // startup, the virtual-time admission controller, and load
        // shedding end to end. The admission decisions are deterministic,
        // so the admitted count doubles as the scenario checksum and the
        // serving counters are asserted exactly against the baseline.
        let serving = serving_workload(4, 2, 64, 1.1, 18);
        let serve_cfg = ServeConfig {
            mean_interarrival_ticks: 4.0,
            servers: 2,
            queue_cap: 4,
            deadline_ticks: 128,
            workers: 2,
            ..ServeConfig::default()
        };
        let serve_once = || {
            let rep = serve_open_loop(
                &serving.peers,
                &serving.jobs,
                &serve_cfg,
                &Telemetry::disabled(),
            );
            assert_eq!(rep.stats.base_clones, 0, "serving must stay clone-free");
            rep.stats.admitted
        };
        let replay = serve_open_loop(
            &serving.peers,
            &serving.jobs,
            &serve_cfg,
            &Telemetry::disabled(),
        );
        let expect_admitted = replay.stats.admitted;
        report.record("e18_serving", batch_iters, expect_admitted, serve_once);
        report.count_value("e18_serving", "admitted", replay.stats.admitted as u64);
        report.count_value(
            "e18_serving",
            "shed",
            (replay.stats.shed_queue_full + replay.stats.shed_deadline) as u64,
        );
        report.count_value("e18_serving", "base_clones", replay.stats.base_clones);
        report.count_value(
            "e18_serving",
            "max_queue_depth",
            replay.stats.max_queue_depth as u64,
        );
        report.count_value("e18_serving", "makespan_ticks", replay.stats.makespan_ticks);
        report.count_value("e18_serving", "wait_p99", replay.stats.wait.p99);
        report.count_value("e18_serving", "latency_p99", replay.stats.latency.p99);
    }

    if let (Some(deep_c), Some(tbl_c)) = (&deep_c, &tbl_c) {
        // Deterministic work counters for the cold compiled scenarios.
        let mut replay = Solver::new(&deep, PeerId::new("self"))
            .with_config(engine_config(false))
            .with_compiled(deep_c.clone());
        assert_eq!(replay.solve(&deep_goal).len(), 128);
        report.count("e8_deep_chain_compiled", &replay.stats());
        let mut replay = Solver::new(&tbl_kb, PeerId::new("self"))
            .with_config(engine_config(true))
            .with_compiled(tbl_c.clone());
        assert_eq!(replay.solve(&tbl_goal).len(), 64);
        report.count("e13_compiled_cold", &replay.stats());

        // e13 warm through the compiled path.
        let table: SharedTable = Rc::new(RefCell::new(AnswerTable::new()));
        {
            let mut warmer = Solver::new(&tbl_kb, PeerId::new("self"))
                .with_config(engine_config(true))
                .with_table(table.clone())
                .with_compiled(tbl_c.clone());
            assert_eq!(warmer.solve(&tbl_goal).len(), 64);
        }
        report.record("e13_compiled_warm", table_iters, 64, || {
            let mut solver = Solver::new(&tbl_kb, PeerId::new("self"))
                .with_config(engine_config(true))
                .with_table(table.clone())
                .with_compiled(tbl_c.clone());
            solver.solve(&tbl_goal).len()
        });

        // e14 with batch-level precompilation: the scheduler compiles
        // every peer's policies once before fanning jobs out.
        let grid = throughput_grid(4, 2, 4);
        report.record("e14_batch_compiled", batch_iters, 8, || {
            let cfg = BatchConfig {
                workers: 2,
                compile_policies: true,
                ..BatchConfig::default()
            };
            let rep = negotiate_batch(&grid.peers, &grid.jobs, &cfg, &Telemetry::disabled());
            rep.stats.successes
        });
    }

    let json = report.to_json();
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");

    if let (Some(trail), Some(legacy)) = (
        read_median(&json, "e8_deep_chain_cold"),
        read_median(&json, "e8_deep_chain_legacy"),
    ) {
        println!(
            "e8 deep-chain speedup: legacy {legacy} ns / trail {trail} ns = {:.2}x",
            legacy as f64 / trail as f64
        );
    }
    if let (Some(compiled), Some(interp)) = (
        read_median(&json, "e8_deep_chain_compiled"),
        read_median(&json, "e8_deep_chain_cold"),
    ) {
        println!(
            "e8 compiled speedup (same run): interpreted {interp} ns / compiled {compiled} ns = {:.2}x",
            interp as f64 / compiled as f64
        );
    }

    let mut failed = false;

    // The PR8 tentpole gate: the full WAM lowering (body bytecode + arena
    // heap + authority dispatch) must make the compiled lane *the fast
    // lane*. Tested on the interleaved pairs via the median per-pair
    // delta — compiled is gated to be no slower than the interpreter on
    // adjacent identical runs. The 1.3x stretch target is reported from
    // the medians but not enforced.
    for (interp_name, compiled_name, delta) in &report.pairs {
        let (Some(compiled_ns), Some(interp_ns)) = (
            read_median(&json, compiled_name),
            read_median(&json, interp_name),
        ) else {
            continue;
        };
        let speedup = interp_ns as f64 / compiled_ns as f64;
        println!(
            "{compiled_name} vs paired {interp_name}: medians {interp_ns} ns / {compiled_ns} ns = {speedup:.2}x, median pair delta {delta} ns"
        );
        // Parity within a 5% noise floor. On e13 the tabling machinery
        // dominates both lanes (Amdahl), so the compiled lane's true edge
        // is a few percent — the same order as within-run drift on a
        // shared box, and even the median of paired deltas crosses zero
        // on ~1 in 5 runs at a 1% floor. 5% is still far below any real
        // regression (an accidental fall-back to interpretation shows up
        // as tens of percent), and the *exact* work-counter assertions
        // below catch behavioural drift that wall clocks can't.
        let tolerance = interp_ns as i128 / 20;
        if *delta < -tolerance {
            eprintln!(
                "FAIL: {compiled_name} is slower than {interp_name} on the median interleaved pair"
            );
            failed = true;
        } else if speedup >= 1.3 {
            println!("OK: clears the 1.3x stretch target");
        } else {
            println!("OK: at parity or better (1.3x stretch target not yet met)");
        }
    }

    if let Some(bp) = baseline_path {
        let base =
            std::fs::read_to_string(&bp).unwrap_or_else(|e| panic!("read baseline {bp}: {e}"));
        let base_ns =
            read_median(&base, "e8_deep_chain_cold").expect("baseline missing e8_deep_chain_cold");
        if let Some(new_ns) = read_median(&json, "e8_deep_chain_cold") {
            let ratio = new_ns as f64 / base_ns as f64;
            println!(
                "e8_deep_chain_cold vs baseline: {new_ns} ns / {base_ns} ns = {ratio:.3}x baseline"
            );
            if ratio > 1.25 {
                eprintln!("FAIL: e8_deep_chain_cold regressed >25% vs {bp}");
                failed = true;
            } else {
                println!("OK: within the 25% regression budget");
            }
        }
        // Historical context only: the old PR7 gate (compiled ≥2x the
        // clone-based legacy interpreter) is superseded by the same-run
        // parity gate above, which holds the compiled lane to a stricter
        // reference — the *current* trail-based interpreter.
        if let Some(compiled_ns) = read_median(&json, "e8_deep_chain_compiled") {
            let pr5 = base_ns as f64 / compiled_ns as f64;
            println!(
                "e8_deep_chain_compiled vs PR5 interpreted baseline: {base_ns} ns / {compiled_ns} ns = {pr5:.2}x (informational)"
            );
        }
    }

    if let Some(bp8) = baseline_pr8_path {
        failed |= baseline_sweep(&report, &json, &bp8, "PR8");
    }
    if let Some(bp9) = baseline_pr9_path {
        failed |= baseline_sweep(&report, &json, &bp9, "PR9");
    }
    if let Some(bp10) = baseline_pr10_path {
        failed |= baseline_sweep(&report, &json, &bp10, "PR10");
    }

    if failed {
        std::process::exit(1);
    }
}

/// Compare this run against a committed quickbench baseline. Returns
/// `true` if a gate failed.
///
/// The scenarios gated at 25% are the cold e8/e13 runs in each lane —
/// the tracked solver metrics, measured over full iteration counts.
/// Warm/batch/legacy medians are reported but not gated: their lower
/// iteration counts make a hard 25% bound flaky. `e17_gem_mesh` shares
/// the low batch iteration counts, so it gets a generous 3x guard
/// instead — loose enough for scheduler-batch noise, tight enough to
/// catch a catastrophic fixpoint regression (e.g. every SCC grinding to
/// the round limit).
fn baseline_sweep(report: &Report, json: &str, path: &str, label: &str) -> bool {
    const GATED_25PCT: &[&str] = &[
        "e8_deep_chain_cold",
        "e13_tabled_cold",
        "e8_deep_chain_compiled",
        "e13_compiled_cold",
    ];
    const GATED_3X: &[&str] = &["e17_gem_mesh", "e18_serving"];
    let mut failed = false;
    let base =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
    for name in report.names() {
        let Some(base_ns) = read_median(&base, name) else {
            continue;
        };
        let new_ns = read_median(json, name).expect("own median");
        let ratio = new_ns as f64 / base_ns as f64;
        let budget = if GATED_25PCT.contains(&name) {
            Some(1.25)
        } else if GATED_3X.contains(&name) {
            Some(3.0)
        } else {
            None
        };
        println!(
            "{name} vs {label} baseline: {new_ns} ns / {base_ns} ns = {ratio:.3}x{}",
            if budget.is_some() {
                ""
            } else {
                " (informational)"
            }
        );
        if let Some(budget) = budget {
            if ratio > budget {
                eprintln!("FAIL: {name} regressed >{budget:.2}x vs {path}");
                failed = true;
            }
        }
    }
    // Work counters are deterministic — assert them *exactly*.
    // Timing noise can't hide here: one extra resolution step or
    // heap cell against the committed baseline is a failure.
    let mut checked = 0;
    for (key, value) in &report.counters {
        let Some(base_value) = read_counter(&base, key) else {
            continue;
        };
        checked += 1;
        if *value != base_value {
            eprintln!("FAIL: counter {key} = {value}, baseline {path} says {base_value}");
            failed = true;
        }
    }
    println!("{label} baseline sweep complete ({checked} counters matched exactly)");
    failed
}
