//! Credentials with validity and revocation.
//!
//! The paper's §4.2 requires a run-time *revocation check*: "To check if a
//! requester's VISA card has been revoked, E-Learn must make an external
//! function call to a VISA card revocation authority." We model the
//! credential lifecycle pieces that check needs: a [`Credential`] wraps a
//! signed rule with a serial number and a validity interval (in abstract
//! negotiation-clock ticks, since the simulation has no wall clock), and a
//! [`RevocationList`] is the authority-side CRL that peers query.

use crate::keys::KeyRegistry;
use crate::sig::{verify_signed_rule, SigError, SignedRule};
use parking_lot::RwLock;
use peertrust_core::PeerId;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// Monotone abstract time used for validity intervals (the simulated
/// network's tick counter).
pub type Tick = u64;

/// A serial-numbered credential: a signed rule plus lifecycle metadata.
#[derive(Clone, Debug)]
pub struct Credential {
    /// Issuer-assigned serial, unique per issuer.
    pub serial: u64,
    /// The signed rule (e.g. Alice's student ID, IBM's VISA card).
    pub signed: SignedRule,
    /// First tick at which the credential is valid.
    pub not_before: Tick,
    /// First tick at which the credential is *no longer* valid.
    pub not_after: Tick,
}

/// Why a credential was rejected.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CredentialError {
    /// Underlying signature failure.
    Sig(SigError),
    /// Outside the validity interval.
    Expired {
        at: Tick,
        not_after: Tick,
    },
    NotYetValid {
        at: Tick,
        not_before: Tick,
    },
    /// Present on the issuer's revocation list.
    Revoked {
        issuer: PeerId,
        serial: u64,
    },
}

impl fmt::Display for CredentialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CredentialError::Sig(e) => write!(f, "{e}"),
            CredentialError::Expired { at, not_after } => {
                write!(f, "credential expired (now {at}, not_after {not_after})")
            }
            CredentialError::NotYetValid { at, not_before } => {
                write!(
                    f,
                    "credential not yet valid (now {at}, not_before {not_before})"
                )
            }
            CredentialError::Revoked { issuer, serial } => {
                write!(f, "credential {serial} revoked by {issuer}")
            }
        }
    }
}

impl std::error::Error for CredentialError {}

impl From<SigError> for CredentialError {
    fn from(e: SigError) -> CredentialError {
        CredentialError::Sig(e)
    }
}

impl Credential {
    /// A credential valid for all time (most scenario credentials).
    pub fn perpetual(serial: u64, signed: SignedRule) -> Credential {
        Credential {
            serial,
            signed,
            not_before: 0,
            not_after: Tick::MAX,
        }
    }

    /// Validate signature + validity interval at time `now` (revocation is a
    /// separate, possibly remote, check — see [`RevocationList`]).
    pub fn validate(
        &self,
        registry: &KeyRegistry,
        now: Tick,
    ) -> Result<Vec<PeerId>, CredentialError> {
        if now < self.not_before {
            return Err(CredentialError::NotYetValid {
                at: now,
                not_before: self.not_before,
            });
        }
        if now >= self.not_after {
            return Err(CredentialError::Expired {
                at: now,
                not_after: self.not_after,
            });
        }
        Ok(verify_signed_rule(registry, &self.signed)?)
    }
}

/// An issuer's revocation list (CRL). Shared handle, like [`KeyRegistry`].
#[derive(Clone, Default)]
pub struct RevocationList {
    revoked: Arc<RwLock<HashSet<(PeerId, u64)>>>,
}

impl RevocationList {
    pub fn new() -> RevocationList {
        RevocationList::default()
    }

    /// Revoke `serial` as issued by `issuer`.
    pub fn revoke(&self, issuer: PeerId, serial: u64) {
        self.revoked.write().insert((issuer, serial));
    }

    /// Undo a revocation (e.g. an administrative error).
    pub fn reinstate(&self, issuer: PeerId, serial: u64) {
        self.revoked.write().remove(&(issuer, serial));
    }

    /// Is the credential revoked? This is the "external function call to a
    /// revocation authority" of §4.2.
    pub fn is_revoked(&self, issuer: PeerId, serial: u64) -> bool {
        self.revoked.read().contains(&(issuer, serial))
    }

    /// Full check: signature, validity window, then CRL per issuer.
    pub fn check(
        &self,
        registry: &KeyRegistry,
        cred: &Credential,
        now: Tick,
    ) -> Result<(), CredentialError> {
        let issuers = cred.validate(registry, now)?;
        for issuer in issuers {
            if self.is_revoked(issuer, cred.serial) {
                return Err(CredentialError::Revoked {
                    issuer,
                    serial: cred.serial,
                });
            }
        }
        Ok(())
    }
}

impl fmt::Debug for RevocationList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RevocationList({} entries)", self.revoked.read().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::sign_rule;
    use peertrust_core::{Literal, Rule, Term};

    fn setup() -> (KeyRegistry, Credential) {
        let reg = KeyRegistry::new();
        reg.register_derived(PeerId::new("VISA"), 9);
        let rule = Rule::fact(Literal::new("visaCard", vec![Term::str("IBM")])).signed_by("VISA");
        let signed = sign_rule(&reg, &rule).unwrap();
        (reg, Credential::perpetual(1001, signed))
    }

    #[test]
    fn valid_credential_passes_full_check() {
        let (reg, cred) = setup();
        let crl = RevocationList::new();
        assert!(crl.check(&reg, &cred, 5).is_ok());
    }

    #[test]
    fn revoked_credential_fails() {
        let (reg, cred) = setup();
        let crl = RevocationList::new();
        crl.revoke(PeerId::new("VISA"), 1001);
        assert_eq!(
            crl.check(&reg, &cred, 5).unwrap_err(),
            CredentialError::Revoked {
                issuer: PeerId::new("VISA"),
                serial: 1001
            }
        );
    }

    #[test]
    fn reinstatement_restores_validity() {
        let (reg, cred) = setup();
        let crl = RevocationList::new();
        crl.revoke(PeerId::new("VISA"), 1001);
        crl.reinstate(PeerId::new("VISA"), 1001);
        assert!(crl.check(&reg, &cred, 5).is_ok());
    }

    #[test]
    fn revocation_is_per_serial() {
        let (reg, cred) = setup();
        let crl = RevocationList::new();
        crl.revoke(PeerId::new("VISA"), 9999); // a different card
        assert!(crl.check(&reg, &cred, 5).is_ok());
    }

    #[test]
    fn validity_window_enforced() {
        let (reg, mut cred) = setup();
        cred.not_before = 10;
        cred.not_after = 20;
        assert!(matches!(
            cred.validate(&reg, 5),
            Err(CredentialError::NotYetValid { .. })
        ));
        assert!(cred.validate(&reg, 10).is_ok());
        assert!(cred.validate(&reg, 19).is_ok());
        assert!(matches!(
            cred.validate(&reg, 20),
            Err(CredentialError::Expired { .. })
        ));
    }

    #[test]
    fn tampered_credential_fails_before_crl() {
        let (reg, mut cred) = setup();
        cred.signed.rule.head.args[0] = Term::str("Mallory Corp");
        let crl = RevocationList::new();
        assert!(matches!(
            crl.check(&reg, &cred, 5),
            Err(CredentialError::Sig(_))
        ));
    }
}
