//! HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//!
//! Used as the signature primitive of the simulated PKI: each issuer holds a
//! secret key; verifiers check tags through the trusted [`crate::keys::KeyRegistry`],
//! which plays the role of the paper's certificate-authority infrastructure.

use crate::sha256::{sha256, Digest, Sha256};

const BLOCK: usize = 64;

/// Compute `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    // Keys longer than the block size are hashed first.
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0u8; BLOCK];
    let mut opad = [0u8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] = k[i] ^ 0x36;
        opad[i] = k[i] ^ 0x5c;
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time tag comparison (avoids the classic timing side channel,
/// mostly for hygiene — the simulated network is in-process).
pub fn verify_tag(expected: &Digest, actual: &Digest) -> bool {
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(actual) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    // RFC 4231 test vectors for HMAC-SHA256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2_jefe() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3_fifty_aa() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            to_hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }

    #[test]
    fn verify_tag_accepts_equal_rejects_unequal() {
        let t1 = hmac_sha256(b"k", b"m");
        let mut t2 = t1;
        assert!(verify_tag(&t1, &t2));
        t2[31] ^= 1;
        assert!(!verify_tag(&t1, &t2));
    }
}
