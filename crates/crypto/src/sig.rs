//! Signing and verifying rules.
//!
//! A signed rule travels between peers as a [`SignedRule`]: the rule (with
//! contexts stripped, per paper §3.1 — contexts are the *sender's* release
//! policies and are not shipped) plus one signature per issuer listed in its
//! `signedBy` clause. Before a received rule enters a peer's knowledge base,
//! [`verify_signed_rule`] checks every claimed signature; the paper assumes
//! exactly this ("we assume that when a peer receives a signed rule from
//! another peer, the signature is verified before the rule is passed to the
//! DLP evaluation engine").
//!
//! The canonical byte encoding of a rule is its pretty-printed text — the
//! printer is deterministic, and the parser/printer round-trip tests in
//! `peertrust-parser` guarantee injectivity for the language's rule shapes.

use crate::keys::{KeyError, KeyRegistry};
use crate::sha256::Digest;
use peertrust_core::{PeerId, Rule};

/// A rule plus the signatures (one per entry of `rule.signed_by`, same
/// order) that make it a transferable credential.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SignedRule {
    pub rule: Rule,
    pub signatures: Vec<Digest>,
}

/// Errors when producing or checking signed rules.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SigError {
    /// The rule's `signedBy` clause is empty — nothing to sign.
    NotASignedRule,
    /// Wrong number of signatures attached.
    SignatureCountMismatch { expected: usize, actual: usize },
    /// Key registry failure (unknown issuer or bad tag).
    Key(KeyError),
}

impl std::fmt::Display for SigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SigError::NotASignedRule => write!(f, "rule carries no signedBy clause"),
            SigError::SignatureCountMismatch { expected, actual } => {
                write!(f, "expected {expected} signatures, found {actual}")
            }
            SigError::Key(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SigError {}

impl From<KeyError> for SigError {
    fn from(e: KeyError) -> SigError {
        SigError::Key(e)
    }
}

/// The canonical bytes an issuer signs: the context-stripped rule text.
/// Contexts are the holder's private release policies and must not affect
/// (or be covered by) the issuer's signature.
pub fn canonical_bytes(rule: &Rule) -> Vec<u8> {
    rule.strip_contexts().to_string().into_bytes()
}

/// Sign `rule` with every issuer in its `signedBy` clause.
///
/// In production each issuer signs at issuance time; in the simulation the
/// shared registry lets scenario setup mint credentials directly.
pub fn sign_rule(registry: &KeyRegistry, rule: &Rule) -> Result<SignedRule, SigError> {
    if rule.signed_by.is_empty() {
        return Err(SigError::NotASignedRule);
    }
    let msg = canonical_bytes(rule);
    let signatures = rule
        .issuers()
        .into_iter()
        .map(|issuer| registry.sign(issuer, &msg))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SignedRule {
        rule: rule.clone(),
        signatures,
    })
}

/// Verify every signature on a received rule. Returns the issuer list on
/// success so callers can record provenance.
pub fn verify_signed_rule(
    registry: &KeyRegistry,
    signed: &SignedRule,
) -> Result<Vec<PeerId>, SigError> {
    let issuers = signed.rule.issuers();
    if issuers.is_empty() {
        return Err(SigError::NotASignedRule);
    }
    if issuers.len() != signed.signatures.len() {
        return Err(SigError::SignatureCountMismatch {
            expected: issuers.len(),
            actual: signed.signatures.len(),
        });
    }
    let msg = canonical_bytes(&signed.rule);
    for (issuer, tag) in issuers.iter().zip(&signed.signatures) {
        registry.verify(*issuer, &msg, tag)?;
    }
    Ok(issuers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use peertrust_core::{Context, Literal, Term};

    fn registry() -> KeyRegistry {
        let reg = KeyRegistry::new();
        reg.register_derived(PeerId::new("UIUC"), 1);
        reg.register_derived(PeerId::new("ELENA"), 2);
        reg
    }

    fn student_cred() -> Rule {
        Rule::fact(Literal::new("student", vec![Term::str("Alice")]).at(Term::str("UIUC")))
            .signed_by("UIUC")
    }

    #[test]
    fn sign_and_verify_roundtrip() {
        let reg = registry();
        let signed = sign_rule(&reg, &student_cred()).unwrap();
        let issuers = verify_signed_rule(&reg, &signed).unwrap();
        assert_eq!(issuers, vec![PeerId::new("UIUC")]);
    }

    #[test]
    fn unsigned_rule_rejected() {
        let reg = registry();
        let plain = Rule::fact(Literal::new("p", vec![]));
        assert_eq!(
            sign_rule(&reg, &plain).unwrap_err(),
            SigError::NotASignedRule
        );
    }

    #[test]
    fn tampered_rule_content_fails_verification() {
        let reg = registry();
        let mut signed = sign_rule(&reg, &student_cred()).unwrap();
        // Mallory swaps the subject.
        signed.rule.head.args[0] = Term::str("Mallory");
        assert!(matches!(
            verify_signed_rule(&reg, &signed).unwrap_err(),
            SigError::Key(KeyError::BadSignature(_))
        ));
    }

    #[test]
    fn forged_issuer_claim_fails() {
        let reg = registry();
        // Mallory takes her self-signed rule and claims UIUC signed it.
        let mallory_rule =
            Rule::fact(Literal::new("student", vec![Term::str("Mallory")]).at(Term::str("UIUC")))
                .signed_by("UIUC");
        // She cannot produce UIUC's tag, so she attaches garbage.
        let forged = SignedRule {
            rule: mallory_rule,
            signatures: vec![[7u8; 32]],
        };
        assert!(verify_signed_rule(&reg, &forged).is_err());
    }

    #[test]
    fn signature_count_mismatch_detected() {
        let reg = registry();
        let mut signed = sign_rule(&reg, &student_cred()).unwrap();
        signed.signatures.clear();
        assert_eq!(
            verify_signed_rule(&reg, &signed).unwrap_err(),
            SigError::SignatureCountMismatch {
                expected: 1,
                actual: 0
            }
        );
    }

    #[test]
    fn multi_issuer_rules_need_all_signatures() {
        let reg = registry();
        let dual = Rule::fact(Literal::new("jointStatement", vec![]))
            .signed_by("UIUC")
            .signed_by("ELENA");
        let signed = sign_rule(&reg, &dual).unwrap();
        assert_eq!(signed.signatures.len(), 2);
        assert!(verify_signed_rule(&reg, &signed).is_ok());

        // Corrupt the second signature only.
        let mut bad = signed;
        bad.signatures[1][0] ^= 0xff;
        assert!(verify_signed_rule(&reg, &bad).is_err());
    }

    #[test]
    fn contexts_do_not_affect_signature() {
        // The holder may attach release policies locally; the issuer's
        // signature still verifies because contexts are stripped from the
        // canonical bytes.
        let reg = registry();
        let signed = sign_rule(&reg, &student_cred()).unwrap();
        let mut with_ctx = signed.clone();
        with_ctx.rule.head_context = Some(Context::public());
        assert!(verify_signed_rule(&reg, &with_ctx).is_ok());
    }

    #[test]
    fn delegation_rule_signs() {
        let reg = registry();
        let delegation = Rule::horn(
            Literal::new("student", vec![Term::var("X")]).at(Term::str("UIUC")),
            vec![Literal::new("student", vec![Term::var("X")]).at(Term::str("UIUC Registrar"))],
        )
        .signed_by("UIUC");
        let signed = sign_rule(&reg, &delegation).unwrap();
        assert!(verify_signed_rule(&reg, &signed).is_ok());
    }
}
