//! Keys and the trusted key registry — the simulated CA infrastructure.
//!
//! PeerTrust 1.0 used X.509 certificates and the Java Cryptography
//! Architecture (paper §6). We substitute a minimal PKI that preserves the
//! properties the negotiation layer relies on:
//!
//! * an issuer can produce a tag over a rule that nobody else can produce;
//! * any peer can verify a tag *if* it trusts the registry entry for the
//!   issuer (stand-in for a CA-signed certificate chain);
//! * verification fails on any tampering with rule contents or claimed
//!   issuer.
//!
//! Signatures are HMAC-SHA256 with per-issuer secrets. The [`KeyRegistry`]
//! holds issuer secrets and is shared (read-only) by verifying peers,
//! modelling "everyone can check a signature" without implementing
//! asymmetric crypto from scratch; the registry API intentionally only
//! exposes sign/verify, never raw secrets, so the trust boundary matches a
//! real public-key deployment.

use crate::hmac::{hmac_sha256, verify_tag};
use crate::sha256::Digest;
use parking_lot::RwLock;
use peertrust_core::PeerId;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A signing secret. Deliberately opaque: no `Display`, no getters.
#[derive(Clone)]
pub struct SecretKey(Vec<u8>);

impl SecretKey {
    /// Derive a key from raw bytes (tests) …
    pub fn from_bytes(bytes: &[u8]) -> SecretKey {
        SecretKey(bytes.to_vec())
    }

    /// … or generate one deterministically from an issuer name and a seed
    /// (used by scenario setup so runs are reproducible).
    pub fn derive(issuer: PeerId, seed: u64) -> SecretKey {
        let mut material = issuer.name().as_bytes().to_vec();
        material.extend_from_slice(&seed.to_be_bytes());
        SecretKey(crate::sha256::sha256(&material).to_vec())
    }
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SecretKey(…)")
    }
}

/// Errors from registry operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum KeyError {
    /// No key registered for this issuer — the "certificate chain" cannot be
    /// validated.
    UnknownIssuer(PeerId),
    /// The issuer is known but the tag does not verify (tampering or wrong
    /// issuer claim).
    BadSignature(PeerId),
}

impl fmt::Display for KeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyError::UnknownIssuer(p) => write!(f, "unknown issuer {p}"),
            KeyError::BadSignature(p) => write!(f, "signature claimed by {p} does not verify"),
        }
    }
}

impl std::error::Error for KeyError {}

/// The shared trusted key registry (simulated CA).
///
/// Cloning is cheap (`Arc` inside); all clones see the same key set.
#[derive(Clone, Default)]
pub struct KeyRegistry {
    inner: Arc<RwLock<HashMap<PeerId, SecretKey>>>,
}

impl KeyRegistry {
    pub fn new() -> KeyRegistry {
        KeyRegistry::default()
    }

    /// Register (or replace) the key for `issuer`.
    pub fn register(&self, issuer: PeerId, key: SecretKey) {
        self.inner.write().insert(issuer, key);
    }

    /// Register a derived key for `issuer`; convenience for scenario setup.
    pub fn register_derived(&self, issuer: PeerId, seed: u64) {
        self.register(issuer, SecretKey::derive(issuer, seed));
    }

    /// Is the issuer known?
    pub fn knows(&self, issuer: PeerId) -> bool {
        self.inner.read().contains_key(&issuer)
    }

    /// Produce the tag `issuer` would attach to `message`.
    pub fn sign(&self, issuer: PeerId, message: &[u8]) -> Result<Digest, KeyError> {
        let guard = self.inner.read();
        let key = guard.get(&issuer).ok_or(KeyError::UnknownIssuer(issuer))?;
        Ok(hmac_sha256(&key.0, message))
    }

    /// Check that `tag` is `issuer`'s tag over `message`.
    pub fn verify(&self, issuer: PeerId, message: &[u8], tag: &Digest) -> Result<(), KeyError> {
        let expected = self.sign(issuer, message)?;
        if verify_tag(&expected, tag) {
            Ok(())
        } else {
            Err(KeyError::BadSignature(issuer))
        }
    }
}

impl fmt::Debug for KeyRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KeyRegistry({} issuers)", self.inner.read().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let reg = KeyRegistry::new();
        let uiuc = PeerId::new("UIUC");
        reg.register_derived(uiuc, 42);
        let tag = reg.sign(uiuc, b"student(\"Alice\")").unwrap();
        assert!(reg.verify(uiuc, b"student(\"Alice\")", &tag).is_ok());
    }

    #[test]
    fn tampered_message_rejected() {
        let reg = KeyRegistry::new();
        let uiuc = PeerId::new("UIUC");
        reg.register_derived(uiuc, 42);
        let tag = reg.sign(uiuc, b"student(\"Alice\")").unwrap();
        assert_eq!(
            reg.verify(uiuc, b"student(\"Mallory\")", &tag),
            Err(KeyError::BadSignature(uiuc))
        );
    }

    #[test]
    fn wrong_issuer_rejected() {
        let reg = KeyRegistry::new();
        let uiuc = PeerId::new("UIUC");
        let visa = PeerId::new("VISA");
        reg.register_derived(uiuc, 1);
        reg.register_derived(visa, 2);
        let tag = reg.sign(uiuc, b"m").unwrap();
        assert!(reg.verify(visa, b"m", &tag).is_err());
    }

    #[test]
    fn unknown_issuer_is_distinguished_error() {
        let reg = KeyRegistry::new();
        let ghost = PeerId::new("Ghost CA");
        assert_eq!(
            reg.sign(ghost, b"m").unwrap_err(),
            KeyError::UnknownIssuer(ghost)
        );
        assert_eq!(
            reg.verify(ghost, b"m", &[0u8; 32]).unwrap_err(),
            KeyError::UnknownIssuer(ghost)
        );
    }

    #[test]
    fn clones_share_keys() {
        let reg = KeyRegistry::new();
        let reg2 = reg.clone();
        reg.register_derived(PeerId::new("BBB"), 7);
        assert!(reg2.knows(PeerId::new("BBB")));
    }

    #[test]
    fn derived_keys_are_deterministic_and_distinct() {
        let a1 = SecretKey::derive(PeerId::new("A"), 1);
        let a1b = SecretKey::derive(PeerId::new("A"), 1);
        let a2 = SecretKey::derive(PeerId::new("A"), 2);
        let b1 = SecretKey::derive(PeerId::new("B"), 1);
        assert_eq!(hmac_sha256(&a1.0, b"m"), hmac_sha256(&a1b.0, b"m"));
        assert_ne!(hmac_sha256(&a1.0, b"m"), hmac_sha256(&a2.0, b"m"));
        assert_ne!(hmac_sha256(&a1.0, b"m"), hmac_sha256(&b1.0, b"m"));
    }
}
