//! # peertrust-crypto
//!
//! The simulated PKI substrate for PeerTrust negotiations.
//!
//! The 2004 prototype used X.509 certificates and the Java Cryptography
//! Architecture. This crate substitutes a self-contained simulation that
//! preserves everything the negotiation layer observes (see DESIGN.md,
//! "Substitutions"):
//!
//! * [`sha256`] — FIPS 180-4 SHA-256, from scratch, validated against the
//!   official test vectors;
//! * [`hmac`] — HMAC-SHA256 (RFC 2104), the signature primitive;
//! * [`keys`] — per-issuer secret keys and the trusted [`keys::KeyRegistry`]
//!   standing in for a CA hierarchy;
//! * [`sig`] — canonical rule serialization and [`sig::SignedRule`], the
//!   transferable form of a credential or signed delegation;
//! * [`cert`] — credential lifecycle: serials, validity windows, and the
//!   revocation lists behind §4.2's "external call to a VISA card revocation
//!   authority".

pub mod cert;
pub mod hmac;
pub mod keys;
pub mod sha256;
pub mod sig;

pub use cert::{Credential, CredentialError, RevocationList, Tick};
pub use keys::{KeyError, KeyRegistry, SecretKey};
pub use sha256::{sha256 as sha256_digest, Digest, Sha256};
pub use sig::{canonical_bytes, sign_rule, verify_signed_rule, SigError, SignedRule};
