//! Property test: the pretty-printer and parser are mutually inverse on
//! the rule shapes the language can express.

use peertrust_core::prelude::*;
use peertrust_parser::{parse_literal, parse_rule};
use proptest::prelude::*;

/// Printable terms: variables, atoms, strings, ints, compounds. Symbols
/// are drawn from a fixed safe alphabet (the printer does not escape
/// arbitrary atom names; the language requires identifier-shaped atoms).
fn arb_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        "[A-Z][a-z0-9]{0,4}".prop_map(|v| Term::var(v.as_str())),
        "[a-z][a-zA-Z0-9_]{0,6}".prop_map(|a| Term::atom(a.as_str())),
        "[a-zA-Z0-9 ._@-]{0,8}".prop_map(|s| Term::str(s.as_str())),
        any::<i32>().prop_map(|i| Term::int(i64::from(i))),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        ("[a-z][a-zA-Z0-9_]{0,5}", prop::collection::vec(inner, 1..3))
            .prop_map(|(f, args)| Term::compound(f.as_str(), args))
    })
}

fn arb_plain_literal() -> impl Strategy<Value = Literal> {
    (
        "[a-z][a-zA-Z0-9_]{0,6}",
        prop::collection::vec(arb_term(), 0..3),
        prop::collection::vec(arb_term(), 0..2),
    )
        .prop_map(|(p, args, auth)| {
            let mut lit = Literal::new(p.as_str(), args);
            for a in auth {
                lit = lit.at(a);
            }
            lit
        })
}

fn arb_comparison() -> impl Strategy<Value = Literal> {
    (
        prop_oneof![
            Just("="),
            Just("!="),
            Just("<"),
            Just("<="),
            Just(">"),
            Just(">=")
        ],
        arb_term(),
        arb_term(),
    )
        .prop_map(|(op, a, b)| Literal::cmp(op, a, b))
}

fn arb_body_item() -> impl Strategy<Value = Literal> {
    prop_oneof![arb_plain_literal(), arb_comparison()]
}

fn arb_context() -> impl Strategy<Value = Context> {
    prop::collection::vec(arb_body_item(), 0..3).prop_map(Context::goals)
}

fn arb_rule() -> impl Strategy<Value = Rule> {
    (
        arb_plain_literal(),
        prop::option::of(arb_context()),
        prop::option::of(arb_context()),
        prop::collection::vec(arb_body_item(), 0..4),
        prop::collection::vec("[A-Za-z][A-Za-z0-9 -]{0,6}", 0..3),
    )
        .prop_map(|(head, head_ctx, rule_ctx, body, signers)| {
            let mut rule = Rule::horn(head, body);
            rule.head_context = head_ctx;
            rule.rule_context = rule_ctx;
            rule.signed_by = signers.iter().map(|s| Sym::new(s)).collect();
            rule
        })
        // The printer only emits a rule context when an arrow is printed,
        // and the parser's `_ctx` subscript holds a single unit — multi-
        // goal rule contexts print as `_(a, b)` which round-trips, but a
        // rule context on a *bare fact* (no arrow) cannot be printed.
        .prop_filter("rule context needs an arrow", |r| {
            r.rule_context.is_none() || !r.body.is_empty() || r.signed_by.is_empty()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn literal_roundtrip(lit in arb_plain_literal()) {
        let printed = lit.to_string();
        let reparsed = parse_literal(&printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        prop_assert_eq!(lit, reparsed);
    }

    #[test]
    fn comparison_roundtrip(lit in arb_comparison()) {
        let printed = lit.to_string();
        let reparsed = parse_literal(&printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        prop_assert_eq!(lit, reparsed);
    }

    #[test]
    fn rule_roundtrip(rule in arb_rule()) {
        let printed = rule.to_string();
        let reparsed = parse_rule(&printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        // Context normalization: `$ true` parses to the public context but
        // `Some(public)` and explicit goals print identically, so compare
        // through a second print.
        prop_assert_eq!(printed.clone(), reparsed.to_string());
    }
}
