//! Tokenizer for the PeerTrust concrete syntax.
//!
//! The token set follows the paper's examples:
//!
//! * identifiers starting lower-case are **atoms** / predicate names
//!   (`student`, `cs101`, `policy49`);
//! * identifiers starting upper-case or `_` are **variables**
//!   (`Course`, `Requester`, `X`);
//! * `"..."` are **string constants** (peer names: `"UIUC"`, `"E-Learn"`);
//! * integers (`2000`), possibly negative;
//! * punctuation: `(` `)` `[` `]` `{` `}` `,` `.` `:` `@` `$`;
//! * the rule arrow `<-` (also accepted: `:-` and the Unicode `←`), with an
//!   optional context subscript introduced by `_` (`<-_true`);
//! * comparison operators `=` `!=` `<` `<=` `>` `>=`;
//! * the keyword `signedBy`.
//!
//! Comments: `%` and `//` to end of line, `/* ... */` blocks.

use std::fmt;

/// Source position (1-based line and column) for error reporting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pos {
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Lower-case identifier (atom / predicate name).
    Ident(String),
    /// Upper-case / underscore identifier (variable).
    Var(String),
    /// Quoted string constant (quotes removed, escapes processed).
    Str(String),
    /// Integer constant.
    Int(i64),
    /// `signedBy` keyword.
    SignedBy,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Dot,
    Colon,
    At,
    Dollar,
    /// The rule arrow `<-` / `:-` / `←`.
    Arrow,
    /// `_` immediately after an arrow introduces a rule context.
    Underscore,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Var(s) => write!(f, "{s}"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::SignedBy => write!(f, "signedBy"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::Colon => write!(f, ":"),
            Tok::At => write!(f, "@"),
            Tok::Dollar => write!(f, "$"),
            Tok::Arrow => write!(f, "<-"),
            Tok::Underscore => write!(f, "_"),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
        }
    }
}

/// A token with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Spanned {
    pub tok: Tok,
    pub pos: Pos,
}

/// Lexer errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    pub pos: Pos,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `src` completely.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pos: Pos,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            chars: src.chars().peekable(),
            pos: Pos { line: 1, col: 1 },
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.pos.line += 1;
            self.pos.col = 1;
        } else {
            self.pos.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn run(mut self) -> Result<Vec<Spanned>, LexError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let pos = self.pos;
            let Some(c) = self.peek() else { break };
            let tok = match c {
                '(' => {
                    self.bump();
                    Tok::LParen
                }
                ')' => {
                    self.bump();
                    Tok::RParen
                }
                '[' => {
                    self.bump();
                    Tok::LBracket
                }
                ']' => {
                    self.bump();
                    Tok::RBracket
                }
                '{' => {
                    self.bump();
                    Tok::LBrace
                }
                '}' => {
                    self.bump();
                    Tok::RBrace
                }
                ',' => {
                    self.bump();
                    Tok::Comma
                }
                '.' => {
                    self.bump();
                    Tok::Dot
                }
                '@' => {
                    self.bump();
                    Tok::At
                }
                '$' => {
                    self.bump();
                    Tok::Dollar
                }
                '←' => {
                    self.bump();
                    Tok::Arrow
                }
                ':' => {
                    self.bump();
                    if self.peek() == Some('-') {
                        self.bump();
                        Tok::Arrow
                    } else {
                        Tok::Colon
                    }
                }
                '<' => {
                    self.bump();
                    match self.peek() {
                        Some('-') => {
                            self.bump();
                            Tok::Arrow
                        }
                        Some('=') => {
                            self.bump();
                            Tok::Le
                        }
                        _ => Tok::Lt,
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Tok::Ge
                    } else {
                        Tok::Gt
                    }
                }
                '=' => {
                    self.bump();
                    Tok::Eq
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Tok::Ne
                    } else {
                        return Err(self.error("expected '=' after '!'"));
                    }
                }
                '"' => self.string()?,
                '-' => {
                    self.bump();
                    match self.peek() {
                        Some(d) if d.is_ascii_digit() => self.int(true)?,
                        _ => return Err(self.error("expected digit after '-'")),
                    }
                }
                d if d.is_ascii_digit() => self.int(false)?,
                a if a.is_alphabetic() || a == '_' => self.ident(),
                other => return Err(self.error(format!("unexpected character {other:?}"))),
            };
            out.push(Spanned { tok, pos });
        }
        Ok(out)
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('%') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('/') => {
                    // Look ahead: only a comment if followed by '/' or '*'.
                    let mut clone = self.chars.clone();
                    clone.next();
                    match clone.peek() {
                        Some('/') => {
                            while let Some(c) = self.bump() {
                                if c == '\n' {
                                    break;
                                }
                            }
                        }
                        Some('*') => {
                            self.bump();
                            self.bump();
                            let mut prev = ' ';
                            loop {
                                match self.bump() {
                                    Some('/') if prev == '*' => break,
                                    Some(c) => prev = c,
                                    None => return Err(self.error("unterminated block comment")),
                                }
                            }
                        }
                        _ => return Err(self.error("unexpected character '/'")),
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn string(&mut self) -> Result<Tok, LexError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(Tok::Str(s)),
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('\\') => s.push('\\'),
                    Some('"') => s.push('"'),
                    Some(c) => return Err(self.error(format!("unknown escape \\{c}"))),
                    None => return Err(self.error("unterminated string")),
                },
                Some(c) => s.push(c),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn int(&mut self, negative: bool) -> Result<Tok, LexError> {
        let mut n: i64 = 0;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                self.bump();
                n = n
                    .checked_mul(10)
                    .and_then(|n| n.checked_add(i64::from(d)))
                    .ok_or_else(|| self.error("integer literal overflows i64"))?;
            } else {
                break;
            }
        }
        Ok(Tok::Int(if negative { -n } else { n }))
    }

    fn ident(&mut self) -> Tok {
        // A leading underscore is always its own token; the parser decides
        // whether it is an anonymous variable (`_`), a named variable
        // (`_X` = Underscore + ident), or a rule-context subscript
        // (`<-_true` = Arrow + Underscore + context).
        if self.peek() == Some('_') {
            self.bump();
            return Tok::Underscore;
        }
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
                s.push(c);
            } else {
                break;
            }
        }
        if s == "signedBy" {
            Tok::SignedBy
        } else if s.starts_with(char::is_uppercase) {
            Tok::Var(s)
        } else {
            Tok::Ident(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_paper_fact() {
        assert_eq!(
            toks(r#"student("Alice") @ "UIUC" signedBy ["UIUC"]."#),
            vec![
                Tok::Ident("student".into()),
                Tok::LParen,
                Tok::Str("Alice".into()),
                Tok::RParen,
                Tok::At,
                Tok::Str("UIUC".into()),
                Tok::SignedBy,
                Tok::LBracket,
                Tok::Str("UIUC".into()),
                Tok::RBracket,
                Tok::Dot,
            ]
        );
    }

    #[test]
    fn arrows_in_all_spellings() {
        assert_eq!(toks("<-"), vec![Tok::Arrow]);
        assert_eq!(toks(":-"), vec![Tok::Arrow]);
        assert_eq!(toks("←"), vec![Tok::Arrow]);
    }

    #[test]
    fn arrow_with_context_subscript() {
        assert_eq!(
            toks("<-_true"),
            vec![Tok::Arrow, Tok::Underscore, Tok::Ident("true".into())]
        );
        assert_eq!(
            toks("←_true"),
            vec![Tok::Arrow, Tok::Underscore, Tok::Ident("true".into())]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("= != < <= > >="),
            vec![Tok::Eq, Tok::Ne, Tok::Lt, Tok::Le, Tok::Gt, Tok::Ge]
        );
    }

    #[test]
    fn variables_vs_atoms() {
        assert_eq!(
            toks("Course cs101 Requester _X _"),
            vec![
                Tok::Var("Course".into()),
                Tok::Ident("cs101".into()),
                Tok::Var("Requester".into()),
                Tok::Underscore,
                Tok::Var("X".into()),
                Tok::Underscore,
            ]
        );
    }

    #[test]
    fn integers_including_negative() {
        assert_eq!(
            toks("2000 -5 0"),
            vec![Tok::Int(2000), Tok::Int(-5), Tok::Int(0)]
        );
    }

    #[test]
    fn integer_overflow_is_an_error() {
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks(r#""a\"b\n\t\\""#), vec![Tok::Str("a\"b\n\t\\".into())]);
    }

    #[test]
    fn unterminated_string_reports_error() {
        let err = lex("\"abc").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a % line\nb // line2\nc /* block\nblock */ d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Ident("d".into()),
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        assert!(lex("/* never closed").is_err());
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let spanned = lex("a\n  b").unwrap();
        assert_eq!(spanned[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(spanned[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn colon_vs_colon_dash() {
        assert_eq!(
            toks("p : q :- r"),
            vec![
                Tok::Ident("p".into()),
                Tok::Colon,
                Tok::Ident("q".into()),
                Tok::Arrow,
                Tok::Ident("r".into()),
            ]
        );
    }

    #[test]
    fn bad_character_is_reported_with_position() {
        let err = lex("p ^ q").unwrap_err();
        assert_eq!(err.pos.line, 1);
        assert!(err.message.contains('^'));
    }
}
