//! # peertrust-parser
//!
//! Lexer, parser and (via `peertrust-core`'s `Display` impls)
//! pretty-printer for the PeerTrust policy language — the concrete syntax
//! used throughout the paper:
//!
//! ```text
//! "E-Learn":
//!   discountEnroll(Course, Party) $ Requester = Party <-
//!     discountEnroll(Course, Party).
//!   eligibleForDiscount(X, Course) <- preferred(X) @ "ELENA".
//!   preferred(X) @ "ELENA" <- signedBy ["ELENA"] student(X) @ "UIUC".
//! ```
//!
//! Entry points:
//!
//! * [`parse_rule`] — one `.`-terminated rule;
//! * [`parse_program`] — a sequence of rules;
//! * [`parse_labeled_program`] — the paper's peer-labelled listing style;
//! * [`parse_literal`] / [`parse_goals`] — query syntax.
//!
//! The grammar accepts `<-`, `:-` and `←` as the rule arrow, `%`-, `//`- and
//! `/* */`-style comments, and the paper's placement of `signedBy [...]`
//! either after a fact head or directly after the arrow.

pub mod lexer;
pub mod parser;

pub use lexer::{lex, LexError, Pos, Spanned, Tok};
pub use parser::{
    parse_goals, parse_labeled_program, parse_literal, parse_program, parse_rule, ParseError,
};
