//! Recursive-descent parser for the PeerTrust language.
//!
//! Grammar (paper §3.1 concrete syntax, with `<-` / `:-` / `←` all accepted
//! as the rule arrow):
//!
//! ```text
//! program    := statement*
//! statement  := rule "."
//! rule       := literal ("$" context)? tail
//! tail       := ε                                   -- fact
//!             | "signedBy" "[" names "]"            -- signed fact
//!             | arrow ("_" ctx_unit)? ("signedBy" "[" names "]")? body?
//! body       := item ("," item)*
//! item       := literal | term cmp term             -- e.g. Price < 2000
//! literal    := callable ("@" term)*
//! callable   := ident ("(" term ("," term)* ")")?
//! context    := item ("," item)*                    -- until arrow/"."/signedBy
//! ctx_unit   := item | "(" context ")"
//! term       := int | string | Var | "_" | ident ("(" terms ")")?
//! ```
//!
//! `Requester` and `Self` parse as ordinary variables; their pseudo-variable
//! behaviour is implemented at disclosure time (see `peertrust-core`
//! contexts). An anonymous `_` becomes a fresh variable `_G<n>`.
//!
//! [`parse_labeled_program`] additionally accepts the paper's peer labels
//! (`"E-Learn":` or `Alice:`) which assign the following rules to a peer.

use crate::lexer::{lex, LexError, Pos, Spanned, Tok};
use peertrust_core::{Context, Literal, PeerId, Rule, Sym, Term};
use std::fmt;

/// Parse errors with position and a human-readable expectation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    pub pos: Option<Pos>,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(f, "parse error at {}: {}", p, self.message),
            None => write!(f, "parse error at end of input: {}", self.message),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            pos: Some(e.pos),
            message: e.message,
        }
    }
}

/// Parse a complete program: a sequence of `.`-terminated rules.
pub fn parse_program(src: &str) -> Result<Vec<Rule>, ParseError> {
    let mut p = Parser::new(src)?;
    let mut rules = Vec::new();
    while !p.at_end() {
        rules.push(p.rule()?);
    }
    Ok(rules)
}

/// Parse a single `.`-terminated rule.
pub fn parse_rule(src: &str) -> Result<Rule, ParseError> {
    let mut p = Parser::new(src)?;
    let r = p.rule()?;
    p.expect_end()?;
    Ok(r)
}

/// Parse one literal (no trailing dot) — the form used for queries.
pub fn parse_literal(src: &str) -> Result<Literal, ParseError> {
    let mut p = Parser::new(src)?;
    let l = p.item()?;
    p.expect_end()?;
    Ok(l)
}

/// Parse a conjunction of literals (no trailing dot) — a query goal list.
pub fn parse_goals(src: &str) -> Result<Vec<Literal>, ParseError> {
    let mut p = Parser::new(src)?;
    let goals = p.conjunction(|p| p.at_end())?;
    p.expect_end()?;
    Ok(goals)
}

/// Parse a program with the paper's peer labels: `"E-Learn":` (or a bare
/// identifier/variable name followed by `:`) assigns subsequent rules to
/// that peer until the next label. Rules before any label are an error.
pub fn parse_labeled_program(src: &str) -> Result<Vec<(PeerId, Vec<Rule>)>, ParseError> {
    let mut p = Parser::new(src)?;
    let mut out: Vec<(PeerId, Vec<Rule>)> = Vec::new();
    while !p.at_end() {
        if let Some(name) = p.try_label() {
            out.push((PeerId::new(&name), Vec::new()));
            continue;
        }
        let rule = p.rule()?;
        match out.last_mut() {
            Some((_, rules)) => rules.push(rule),
            None => {
                return Err(ParseError {
                    pos: None,
                    message: "rule appears before any peer label".into(),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Spanned>,
    i: usize,
    anon: u32,
}

impl Parser {
    fn new(src: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            toks: lex(src)?,
            i: 0,
            anon: 0,
        })
    }

    fn at_end(&self) -> bool {
        self.i >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.i + 1).map(|s| &s.tok)
    }

    fn pos(&self) -> Option<Pos> {
        self.toks.get(self.i).map(|s| s.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).map(|s| s.tok.clone());
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos(),
            message: message.into(),
        }
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.bump();
                Ok(())
            }
            Some(t) => Err(self.error(format!("expected {what}, found `{t}`"))),
            None => Err(self.error(format!("expected {what}, found end of input"))),
        }
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.at_end() {
            Ok(())
        } else {
            Err(self.error("expected end of input"))
        }
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == Some(want) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// `"Name":` / `Name:` label (only attempted at statement starts).
    fn try_label(&mut self) -> Option<String> {
        let name = match (self.peek(), self.peek2()) {
            (Some(Tok::Str(s)), Some(Tok::Colon)) => s.clone(),
            (Some(Tok::Ident(s)), Some(Tok::Colon)) => s.clone(),
            (Some(Tok::Var(s)), Some(Tok::Colon)) => s.clone(),
            _ => return None,
        };
        self.bump();
        self.bump();
        Some(name)
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        let head = self.item()?;
        let mut rule = Rule::fact(head);

        // Optional head context: `$ ctx` up to arrow / dot / signedBy.
        if self.eat(&Tok::Dollar) {
            let goals = self.conjunction(|p| {
                matches!(
                    p.peek(),
                    Some(Tok::Arrow) | Some(Tok::Dot) | Some(Tok::SignedBy) | None
                )
            })?;
            rule.head_context = Some(Context::goals(goals));
        }

        match self.peek() {
            Some(Tok::Dot) => {
                self.bump();
                Ok(rule)
            }
            Some(Tok::SignedBy) => {
                rule.signed_by = self.signed_by()?;
                self.expect(&Tok::Dot, "`.`")?;
                Ok(rule)
            }
            Some(Tok::Arrow) => {
                self.bump();
                // Optional rule context subscript: `_ctx` or `_(c1, c2)`.
                if self.eat(&Tok::Underscore) {
                    rule.rule_context = Some(self.ctx_unit()?);
                }
                // The paper puts `signedBy [...]` right after the arrow for
                // signed delegation rules.
                if self.peek() == Some(&Tok::SignedBy) {
                    rule.signed_by = self.signed_by()?;
                }
                // Body (may be empty if the rule was only decorated).
                if self.peek() != Some(&Tok::Dot) {
                    rule.body = self.conjunction(|p| {
                        matches!(p.peek(), Some(Tok::Dot) | Some(Tok::SignedBy) | None)
                    })?;
                }
                // Also accept trailing `signedBy [...]` after the body.
                if self.peek() == Some(&Tok::SignedBy) {
                    if !rule.signed_by.is_empty() {
                        return Err(self.error("duplicate signedBy clause"));
                    }
                    rule.signed_by = self.signed_by()?;
                }
                self.expect(&Tok::Dot, "`.`")?;
                Ok(rule)
            }
            Some(t) => Err(self.error(format!("expected `.`, `<-` or `signedBy`, found `{t}`"))),
            None => Err(self.error("expected `.`, `<-` or `signedBy`, found end of input")),
        }
    }

    fn signed_by(&mut self) -> Result<Vec<Sym>, ParseError> {
        self.expect(&Tok::SignedBy, "`signedBy`")?;
        self.expect(&Tok::LBracket, "`[`")?;
        let mut names = Vec::new();
        loop {
            match self.bump() {
                Some(Tok::Str(s)) => names.push(Sym::new(&s)),
                Some(Tok::Ident(s)) => names.push(Sym::new(&s)),
                Some(t) => return Err(self.error(format!("expected issuer name, found `{t}`"))),
                None => return Err(self.error("expected issuer name, found end of input")),
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RBracket, "`]`")?;
        if names.is_empty() {
            return Err(self.error("signedBy list must not be empty"));
        }
        Ok(names)
    }

    /// A rule-context subscript: a single item, `true`, or a parenthesized
    /// conjunction.
    fn ctx_unit(&mut self) -> Result<Context, ParseError> {
        if self.eat(&Tok::LParen) {
            let goals = self.conjunction(|p| matches!(p.peek(), Some(Tok::RParen) | None))?;
            self.expect(&Tok::RParen, "`)`")?;
            Ok(Context::goals(goals))
        } else {
            let item = self.item()?;
            Ok(Context::goals(vec![item]))
        }
    }

    /// Comma-separated items until `stop` says the terminator is next.
    fn conjunction(&mut self, stop: impl Fn(&Parser) -> bool) -> Result<Vec<Literal>, ParseError> {
        let mut items = vec![self.item()?];
        while self.peek() == Some(&Tok::Comma) {
            self.bump();
            items.push(self.item()?);
        }
        if !stop(self) {
            // Defensive: report a clean error instead of looping.
            if let Some(t) = self.peek() {
                return Err(self.error(format!("expected `,` or end of clause, found `{t}`")));
            }
        }
        Ok(items)
    }

    /// A body/context item: a literal with optional authority chain, or an
    /// infix comparison like `Price < 2000` / `Requester = Self`.
    fn item(&mut self) -> Result<Literal, ParseError> {
        let lhs_start = self.i;
        // Try: callable literal first (ident, maybe args).
        if matches!(self.peek(), Some(Tok::Ident(_))) {
            let lit = self.callable()?;
            if let Some(op) = self.cmp_op() {
                // It was really a term on the left of a comparison; re-read
                // it as a term.
                self.i = lhs_start;
                let lhs = self.term()?;
                self.bump(); // the operator
                let rhs = self.term()?;
                return Ok(Literal::cmp(op, lhs, rhs));
            }
            // Authority chain.
            let mut lit = lit;
            while self.eat(&Tok::At) {
                lit = lit.at(self.term()?);
            }
            return Ok(lit);
        }
        // Otherwise it must be `term cmp term`.
        let lhs = self.term()?;
        let Some(op) = self.cmp_op() else {
            return Err(self.error("expected comparison operator after term"));
        };
        self.bump();
        let rhs = self.term()?;
        Ok(Literal::cmp(op, lhs, rhs))
    }

    /// Peek at a comparison operator without consuming it.
    fn cmp_op(&self) -> Option<&'static str> {
        match self.peek() {
            Some(Tok::Eq) => Some("="),
            Some(Tok::Ne) => Some("!="),
            Some(Tok::Lt) => Some("<"),
            Some(Tok::Le) => Some("<="),
            Some(Tok::Gt) => Some(">"),
            Some(Tok::Ge) => Some(">="),
            _ => None,
        }
    }

    /// `ident` or `ident(args)` as a literal.
    fn callable(&mut self) -> Result<Literal, ParseError> {
        let Some(Tok::Ident(name)) = self.bump() else {
            return Err(self.error("expected predicate name"));
        };
        let mut args = Vec::new();
        if self.eat(&Tok::LParen) {
            loop {
                args.push(self.term()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen, "`)`")?;
        }
        Ok(Literal::new(name.as_str(), args))
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Some(Tok::Int(i)) => Ok(Term::Int(i)),
            Some(Tok::Str(s)) => Ok(Term::str(s.as_str())),
            Some(Tok::Var(v)) => Ok(Term::var(v.as_str())),
            Some(Tok::Underscore) => {
                // `_X` (named) or `_` (anonymous, fresh each occurrence).
                match self.peek() {
                    Some(Tok::Var(v)) => {
                        let name = format!("_{v}");
                        self.bump();
                        Ok(Term::var(name.as_str()))
                    }
                    Some(Tok::Ident(v)) => {
                        let name = format!("_{v}");
                        self.bump();
                        Ok(Term::var(name.as_str()))
                    }
                    _ => {
                        self.anon += 1;
                        Ok(Term::var(format!("_G{}", self.anon).as_str()))
                    }
                }
            }
            Some(Tok::Ident(name)) => {
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    loop {
                        args.push(self.term()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::RParen, "`)`")?;
                    Ok(Term::compound(name.as_str(), args))
                } else {
                    Ok(Term::atom(name.as_str()))
                }
            }
            Some(t) => Err(ParseError {
                pos: self.toks.get(self.i - 1).map(|s| s.pos),
                message: format!("expected term, found `{t}`"),
            }),
            None => Err(ParseError {
                pos: None,
                message: "expected term, found end of input".into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_signed_fact() {
        let r = parse_rule(r#"student("Alice") @ "UIUC" signedBy ["UIUC"]."#).unwrap();
        assert!(r.is_credential());
        assert_eq!(
            r.to_string(),
            r#"student("Alice") @ "UIUC" signedBy ["UIUC"]."#
        );
    }

    #[test]
    fn parses_plain_fact_and_rule() {
        let r = parse_rule("freeCourse(cs101).").unwrap();
        assert!(r.is_fact());
        assert_eq!(r.to_string(), "freeCourse(cs101).");

        let r2 = parse_rule(r#"preferred(X) <- student(X) @ "UIUC"."#).unwrap();
        assert_eq!(r2.body.len(), 1);
        assert_eq!(r2.to_string(), r#"preferred(X) <- student(X) @ "UIUC"."#);
    }

    #[test]
    fn parses_unicode_arrow_and_subscript_context() {
        let r = parse_rule(
            r#"enroll(Course, Requester, Company, Email, 0) ←_true freeCourse(Course), freebieEligible(Course, Requester, Company, Email)."#,
        )
        .unwrap();
        assert!(r.rule_context.as_ref().unwrap().is_public());
        assert_eq!(r.body.len(), 2);
    }

    #[test]
    fn parses_head_context_requester_eq() {
        // E-Learn's discountEnroll release rule (§4.1).
        let r = parse_rule(
            "discountEnroll(Course, Party) $ Requester = Party <- discountEnroll(Course, Party).",
        )
        .unwrap();
        let ctx = r.head_context.unwrap();
        assert_eq!(ctx.to_string(), "Requester = Party");
    }

    #[test]
    fn parses_head_context_with_authority_chain() {
        // Alice's release policy for student literals (§4.1).
        let r = parse_rule(
            r#"student(X) @ Y $ member(Requester) @ "BBB" @ Requester <-_true student(X) @ Y."#,
        )
        .unwrap();
        let ctx = r.head_context.unwrap();
        assert_eq!(ctx.goals.len(), 1);
        assert_eq!(
            ctx.goals[0].to_string(),
            r#"member(Requester) @ "BBB" @ Requester"#
        );
        assert!(r.rule_context.unwrap().is_public());
    }

    #[test]
    fn parses_signed_delegation_after_arrow() {
        // UIUC registrar's delegation (§3.1).
        let r = parse_rule(
            r#"student(X) @ "UIUC" <- signedBy ["UIUC"] student(X) @ "UIUC Registrar"."#,
        )
        .unwrap();
        assert_eq!(r.signed_by.len(), 1);
        assert_eq!(r.signed_by[0].as_str(), "UIUC");
        assert_eq!(r.body.len(), 1);
    }

    #[test]
    fn parses_comparison_in_body() {
        // Bob's purchase authorization (§4.2).
        let r = parse_rule(r#"authorized("Bob", Price) @ "IBM" <- signedBy ["IBM"] Price < 2000."#)
            .unwrap();
        assert_eq!(r.body[0].to_string(), "Price < 2000");
        assert!(r.body[0].is_builtin());
    }

    #[test]
    fn parses_policy49_with_externals() {
        let r = parse_rule(
            r#"policy49(Course, Requester, Company, Price) <-_true
                 price(Course, Price),
                 authorized(Requester, Price) @ Company @ Requester,
                 visaCard(Company) @ "VISA" @ Requester,
                 purchaseApproved(Company, Price) @ "VISA"."#,
        )
        .unwrap();
        assert_eq!(r.body.len(), 4);
        assert_eq!(r.body[1].authority.len(), 2);
    }

    #[test]
    fn parses_trailing_signedby() {
        let r = parse_rule(r#"p(X) <- q(X) signedBy ["A"]."#).unwrap();
        assert_eq!(r.signed_by.len(), 1);
        assert_eq!(r.body.len(), 1);
    }

    #[test]
    fn duplicate_signedby_rejected() {
        assert!(parse_rule(r#"p(X) <- signedBy ["A"] q(X) signedBy ["B"]."#).is_err());
    }

    #[test]
    fn parses_program_with_comments() {
        let rules = parse_program(
            "% course database\nfreeCourse(cs101). freeCourse(cs102).\nprice(cs411, 1000).",
        )
        .unwrap();
        assert_eq!(rules.len(), 3);
    }

    #[test]
    fn parses_labeled_program() {
        let peers = parse_labeled_program(
            r#"
            "E-Learn":
              freeCourse(cs101).
            Alice:
              student("Alice") @ "UIUC" signedBy ["UIUC"].
              email("Alice", "alice@uiuc.edu").
            "#,
        )
        .unwrap();
        assert_eq!(peers.len(), 2);
        assert_eq!(peers[0].0, PeerId::new("E-Learn"));
        assert_eq!(peers[0].1.len(), 1);
        assert_eq!(peers[1].0, PeerId::new("Alice"));
        assert_eq!(peers[1].1.len(), 2);
    }

    #[test]
    fn rule_before_label_is_error() {
        assert!(parse_labeled_program("p(a).").is_err());
    }

    #[test]
    fn parses_goals() {
        let goals = parse_goals(r#"price(C, P), P < 2000"#).unwrap();
        assert_eq!(goals.len(), 2);
        assert_eq!(goals[1].pred.as_str(), "<");
    }

    #[test]
    fn anonymous_variables_are_fresh() {
        let r = parse_rule("p(_, _).").unwrap();
        let vars = r.vars();
        assert_eq!(vars.len(), 2, "each `_` must be a distinct variable");
    }

    #[test]
    fn named_underscore_variable() {
        let r = parse_rule("p(_X, _X).").unwrap();
        assert_eq!(r.vars().len(), 1);
    }

    #[test]
    fn compound_terms_parse() {
        let l = parse_literal("p(f(g(X), 1), \"s\")").unwrap();
        assert_eq!(l.to_string(), "p(f(g(X), 1), \"s\")");
    }

    #[test]
    fn missing_dot_is_reported() {
        let err = parse_rule("p(a)").unwrap_err();
        assert!(err.message.contains("expected"));
    }

    #[test]
    fn garbage_after_rule_is_reported() {
        assert!(parse_rule("p(a). q(b).").is_err());
    }

    #[test]
    fn zero_arity_literal() {
        let r = parse_rule("ready <- initialized.").unwrap();
        assert_eq!(r.head.to_string(), "ready");
        assert_eq!(r.body[0].to_string(), "initialized");
    }

    #[test]
    fn roundtrip_all_paper_rules() {
        // Every distinct rule shape in the paper survives parse → print →
        // parse unchanged.
        let sources = [
            r#"freeEnroll(Course, Requester) $ true <- policeOfficer(Requester) @ "CSP" @ Requester, spanishCourse(Course)."#,
            r#"eligibleForDiscount(X, Course) <- preferred(X) @ "ELENA"."#,
            r#"preferred(X) @ "ELENA" <- signedBy ["ELENA"] student(X) @ "UIUC"."#,
            r#"student(X) @ University <- student(X) @ University @ X."#,
            r#"member("E-Learn") @ "BBB" signedBy ["BBB"]."#,
            r#"student(X) $ Requester = "UIUC Registrar" <- student(X) @ "UIUC Registrar"."#,
            r#"email("Bob", "Bob@ibm.com")."#,
            r#"authorized("Bob", Price) @ "IBM" <- signedBy ["IBM"] Price < 2000."#,
            r#"visaCard("IBM") signedBy ["VISA"]."#,
            r#"policy27(Requester) <- authorizedMerchant(Requester) @ "VISA" @ Requester, member(Requester) @ "ELENA"."#,
            r#"authority(purchaseApproved, Authority) @ myBroker."#,
        ];
        for src in sources {
            let r1 = parse_rule(src).unwrap_or_else(|e| panic!("{src}: {e}"));
            let printed = r1.to_string();
            let r2 = parse_rule(&printed).unwrap_or_else(|e| panic!("reparse of {printed}: {e}"));
            assert_eq!(r1, r2, "round trip changed {src}");
        }
    }
}
