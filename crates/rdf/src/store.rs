//! An indexed triple store with pattern matching.
//!
//! Supports the lookups the metadata layer needs: match any combination of
//! bound/unbound subject, predicate, object. Indexes: SPO order plus
//! by-subject, by-predicate, by-object hash indexes over triple ids.

use crate::model::{Iri, Node, Triple};
use std::collections::HashMap;

/// A pattern component: bound to a value or a wildcard.
#[derive(Clone, Debug)]
pub enum Pat<T> {
    Any,
    Is(T),
}

impl<T: PartialEq> Pat<T> {
    fn matches(&self, v: &T) -> bool {
        match self {
            Pat::Any => true,
            Pat::Is(x) => x == v,
        }
    }
}

/// The store.
#[derive(Default, Debug)]
pub struct TripleStore {
    triples: Vec<Triple>,
    by_subject: HashMap<Node, Vec<usize>>,
    by_predicate: HashMap<Iri, Vec<usize>>,
    by_object: HashMap<Node, Vec<usize>>,
}

impl TripleStore {
    pub fn new() -> TripleStore {
        TripleStore::default()
    }

    pub fn len(&self) -> usize {
        self.triples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Insert, deduplicating exact repeats. Returns whether it was new.
    pub fn insert(&mut self, t: Triple) -> bool {
        if self.contains(&t) {
            return false;
        }
        let id = self.triples.len();
        self.by_subject
            .entry(t.subject.clone())
            .or_default()
            .push(id);
        self.by_predicate
            .entry(t.predicate.clone())
            .or_default()
            .push(id);
        self.by_object.entry(t.object.clone()).or_default().push(id);
        self.triples.push(t);
        true
    }

    pub fn extend(&mut self, triples: impl IntoIterator<Item = Triple>) -> usize {
        triples
            .into_iter()
            .filter(|t| self.insert(t.clone()))
            .count()
    }

    pub fn contains(&self, t: &Triple) -> bool {
        self.by_subject
            .get(&t.subject)
            .is_some_and(|ids| ids.iter().any(|&i| self.triples[i] == *t))
    }

    /// All triples matching the pattern, using the most selective
    /// available index.
    pub fn query(&self, s: Pat<Node>, p: Pat<Iri>, o: Pat<Node>) -> Vec<&Triple> {
        let candidates: Box<dyn Iterator<Item = usize> + '_> = match (&s, &p, &o) {
            (Pat::Is(sv), _, _) => match self.by_subject.get(sv) {
                Some(ids) => Box::new(ids.iter().copied()),
                None => Box::new(std::iter::empty()),
            },
            (_, _, Pat::Is(ov)) => match self.by_object.get(ov) {
                Some(ids) => Box::new(ids.iter().copied()),
                None => Box::new(std::iter::empty()),
            },
            (_, Pat::Is(pv), _) => match self.by_predicate.get(pv) {
                Some(ids) => Box::new(ids.iter().copied()),
                None => Box::new(std::iter::empty()),
            },
            _ => Box::new(0..self.triples.len()),
        };
        candidates
            .map(|i| &self.triples[i])
            .filter(|t| s.matches(&t.subject) && p.matches(&t.predicate) && o.matches(&t.object))
            .collect()
    }

    /// Objects of `(subject, predicate, ?)`.
    pub fn objects(&self, subject: &Node, predicate: &Iri) -> Vec<&Node> {
        self.query(
            Pat::Is(subject.clone()),
            Pat::Is(predicate.clone()),
            Pat::Any,
        )
        .into_iter()
        .map(|t| &t.object)
        .collect()
    }

    /// Distinct subjects in insertion order.
    pub fn subjects(&self) -> Vec<&Node> {
        let mut seen = Vec::new();
        for t in &self.triples {
            if !seen.contains(&&t.subject) {
                seen.push(&t.subject);
            }
        }
        seen
    }

    pub fn iter(&self) -> impl Iterator<Item = &Triple> {
        self.triples.iter()
    }
}

impl FromIterator<Triple> for TripleStore {
    fn from_iter<T: IntoIterator<Item = Triple>>(iter: T) -> TripleStore {
        let mut s = TripleStore::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn course(id: &str, title: &str, price: i64) -> Vec<Triple> {
        let s = Node::iri(format!("http://e/courses/{id}"));
        vec![
            Triple::new(
                s.clone(),
                Iri::new("http://purl.org/dc/terms/title"),
                Node::literal(title),
            ),
            Triple::new(
                s,
                Iri::new("http://e/terms#price"),
                Node::literal(price.to_string()),
            ),
        ]
    }

    fn store() -> TripleStore {
        course("cs101", "Intro", 0)
            .into_iter()
            .chain(course("cs411", "Databases", 1000))
            .collect()
    }

    #[test]
    fn insert_dedups() {
        let mut s = store();
        let n = s.len();
        let dup = s.iter().next().unwrap().clone();
        assert!(!s.insert(dup));
        assert_eq!(s.len(), n);
    }

    #[test]
    fn query_by_subject() {
        let s = store();
        let hits = s.query(
            Pat::Is(Node::iri("http://e/courses/cs411")),
            Pat::Any,
            Pat::Any,
        );
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn query_by_predicate() {
        let s = store();
        let hits = s.query(
            Pat::Any,
            Pat::Is(Iri::new("http://e/terms#price")),
            Pat::Any,
        );
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn query_by_object() {
        let s = store();
        let hits = s.query(Pat::Any, Pat::Any, Pat::Is(Node::literal("1000")));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].subject, Node::iri("http://e/courses/cs411"));
    }

    #[test]
    fn fully_bound_query_acts_as_contains() {
        let s = store();
        let t = s.iter().next().unwrap().clone();
        let hits = s.query(
            Pat::Is(t.subject.clone()),
            Pat::Is(t.predicate.clone()),
            Pat::Is(t.object.clone()),
        );
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn objects_helper() {
        let s = store();
        let objs = s.objects(
            &Node::iri("http://e/courses/cs101"),
            &Iri::new("http://purl.org/dc/terms/title"),
        );
        assert_eq!(objs, vec![&Node::literal("Intro")]);
    }

    #[test]
    fn subjects_deduped_in_order() {
        let s = store();
        let subs = s.subjects();
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0], &Node::iri("http://e/courses/cs101"));
    }

    #[test]
    fn wildcard_query_returns_all() {
        let s = store();
        assert_eq!(s.query(Pat::Any, Pat::Any, Pat::Any).len(), 4);
    }
}
